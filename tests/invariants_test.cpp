// InvariantMonitor unit tests: the three protocol invariants (agreement,
// forgery, liveness) fire exactly when they should and stay quiet on
// legitimate behaviour (duplicate executions, tolerated compromise,
// declared outages).
#include <gtest/gtest.h>

#include <string>

#include "sim/invariants.h"
#include "sim/simulator.h"

namespace ct::sim {
namespace {

bool mentions(const std::vector<std::string>& violations,
              const std::string& needle) {
  for (const std::string& v : violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Invariants, AgreementMismatchIsAViolation) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  monitor.on_execute({0, 0}, /*group=*/0, /*view=*/0, /*seq=*/7,
                     /*request_id=*/41);
  monitor.on_execute({0, 1}, 0, 0, 7, 41);  // same request: fine
  EXPECT_TRUE(monitor.ok());
  monitor.on_execute({0, 2}, 0, 0, 7, 42);  // different request, same slot
  EXPECT_FALSE(monitor.ok());
  EXPECT_TRUE(mentions(monitor.violations(), "safety-agreement"));
}

TEST(Invariants, SameSeqInDifferentGroupsIsFine) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  monitor.on_execute({0, 0}, /*group=*/0, /*view=*/0, /*seq=*/7,
                     /*request_id=*/41);
  monitor.on_execute({1, 0}, /*group=*/1, 0, /*seq=*/7, /*request_id=*/99);
  EXPECT_TRUE(monitor.ok());
}

TEST(Invariants, ForgedAcceptWithFOrFewerCompromisedIsAViolation) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  monitor.on_compromise({0, 0});
  monitor.on_client_accept(/*request_id=*/5, /*corrupt=*/true);
  EXPECT_FALSE(monitor.ok());
  EXPECT_TRUE(mentions(monitor.violations(), "safety-forgery"));
}

TEST(Invariants, ForgedAcceptBeyondToleranceIsExpectedGray) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  monitor.on_compromise({0, 0});
  monitor.on_compromise({0, 1});  // f+1: beyond what the architecture claims
  monitor.on_compromise({0, 1});  // duplicate notification is idempotent
  EXPECT_EQ(monitor.compromised_count(), 2);
  monitor.on_client_accept(5, /*corrupt=*/true);
  EXPECT_TRUE(monitor.ok());
}

TEST(Invariants, UnexplainedLivenessGapIsAViolation) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 0, .liveness_gap_s = 50.0});
  sim.schedule_at(10.0, [&] { monitor.on_client_accept(1, false); });
  sim.schedule_at(200.0, [&] { monitor.on_client_accept(2, false); });
  sim.run_until(300.0);
  monitor.finalize(0.0, 250.0);
  EXPECT_FALSE(monitor.ok());
  EXPECT_TRUE(mentions(monitor.violations(), "liveness"));
}

TEST(Invariants, DeclaredOutageExcusesTheGap) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 0, .liveness_gap_s = 50.0});
  sim.schedule_at(10.0, [&] { monitor.on_client_accept(1, false); });
  sim.schedule_at(200.0, [&] { monitor.on_client_accept(2, false); });
  sim.run_until(300.0);
  monitor.declare_outage(10.0, 180.0);  // leaves only a 20 s uncovered tail
  monitor.finalize(0.0, 250.0);
  EXPECT_TRUE(monitor.ok()) << monitor.violations().front();
}

TEST(Invariants, LivenessDisabledByDefault) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 0});
  sim.run_until(500.0);
  monitor.finalize(0.0, 500.0);  // no accepts at all, but gap bound is off
  EXPECT_TRUE(monitor.ok());
}

TEST(Invariants, StateInstallMatchingAVotedCheckpointIsFine) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  monitor.on_checkpoint({0, 0}, /*group=*/0, /*count=*/8, /*digest=*/1234);
  monitor.on_checkpoint({0, 1}, 0, 8, 1234);
  monitor.on_state_install({0, 2}, 0, 8, 1234);
  EXPECT_TRUE(monitor.ok());
}

TEST(Invariants, DivergentStateInstallIsAViolation) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  monitor.on_checkpoint({0, 0}, /*group=*/0, /*count=*/8, /*digest=*/1234);
  // Right count, wrong digest: the transfer handed the rejoiner state no
  // correct replica ever vouched for.
  monitor.on_state_install({0, 2}, 0, 8, 9999);
  EXPECT_FALSE(monitor.ok());
  EXPECT_TRUE(mentions(monitor.violations(), "state-transfer"));
}

TEST(Invariants, CompromisedCheckpointVotesDoNotLegitimizeInstalls) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  monitor.on_compromise({0, 0});
  monitor.on_checkpoint({0, 0}, /*group=*/0, /*count=*/8, /*digest=*/666);
  monitor.on_state_install({0, 2}, 0, 8, 666);
  EXPECT_FALSE(monitor.ok());
}

TEST(Invariants, TrivialEmptyInstallIsIgnored) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  // A cold replica installing the empty state has no certificate to match.
  monitor.on_state_install({0, 2}, 0, 0, 42);
  EXPECT_TRUE(monitor.ok());
}

TEST(Invariants, CheckpointCertificatesAreScopedPerGroup) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 1});
  monitor.on_checkpoint({0, 0}, /*group=*/0, /*count=*/8, /*digest=*/1234);
  // Same certificate, different replication group: not vouched for there.
  monitor.on_state_install({1, 0}, /*group=*/1, 8, 1234);
  EXPECT_FALSE(monitor.ok());
}

TEST(Invariants, ViolationsCarryTimestamps) {
  Simulator sim;
  InvariantMonitor monitor(sim, {.f = 0});
  sim.schedule_at(42.0, [&] {
    monitor.on_execute({0, 0}, 0, 0, 1, 10);
    monitor.on_execute({0, 1}, 0, 0, 1, 11);
  });
  sim.run_until(100.0);
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].rfind("t=42", 0), 0u);
}

}  // namespace
}  // namespace ct::sim
