// Tests for the unstructured mesh, the coastal band builder, and field
// operations (including the paper's shoreline averaging + extension).
#include <cmath>

#include <gtest/gtest.h>

#include "mesh/coastal_builder.h"
#include "mesh/field.h"
#include "mesh/trimesh.h"
#include "terrain/oahu.h"
#include "util/rng.h"

namespace ct::mesh {
namespace {

/// Two triangles forming the unit square: (0,0)-(1,0)-(1,1)-(0,1).
TriMesh square_mesh() {
  std::vector<Node> nodes(4);
  nodes[0].position = {0, 0};
  nodes[1].position = {1, 0};
  nodes[2].position = {1, 1};
  nodes[3].position = {0, 1};
  std::vector<Element> elements = {{{0, 1, 2}}, {{0, 2, 3}}};
  return TriMesh(std::move(nodes), std::move(elements));
}

TEST(TriMesh, AdjacencyIsSymmetric) {
  const TriMesh mesh = square_mesh();
  for (NodeId n = 0; n < mesh.node_count(); ++n) {
    for (const NodeId m : mesh.neighbors(n)) {
      const auto& back = mesh.neighbors(m);
      EXPECT_NE(std::find(back.begin(), back.end(), n), back.end());
    }
  }
  // Diagonal 0-2 is shared; corners 1 and 3 are not adjacent.
  const auto& n1 = mesh.neighbors(1);
  EXPECT_EQ(std::find(n1.begin(), n1.end(), NodeId{3}), n1.end());
}

TEST(TriMesh, NearestNode) {
  const TriMesh mesh = square_mesh();
  EXPECT_EQ(mesh.nearest_node({0.1, 0.1}), 0u);
  EXPECT_EQ(mesh.nearest_node({0.9, 0.2}), 1u);
  EXPECT_EQ(mesh.nearest_node({5.0, 5.0}), 2u);
}

TEST(TriMesh, LocateInsideAndOutside) {
  const TriMesh mesh = square_mesh();
  const auto inside = mesh.locate({0.7, 0.2});
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(inside->element, 0u);
  double weight_sum = 0.0;
  for (const double w : inside->weights) {
    EXPECT_GE(w, 0.0);
    weight_sum += w;
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  EXPECT_FALSE(mesh.locate({2.0, 2.0}).has_value());
}

TEST(TriMesh, InterpolationExactForLinearFields) {
  const TriMesh mesh = square_mesh();
  // f(x,y) = 3x - 2y + 1 is reproduced exactly by barycentric interp.
  NodeField f(mesh.node_count());
  for (NodeId n = 0; n < mesh.node_count(); ++n) {
    const auto p = mesh.node(n).position;
    f[n] = 3.0 * p.x - 2.0 * p.y + 1.0;
  }
  util::Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    const geo::Vec2 p{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    EXPECT_NEAR(mesh.interpolate(f, p), 3.0 * p.x - 2.0 * p.y + 1.0, 1e-9);
  }
}

TEST(TriMesh, InterpolationFallsBackToNearestOutside) {
  const TriMesh mesh = square_mesh();
  NodeField f = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(mesh.interpolate(f, {-5.0, -5.0}), 10.0);
  EXPECT_DOUBLE_EQ(mesh.interpolate(f, {6.0, 6.0}), 30.0);
}

TEST(TriMesh, AreasAndValidation) {
  const TriMesh mesh = square_mesh();
  EXPECT_DOUBLE_EQ(mesh.element_signed_area2(0), 1.0);  // 2 * 0.5
  EXPECT_NEAR(mesh.total_area(), 1.0, 1e-12);
  EXPECT_THROW(TriMesh({}, {}), std::invalid_argument);
  std::vector<Node> one(1);
  EXPECT_THROW(TriMesh(std::move(one), {{{0, 1, 2}}}), std::out_of_range);
  NodeField wrong(3);
  EXPECT_THROW(square_mesh().interpolate(wrong, {0, 0}),
               std::invalid_argument);
}

// ------------------------------------------------------------- coastal band

class CoastalMeshTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    terrain_ = terrain::make_oahu_terrain().release();
    CoastalMeshConfig config;
    config.shore_spacing_m = 4000.0;  // coarse: fast tests
    config.cross_shore_spacing_m = 1500.0;
    config.offshore_extent_m = 6000.0;
    config.inland_extent_m = 3000.0;
    cm_ = new CoastalMesh(build_coastal_mesh(*terrain_, config));
  }
  static void TearDownTestSuite() {
    delete cm_;
    delete terrain_;
  }

  static const terrain::Terrain* terrain_;
  static const CoastalMesh* cm_;
};

const terrain::Terrain* CoastalMeshTest::terrain_ = nullptr;
const CoastalMesh* CoastalMeshTest::cm_ = nullptr;

TEST_F(CoastalMeshTest, LatticeDimensions) {
  const std::size_t stations = cm_->stations.size();
  ASSERT_GT(stations, 10u);
  EXPECT_EQ(cm_->mesh.node_count() % stations, 0u);
  const std::size_t offsets = cm_->mesh.node_count() / stations;
  // offshore 6000/1500 = 4 rows + shoreline + inland 3000/1500 = 2 rows.
  EXPECT_EQ(offsets, 7u);
  EXPECT_EQ(cm_->mesh.element_count(), 2 * stations * (offsets - 1));
}

TEST_F(CoastalMeshTest, ShoreNodesAreAtOffsetZero) {
  ASSERT_EQ(cm_->shore_nodes.size(), cm_->stations.size());
  for (std::size_t s = 0; s < cm_->stations.size(); ++s) {
    const NodeId shore = cm_->shore_nodes[s];
    EXPECT_EQ(cm_->offset_of_node[shore], 0.0);
    EXPECT_EQ(cm_->station_of_node[shore], s);
    EXPECT_EQ(cm_->mesh.node(shore).kind, NodeKind::kShore);
    EXPECT_NEAR(geo::distance(cm_->mesh.node(shore).position,
                              cm_->stations[s].position),
                0.0, 1e-9);
  }
}

TEST_F(CoastalMeshTest, OffsetSignsMatchNodeKind) {
  for (NodeId n = 0; n < cm_->mesh.node_count(); ++n) {
    const double offset = cm_->offset_of_node[n];
    const NodeKind kind = cm_->mesh.node(n).kind;
    if (offset < 0.0) {
      EXPECT_EQ(kind, NodeKind::kOcean);
    } else if (offset == 0.0) {
      EXPECT_EQ(kind, NodeKind::kShore);
    } else {
      EXPECT_EQ(kind, NodeKind::kLand);
    }
  }
}

TEST_F(CoastalMeshTest, OceanNodesAreMostlyBelowSeaLevel) {
  std::size_t ocean = 0;
  std::size_t below = 0;
  for (NodeId n = 0; n < cm_->mesh.node_count(); ++n) {
    if (cm_->offset_of_node[n] < -2000.0) {
      ++ocean;
      if (cm_->mesh.node(n).elevation_m < 0.0) ++below;
    }
  }
  ASSERT_GT(ocean, 0u);
  // Concave stretches (bays, the harbor) can put a far "offshore" node over
  // the opposite shore; the vast majority must still be wet.
  EXPECT_GT(static_cast<double>(below) / static_cast<double>(ocean), 0.85);
}

TEST_F(CoastalMeshTest, BandWrapsAroundTheIsland) {
  // The first and last station columns must be connected through elements.
  const NodeId first_shore = cm_->shore_nodes.front();
  const NodeId last_shore = cm_->shore_nodes.back();
  const auto& nbrs = cm_->mesh.neighbors(last_shore);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), first_shore), nbrs.end());
}

TEST(CoastalBuilder, Validation) {
  const auto oahu = terrain::make_oahu_terrain();
  CoastalMeshConfig bad;
  bad.shore_spacing_m = -1.0;
  EXPECT_THROW(build_coastal_mesh(*oahu, bad), std::invalid_argument);
  CoastalMeshConfig bad2;
  bad2.offshore_extent_m = 0.0;
  EXPECT_THROW(build_coastal_mesh(*oahu, bad2), std::invalid_argument);
}

// ---------------------------------------------------------------- fields

TEST(Field, SmoothPassIsConservativeAndBounded) {
  const TriMesh mesh = square_mesh();
  const NodeField f = {0.0, 10.0, 0.0, 10.0};
  const NodeField smoothed =
      smooth_pass(mesh, f, [](NodeId) { return true; });
  for (const double v : smoothed) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(Field, SmoothPassConstantFieldIsFixedPoint) {
  const TriMesh mesh = square_mesh();
  const NodeField f(mesh.node_count(), 4.2);
  const NodeField smoothed =
      smooth_pass(mesh, f, [](NodeId) { return true; });
  for (const double v : smoothed) EXPECT_DOUBLE_EQ(v, 4.2);
}

TEST(Field, SmoothPassRespectsPredicate) {
  const TriMesh mesh = square_mesh();
  const NodeField f = {0.0, 10.0, 0.0, 10.0};
  const NodeField smoothed =
      smooth_pass(mesh, f, [](NodeId n) { return n == 0; });
  EXPECT_NE(smoothed[0], f[0]);
  EXPECT_EQ(smoothed[1], f[1]);
  EXPECT_EQ(smoothed[2], f[2]);
  EXPECT_EQ(smoothed[3], f[3]);
}

TEST_F(CoastalMeshTest, AverageAndExtendCopiesShoreValuesInland) {
  NodeField wse(cm_->mesh.node_count(), 0.0);
  // Seed a nontrivial field: value depends on station index.
  for (NodeId n = 0; n < cm_->mesh.node_count(); ++n) {
    wse[n] = static_cast<double>(cm_->station_of_node[n] % 7);
  }
  const NodeField fixed = shoreline_average_and_extend(*cm_, wse, 0.0, 0);
  // With zero passes, onshore nodes must exactly equal their station's
  // shoreline value.
  for (NodeId n = 0; n < cm_->mesh.node_count(); ++n) {
    if (cm_->offset_of_node[n] > 0.0) {
      const NodeId shore = cm_->shore_nodes[cm_->station_of_node[n]];
      EXPECT_DOUBLE_EQ(fixed[n], fixed[shore]);
    } else {
      EXPECT_DOUBLE_EQ(fixed[n], wse[n]);
    }
  }
}

TEST_F(CoastalMeshTest, AverageAndExtendSmoothsCoarseArtifacts) {
  // The paper's motivating artifact: 1.5 m next to 0 m on a coarse mesh.
  NodeField wse(cm_->mesh.node_count(), 0.0);
  for (std::size_t s = 0; s < cm_->stations.size(); ++s) {
    wse[cm_->shore_nodes[s]] = (s % 2 == 0) ? 1.5 : 0.0;
  }
  const NodeField fixed = shoreline_average_and_extend(*cm_, wse, 100.0, 3);
  double max_jump = 0.0;
  for (std::size_t s = 1; s < cm_->stations.size(); ++s) {
    max_jump = std::max(max_jump, std::abs(fixed[cm_->shore_nodes[s]] -
                                           fixed[cm_->shore_nodes[s - 1]]));
  }
  EXPECT_LT(max_jump, 0.75);  // raw alternation jumps by 1.5
}

TEST(Field, Validation) {
  const TriMesh mesh = square_mesh();
  NodeField wrong(2);
  EXPECT_THROW(smooth_pass(mesh, wrong, [](NodeId) { return true; }),
               std::invalid_argument);
  EXPECT_THROW(field_min({}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(field_min({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(field_max({3.0, 1.0, 2.0}), 3.0);
}

// --------------------------------------------------- hot-path kernels

TEST_F(CoastalMeshTest, SmoothPassKernelBitEqualToPredicateForm) {
  util::Rng rng(7, "smooth-kernel");
  NodeField field(cm_->mesh.node_count());
  for (double& v : field) v = rng.uniform(-1.0, 3.0);

  const double band = 2000.0;
  const auto near_shore = [&](NodeId n) {
    return std::abs(cm_->offset_of_node[n]) <= band;
  };
  std::vector<NodeId> affected;
  for (NodeId n = 0; n < cm_->mesh.node_count(); ++n) {
    if (near_shore(n)) affected.push_back(n);
  }

  const NodeField legacy = smooth_pass(cm_->mesh, field, near_shore);
  NodeField kernel;
  smooth_pass(cm_->mesh, field, kernel, affected);
  ASSERT_EQ(kernel.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(kernel[i], legacy[i]) << "node " << i;
  }

  EXPECT_THROW(smooth_pass(cm_->mesh, field, field, affected),
               std::invalid_argument);
}

TEST_F(CoastalMeshTest, ShorelinePlanInPlaceBitEqualToAllocatingForm) {
  util::Rng rng(11, "plan");
  NodeField field(cm_->mesh.node_count());
  for (double& v : field) v = rng.uniform(0.0, 2.5);

  for (const int passes : {0, 1, 3}) {
    const NodeField expected =
        shoreline_average_and_extend(*cm_, field, 2000.0, passes);
    const ShorelinePlan plan = make_shoreline_plan(*cm_, 2000.0, passes);
    EXPECT_EQ(plan.passes, passes);
    NodeField in_place = field;
    NodeField scratch;
    shoreline_average_and_extend(*cm_, plan, in_place, scratch);
    ASSERT_EQ(in_place.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(in_place[i], expected[i]) << "passes " << passes
                                          << " node " << i;
    }
  }
  EXPECT_THROW(make_shoreline_plan(*cm_, 1000.0, -1), std::invalid_argument);
}

TEST(TriMesh, CsrRowsAreConsistentWithElements) {
  const TriMesh mesh = square_mesh();
  // Every element must appear in the incidence row of each of its nodes.
  for (ElementId e = 0; e < mesh.element_count(); ++e) {
    for (const NodeId n : mesh.element(e).nodes) {
      const auto row = mesh.node_elements(n);
      EXPECT_NE(std::find(row.begin(), row.end(), e), row.end());
    }
  }
  // Diagonal nodes 0 and 2 touch both elements; 1 and 3 touch one.
  EXPECT_EQ(mesh.node_elements(0).size(), 2u);
  EXPECT_EQ(mesh.node_elements(1).size(), 1u);
  EXPECT_EQ(mesh.node_elements(2).size(), 2u);
  EXPECT_EQ(mesh.node_elements(3).size(), 1u);
  EXPECT_EQ(mesh.node_elements(0)[0], 0u);
  EXPECT_THROW(mesh.node_elements(99), std::out_of_range);
  EXPECT_THROW(mesh.neighbors(99), std::out_of_range);
}

}  // namespace
}  // namespace ct::mesh
