// End-to-end validation of Table I from protocol behaviour: for every
// paper configuration, every threat scenario, and every flood pattern of
// its sites, the discrete-event simulation's observed operational state
// must equal the analytic evaluator's classification. This is the "the
// rules in the paper actually follow from how the protocols behave" test.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/pipeline.h"
#include "scada/configuration.h"
#include "sim/scada_des.h"
#include "threat/attacker.h"
#include "threat/scenario.h"

namespace ct::sim {
namespace {

using scada::Configuration;
using threat::AttackerCapability;
using threat::OperationalState;
using threat::SiteStatus;
using threat::SystemState;
using threat::ThreatScenario;

/// Reduced timeline so the full sweep stays fast while every phase (detect,
/// cold activation, settle) still fits.
DesOptions fast_options() {
  DesOptions options;
  options.horizon_s = 600.0;
  options.attack_time_s = 120.0;
  options.settle_window_s = 150.0;
  options.orange_gap_s = 70.0;
  options.request_interval_s = 2.0;
  options.pb.activation_delay_s = 120.0;
  options.pb.controller_outage_threshold_s = 15.0;
  options.pb.controller_check_interval_s = 3.0;
  options.bft.activation_delay_s = 120.0;
  options.bft.view_timeout_s = 8.0;
  options.bft.recovery_period_s = 60.0;
  options.bft.recovery_duration_s = 10.0;
  return options;
}

struct DesCase {
  const char* label;
  Configuration config;
};

class DesMatchesTableOne : public ::testing::TestWithParam<DesCase> {};

TEST_P(DesMatchesTableOne, ObservedStateEqualsAnalyticState) {
  const Configuration& config = GetParam().config;
  const ScadaDes des(config, fast_options());
  const threat::GreedyWorstCaseAttacker attacker;

  const std::size_t n = config.sites.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<bool> flooded(n);
    SystemState base;
    base.intrusions.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      flooded[i] = (mask >> i) & 1;
      base.site_status.push_back(flooded[i] ? SiteStatus::kFlooded
                                            : SiteStatus::kUp);
    }
    for (const ThreatScenario scenario : threat::all_scenarios()) {
      const AttackerCapability capability = threat::capability_for(scenario);
      const SystemState attacked = attacker.attack(config, base, capability);
      const OperationalState analytic = core::evaluate(config, attacked);
      const DesOutcome observed = des.run(attacked);
      EXPECT_EQ(observed.observed, analytic)
          << GetParam().label << " mask=" << mask << " scenario "
          << threat::scenario_name(scenario)
          << " (availability=" << observed.steady_availability
          << ", outage=" << observed.max_outage_s
          << ", violated=" << observed.safety_violated << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, DesMatchesTableOne,
    ::testing::Values(DesCase{"c2", scada::make_config_2("p")},
                      DesCase{"c22", scada::make_config_2_2("p", "b")},
                      DesCase{"c6", scada::make_config_6("p")},
                      DesCase{"c66", scada::make_config_6_6("p", "b")},
                      DesCase{"c666", scada::make_config_6_6_6("p", "b", "d")}),
    [](const ::testing::TestParamInfo<DesCase>& info) {
      return info.param.label;
    });

TEST(ScadaDes, FloodMaskConvenienceOverloadMatchesExplicitState) {
  const Configuration config = scada::make_config_6_6("p", "b");
  const ScadaDes des(config, fast_options());
  const DesOutcome a =
      des.run({false, false}, threat::capability_for(
                                  ThreatScenario::kHurricaneIsolation));
  SystemState base;
  base.site_status = {SiteStatus::kUp, SiteStatus::kUp};
  base.intrusions = {0, 0};
  const SystemState attacked = threat::GreedyWorstCaseAttacker{}.attack(
      config, base, {0, 1});
  const DesOutcome b = des.run(attacked);
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.observed, OperationalState::kOrange);
}

TEST(ScadaDes, ClientRetransmissionsKeepAnalyticColors) {
  // Client retransmission (capped backoff + seeded jitter) is a liveness
  // aid under loss — it must never shift the observed Table-I color.
  DesOptions options = fast_options();
  options.request_retransmit_limit = 3;
  options.net.loss_probability = 0.03;
  options.net.latency_jitter_s = 0.010;
  options.net.impairment_seed = 11;
  const threat::GreedyWorstCaseAttacker attacker;
  for (const Configuration& config :
       {scada::make_config_2_2("p", "b"), scada::make_config_6("p")}) {
    const ScadaDes des(config, options);
    for (const ThreatScenario scenario : threat::all_scenarios()) {
      SystemState base;
      base.intrusions.assign(config.sites.size(), 0);
      base.site_status.assign(config.sites.size(), SiteStatus::kUp);
      const SystemState attacked = attacker.attack(
          config, base, threat::capability_for(scenario));
      const OperationalState analytic = core::evaluate(config, attacked);
      const DesOutcome observed = des.run(attacked);
      EXPECT_EQ(observed.observed, analytic)
          << config.name << " scenario " << threat::scenario_name(scenario)
          << " with retransmit limit 3";
      EXPECT_TRUE(observed.invariant_violations.empty());
    }
  }
}

TEST(ScadaDes, TraceCapturesAttackEvents) {
  DesOptions options = fast_options();
  options.tracing = true;
  const Configuration config = scada::make_config_2("p");
  const ScadaDes des(config, options);
  const DesOutcome outcome =
      des.run({false}, threat::capability_for(
                           ThreatScenario::kHurricaneIntrusion));
  EXPECT_EQ(outcome.observed, OperationalState::kGray);
  bool saw_compromise = false;
  for (const std::string& line : outcome.trace) {
    if (line.find("COMPROMISED") != std::string::npos) saw_compromise = true;
  }
  EXPECT_TRUE(saw_compromise);
  EXPECT_GT(outcome.events, 0u);
  EXPECT_GT(outcome.messages, 0u);
}

TEST(ScadaDes, EventLimitTruncationIsReported) {
  DesOptions options = fast_options();
  options.event_limit = 500;  // far too small for a full run
  const Configuration config = scada::make_config_2("p");
  const ScadaDes des(config, options);
  ::testing::internal::CaptureStderr();
  const DesOutcome outcome =
      des.run({false}, threat::capability_for(ThreatScenario::kHurricane));
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(outcome.truncated);
  // The warning names the configuration so a sweep log points at the
  // offending run.
  EXPECT_NE(stderr_text.find("event limit"), std::string::npos)
      << stderr_text;
  EXPECT_NE(stderr_text.find("'2'"), std::string::npos) << stderr_text;
}

TEST(ScadaDes, NoTruncationWarningOnCleanRun) {
  const Configuration config = scada::make_config_2("p");
  const ScadaDes des(config, fast_options());
  ::testing::internal::CaptureStderr();
  const DesOutcome outcome =
      des.run({false}, threat::capability_for(ThreatScenario::kHurricane));
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(outcome.truncated);
  EXPECT_EQ(stderr_text.find("event limit"), std::string::npos)
      << stderr_text;
}

/// Satellite robustness sweep: with loss, jitter, duplication and bounded
/// reordering all active at once, the observed color still matches the
/// analytic evaluator across impairment seeds for every scenario.
class CombinedImpairmentDes
    : public ::testing::TestWithParam<scada::Configuration> {};

TEST_P(CombinedImpairmentDes, ColorsMatchAnalyticAcrossSeeds) {
  const Configuration& config = GetParam();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    DesOptions options = fast_options();
    options.net.loss_probability = 0.03;
    options.net.latency_jitter_s = 0.010;
    options.net.duplicate_probability = 0.05;
    options.net.reorder_probability = 0.10;
    options.net.reorder_window_s = 0.05;
    options.net.impairment_seed = seed;
    const ScadaDes des(config, options);
    const threat::GreedyWorstCaseAttacker attacker;
    const std::size_t n = config.sites.size();
    SystemState base;
    base.site_status.assign(n, SiteStatus::kUp);
    base.intrusions.assign(n, 0);
    for (const ThreatScenario scenario : threat::all_scenarios()) {
      const SystemState attacked =
          attacker.attack(config, base, threat::capability_for(scenario));
      const OperationalState analytic = core::evaluate(config, attacked);
      const DesOutcome observed = des.run(attacked);
      EXPECT_EQ(observed.observed, analytic)
          << config.name << " seed " << seed << " scenario "
          << threat::scenario_name(scenario);
      EXPECT_TRUE(observed.invariant_violations.empty())
          << config.name << " seed " << seed << ": "
          << observed.invariant_violations.front();
      // Duplication was genuinely active.
      EXPECT_GT(observed.duplicates, 0u);
      EXPECT_GT(observed.drops.loss, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, CombinedImpairmentDes,
    ::testing::Values(scada::make_config_2_2("p", "b"),
                      scada::make_config_6_6("p", "b")),
    [](const ::testing::TestParamInfo<scada::Configuration>& info) {
      return info.param.name == "2-2" ? "c22" : "c66";
    });

TEST(ScadaDes, Validation) {
  Configuration empty;
  empty.name = "empty";
  EXPECT_THROW(ScadaDes{empty}, std::invalid_argument);
  const ScadaDes des(scada::make_config_2("p"), fast_options());
  EXPECT_THROW(des.run({true, false}, AttackerCapability{}),
               std::invalid_argument);
  SystemState bad;
  EXPECT_THROW(des.run(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ct::sim
