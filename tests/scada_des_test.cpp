// End-to-end validation of Table I from protocol behaviour: for every
// paper configuration, every threat scenario, and every flood pattern of
// its sites, the discrete-event simulation's observed operational state
// must equal the analytic evaluator's classification. This is the "the
// rules in the paper actually follow from how the protocols behave" test.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/pipeline.h"
#include "scada/configuration.h"
#include "sim/scada_des.h"
#include "threat/attacker.h"
#include "threat/scenario.h"

namespace ct::sim {
namespace {

using scada::Configuration;
using threat::AttackerCapability;
using threat::OperationalState;
using threat::SiteStatus;
using threat::SystemState;
using threat::ThreatScenario;

/// Reduced timeline so the full sweep stays fast while every phase (detect,
/// cold activation, settle) still fits.
DesOptions fast_options() {
  DesOptions options;
  options.horizon_s = 600.0;
  options.attack_time_s = 120.0;
  options.settle_window_s = 150.0;
  options.orange_gap_s = 70.0;
  options.request_interval_s = 2.0;
  options.pb.activation_delay_s = 120.0;
  options.pb.controller_outage_threshold_s = 15.0;
  options.pb.controller_check_interval_s = 3.0;
  options.bft.activation_delay_s = 120.0;
  options.bft.view_timeout_s = 8.0;
  options.bft.recovery_period_s = 60.0;
  options.bft.recovery_duration_s = 10.0;
  return options;
}

struct DesCase {
  const char* label;
  Configuration config;
};

class DesMatchesTableOne : public ::testing::TestWithParam<DesCase> {};

TEST_P(DesMatchesTableOne, ObservedStateEqualsAnalyticState) {
  const Configuration& config = GetParam().config;
  const ScadaDes des(config, fast_options());
  const threat::GreedyWorstCaseAttacker attacker;

  const std::size_t n = config.sites.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<bool> flooded(n);
    SystemState base;
    base.intrusions.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      flooded[i] = (mask >> i) & 1;
      base.site_status.push_back(flooded[i] ? SiteStatus::kFlooded
                                            : SiteStatus::kUp);
    }
    for (const ThreatScenario scenario : threat::all_scenarios()) {
      const AttackerCapability capability = threat::capability_for(scenario);
      const SystemState attacked = attacker.attack(config, base, capability);
      const OperationalState analytic = core::evaluate(config, attacked);
      const DesOutcome observed = des.run(attacked);
      EXPECT_EQ(observed.observed, analytic)
          << GetParam().label << " mask=" << mask << " scenario "
          << threat::scenario_name(scenario)
          << " (availability=" << observed.steady_availability
          << ", outage=" << observed.max_outage_s
          << ", violated=" << observed.safety_violated << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, DesMatchesTableOne,
    ::testing::Values(DesCase{"c2", scada::make_config_2("p")},
                      DesCase{"c22", scada::make_config_2_2("p", "b")},
                      DesCase{"c6", scada::make_config_6("p")},
                      DesCase{"c66", scada::make_config_6_6("p", "b")},
                      DesCase{"c666", scada::make_config_6_6_6("p", "b", "d")}),
    [](const ::testing::TestParamInfo<DesCase>& info) {
      return info.param.label;
    });

TEST(ScadaDes, FloodMaskConvenienceOverloadMatchesExplicitState) {
  const Configuration config = scada::make_config_6_6("p", "b");
  const ScadaDes des(config, fast_options());
  const DesOutcome a =
      des.run({false, false}, threat::capability_for(
                                  ThreatScenario::kHurricaneIsolation));
  SystemState base;
  base.site_status = {SiteStatus::kUp, SiteStatus::kUp};
  base.intrusions = {0, 0};
  const SystemState attacked = threat::GreedyWorstCaseAttacker{}.attack(
      config, base, {0, 1});
  const DesOutcome b = des.run(attacked);
  EXPECT_EQ(a.observed, b.observed);
  EXPECT_EQ(a.observed, OperationalState::kOrange);
}

TEST(ScadaDes, TraceCapturesAttackEvents) {
  DesOptions options = fast_options();
  options.tracing = true;
  const Configuration config = scada::make_config_2("p");
  const ScadaDes des(config, options);
  const DesOutcome outcome =
      des.run({false}, threat::capability_for(
                           ThreatScenario::kHurricaneIntrusion));
  EXPECT_EQ(outcome.observed, OperationalState::kGray);
  bool saw_compromise = false;
  for (const std::string& line : outcome.trace) {
    if (line.find("COMPROMISED") != std::string::npos) saw_compromise = true;
  }
  EXPECT_TRUE(saw_compromise);
  EXPECT_GT(outcome.events, 0u);
  EXPECT_GT(outcome.messages, 0u);
}

TEST(ScadaDes, Validation) {
  Configuration empty;
  empty.name = "empty";
  EXPECT_THROW(ScadaDes{empty}, std::invalid_argument);
  const ScadaDes des(scada::make_config_2("p"), fast_options());
  EXPECT_THROW(des.run({true, false}, AttackerCapability{}),
               std::invalid_argument);
  SystemState bad;
  EXPECT_THROW(des.run(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ct::sim
