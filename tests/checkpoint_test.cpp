// Crash-consistency tests for the sweep checkpoint layer (PR 7):
//
//  * SweepProgress range algebra (merge, coalesce, overlap, missing);
//  * journal round-trips, torn-tail drop, interior-corruption detection,
//    stale-digest refusal, snapshot compaction, tmp-file GC;
//  * run_resumable equivalence with the guarded paths, interrupt + resume
//    bit-identity across --jobs, resume under CT_FAULT (quarantined
//    indices must not be re-counted), knob-change cold start;
//  * the self-exec crash matrix: a child process is killed by CT_CRASH at
//    EVERY checkpoint site (before / torn / after), relaunched with
//    resume, and must reproduce the uninterrupted run exactly.
//
// This binary supplies its own main(): when invoked with --crash-child it
// runs the harness workload instead of gtest (the child is this same
// executable re-exec'd via /proc/self/exe).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "runtime/checkpoint.h"
#include "runtime/ensemble_runner.h"
#include "runtime/fault_profile.h"
#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "util/error.h"
#include "util/fsio.h"

namespace ct {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 20220627;

surge::RealizationEngine make_engine(std::uint64_t seed = kSeed) {
  surge::RealizationConfig config;
  config.base_seed = seed;
  return surge::RealizationEngine(terrain::make_oahu_terrain(),
                                  scada::oahu_topology().exposed_assets(),
                                  config);
}

/// Cheap deterministic 2-series classifier shared by the in-process tests
/// and the crash-harness child (pure function of the realization).
int classify(std::size_t series, const surge::HurricaneRealization& r) {
  if (series == 0) {
    std::size_t flooded = 0;
    for (const surge::AssetImpact& impact : r.impacts) {
      if (impact.failed) ++flooded;
    }
    return static_cast<int>(flooded % 4);
  }
  if (r.peak_wind_ms > 45.0) return 3;
  if (r.peak_wind_ms > 35.0) return 2;
  if (r.peak_wind_ms > 25.0) return 1;
  return 0;
}

runtime::EnsembleOptions make_options(unsigned jobs,
                                      const std::string& fault = "none") {
  runtime::EnsembleOptions options;
  options.jobs = jobs;
  options.chunk = 7;  // ragged chunking: exercises the merge order
  options.cache = false;
  options.fault_spec = fault;  // "none", not "": ignore ambient CT_FAULT
  return options;
}

runtime::CheckpointOptions make_ckpt(const std::string& dir,
                                     std::size_t interval = 8,
                                     std::size_t snapshot_every = 16) {
  runtime::CheckpointOptions ckpt;
  ckpt.dir = dir;
  ckpt.interval = interval;
  ckpt.snapshot_every = snapshot_every;
  ckpt.crash_spec = "none";  // in-process tests must never _exit
  return ckpt;
}

/// Scratch directory per test, wiped on construction.
std::string scratch_dir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("ct-checkpoint-test-" + name)).string();
  fs::remove_all(dir);
  return dir;
}

runtime::SweepSpec unit_spec(std::string digest = "unit-digest") {
  runtime::SweepSpec spec;
  spec.digest = std::move(digest);
  spec.count = 100;
  spec.series = {"series-a", "series-b"};
  return spec;
}

/// Fabricates the deterministic delta of slice [begin, end) and folds it
/// into `progress` the way run_resumable does.
std::vector<runtime::SeriesCounts> fold_slice(runtime::SweepProgress& progress,
                                              std::uint64_t begin,
                                              std::uint64_t end) {
  std::vector<runtime::SeriesCounts> delta(2, runtime::SeriesCounts{});
  for (std::uint64_t i = begin; i < end; ++i) {
    ++delta[0][i % 4];
    ++delta[1][(i / 2) % 4];
  }
  EXPECT_TRUE(progress.merge_range(begin, end));
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t c = 0; c < 4; ++c) progress.series[s][c] += delta[s][c];
  }
  return delta;
}

void expect_progress_eq(const runtime::SweepProgress& a,
                        const runtime::SweepProgress& b) {
  EXPECT_EQ(a.done, b.done);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    EXPECT_EQ(a.series[s], b.series[s]) << "series " << s;
  }
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].realization, b.failures[i].realization);
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].attempts, b.failures[i].attempts);
    EXPECT_EQ(a.failures[i].code, b.failures[i].code);
    EXPECT_EQ(a.failures[i].origin, b.failures[i].origin);
    EXPECT_EQ(a.failures[i].message, b.failures[i].message);
  }
  EXPECT_EQ(a.retries, b.retries);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

// --- SweepProgress ----------------------------------------------------------

TEST(SweepProgressTest, MergeCoalesceOverlapAndMissing) {
  runtime::SweepProgress p;
  p.series.assign(1, runtime::SeriesCounts{});
  EXPECT_TRUE(p.merge_range(0, 10));
  EXPECT_TRUE(p.merge_range(20, 30));
  EXPECT_EQ(p.done.size(), 2u);
  // Touching ranges coalesce (consecutive slices), from either side.
  EXPECT_TRUE(p.merge_range(10, 15));
  EXPECT_EQ(p.done.size(), 2u);
  EXPECT_EQ(p.done[0], (std::pair<std::uint64_t, std::uint64_t>{0, 15}));
  EXPECT_TRUE(p.merge_range(15, 20));  // bridges both neighbors
  EXPECT_EQ(p.done.size(), 1u);
  EXPECT_EQ(p.done[0], (std::pair<std::uint64_t, std::uint64_t>{0, 30}));
  EXPECT_EQ(p.completed(), 30u);
  // Overlap is refused with the state unchanged.
  EXPECT_FALSE(p.merge_range(29, 31));
  EXPECT_FALSE(p.merge_range(0, 1));
  EXPECT_FALSE(p.merge_range(5, 5));  // empty
  EXPECT_EQ(p.done.size(), 1u);
  // The complement drives resume scheduling.
  EXPECT_TRUE(p.merge_range(40, 50));
  const auto missing = p.missing(60);
  ASSERT_EQ(missing.size(), 2u);
  EXPECT_EQ(missing[0], (std::pair<std::uint64_t, std::uint64_t>{30, 40}));
  EXPECT_EQ(missing[1], (std::pair<std::uint64_t, std::uint64_t>{50, 60}));
  EXPECT_TRUE(runtime::SweepProgress{}.missing(0).empty());
}

// --- CrashProfile grammar ---------------------------------------------------

TEST(CrashProfileTest, ParseGrammar) {
  EXPECT_FALSE(runtime::CrashProfile::parse("").enabled());
  EXPECT_FALSE(runtime::CrashProfile::parse("none").enabled());
  EXPECT_FALSE(runtime::CrashProfile::parse("off").enabled());
  const runtime::CrashProfile torn = runtime::CrashProfile::parse("torn:at=3");
  EXPECT_TRUE(torn.enabled());
  EXPECT_EQ(torn.point, runtime::CrashPoint::kTornWrite);
  EXPECT_EQ(torn.at, 3u);
  EXPECT_TRUE(torn.fires(runtime::CrashPoint::kTornWrite, 3));
  EXPECT_FALSE(torn.fires(runtime::CrashPoint::kTornWrite, 2));
  EXPECT_FALSE(torn.fires(runtime::CrashPoint::kBeforeWrite, 3));
  EXPECT_EQ(runtime::CrashProfile::parse("before:at=1").point,
            runtime::CrashPoint::kBeforeWrite);
  EXPECT_EQ(runtime::CrashProfile::parse("after:at=9").point,
            runtime::CrashPoint::kAfterWrite);
  EXPECT_THROW(runtime::CrashProfile::parse("explode:at=1"), util::Error);
  EXPECT_THROW(runtime::CrashProfile::parse("torn"), util::Error);
  EXPECT_THROW(runtime::CrashProfile::parse("torn:at=0"), util::Error);
  EXPECT_THROW(runtime::CrashProfile::parse("torn:every=3"), util::Error);
}

// --- journal unit tests -----------------------------------------------------

TEST(SweepJournalTest, RoundTripRestoresEverything) {
  const std::string dir = scratch_dir("roundtrip");
  const runtime::SweepSpec spec = unit_spec();
  runtime::SweepProgress p;
  p.series.assign(2, runtime::SeriesCounts{});
  {
    runtime::SweepJournal j(make_ckpt(dir, 10, 100), spec);
    ASSERT_TRUE(j.begin(p, true));
    for (const auto& [b, e] : {std::pair<std::uint64_t, std::uint64_t>{0, 10},
                               {10, 20},
                               {20, 30}}) {
      const auto delta = fold_slice(p, b, e);
      // Slice 2 carries a quarantine record with hostile content: the
      // framing must survive newlines, spaces and percent signs.
      std::vector<runtime::FailureRecord> failures;
      if (b == 10) {
        runtime::FailureRecord f;
        f.realization = 13;
        f.seed = kSeed;
        f.attempts = 3;
        f.code = util::ErrorCode::kFaultInjected;
        f.origin = "fault injection";
        f.message = "bad\nmessage with spaces and 100% chaos";
        failures.push_back(f);
        p.failures.push_back(std::move(f));
        p.retries += 2;
      }
      ASSERT_TRUE(j.append(b, e, delta, failures, b == 10 ? 2 : 0, p));
    }
    j.close();  // interrupted, not finished: files stay
  }
  runtime::SweepJournal j2(make_ckpt(dir, 10, 100), spec);
  runtime::SweepProgress restored;
  const runtime::ResumeInfo info = j2.load(restored);
  EXPECT_EQ(info.status, runtime::ResumeStatus::kResumed);
  EXPECT_EQ(info.restored, 30u);
  EXPECT_FALSE(info.torn_tail_dropped);
  expect_progress_eq(restored, p);
}

TEST(SweepJournalTest, TornTailIsDroppedSilently) {
  const std::string dir = scratch_dir("torn");
  const runtime::SweepSpec spec = unit_spec();
  runtime::SweepProgress p;
  p.series.assign(2, runtime::SeriesCounts{});
  std::string journal_path;
  {
    runtime::SweepJournal j(make_ckpt(dir, 10, 100), spec);
    ASSERT_TRUE(j.begin(p, true));
    for (std::uint64_t b = 0; b < 30; b += 10) {
      ASSERT_TRUE(j.append(b, b + 10, fold_slice(p, b, b + 10), {}, 0, p));
    }
    journal_path = j.journal_path();
  }
  // Chop the final record mid-checksum: the only shape a crash can leave.
  std::string contents = read_file(journal_path);
  ASSERT_GT(contents.size(), 10u);
  contents.resize(contents.size() - 10);
  write_file(journal_path, contents);

  runtime::SweepJournal j2(make_ckpt(dir, 10, 100), spec);
  runtime::SweepProgress restored;
  const runtime::ResumeInfo info = j2.load(restored);
  EXPECT_EQ(info.status, runtime::ResumeStatus::kResumed);
  EXPECT_TRUE(info.torn_tail_dropped);
  EXPECT_EQ(info.restored, 20u);  // records 1-2 kept, torn record 3 dropped
  ASSERT_EQ(restored.done.size(), 1u);
  EXPECT_EQ(restored.done[0],
            (std::pair<std::uint64_t, std::uint64_t>{0, 20}));
}

TEST(SweepJournalTest, InteriorBitFlipIsTypedCorruptionAndColdStarts) {
  const std::string dir = scratch_dir("bitflip");
  const runtime::SweepSpec spec = unit_spec();
  runtime::SweepProgress p;
  p.series.assign(2, runtime::SeriesCounts{});
  std::string journal_path;
  {
    runtime::SweepJournal j(make_ckpt(dir, 10, 100), spec);
    ASSERT_TRUE(j.begin(p, true));
    for (std::uint64_t b = 0; b < 30; b += 10) {
      ASSERT_TRUE(j.append(b, b + 10, fold_slice(p, b, b + 10), {}, 0, p));
    }
    journal_path = j.journal_path();
  }
  // Flip one digit inside the FIRST record's counts line. Complete valid
  // records follow, so this cannot be a torn tail — it must be reported
  // as corruption (kCheckpointCorrupt), not silently replayed or dropped.
  std::string contents = read_file(journal_path);
  const std::size_t k = contents.find("\nK ");
  ASSERT_NE(k, std::string::npos);
  const std::size_t digit = contents.find_first_of("0123456789", k + 1);
  ASSERT_NE(digit, std::string::npos);
  contents[digit] = contents[digit] == '9' ? '8' : '9';
  write_file(journal_path, contents);

  runtime::SweepJournal j2(make_ckpt(dir, 10, 100), spec);
  runtime::SweepProgress restored;
  const runtime::ResumeInfo info = j2.load(restored);
  EXPECT_EQ(info.status, runtime::ResumeStatus::kCorrupt);
  EXPECT_NE(info.detail.find("checkpoint-corrupt"), std::string::npos)
      << info.detail;
  EXPECT_EQ(info.restored, 0u);  // cold start: nothing salvaged
  EXPECT_EQ(restored.completed(), 0u);
}

TEST(SweepJournalTest, DifferentDigestOrSeriesIsStaleNotCorrupt) {
  const std::string dir = scratch_dir("stale");
  runtime::SweepProgress p;
  p.series.assign(2, runtime::SeriesCounts{});
  {
    runtime::SweepJournal j(make_ckpt(dir), unit_spec("digest-one"));
    ASSERT_TRUE(j.begin(p, true));
    ASSERT_TRUE(j.append(0, 10, fold_slice(p, 0, 10), {}, 0, p));
  }
  {
    // Same directory, different sweep digest (changed knobs).
    runtime::SweepJournal j(make_ckpt(dir), unit_spec("digest-two"));
    runtime::SweepProgress restored;
    // Different digest => different file name => plain cold start.
    EXPECT_EQ(j.load(restored).status, runtime::ResumeStatus::kColdStart);
  }
  {
    // Same digest but a different series set: the header refuses it.
    runtime::SweepSpec spec = unit_spec("digest-one");
    spec.series = {"series-a", "series-CHANGED"};
    runtime::SweepJournal j(make_ckpt(dir), spec);
    runtime::SweepProgress restored;
    const runtime::ResumeInfo info = j.load(restored);
    EXPECT_EQ(info.status, runtime::ResumeStatus::kStale);
    EXPECT_EQ(restored.completed(), 0u);
  }
}

TEST(SweepJournalTest, SnapshotCompactionBoundsReplayAndRestoresAll) {
  const std::string dir = scratch_dir("compact");
  const runtime::SweepSpec spec = unit_spec();
  runtime::SweepProgress p;
  p.series.assign(2, runtime::SeriesCounts{});
  std::string journal_path, snapshot_path;
  {
    runtime::SweepJournal j(make_ckpt(dir, 10, /*snapshot_every=*/2), spec);
    ASSERT_TRUE(j.begin(p, true));
    for (std::uint64_t b = 0; b < 50; b += 10) {
      ASSERT_TRUE(j.append(b, b + 10, fold_slice(p, b, b + 10), {}, 0, p));
    }
    journal_path = j.journal_path();
    snapshot_path = j.snapshot_path();
  }
  // 5 records, compaction every 2: snapshots after records 2 and 4, so the
  // journal holds ONLY the one record since — replay length is bounded.
  EXPECT_TRUE(fs::exists(snapshot_path));
  const std::string journal = read_file(journal_path);
  std::size_t records = 0;
  for (std::size_t at = journal.find("R ", 0); at != std::string::npos;
       at = journal.find("\nR ", at + 1)) {
    ++records;
  }
  EXPECT_EQ(records, 1u);

  runtime::SweepJournal j2(make_ckpt(dir, 10, 2), spec);
  runtime::SweepProgress restored;
  const runtime::ResumeInfo info = j2.load(restored);
  EXPECT_EQ(info.status, runtime::ResumeStatus::kResumed);
  EXPECT_EQ(info.restored, 50u);
  expect_progress_eq(restored, p);
}

TEST(SweepJournalTest, HalfWrittenSnapshotTmpIsIgnoredAndCollected) {
  const std::string dir = scratch_dir("snaptmp");
  const runtime::SweepSpec spec = unit_spec();
  runtime::SweepProgress p;
  p.series.assign(2, runtime::SeriesCounts{});
  std::string snapshot_path;
  {
    runtime::SweepJournal j(make_ckpt(dir, 10, 100), spec);
    ASSERT_TRUE(j.begin(p, true));
    ASSERT_TRUE(j.append(0, 10, fold_slice(p, 0, 10), {}, 0, p));
    snapshot_path = j.snapshot_path();
  }
  // A crash mid-snapshot leaves a half-written tmp that never renamed.
  write_file(snapshot_path + ".tmp", "ctsnapshot 1 100 2 1 0 0");

  runtime::SweepJournal j2(make_ckpt(dir, 10, 100), spec);
  runtime::SweepProgress restored;
  const runtime::ResumeInfo info = j2.load(restored);
  EXPECT_EQ(info.status, runtime::ResumeStatus::kResumed);
  EXPECT_EQ(info.restored, 10u);
  EXPECT_FALSE(fs::exists(snapshot_path + ".tmp"));  // GC'd
}

TEST(SweepJournalTest, JournalAheadOfMissingSnapshotIsCorrupt) {
  const std::string dir = scratch_dir("epoch");
  const runtime::SweepSpec spec = unit_spec();
  runtime::SweepProgress p;
  p.series.assign(2, runtime::SeriesCounts{});
  std::string snapshot_path;
  {
    runtime::SweepJournal j(make_ckpt(dir, 10, /*snapshot_every=*/1), spec);
    ASSERT_TRUE(j.begin(p, true));
    ASSERT_TRUE(j.append(0, 10, fold_slice(p, 0, 10), {}, 0, p));
    ASSERT_TRUE(j.append(10, 20, fold_slice(p, 10, 20), {}, 0, p));
    snapshot_path = j.snapshot_path();
  }
  // The journal's records are deltas on top of the snapshot; with the
  // snapshot gone they describe unknown state and must not be replayed.
  ASSERT_TRUE(fs::exists(snapshot_path));
  fs::remove(snapshot_path);

  runtime::SweepJournal j2(make_ckpt(dir, 10, 1), spec);
  runtime::SweepProgress restored;
  const runtime::ResumeInfo info = j2.load(restored);
  EXPECT_EQ(info.status, runtime::ResumeStatus::kCorrupt);
  EXPECT_EQ(restored.completed(), 0u);
}

// --- run_resumable ----------------------------------------------------------

constexpr std::size_t kSweepCount = 40;

runtime::SweepSpec sweep_spec(std::string digest = "sweep-digest") {
  runtime::SweepSpec spec;
  spec.digest = std::move(digest);
  spec.count = kSweepCount;
  spec.series = {"cell-a", "cell-b"};
  return spec;
}

std::vector<unsigned> job_counts() {
  std::vector<unsigned> jobs = {1, 2, 8};
  if (const char* env = std::getenv("CT_TEST_JOBS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) jobs.push_back(static_cast<unsigned>(n));
  }
  return jobs;
}

TEST(RunResumableTest, ColdRunMatchesGuardedCountsAtAnyJobs) {
  const surge::RealizationEngine engine = make_engine();
  // Reference: the existing guarded path, one series at a time.
  runtime::EnsembleRunner reference_runner(make_options(1));
  const std::vector<surge::HurricaneRealization> batch =
      reference_runner.generate(engine, kSweepCount);
  std::vector<runtime::EnsembleReport> reference;
  for (std::size_t s = 0; s < 2; ++s) {
    reference.push_back(reference_runner.count_outcomes_guarded(
        batch,
        [s](const surge::HurricaneRealization& r) { return classify(s, r); },
        ""));
  }

  for (const unsigned jobs : job_counts()) {
    runtime::EnsembleRunner runner(make_options(jobs));
    // No checkpoint dir: plain fused sweep.
    const runtime::ResumableReport report = runner.run_resumable(
        engine, sweep_spec(), classify, runtime::CheckpointOptions{});
    ASSERT_EQ(report.series.size(), 2u);
    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(report.executed, kSweepCount);
    EXPECT_EQ(report.checkpoints, 0u);
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_EQ(report.series[s].counts.counts, reference[s].counts.counts)
          << "jobs=" << jobs << " series=" << s;
      EXPECT_EQ(report.series[s].counts.total, reference[s].counts.total);
      EXPECT_TRUE(report.series[s].failures.empty());
    }
  }
}

TEST(RunResumableTest, InterruptAndResumeIsBitIdenticalAcrossJobs) {
  const surge::RealizationEngine engine = make_engine();
  runtime::EnsembleRunner cold_runner(make_options(1));
  const runtime::ResumableReport reference = cold_runner.run_resumable(
      engine, sweep_spec(), classify, runtime::CheckpointOptions{});

  for (const unsigned jobs : job_counts()) {
    const std::string dir =
        scratch_dir("interrupt-jobs" + std::to_string(jobs));
    const runtime::CheckpointOptions ckpt = make_ckpt(dir, 8, 2);

    // Phase 1: cancel once realization 20 is seen. Cancellation is only
    // honored at slice boundaries, so the active slice completes and is
    // flushed — deterministically 24 of 40 indices at interval 8.
    runtime::CancellationToken interrupt;
    runtime::EnsembleRunner partial_runner(make_options(jobs));
    const runtime::ResumableReport partial = partial_runner.run_resumable(
        engine, sweep_spec(),
        [&](std::size_t series, const surge::HurricaneRealization& r) {
          if (r.index >= 20) interrupt.request_cancel();
          return classify(series, r);
        },
        ckpt, &interrupt);
    ASSERT_TRUE(partial.interrupted) << "jobs=" << jobs;
    EXPECT_LT(partial.executed, kSweepCount);
    EXPECT_GE(partial.executed, 21u);

    // Phase 2: resume (possibly at a different jobs value) and finish.
    runtime::CheckpointOptions resume_ckpt = ckpt;
    resume_ckpt.resume = true;
    runtime::EnsembleRunner resume_runner(make_options(jobs == 1 ? 8 : 1));
    const runtime::ResumableReport resumed = resume_runner.run_resumable(
        engine, sweep_spec(), classify, resume_ckpt);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.resume.status, runtime::ResumeStatus::kResumed);
    EXPECT_GT(resumed.restored, 0u);
    EXPECT_EQ(resumed.restored + resumed.executed, kSweepCount);
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_EQ(resumed.series[s].counts.counts,
                reference.series[s].counts.counts)
          << "jobs=" << jobs << " series=" << s;
      EXPECT_EQ(resumed.series[s].attempted, kSweepCount);
    }
    // The sweep completed: the checkpoint files are gone.
    EXPECT_FALSE(fs::exists(dir) && !fs::is_empty(dir));
  }
}

TEST(RunResumableTest, ResumeUnderFaultDoesNotRecountQuarantined) {
  // throw:every=7 quarantines indices 0, 7, 14, 21, 28, 35 on every
  // attempt. The resumed run must end with exactly that ledger — a
  // restored quarantined index must be neither re-run nor double-counted.
  const std::string fault = "throw:every=7";
  const surge::RealizationEngine engine = make_engine();
  runtime::EnsembleRunner clean_runner(make_options(2, fault));
  const runtime::ResumableReport reference = clean_runner.run_resumable(
      engine, sweep_spec(), classify, runtime::CheckpointOptions{});
  ASSERT_EQ(reference.series[0].failures.size(), 6u);

  const std::string dir = scratch_dir("fault-resume");
  const runtime::CheckpointOptions ckpt = make_ckpt(dir, 8, 2);
  runtime::CancellationToken interrupt;
  runtime::EnsembleRunner partial_runner(make_options(2, fault));
  const runtime::ResumableReport partial = partial_runner.run_resumable(
      engine, sweep_spec(),
      [&](std::size_t series, const surge::HurricaneRealization& r) {
        if (r.index >= 20) interrupt.request_cancel();
        return classify(series, r);
      },
      ckpt, &interrupt);
  ASSERT_TRUE(partial.interrupted);

  runtime::CheckpointOptions resume_ckpt = ckpt;
  resume_ckpt.resume = true;
  runtime::EnsembleRunner resume_runner(make_options(2, fault));
  const runtime::ResumableReport resumed = resume_runner.run_resumable(
      engine, sweep_spec(), classify, resume_ckpt);
  EXPECT_EQ(resumed.resume.status, runtime::ResumeStatus::kResumed);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(resumed.series[s].counts.counts,
              reference.series[s].counts.counts);
    ASSERT_EQ(resumed.series[s].failures.size(),
              reference.series[s].failures.size());
    for (std::size_t f = 0; f < resumed.series[s].failures.size(); ++f) {
      EXPECT_EQ(resumed.series[s].failures[f].realization,
                reference.series[s].failures[f].realization);
      EXPECT_EQ(resumed.series[s].failures[f].code,
                reference.series[s].failures[f].code);
    }
    EXPECT_EQ(resumed.series[s].completed, kSweepCount - 6);
  }
}

TEST(RunResumableTest, ChangedKnobsColdStartLoudly) {
  const surge::RealizationEngine engine = make_engine();
  const std::string dir = scratch_dir("knobs");
  const runtime::CheckpointOptions ckpt = make_ckpt(dir, 8, 2);

  runtime::CancellationToken interrupt;
  runtime::EnsembleRunner partial_runner(make_options(2));
  const runtime::ResumableReport partial = partial_runner.run_resumable(
      engine, sweep_spec("knobs-v1"),
      [&](std::size_t series, const surge::HurricaneRealization& r) {
        if (r.index >= 20) interrupt.request_cancel();
        return classify(series, r);
      },
      ckpt, &interrupt);
  ASSERT_TRUE(partial.interrupted);

  // Same checkpoint dir, different sweep digest (e.g. a changed
  // RealizationConfig knob): the stale state must not resume. A different
  // digest also means a different file pair, so this surfaces as a plain
  // cold start and the sweep recomputes everything.
  runtime::CheckpointOptions resume_ckpt = ckpt;
  resume_ckpt.resume = true;
  runtime::EnsembleRunner resume_runner(make_options(2));
  const runtime::ResumableReport resumed = resume_runner.run_resumable(
      engine, sweep_spec("knobs-v2"), classify, resume_ckpt);
  EXPECT_EQ(resumed.resume.status, runtime::ResumeStatus::kColdStart);
  EXPECT_EQ(resumed.restored, 0u);
  EXPECT_EQ(resumed.executed, kSweepCount);
  EXPECT_FALSE(resumed.interrupted);
}

TEST(SweepExitCodeTest, InterruptedSweepsExitFive) {
  core::ResumableAnalysis analysis;
  analysis.results.resize(1);
  EXPECT_EQ(core::sweep_exit_code(analysis, false), 0);
  EXPECT_EQ(core::sweep_exit_code(analysis, true), 0);
  analysis.interrupted = true;
  EXPECT_EQ(core::sweep_exit_code(analysis, false), 5);
  EXPECT_EQ(core::sweep_exit_code(analysis, true), 5);
  analysis.interrupted = false;
  analysis.results[0].failures.push_back({});
  analysis.results[0].attempted = 10;
  analysis.results[0].completed = 9;
  EXPECT_EQ(core::sweep_exit_code(analysis, false), 0);  // best-effort
  EXPECT_EQ(core::sweep_exit_code(analysis, true), 3);   // strict
}

// --- self-exec crash matrix -------------------------------------------------
//
// The parent spawns THIS binary with --crash-child and a CT_CRASH spec,
// which kills the child at one exact checkpoint site; the parent then
// relaunches it with resume (no crash) and compares the result file with
// an uninterrupted reference. Iterating at=1,2,... until a child finishes
// without crashing proves EVERY site of a cold sweep is recoverable.

constexpr std::size_t kChildCount = 20;
constexpr std::size_t kChildInterval = 5;
constexpr std::size_t kChildSnapshotEvery = 2;

/// Runs one child: /proc/self/exe --crash-child ... with CT_CRASH set to
/// `crash_spec` (empty = unset). Returns the child's exit code.
int spawn_child(const std::string& dir, const std::string& result_path,
                unsigned jobs, const std::string& fault,
                const std::string& crash_spec) {
  if (crash_spec.empty()) {
    ::unsetenv("CT_CRASH");
  } else {
    ::setenv("CT_CRASH", crash_spec.c_str(), 1);
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<std::string> args = {
        "/proc/self/exe", "--crash-child",     "--dir",  dir,
        "--result",       result_path,         "--jobs", std::to_string(jobs),
        "--fault",        fault};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv("/proc/self/exe", argv.data());
    ::_exit(127);
  }
  ::unsetenv("CT_CRASH");
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
}

/// The text the child writes on completion; also computable in-process
/// for the reference (same engine, same classifier, same fault profile).
std::string result_text(const runtime::ResumableReport& report) {
  std::ostringstream out;
  for (const runtime::EnsembleReport& series : report.series) {
    out << "counts";
    for (const std::uint64_t c : series.counts.counts) out << ' ' << c;
    out << '\n';
  }
  out << "failures";
  for (const runtime::FailureRecord& f : report.series.empty()
                                             ? std::vector<runtime::FailureRecord>{}
                                             : report.series[0].failures) {
    out << ' ' << f.realization;
  }
  out << "\nattempted "
      << (report.series.empty() ? 0 : report.series[0].attempted) << '\n';
  return out.str();
}

runtime::SweepSpec child_spec() {
  runtime::SweepSpec spec;
  spec.digest = "crash-harness-sweep";
  spec.count = kChildCount;
  spec.series = {"series-a", "series-b"};
  return spec;
}

std::string reference_text(unsigned jobs, const std::string& fault) {
  runtime::EnsembleRunner runner(make_options(jobs, fault));
  const runtime::ResumableReport report = runner.run_resumable(
      make_engine(), child_spec(), classify, runtime::CheckpointOptions{});
  return result_text(report);
}

void run_crash_matrix(unsigned jobs, const std::string& fault) {
  const std::string expected = reference_text(jobs, fault);
  const std::string dir = scratch_dir("crash-matrix-j" + std::to_string(jobs) +
                                      (fault == "none" ? "" : "-fault"));
  const std::string result_path = dir + "/result.txt";
  for (const char* kind : {"before", "torn", "after"}) {
    std::size_t crashes = 0;
    bool ran_past_last_site = false;
    for (std::uint64_t at = 1; at <= 64 && !ran_past_last_site; ++at) {
      fs::remove_all(dir);
      fs::create_directories(dir);
      const std::string spec =
          std::string(kind) + ":at=" + std::to_string(at);
      const int rc = spawn_child(dir, result_path, jobs, fault, spec);
      if (rc == runtime::CrashProfile::kExitCode) {
        ++crashes;
        // Killed at site `at` — resume must complete and reproduce the
        // uninterrupted run exactly (histograms AND quarantine ledger).
        const int resumed = spawn_child(dir, result_path, jobs, fault, "");
        ASSERT_EQ(resumed, 0) << kind << " at=" << at;
        EXPECT_EQ(read_file(result_path), expected) << kind << " at=" << at;
      } else if (rc == 0) {
        // `at` is beyond the last site of a cold run: matrix exhausted.
        ran_past_last_site = true;
        EXPECT_EQ(read_file(result_path), expected) << kind << " clean";
      } else {
        FAIL() << "unexpected child exit " << rc << " (" << kind
               << " at=" << at << ")";
      }
    }
    EXPECT_TRUE(ran_past_last_site) << kind << ": >64 crash sites?";
    EXPECT_GE(crashes, 5u) << kind;  // the matrix actually exercised sites
  }
  fs::remove_all(dir);
}

TEST(CrashMatrixTest, EveryCrashSiteIsRecoverableAtJobs1) {
  run_crash_matrix(1, "none");
}

TEST(CrashMatrixTest, EveryCrashSiteIsRecoverableAtJobs8) {
  run_crash_matrix(8, "none");
}

TEST(CrashMatrixTest, QuarantineLedgerSurvivesCrashAndResume) {
  run_crash_matrix(2, "throw:every=7");
}

}  // namespace
}  // namespace ct

/// Crash-harness child entry: runs the checkpointed sweep (CT_CRASH from
/// the environment decides where it dies) and writes the result file on
/// completion. Exit codes: 0 complete, 86 injected crash (via _exit), 1
/// error.
static int run_crash_child(int argc, char** argv) {
  using namespace ct;
  try {
    std::map<std::string, std::string> args;
    for (int i = 1; i + 1 < argc; ++i) {
      const std::string key = argv[i];
      if (key.rfind("--", 0) == 0 && key != "--crash-child") {
        args[key.substr(2)] = argv[i + 1];
      }
    }
    const unsigned jobs = static_cast<unsigned>(
        std::strtoul(args["jobs"].c_str(), nullptr, 10));
    runtime::EnsembleOptions options;
    options.jobs = jobs == 0 ? 1 : jobs;
    options.chunk = 7;
    options.cache = false;
    options.fault_spec = args.count("fault") ? args["fault"] : "none";
    runtime::EnsembleRunner runner(options);

    runtime::CheckpointOptions ckpt;
    ckpt.dir = args["dir"];
    ckpt.interval = kChildInterval;
    ckpt.snapshot_every = kChildSnapshotEvery;
    ckpt.resume = true;         // cold on a fresh dir, warm after a crash
    ckpt.crash_spec = "";       // defer to CT_CRASH (set by the parent)

    const runtime::ResumableReport report = runner.run_resumable(
        make_engine(), child_spec(), classify, ckpt);
    if (report.interrupted) return 7;
    util::atomic_write_file(args["result"], result_text(report));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crash-child: %s\n", e.what());
    return 1;
  }
}

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--crash-child") {
      return run_crash_child(argc, argv);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
