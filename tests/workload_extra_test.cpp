// Tests for client retransmission and the availability time series.
#include <gtest/gtest.h>

#include "scada/configuration.h"
#include "sim/network.h"
#include "sim/scada_des.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "threat/system_state.h"

namespace ct::sim {
namespace {

/// Server that ignores the first `drop_first` requests per id (simulating
/// loss) and then answers.
class FlakyServer {
 public:
  FlakyServer(Network& net, NodeAddr self, int drop_first)
      : net_(net), self_(self), drop_first_(drop_first) {
    net_.register_handler(self_, [this](const Message& m) {
      if (m.type != Message::Type::kRequest) return;
      if (++seen_[m.request_id] <= drop_first_) return;  // swallow
      Message reply;
      reply.type = Message::Type::kReply;
      reply.request_id = m.request_id;
      reply.value = m.request_id;
      net_.send(self_, m.sender, reply);
    });
  }

 private:
  Network& net_;
  NodeAddr self_;
  int drop_first_;
  std::map<std::int64_t, int> seen_;
};

TEST(Retransmission, RecoversSwallowedRequests) {
  Simulator sim;
  Network net(sim, {1, 1});
  WorkloadOptions options;
  options.request_interval_s = 2.0;
  options.request_timeout_s = 1.0;
  options.retransmit_limit = 2;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}});
  FlakyServer server(net, {0, 0}, /*drop_first=*/1);
  client.start(0.0, 20.0);
  sim.run_until(25.0);
  // Every request's first copy is swallowed; the retransmit lands.
  std::size_t completed = 0;
  for (const auto& r : client.records()) {
    if (r.completed_at >= 0.0) ++completed;
  }
  EXPECT_EQ(completed, client.records().size());
  // Completion happens after the timeout (the retransmit round trip), so
  // timeout-bounded availability sees them as failures...
  EXPECT_LT(client.success_fraction(0.0, 19.0), 0.1);
  // ...but the service-gap view sees continuous (delayed) service.
  EXPECT_LT(client.max_gap(2.0, 19.0), 4.0);
}

TEST(Retransmission, GivesUpAfterLimit) {
  Simulator sim;
  Network net(sim, {1, 1});
  WorkloadOptions options;
  options.request_timeout_s = 0.5;
  options.retransmit_limit = 2;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}});
  FlakyServer server(net, {0, 0}, /*drop_first=*/10);  // never answers
  client.start(0.0, 6.0);
  sim.run_until(10.0);
  for (const auto& r : client.records()) EXPECT_LT(r.completed_at, 0.0);
}

TEST(AvailabilitySeries, CapturesOutageShape) {
  Simulator sim;
  Network net(sim, {1, 1});
  WorkloadOptions options;
  options.request_interval_s = 1.0;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}});
  FlakyServer server(net, {0, 0}, 0);
  client.start(0.0, 30.0);
  sim.schedule_at(10.0, [&] { net.set_site_down(0, true); });
  sim.schedule_at(20.0, [&] { net.set_site_down(0, false); });
  sim.run_until(35.0);
  const std::vector<double> series = client.availability_series(10.0, 0.0, 30.0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_GT(series[0], 0.9);   // up
  EXPECT_LT(series[1], 0.15);  // outage
  EXPECT_GT(series[2], 0.9);   // recovered
}

TEST(AvailabilitySeries, EmptyBucketsReadNoData) {
  Simulator sim;
  Network net(sim, {1, 1});
  ClientWorkload client(sim, net, {1, 0}, {});
  client.set_targets({{0, 0}});
  client.start(100.0, 110.0);
  sim.run_until(120.0);
  const std::vector<double> series =
      client.availability_series(50.0, 0.0, 150.0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], -1.0);  // nothing issued before t=100
  EXPECT_TRUE(client.availability_series(0.0, 0.0, 10.0).empty());
}

TEST(AvailabilitySeries, DesOutcomeCarriesTimeline) {
  sim::DesOptions options;
  options.horizon_s = 600.0;
  options.attack_time_s = 120.0;
  options.pb.activation_delay_s = 120.0;
  options.pb.controller_outage_threshold_s = 15.0;
  const ScadaDes des(scada::make_config_2_2("p", "b"), options);
  threat::SystemState state;
  state.site_status = {threat::SiteStatus::kFlooded, threat::SiteStatus::kUp};
  state.intrusions = {0, 0};
  const DesOutcome outcome = des.run(state);
  ASSERT_EQ(outcome.availability_timeline.size(), 10u);  // 600 s / 60 s
  // Early buckets are an outage (primary flooded, backup cold)...
  EXPECT_LT(outcome.availability_timeline[0], 0.1);
  // ...late buckets are healthy (backup activated).
  EXPECT_GT(outcome.availability_timeline.back(), 0.9);
}

}  // namespace
}  // namespace ct::sim
