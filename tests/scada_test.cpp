// Tests for the SCADA asset/topology model, the five paper configurations,
// and the replication sizing rules.
#include <gtest/gtest.h>

#include "scada/asset.h"
#include "scada/configuration.h"
#include "scada/oahu.h"
#include "scada/requirements.h"
#include "terrain/oahu.h"

namespace ct::scada {
namespace {

// ---------------------------------------------------------------- topology

TEST(Topology, AddFindAt) {
  ScadaTopology topo;
  topo.add({"a", "Asset A", AssetType::kSubstation, {21.0, -158.0}, 2.0});
  EXPECT_TRUE(topo.contains("a"));
  EXPECT_EQ(topo.find("a")->name, "Asset A");
  EXPECT_EQ(topo.find("nope"), nullptr);
  EXPECT_EQ(topo.at("a").id, "a");
  EXPECT_THROW(topo.at("nope"), std::out_of_range);
}

TEST(Topology, RejectsDuplicatesAndEmptyIds) {
  ScadaTopology topo;
  topo.add({"a", "A", AssetType::kSubstation, {21.0, -158.0}, 2.0});
  EXPECT_THROW(
      topo.add({"a", "A2", AssetType::kSubstation, {21.0, -158.0}, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      topo.add({"", "B", AssetType::kSubstation, {21.0, -158.0}, 2.0}),
      std::invalid_argument);
}

TEST(Topology, OfTypeAndExposedAssets) {
  ScadaTopology topo;
  topo.add({"cc", "CC", AssetType::kControlCenter, {21.3, -157.9}, 1.0});
  topo.add({"ss", "SS", AssetType::kSubstation, {21.4, -158.0}, 2.0});
  EXPECT_EQ(topo.of_type(AssetType::kControlCenter).size(), 1u);
  EXPECT_EQ(topo.of_type(AssetType::kPowerPlant).size(), 0u);
  const auto exposed = topo.exposed_assets();
  ASSERT_EQ(exposed.size(), 2u);
  EXPECT_EQ(exposed[0].id, "cc");
  EXPECT_DOUBLE_EQ(exposed[1].ground_elevation_m, 2.0);
}

TEST(Topology, AssetTypeNames) {
  EXPECT_EQ(asset_type_name(AssetType::kControlCenter), "control center");
  EXPECT_EQ(asset_type_name(AssetType::kDataCenter), "data center");
  EXPECT_EQ(asset_type_name(AssetType::kPowerPlant), "power plant");
  EXPECT_EQ(asset_type_name(AssetType::kSubstation), "substation");
}

// ---------------------------------------------------------------- configs

TEST(Configuration, TwoIsSingleSitePrimaryBackup) {
  const Configuration c = make_config_2("hon");
  EXPECT_EQ(c.name, "2");
  EXPECT_EQ(c.style, ReplicationStyle::kPrimaryBackup);
  EXPECT_EQ(c.intrusion_tolerance_f, 0);
  EXPECT_EQ(c.safety_threshold(), 1);
  ASSERT_EQ(c.sites.size(), 1u);
  EXPECT_EQ(c.sites[0].replicas, 2);
  EXPECT_TRUE(c.sites[0].hot);
  EXPECT_FALSE(c.active_multisite);
  EXPECT_EQ(c.total_replicas(), 2);
}

TEST(Configuration, TwoTwoHasColdBackup) {
  const Configuration c = make_config_2_2("hon", "waiau");
  EXPECT_EQ(c.name, "2-2");
  ASSERT_EQ(c.sites.size(), 2u);
  EXPECT_EQ(c.sites[0].role, SiteRole::kPrimary);
  EXPECT_EQ(c.sites[1].role, SiteRole::kBackup);
  EXPECT_TRUE(c.sites[0].hot);
  EXPECT_FALSE(c.sites[1].hot);
  EXPECT_EQ(c.total_replicas(), 4);
  EXPECT_EQ(c.site_index("waiau"), 1u);
  EXPECT_EQ(c.site_index("nope"), Configuration::npos);
}

TEST(Configuration, SixToleratesOneIntrusion) {
  const Configuration c = make_config_6("hon");
  EXPECT_EQ(c.style, ReplicationStyle::kIntrusionTolerant);
  EXPECT_EQ(c.intrusion_tolerance_f, 1);
  EXPECT_EQ(c.proactive_recovery_k, 1);
  EXPECT_EQ(c.safety_threshold(), 2);
  EXPECT_EQ(c.total_replicas(), 6);
  // 6 = 3f + 2k + 1 exactly: the architecture is minimally sized.
  EXPECT_EQ(c.sites[0].replicas,
            min_replicas_single_site(c.intrusion_tolerance_f,
                                     c.proactive_recovery_k));
}

TEST(Configuration, SixSixMirrorsTwoTwo) {
  const Configuration c = make_config_6_6("hon", "waiau");
  EXPECT_EQ(c.name, "6-6");
  ASSERT_EQ(c.sites.size(), 2u);
  EXPECT_FALSE(c.sites[1].hot);
  EXPECT_EQ(c.total_replicas(), 12);
  EXPECT_EQ(c.safety_threshold(), 2);
}

TEST(Configuration, SixSixSixIsActiveMultisite) {
  const Configuration c = make_config_6_6_6("hon", "waiau", "dc");
  EXPECT_EQ(c.name, "6+6+6");
  EXPECT_TRUE(c.active_multisite);
  EXPECT_EQ(c.min_active_sites, 2);
  ASSERT_EQ(c.sites.size(), 3u);
  for (const ControlSite& s : c.sites) EXPECT_TRUE(s.hot);
  EXPECT_EQ(c.sites[2].role, SiteRole::kDataCenter);
  EXPECT_EQ(c.total_replicas(), 18);
  // Per-site replica count matches the sizing rule for 3 sites, f=k=1.
  EXPECT_EQ(c.sites[0].replicas, min_replicas_per_site_active(3, 1, 1));
}

TEST(Configuration, PaperConfigurationsInOrder) {
  const auto configs = paper_configurations("p", "b", "d");
  ASSERT_EQ(configs.size(), 5u);
  EXPECT_EQ(configs[0].name, "2");
  EXPECT_EQ(configs[1].name, "2-2");
  EXPECT_EQ(configs[2].name, "6");
  EXPECT_EQ(configs[3].name, "6-6");
  EXPECT_EQ(configs[4].name, "6+6+6");
  EXPECT_EQ(configs[4].sites[2].asset_id, "d");
}

TEST(Configuration, SitesWithRole) {
  const Configuration c = make_config_6_6_6("p", "b", "d");
  EXPECT_EQ(c.sites_with_role(SiteRole::kPrimary),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(c.sites_with_role(SiteRole::kDataCenter),
            (std::vector<std::size_t>{2}));
  EXPECT_EQ(site_role_name(SiteRole::kBackup), "backup");
}

// ---------------------------------------------------------------- sizing

TEST(Requirements, SingleSiteFormula) {
  EXPECT_EQ(min_replicas_single_site(0, 0), 1);
  EXPECT_EQ(min_replicas_single_site(1, 0), 4);   // classic 3f+1
  EXPECT_EQ(min_replicas_single_site(1, 1), 6);   // the paper's "6"
  EXPECT_EQ(min_replicas_single_site(2, 1), 9);
  EXPECT_THROW(min_replicas_single_site(-1, 0), std::invalid_argument);
}

TEST(Requirements, ActiveMultisiteFormula) {
  EXPECT_EQ(min_replicas_per_site_active(3, 1, 1), 6);  // "6+6+6"
  EXPECT_EQ(min_replicas_per_site_active(4, 1, 1), 3);
  EXPECT_EQ(min_replicas_per_site_active(3, 2, 1), 9);
  EXPECT_THROW(min_replicas_per_site_active(2, 1, 1), std::invalid_argument);
}

TEST(Requirements, QuorumFormula) {
  EXPECT_EQ(bft_quorum(4, 1), 3);    // PBFT: 2f+1 of 3f+1
  EXPECT_EQ(bft_quorum(6, 1), 4);    // the paper's "6"
  EXPECT_EQ(bft_quorum(18, 1), 10);  // the paper's "6+6+6"
  EXPECT_THROW(bft_quorum(3, 1), std::invalid_argument);
}

TEST(Requirements, ProgressConditions) {
  // "6": all six connected, one compromised + one recovering -> progress.
  EXPECT_TRUE(bft_can_make_progress(6, 6, 1, 1));
  // One crashed replica on top of that -> stalled (6 is minimal).
  EXPECT_FALSE(bft_can_make_progress(6, 5, 1, 1));
  // "6+6+6": losing a full site leaves exactly enough.
  EXPECT_TRUE(bft_can_make_progress(18, 12, 1, 1));
  EXPECT_FALSE(bft_can_make_progress(18, 11, 1, 1));
  // Losing two sites stalls the group (the paper's red state).
  EXPECT_FALSE(bft_can_make_progress(18, 6, 1, 1));
  EXPECT_THROW(bft_can_make_progress(6, 7, 1, 1), std::invalid_argument);
}

TEST(Requirements, Explanations) {
  EXPECT_NE(explain_single_site(1, 1).find("6"), std::string::npos);
  EXPECT_NE(explain_active_multisite(3, 1, 1).find("18"), std::string::npos);
}

// ---------------------------------------------------------------- oahu

TEST(OahuTopology, ContainsCaseStudySites) {
  const ScadaTopology topo = oahu_topology();
  for (const char* id :
       {oahu_ids::kHonoluluCc, oahu_ids::kWaiauCc, oahu_ids::kKaheCc,
        oahu_ids::kDrFortress, oahu_ids::kAlohaNap}) {
    EXPECT_TRUE(topo.contains(id)) << id;
  }
  EXPECT_EQ(topo.of_type(AssetType::kControlCenter).size(), 3u);
  EXPECT_EQ(topo.of_type(AssetType::kDataCenter).size(), 2u);
  EXPECT_GE(topo.of_type(AssetType::kPowerPlant).size(), 4u);
  EXPECT_GE(topo.of_type(AssetType::kSubstation).size(), 8u);
}

TEST(OahuTopology, ElevationsEncodeTheGeographicStory) {
  const ScadaTopology topo = oahu_topology();
  // Kahe sits on an elevated bench; Honolulu and Waiau on the low plain.
  EXPECT_GT(topo.at(oahu_ids::kKaheCc).ground_elevation_m, 5.0);
  EXPECT_LT(topo.at(oahu_ids::kHonoluluCc).ground_elevation_m, 2.0);
  EXPECT_LT(topo.at(oahu_ids::kWaiauCc).ground_elevation_m, 2.0);
}

TEST(OahuTopology, AllAssetsAreOnLand) {
  const ScadaTopology topo = oahu_topology();
  const auto oahu = terrain::make_oahu_terrain();
  for (const Asset& a : topo.assets()) {
    EXPECT_TRUE(oahu->is_land(oahu->projection().to_enu(a.location)))
        << a.id;
  }
}

TEST(OahuTopology, CandidateListCoversControlSites) {
  const auto candidates = oahu_control_site_candidates();
  EXPECT_EQ(candidates.size(), 5u);
  const ScadaTopology topo = oahu_topology();
  for (const std::string& id : candidates) {
    EXPECT_TRUE(topo.contains(id)) << id;
  }
}

}  // namespace
}  // namespace ct::scada
