// Determinism and cache-correctness tests for the EnsembleRunner — the
// acceptance gate of the parallel runtime: at any --jobs value the outcome
// histograms must be bit-identical to the serial sweep for all five paper
// configurations x four threat scenarios x multiple seeds, and the cache-
// hit path must reproduce the cold path exactly (including when the hit
// comes from disk, across runner instances).
//
// CT_TEST_JOBS adds one extra thread count to the matrix (CI runs the
// suite at 1 and 8).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/case_study.h"
#include "core/pipeline.h"
#include "runtime/ensemble_runner.h"
#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "threat/scenario.h"

namespace ct {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kRealizations = 40;  // small but flood-bearing
constexpr std::uint64_t kSeeds[] = {20220627, 7, 424242};

std::vector<unsigned> job_counts() {
  std::vector<unsigned> jobs = {2, 4, 8};
  if (const char* env = std::getenv("CT_TEST_JOBS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) jobs.push_back(static_cast<unsigned>(n));
  }
  return jobs;
}

runtime::EnsembleOptions make_options(unsigned jobs, bool cache = false) {
  runtime::EnsembleOptions options;
  options.jobs = jobs;
  options.chunk = 7;  // ragged chunking: exercises the merge order
  options.cache = cache;
  return options;
}

surge::RealizationEngine make_engine(std::uint64_t seed) {
  surge::RealizationConfig config;
  config.base_seed = seed;
  return surge::RealizationEngine(terrain::make_oahu_terrain(),
                                  scada::oahu_topology().exposed_assets(),
                                  config);
}

void expect_same(const core::ScenarioResult& a, const core::ScenarioResult& b,
                 const std::string& context) {
  for (const auto s :
       {threat::OperationalState::kGreen, threat::OperationalState::kOrange,
        threat::OperationalState::kRed, threat::OperationalState::kGray}) {
    EXPECT_EQ(a.outcomes.count(s), b.outcomes.count(s)) << context;
  }
  EXPECT_EQ(a.outcomes.total(), b.outcomes.total()) << context;
}

/// The full paper matrix: 5 configurations x 4 scenarios x 3 seeds, every
/// parallel jobs value against the serial reference.
TEST(EnsembleDeterminismTest, ParallelMatchesSerialAcrossPaperMatrix) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;

  for (const std::uint64_t seed : kSeeds) {
    const surge::RealizationEngine engine = make_engine(seed);

    // Serial reference: inline pool, realizations generated one by one.
    runtime::EnsembleRunner serial(make_options(1));
    const std::vector<surge::HurricaneRealization> reference =
        serial.generate(engine, kRealizations);

    for (const unsigned jobs : job_counts()) {
      runtime::EnsembleRunner parallel(make_options(jobs));

      // Generation itself must be schedule-independent.
      const std::vector<surge::HurricaneRealization> generated =
          parallel.generate(engine, kRealizations);
      ASSERT_EQ(generated.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(generated[i].index, reference[i].index);
        EXPECT_EQ(generated[i].peak_wind_ms, reference[i].peak_wind_ms);
        EXPECT_EQ(generated[i].max_shoreline_wse_m,
                  reference[i].max_shoreline_wse_m);
      }

      for (const auto& config : configs) {
        for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
          const core::ScenarioResult want =
              pipeline.analyze(config, scenario, reference);
          const core::ScenarioResult got =
              pipeline.analyze(config, scenario, reference, parallel);
          expect_same(want, got,
                      config.name + " / " +
                          std::string(threat::scenario_name(scenario)) +
                          " / seed " + std::to_string(seed) + " / jobs " +
                          std::to_string(jobs));
        }
      }
    }
  }
}

/// A cache hit must reproduce the cold result exactly and must be flagged.
TEST(EnsembleCacheTest, WarmHitIsByteIdenticalToColdPath) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);

  runtime::EnsembleRunner runner(make_options(4, /*cache=*/true));
  const auto rels = runner.generate(engine, kRealizations);
  const std::string digest = runtime::EnsembleRunner::digest_realizations(rels);

  for (const auto& config : configs) {
    for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
      const core::ScenarioResult cold =
          pipeline.analyze(config, scenario, rels, runner, digest);
      const core::ScenarioResult warm =
          pipeline.analyze(config, scenario, rels, runner, digest);
      EXPECT_FALSE(cold.from_cache);
      EXPECT_TRUE(warm.from_cache) << config.name;
      expect_same(cold, warm, config.name);
    }
  }
  const auto stats = runner.cache_stats();
  EXPECT_EQ(stats.hits, configs.size() * threat::all_scenarios().size());
}

/// On a hit the lazy path must not materialize the ensemble at all.
TEST(EnsembleCacheTest, LazyProviderSkippedOnHit) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  runtime::EnsembleRunner runner(make_options(2, /*cache=*/true));
  const auto rels = runner.generate(engine, kRealizations);

  int provider_calls = 0;
  const runtime::EnsembleRunner::RealizationsFn provide =
      [&]() -> const std::vector<surge::HurricaneRealization>& {
    ++provider_calls;
    return rels;
  };
  const runtime::EnsembleRunner::OutcomeFn outcome =
      [](const surge::HurricaneRealization& r) {
        return r.impacts.empty() ? 0 : 1;
      };
  const std::string key = "ab12cd34ab12cd34ab12cd34ab12cd34";

  const auto cold = runner.count_outcomes(provide, outcome, key);
  EXPECT_EQ(provider_calls, 1);
  EXPECT_FALSE(cold.from_cache);

  const auto warm = runner.count_outcomes(provide, outcome, key);
  EXPECT_EQ(provider_calls, 1) << "hit must not materialize the ensemble";
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.counts, cold.counts);
  EXPECT_EQ(warm.total, cold.total);
}

/// Disk cache: a second runner (fresh memory) in the same cache dir gets
/// the result without recomputing — the cross-process warm-rerun story.
TEST(EnsembleCacheTest, DiskCacheSharedAcrossRunnerInstances) {
  const fs::path dir = fs::path(::testing::TempDir()) / "ct_ensemble_disk";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  const auto scenario = threat::ThreatScenario::kHurricaneIntrusionIsolation;

  runtime::EnsembleOptions options = make_options(2, /*cache=*/true);
  options.disk_cache = true;
  options.cache_dir = dir.string();

  core::ScenarioResult cold;
  {
    runtime::EnsembleRunner writer(options);
    const auto rels = writer.generate(engine, kRealizations);
    cold = pipeline.analyze(configs[0], scenario, rels, writer,
                            runtime::EnsembleRunner::digest_realizations(rels));
    EXPECT_FALSE(cold.from_cache);
  }

  runtime::EnsembleRunner reader(options);
  const auto rels = reader.generate(engine, kRealizations);
  const core::ScenarioResult warm =
      pipeline.analyze(configs[0], scenario, rels, reader,
                       runtime::EnsembleRunner::digest_realizations(rels));
  EXPECT_TRUE(warm.from_cache);
  expect_same(cold, warm, "disk round-trip");
  EXPECT_EQ(reader.cache_stats().disk_hits, 1u);

  fs::remove_all(dir);
}

/// The cheap engine-batch digest must identify the ensemble: same knobs ->
/// same key, any knob change (seed, SLR, count) -> different key, and it
/// must agree with itself without generating the batch.
TEST(EnsembleCacheTest, EngineBatchDigestTracksKnobs) {
  const auto base = runtime::EnsembleRunner::digest_engine_batch(
      make_engine(kSeeds[0]), kRealizations);
  EXPECT_EQ(base, runtime::EnsembleRunner::digest_engine_batch(
                      make_engine(kSeeds[0]), kRealizations));
  EXPECT_NE(base, runtime::EnsembleRunner::digest_engine_batch(
                      make_engine(kSeeds[1]), kRealizations));
  EXPECT_NE(base, runtime::EnsembleRunner::digest_engine_batch(
                      make_engine(kSeeds[0]), kRealizations + 1));

  surge::RealizationConfig slr;
  slr.base_seed = kSeeds[0];
  slr.sea_level_offset_m = 0.5;
  const surge::RealizationEngine slr_engine(
      terrain::make_oahu_terrain(), scada::oahu_topology().exposed_assets(),
      slr);
  EXPECT_NE(base, runtime::EnsembleRunner::digest_engine_batch(slr_engine,
                                                               kRealizations));
}

/// End-to-end through the CaseStudyRunner facade: run_configs at several
/// jobs values matches the serial runner, and a repeated run() is served
/// from the cache.
TEST(EnsembleCaseStudyTest, RunnerFacadeDeterministicAndCached) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const auto scenario = threat::ThreatScenario::kHurricaneIntrusion;

  core::CaseStudyOptions serial_options;
  serial_options.realizations = kRealizations;
  serial_options.runtime = make_options(1);
  core::CaseStudyRunner serial = core::make_oahu_case_study(serial_options);
  const auto want = serial.run_configs(configs, scenario);

  for (const unsigned jobs : job_counts()) {
    core::CaseStudyOptions options;
    options.realizations = kRealizations;
    options.runtime = make_options(jobs, /*cache=*/true);
    core::CaseStudyRunner runner = core::make_oahu_case_study(options);
    const auto got = runner.run_configs(configs, scenario);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_same(want[i], got[i],
                  configs[i].name + " jobs " + std::to_string(jobs));
    }
    const auto again = runner.run(configs[0], scenario);
    EXPECT_TRUE(again.from_cache);
    expect_same(want[0], again, "cached rerun");
  }
}

}  // namespace
}  // namespace ct
