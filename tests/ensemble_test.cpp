// Determinism and cache-correctness tests for the EnsembleRunner — the
// acceptance gate of the parallel runtime: at any --jobs value the outcome
// histograms must be bit-identical to the serial sweep for all five paper
// configurations x four threat scenarios x multiple seeds, and the cache-
// hit path must reproduce the cold path exactly (including when the hit
// comes from disk, across runner instances).
//
// CT_TEST_JOBS adds one extra thread count to the matrix (CI runs the
// suite at 1 and 8).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/case_study.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "runtime/ensemble_runner.h"
#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "threat/scenario.h"
#include "util/error.h"
#include "util/stats.h"

namespace ct {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kRealizations = 40;  // small but flood-bearing
constexpr std::uint64_t kSeeds[] = {20220627, 7, 424242};

std::vector<unsigned> job_counts() {
  std::vector<unsigned> jobs = {2, 4, 8};
  if (const char* env = std::getenv("CT_TEST_JOBS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) jobs.push_back(static_cast<unsigned>(n));
  }
  return jobs;
}

runtime::EnsembleOptions make_options(unsigned jobs, bool cache = false) {
  runtime::EnsembleOptions options;
  options.jobs = jobs;
  options.chunk = 7;  // ragged chunking: exercises the merge order
  options.cache = cache;
  return options;
}

surge::RealizationEngine make_engine(std::uint64_t seed) {
  surge::RealizationConfig config;
  config.base_seed = seed;
  return surge::RealizationEngine(terrain::make_oahu_terrain(),
                                  scada::oahu_topology().exposed_assets(),
                                  config);
}

void expect_same(const core::ScenarioResult& a, const core::ScenarioResult& b,
                 const std::string& context) {
  for (const auto s :
       {threat::OperationalState::kGreen, threat::OperationalState::kOrange,
        threat::OperationalState::kRed, threat::OperationalState::kGray}) {
    EXPECT_EQ(a.outcomes.count(s), b.outcomes.count(s)) << context;
  }
  EXPECT_EQ(a.outcomes.total(), b.outcomes.total()) << context;
}

/// The full paper matrix: 5 configurations x 4 scenarios x 3 seeds, every
/// parallel jobs value against the serial reference.
TEST(EnsembleDeterminismTest, ParallelMatchesSerialAcrossPaperMatrix) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;

  for (const std::uint64_t seed : kSeeds) {
    const surge::RealizationEngine engine = make_engine(seed);

    // Serial reference: inline pool, realizations generated one by one.
    runtime::EnsembleRunner serial(make_options(1));
    const std::vector<surge::HurricaneRealization> reference =
        serial.generate(engine, kRealizations);

    for (const unsigned jobs : job_counts()) {
      runtime::EnsembleRunner parallel(make_options(jobs));

      // Generation itself must be schedule-independent.
      const std::vector<surge::HurricaneRealization> generated =
          parallel.generate(engine, kRealizations);
      ASSERT_EQ(generated.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(generated[i].index, reference[i].index);
        EXPECT_EQ(generated[i].peak_wind_ms, reference[i].peak_wind_ms);
        EXPECT_EQ(generated[i].max_shoreline_wse_m,
                  reference[i].max_shoreline_wse_m);
      }

      for (const auto& config : configs) {
        for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
          const core::ScenarioResult want =
              pipeline.analyze(config, scenario, reference);
          const core::ScenarioResult got =
              pipeline.analyze(config, scenario, reference, parallel);
          expect_same(want, got,
                      config.name + " / " +
                          std::string(threat::scenario_name(scenario)) +
                          " / seed " + std::to_string(seed) + " / jobs " +
                          std::to_string(jobs));
        }
      }
    }
  }
}

/// A cache hit must reproduce the cold result exactly and must be flagged.
TEST(EnsembleCacheTest, WarmHitIsByteIdenticalToColdPath) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);

  runtime::EnsembleRunner runner(make_options(4, /*cache=*/true));
  const auto rels = runner.generate(engine, kRealizations);
  const std::string digest = runtime::EnsembleRunner::digest_realizations(rels);

  for (const auto& config : configs) {
    for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
      const core::ScenarioResult cold =
          pipeline.analyze(config, scenario, rels, runner, digest);
      const core::ScenarioResult warm =
          pipeline.analyze(config, scenario, rels, runner, digest);
      EXPECT_FALSE(cold.from_cache);
      EXPECT_TRUE(warm.from_cache) << config.name;
      expect_same(cold, warm, config.name);
    }
  }
  const auto stats = runner.cache_stats();
  EXPECT_EQ(stats.hits, configs.size() * threat::all_scenarios().size());
}

/// On a hit the lazy path must not materialize the ensemble at all.
TEST(EnsembleCacheTest, LazyProviderSkippedOnHit) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  runtime::EnsembleRunner runner(make_options(2, /*cache=*/true));
  const auto rels = runner.generate(engine, kRealizations);

  int provider_calls = 0;
  const runtime::EnsembleRunner::RealizationsFn provide =
      [&]() -> const std::vector<surge::HurricaneRealization>& {
    ++provider_calls;
    return rels;
  };
  const runtime::EnsembleRunner::OutcomeFn outcome =
      [](const surge::HurricaneRealization& r) {
        return r.impacts.empty() ? 0 : 1;
      };
  const std::string key = "ab12cd34ab12cd34ab12cd34ab12cd34";

  const auto cold = runner.count_outcomes(provide, outcome, key);
  EXPECT_EQ(provider_calls, 1);
  EXPECT_FALSE(cold.from_cache);

  const auto warm = runner.count_outcomes(provide, outcome, key);
  EXPECT_EQ(provider_calls, 1) << "hit must not materialize the ensemble";
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.counts, cold.counts);
  EXPECT_EQ(warm.total, cold.total);
}

/// Disk cache: a second runner (fresh memory) in the same cache dir gets
/// the result without recomputing — the cross-process warm-rerun story.
TEST(EnsembleCacheTest, DiskCacheSharedAcrossRunnerInstances) {
  const fs::path dir = fs::path(::testing::TempDir()) / "ct_ensemble_disk";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  const auto scenario = threat::ThreatScenario::kHurricaneIntrusionIsolation;

  runtime::EnsembleOptions options = make_options(2, /*cache=*/true);
  options.disk_cache = true;
  options.cache_dir = dir.string();

  core::ScenarioResult cold;
  {
    runtime::EnsembleRunner writer(options);
    const auto rels = writer.generate(engine, kRealizations);
    cold = pipeline.analyze(configs[0], scenario, rels, writer,
                            runtime::EnsembleRunner::digest_realizations(rels));
    EXPECT_FALSE(cold.from_cache);
  }

  runtime::EnsembleRunner reader(options);
  const auto rels = reader.generate(engine, kRealizations);
  const core::ScenarioResult warm =
      pipeline.analyze(configs[0], scenario, rels, reader,
                       runtime::EnsembleRunner::digest_realizations(rels));
  EXPECT_TRUE(warm.from_cache);
  expect_same(cold, warm, "disk round-trip");
  EXPECT_EQ(reader.cache_stats().disk_hits, 1u);

  fs::remove_all(dir);
}

/// The cheap engine-batch digest must identify the ensemble: same knobs ->
/// same key, any knob change (seed, SLR, count) -> different key, and it
/// must agree with itself without generating the batch.
TEST(EnsembleCacheTest, EngineBatchDigestTracksKnobs) {
  const auto base = runtime::EnsembleRunner::digest_engine_batch(
      make_engine(kSeeds[0]), kRealizations);
  EXPECT_EQ(base, runtime::EnsembleRunner::digest_engine_batch(
                      make_engine(kSeeds[0]), kRealizations));
  EXPECT_NE(base, runtime::EnsembleRunner::digest_engine_batch(
                      make_engine(kSeeds[1]), kRealizations));
  EXPECT_NE(base, runtime::EnsembleRunner::digest_engine_batch(
                      make_engine(kSeeds[0]), kRealizations + 1));

  surge::RealizationConfig slr;
  slr.base_seed = kSeeds[0];
  slr.sea_level_offset_m = 0.5;
  const surge::RealizationEngine slr_engine(
      terrain::make_oahu_terrain(), scada::oahu_topology().exposed_assets(),
      slr);
  EXPECT_NE(base, runtime::EnsembleRunner::digest_engine_batch(slr_engine,
                                                               kRealizations));
}

/// End-to-end through the CaseStudyRunner facade: run_configs at several
/// jobs values matches the serial runner, and a repeated run() is served
/// from the cache.
TEST(EnsembleCaseStudyTest, RunnerFacadeDeterministicAndCached) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const auto scenario = threat::ThreatScenario::kHurricaneIntrusion;

  core::CaseStudyOptions serial_options;
  serial_options.realizations = kRealizations;
  serial_options.runtime = make_options(1);
  core::CaseStudyRunner serial = core::make_oahu_case_study(serial_options);
  const auto want = serial.run_configs(configs, scenario);

  for (const unsigned jobs : job_counts()) {
    core::CaseStudyOptions options;
    options.realizations = kRealizations;
    options.runtime = make_options(jobs, /*cache=*/true);
    core::CaseStudyRunner runner = core::make_oahu_case_study(options);
    const auto got = runner.run_configs(configs, scenario);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_same(want[i], got[i],
                  configs[i].name + " jobs " + std::to_string(jobs));
    }
    const auto again = runner.run(configs[0], scenario);
    EXPECT_TRUE(again.from_cache);
    expect_same(want[0], again, "cached rerun");
  }
}

// --- fault isolation (PR 6) -------------------------------------------------

/// Options for the guarded paths: fault_spec "none" (not "") so a CT_FAULT
/// set by a CI fault-matrix job cannot leak into clean-path expectations.
runtime::EnsembleOptions guarded_options(unsigned jobs, const char* spec,
                                         unsigned retries) {
  runtime::EnsembleOptions options = make_options(jobs);
  options.fault_spec = spec;
  options.max_retries = retries;
  return options;
}

int simple_outcome(const surge::HurricaneRealization& r) {
  return r.impacts.empty() ? 0 : (r.impacts.size() > 2 ? 2 : 1);
}

TEST(EnsembleGuardedTest, CleanGuardedRunMatchesUnguarded) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  runtime::EnsembleRunner runner(guarded_options(4, "none", 2));
  const auto reference = runner.generate(engine, kRealizations);
  const runtime::GeneratedBatch batch =
      runner.generate_guarded(engine, kRealizations);
  EXPECT_TRUE(batch.complete());
  EXPECT_EQ(batch.attempted, kRealizations);
  ASSERT_EQ(batch.realizations.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(batch.realizations[i].index, reference[i].index);
    EXPECT_EQ(batch.realizations[i].max_shoreline_wse_m,
              reference[i].max_shoreline_wse_m);
  }

  const runtime::EnsembleCounts plain =
      runner.count_outcomes(reference, simple_outcome, "");
  const runtime::EnsembleReport guarded =
      runner.count_outcomes_guarded(batch.realizations, simple_outcome, "");
  EXPECT_FALSE(guarded.degraded());
  EXPECT_EQ(guarded.attempted, guarded.completed);
  EXPECT_EQ(guarded.counts.counts, plain.counts);
  EXPECT_EQ(guarded.counts.total, plain.total);
}

/// The acceptance gate of the quarantine machinery: the ledger AND the
/// partial distribution must be bit-identical at any --jobs value.
TEST(EnsembleGuardedTest, QuarantineDeterministicAcrossJobs) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  constexpr const char* kSpec = "throw:every=7";  // fires on every attempt

  runtime::EnsembleRunner serial(guarded_options(1, kSpec, 1));
  const runtime::GeneratedBatch reference =
      serial.generate_guarded(engine, kRealizations);
  const runtime::EnsembleReport reference_report =
      serial.count_outcomes_guarded(reference.realizations, simple_outcome,
                                    "");

  // Indices 0, 7, 14, 21, 28, 35 quarantine after 1 + 1 attempts.
  ASSERT_EQ(reference.ledger.failures.size(), 6u);
  EXPECT_EQ(reference.ledger.retries, 6u);
  for (std::size_t i = 0; i < reference.ledger.failures.size(); ++i) {
    const runtime::FailureRecord& f = reference.ledger.failures[i];
    EXPECT_EQ(f.realization, i * 7);
    EXPECT_EQ(f.seed, kSeeds[0]);
    EXPECT_EQ(f.attempts, 2u);
    EXPECT_EQ(f.code, util::ErrorCode::kFaultInjected);
  }
  EXPECT_EQ(reference.realizations.size(), kRealizations - 6);

  for (const unsigned jobs : job_counts()) {
    runtime::EnsembleRunner parallel(guarded_options(jobs, kSpec, 1));
    const runtime::GeneratedBatch batch =
        parallel.generate_guarded(engine, kRealizations);
    ASSERT_EQ(batch.realizations.size(), reference.realizations.size())
        << "jobs " << jobs;
    for (std::size_t i = 0; i < reference.realizations.size(); ++i) {
      EXPECT_EQ(batch.realizations[i].index, reference.realizations[i].index);
      EXPECT_EQ(batch.realizations[i].max_shoreline_wse_m,
                reference.realizations[i].max_shoreline_wse_m);
    }
    ASSERT_EQ(batch.ledger.failures.size(), reference.ledger.failures.size());
    for (std::size_t i = 0; i < reference.ledger.failures.size(); ++i) {
      EXPECT_EQ(batch.ledger.failures[i].realization,
                reference.ledger.failures[i].realization);
      EXPECT_EQ(batch.ledger.failures[i].attempts,
                reference.ledger.failures[i].attempts);
    }
    const runtime::EnsembleReport report = parallel.count_outcomes_guarded(
        batch.realizations, simple_outcome, "");
    EXPECT_EQ(report.counts.counts, reference_report.counts.counts)
        << "jobs " << jobs;
    EXPECT_EQ(report.counts.total, reference_report.counts.total);
  }
}

TEST(EnsembleGuardedTest, RetryHealsFirstAttemptFault) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  runtime::EnsembleRunner clean(guarded_options(4, "none", 0));
  const auto reference = clean.generate(engine, kRealizations);

  // The rule fires only on attempt 1: one retry (same seed) heals every
  // injected failure, so the batch is complete AND bit-identical.
  runtime::EnsembleRunner runner(guarded_options(4, "throw:every=5,attempts=1", 2));
  const runtime::GeneratedBatch batch =
      runner.generate_guarded(engine, kRealizations);
  EXPECT_TRUE(batch.complete());
  EXPECT_EQ(batch.ledger.retries, 8u);  // indices 0, 5, ..., 35 healed
  ASSERT_EQ(batch.realizations.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(batch.realizations[i].index, reference[i].index);
    EXPECT_EQ(batch.realizations[i].peak_wind_ms, reference[i].peak_wind_ms);
    EXPECT_EQ(batch.realizations[i].max_shoreline_wse_m,
              reference[i].max_shoreline_wse_m);
  }
}

TEST(EnsembleGuardedTest, NanGuardTripsAsTypedNumericFailure) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  runtime::EnsembleRunner runner(guarded_options(2, "nan:every=9", 0));
  const runtime::GeneratedBatch batch =
      runner.generate_guarded(engine, kRealizations);
  // Indices 0, 9, 18, 27, 36: the planted NaN must fail the realization
  // (typed, with provenance), never poison the distribution.
  ASSERT_EQ(batch.ledger.failures.size(), 5u);
  for (const runtime::FailureRecord& f : batch.ledger.failures) {
    EXPECT_EQ(f.code, util::ErrorCode::kNumeric);
    EXPECT_EQ(f.origin, "surge");
    EXPECT_EQ(f.seed, kSeeds[0]);
  }
  for (const surge::HurricaneRealization& r : batch.realizations) {
    EXPECT_TRUE(std::isfinite(r.max_shoreline_wse_m));
  }
}

TEST(EnsembleGuardedTest, WatchdogTimesOutDelayedRealizations) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  runtime::EnsembleOptions options =
      guarded_options(2, "delay:every=10,ms=500", 0);
  options.task_timeout = std::chrono::milliseconds(40);
  runtime::EnsembleRunner runner(options);
  const runtime::GeneratedBatch batch = runner.generate_guarded(engine, 20);
  // Indices 0 and 10 stall past the deadline; the cooperative delay polls
  // the token, so each attempt unwinds as a typed timeout.
  ASSERT_EQ(batch.ledger.failures.size(), 2u);
  EXPECT_EQ(batch.ledger.failures[0].realization, 0u);
  EXPECT_EQ(batch.ledger.failures[1].realization, 10u);
  for (const runtime::FailureRecord& f : batch.ledger.failures) {
    EXPECT_EQ(f.code, util::ErrorCode::kTimeout);
  }
  EXPECT_EQ(batch.realizations.size(), 18u);
}

TEST(EnsembleGuardedTest, PartialResultIsNeverCached) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);
  const std::string key = "fe12fe12fe12fe12fe12fe12fe12fe12";

  runtime::EnsembleOptions degraded_options =
      guarded_options(2, "throw:every=7", 0);
  degraded_options.cache = true;
  runtime::EnsembleRunner degraded(degraded_options);
  const runtime::GeneratedBatch batch =
      degraded.generate_guarded(engine, kRealizations);
  // The batch view carries the quarantine ledger; counting over it keeps
  // the generation failures in the report.
  const runtime::EnsembleRunner::BatchFn batch_fn = [&]() {
    return batch.view();
  };
  const runtime::EnsembleReport first =
      degraded.count_outcomes_guarded(batch_fn, simple_outcome, key);
  EXPECT_TRUE(first.degraded());
  EXPECT_FALSE(first.counts.from_cache);
  // A degraded result must NOT have been stored under the full-ensemble
  // key: the rerun recomputes instead of serving the partial histogram.
  const runtime::EnsembleReport second =
      degraded.count_outcomes_guarded(batch_fn, simple_outcome, key);
  EXPECT_FALSE(second.counts.from_cache);

  // A clean runner stores under the same key and the hit is complete.
  runtime::EnsembleOptions clean_options = guarded_options(2, "none", 0);
  clean_options.cache = true;
  runtime::EnsembleRunner clean(clean_options);
  const auto rels = clean.generate(engine, kRealizations);
  const runtime::EnsembleReport cold =
      clean.count_outcomes_guarded(rels, simple_outcome, key);
  EXPECT_FALSE(cold.counts.from_cache);
  const runtime::EnsembleReport warm =
      clean.count_outcomes_guarded(rels, simple_outcome, key);
  EXPECT_TRUE(warm.counts.from_cache);
  EXPECT_EQ(warm.attempted, warm.completed);
  EXPECT_EQ(warm.counts.counts, cold.counts.counts);
}

TEST(EnsembleGuardedTest, MassBoundBracketsTrueProbability) {
  const surge::RealizationEngine engine = make_engine(kSeeds[0]);

  // Ground truth: the clean full ensemble.
  runtime::EnsembleRunner clean(guarded_options(2, "none", 0));
  const auto full = clean.generate(engine, kRealizations);
  const runtime::EnsembleReport truth =
      clean.count_outcomes_guarded(full, simple_outcome, "");

  runtime::EnsembleRunner degraded(guarded_options(2, "throw:every=7", 0));
  const runtime::GeneratedBatch batch =
      degraded.generate_guarded(engine, kRealizations);
  const runtime::EnsembleReport partial = degraded.count_outcomes_guarded(
      [&]() { return batch.view(); }, simple_outcome, "");
  ASSERT_TRUE(partial.degraded());
  EXPECT_EQ(partial.attempted, kRealizations);
  EXPECT_EQ(partial.completed, kRealizations - 6);

  for (std::size_t bucket = 0; bucket < 4; ++bucket) {
    const util::Interval bound = partial.mass_bound(bucket);
    EXPECT_GE(bound.lo, 0.0);
    EXPECT_LE(bound.hi, 1.0);
    EXPECT_LE(bound.lo, bound.hi);
    const double true_p =
        static_cast<double>(truth.counts.counts[bucket]) /
        static_cast<double>(truth.counts.total);
    EXPECT_TRUE(bound.contains(true_p))
        << "bucket " << bucket << ": true " << true_p << " not in ["
        << bound.lo << ", " << bound.hi << "]";
  }

  // A clean report's bound still contains its own point estimate.
  for (std::size_t bucket = 0; bucket < 4; ++bucket) {
    const util::Interval bound = truth.mass_bound(bucket);
    const double p = static_cast<double>(truth.counts.counts[bucket]) /
                     static_cast<double>(truth.counts.total);
    EXPECT_TRUE(bound.contains(p)) << "bucket " << bucket;
  }
}

/// End to end through the CaseStudyRunner facade: a fault profile degrades
/// the run gracefully — partial distribution, quarantine accounting — and
/// stays bit-identical across jobs values.
TEST(EnsembleGuardedTest, CaseStudyDegradesGracefully) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const auto scenario = threat::ThreatScenario::kHurricaneIntrusion;

  const auto run = [&](unsigned jobs) {
    core::CaseStudyOptions options;
    options.realizations = 26;
    options.runtime = guarded_options(jobs, "throw:every=13", 1);
    core::CaseStudyRunner runner = core::make_oahu_case_study(options);
    return runner.run(configs[0], scenario);
  };

  const core::ScenarioResult serial = run(1);
  EXPECT_TRUE(serial.degraded());
  EXPECT_EQ(serial.attempted, 26u);
  EXPECT_EQ(serial.completed, 24u);
  ASSERT_EQ(serial.failures.size(), 2u);  // indices 0 and 13
  EXPECT_EQ(serial.failures[0].realization, 0u);
  EXPECT_EQ(serial.failures[1].realization, 13u);
  EXPECT_EQ(serial.outcomes.total(), 24u);
  const util::Interval bound =
      serial.mass_bound(threat::OperationalState::kRed);
  EXPECT_LE(bound.lo, bound.hi);

  for (const unsigned jobs : job_counts()) {
    const core::ScenarioResult parallel = run(jobs);
    expect_same(serial, parallel, "degraded jobs " + std::to_string(jobs));
    ASSERT_EQ(parallel.failures.size(), serial.failures.size());
    for (std::size_t i = 0; i < serial.failures.size(); ++i) {
      EXPECT_EQ(parallel.failures[i].realization,
                serial.failures[i].realization);
    }
  }
}

// --- exit-code policy and failure summary -----------------------------------

core::ScenarioResult make_result(std::size_t attempted, std::size_t completed) {
  core::ScenarioResult r;
  r.config_name = "cfg";
  r.attempted = attempted;
  r.completed = completed;
  for (std::size_t i = completed; i < attempted; ++i) {
    runtime::FailureRecord f;
    f.realization = i;
    f.seed = 42;
    f.attempts = 3;
    f.code = util::ErrorCode::kFaultInjected;
    f.origin = "fault-injection";
    f.message = "injected";
    r.failures.push_back(std::move(f));
  }
  return r;
}

TEST(ExitCodePolicyTest, CleanDegradedAndEmptyRuns) {
  const std::vector<core::ScenarioResult> clean = {make_result(10, 10)};
  EXPECT_EQ(core::analysis_exit_code(clean, /*strict=*/false), 0);
  EXPECT_EQ(core::analysis_exit_code(clean, /*strict=*/true), 0);

  const std::vector<core::ScenarioResult> degraded = {make_result(10, 10),
                                                      make_result(10, 8)};
  EXPECT_EQ(core::analysis_exit_code(degraded, /*strict=*/false), 0);
  EXPECT_EQ(core::analysis_exit_code(degraded, /*strict=*/true), 3);

  // Nothing completed: even best-effort has no data — exit 4 wins.
  const std::vector<core::ScenarioResult> empty = {make_result(10, 0)};
  EXPECT_EQ(core::analysis_exit_code(empty, /*strict=*/false), 4);
  EXPECT_EQ(core::analysis_exit_code(empty, /*strict=*/true), 4);
}

TEST(ExitCodePolicyTest, FailureSummaryHasOneRowPerQuarantine) {
  const std::vector<core::ScenarioResult> results = {make_result(10, 10),
                                                     make_result(10, 7)};
  const util::TextTable table = core::failure_summary_table(results);
  EXPECT_EQ(table.row_count(), 3u);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("fault-injected"), std::string::npos);
  EXPECT_NE(rendered.find("injected"), std::string::npos);
}

}  // namespace
}  // namespace ct
