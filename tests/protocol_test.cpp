// Protocol-level tests: primary-backup failover machinery and the BFT
// replication group, exercised directly (the end-to-end compound-threat
// validation lives in scada_des_test.cpp).
#include <gtest/gtest.h>

#include "sim/bft.h"
#include "sim/network.h"
#include "sim/primary_backup.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace ct::sim {
namespace {

// ------------------------------------------------------------ primary-backup

struct PbHarness {
  PbHarness(int sites, bool with_controller, NetworkOptions nopts = {})
      : net(sim, [&] {
          std::vector<int> n(static_cast<std::size_t>(sites), 2);
          n.push_back(2);  // client site
          return n;
        }(), nopts) {
    options.activation_delay_s = 30.0;
    options.controller_outage_threshold_s = 6.0;
    options.controller_check_interval_s = 1.0;
    WorkloadOptions wopts;
    wopts.request_interval_s = 1.0;
    wopts.replies_needed = 1;
    client = std::make_unique<ClientWorkload>(
        sim, net, NodeAddr{sites, 0}, wopts);
    std::vector<NodeAddr> targets;
    for (int s = 0; s < sites; ++s) {
      for (int n = 0; n < 2; ++n) {
        targets.push_back({s, n});
        replicas.push_back(std::make_unique<PbReplica>(
            sim, net, NodeAddr{s, n}, options, /*active=*/s == 0));
      }
    }
    client->set_targets(std::move(targets));
    if (with_controller) {
      controller = std::make_unique<FailoverController>(
          sim, net, NodeAddr{sites, 1}, *client, /*backup_site=*/1, options);
    }
  }

  void run(double horizon) {
    for (auto& r : replicas) r->start();
    client->start(0.0, horizon);
    if (controller) controller->start(0.0, horizon);
    sim.run_until(horizon);
  }

  Simulator sim;
  Network net;
  PbOptions options;
  std::vector<std::unique_ptr<PbReplica>> replicas;
  std::unique_ptr<ClientWorkload> client;
  std::unique_ptr<FailoverController> controller;
};

TEST(PrimaryBackup, PrimaryServesRequests) {
  PbHarness h(1, false);
  h.run(20.0);
  EXPECT_GT(h.client->success_fraction(0.0, 19.0), 0.95);
  EXPECT_FALSE(h.client->safety_violated());
  EXPECT_TRUE(h.replicas[0]->is_primary());
  EXPECT_FALSE(h.replicas[1]->is_primary());
}

TEST(PrimaryBackup, HotStandbyTakesOverWithinSeconds) {
  PbHarness h(1, false);
  // Silence the primary at t=10 by compromising-free means: mark it
  // compromised = stops heartbeating and serving correct replies... use
  // a cleaner lever: drop the whole site is too blunt, so emulate primary
  // crash by marking it compromised AND ignoring its corrupt replies is
  // wrong. Instead: we test takeover via heartbeat loss when the primary
  // is partitioned -- not representable per-node, so this test uses the
  // watchdog directly: stop heartbeats by compromising the primary, and
  // assert the standby promotes (corrupt replies then exist, which is the
  // compromised-primary scenario of the paper).
  h.sim.schedule_at(10.0, [&] { h.replicas[0]->set_compromised(true); });
  h.run(30.0);
  EXPECT_TRUE(h.replicas[1]->is_primary());
  EXPECT_TRUE(h.client->safety_violated());  // compromised primary forges
}

TEST(PrimaryBackup, ColdSiteActivationAfterDelay) {
  PbHarness h(2, true);
  h.sim.schedule_at(10.0, [&] { h.net.set_site_down(0, true); });
  h.run(90.0);
  // Outage detected ~16s, activation delay 30s: service back before ~50s.
  EXPECT_TRUE(h.controller->activation_sent());
  EXPECT_TRUE(h.replicas[2]->site_active());
  EXPECT_TRUE(h.replicas[2]->is_primary());
  EXPECT_GT(h.client->success_fraction(60.0, 85.0), 0.9);
  const double gap = h.client->max_gap(0.0, 85.0);
  EXPECT_GT(gap, 30.0);
  EXPECT_LT(gap, 60.0);
}

TEST(PrimaryBackup, NoSpuriousFailoverWhenHealthy) {
  PbHarness h(2, true);
  h.run(40.0);
  EXPECT_FALSE(h.controller->activation_sent());
  EXPECT_FALSE(h.replicas[2]->site_active());
}

TEST(PrimaryBackup, IsolatedActiveSiteTriggersFailover) {
  PbHarness h(2, true);
  h.sim.schedule_at(10.0, [&] { h.net.set_site_isolated(0, true); });
  h.run(90.0);
  EXPECT_TRUE(h.controller->activation_sent());
  EXPECT_GT(h.client->success_fraction(60.0, 85.0), 0.9);
}

TEST(PrimaryBackup, ActivationRetransmitsUntilAckedAcrossLinkFlap) {
  // The controller's first kActivate is swallowed by a dead controller->
  // backup link; the acked retransmit loop recovers once the link heals.
  PbHarness h(2, true);
  h.sim.schedule_at(0.0, [&] { h.net.set_link_down(1, 2, true); });
  h.sim.schedule_at(10.0, [&] { h.net.set_site_down(0, true); });
  h.sim.schedule_at(40.0, [&] { h.net.set_link_down(1, 2, false); });
  h.run(130.0);
  EXPECT_TRUE(h.controller->activation_acked());
  EXPECT_GT(h.controller->activation_attempts(), 1);
  EXPECT_TRUE(h.replicas[2]->site_active());
  EXPECT_TRUE(h.replicas[2]->is_primary());
  EXPECT_GT(h.client->success_fraction(110.0, 125.0), 0.9);
}

TEST(PrimaryBackup, LegacyFireAndForgetActivationIsLostAcrossLinkFlap) {
  // Regression guard: activation_max_attempts = 1 reproduces the old
  // fire-and-forget send, which strands the backup site when the one
  // kActivate is lost.
  PbHarness h(2, false);
  PbOptions capped = h.options;
  capped.activation_max_attempts = 1;
  h.controller = std::make_unique<FailoverController>(
      h.sim, h.net, NodeAddr{2, 1}, *h.client, /*backup_site=*/1, capped);
  h.sim.schedule_at(0.0, [&] { h.net.set_link_down(1, 2, true); });
  h.sim.schedule_at(10.0, [&] { h.net.set_site_down(0, true); });
  h.sim.schedule_at(40.0, [&] { h.net.set_link_down(1, 2, false); });
  h.run(130.0);
  EXPECT_EQ(h.controller->activation_attempts(), 1);
  EXPECT_FALSE(h.controller->activation_acked());
  EXPECT_FALSE(h.replicas[2]->site_active());
}

TEST(PrimaryBackup, ActivationSurvivesLossyControlPlane) {
  // Half the recovery-plane messages vanish; the backoff retransmit loop
  // still lands kActivate on every backup node.
  NetworkOptions nopts;
  nopts.control_loss_probability = 0.5;
  nopts.impairment_seed = 5;
  PbHarness h(2, true, nopts);
  h.sim.schedule_at(10.0, [&] { h.net.set_site_down(0, true); });
  h.run(150.0);
  EXPECT_TRUE(h.controller->activation_acked());
  EXPECT_TRUE(h.replicas[2]->site_active());
  EXPECT_GT(h.net.drop_counters().transfer_loss, 0u);
  EXPECT_GT(h.client->success_fraction(120.0, 145.0), 0.9);
}

// ---------------------------------------------------------------- bft

struct BftHarness {
  /// sites x replicas_per_site, one group across all sites.
  BftHarness(const std::vector<int>& replicas_per_site, BftOptions opts = {},
             NetworkOptions nopts = {})
      : options(opts), net(sim, [&] {
          std::vector<int> n = replicas_per_site;
          n.push_back(2);
          return n;
        }(), nopts) {
    const int n_sites = static_cast<int>(replicas_per_site.size());
    std::vector<int> site_ids;
    for (int s = 0; s < n_sites; ++s) site_ids.push_back(s);
    const std::vector<NodeAddr> group =
        interleaved_group(site_ids, replicas_per_site);
    WorkloadOptions wopts;
    wopts.request_interval_s = 1.0;
    wopts.replies_needed = options.f + 1;
    client = std::make_unique<ClientWorkload>(
        sim, net, NodeAddr{n_sites, 0}, wopts);
    client->set_targets(group);
    for (std::size_t i = 0; i < group.size(); ++i) {
      replicas.push_back(std::make_unique<BftReplica>(
          sim, net, group[i], group, static_cast<int>(i), options, true));
    }
  }

  void run(double horizon) {
    for (auto& r : replicas) r->start();
    client->start(0.0, horizon);
    sim.run_until(horizon);
  }

  BftOptions options;
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<BftReplica>> replicas;
  std::unique_ptr<ClientWorkload> client;
};

TEST(Bft, SingleSiteGroupCommits) {
  BftHarness h({6});
  h.run(20.0);
  EXPECT_GT(h.client->success_fraction(0.0, 19.0), 0.95);
  EXPECT_FALSE(h.client->safety_violated());
  EXPECT_GT(h.replicas[0]->executed_count(), 15u);
}

TEST(Bft, ToleratesOneCompromisedReplica) {
  BftHarness h({6});
  h.sim.schedule_at(5.0, [&] { h.replicas[1]->set_compromised(true); });
  h.run(30.0);
  EXPECT_FALSE(h.client->safety_violated());
  EXPECT_GT(h.client->success_fraction(10.0, 29.0), 0.9);
}

TEST(Bft, CompromisedLeaderCausesViewChangeNotOutage) {
  BftHarness h({6});
  h.sim.schedule_at(5.0, [&] { h.replicas[0]->set_compromised(true); });
  h.run(40.0);
  EXPECT_FALSE(h.client->safety_violated());
  // Brief stall during the view change, then service resumes.
  EXPECT_GT(h.client->success_fraction(25.0, 39.0), 0.9);
  EXPECT_GT(h.replicas[1]->view(), 0);
  const double gap = h.client->max_gap(0.0, 39.0);
  EXPECT_LT(gap, 3.0 * h.options.view_timeout_s);
}

TEST(Bft, TwoCompromisedReplicasViolateSafety) {
  BftHarness h({6});
  h.sim.schedule_at(5.0, [&] {
    h.replicas[1]->set_compromised(true);
    h.replicas[2]->set_compromised(true);
  });
  h.run(30.0);
  EXPECT_TRUE(h.client->safety_violated());
}

TEST(Bft, ProactiveRecoveryRotationKeepsServiceUp) {
  BftOptions opts;
  opts.recovery_period_s = 8.0;
  opts.recovery_duration_s = 3.0;
  BftHarness h({6}, opts);
  std::vector<BftReplica*> members;
  for (auto& r : h.replicas) members.push_back(r.get());
  RecoveryScheduler scheduler(h.sim, members, opts);
  scheduler.start(4.0);
  h.run(60.0);
  EXPECT_GT(h.client->success_fraction(0.0, 59.0), 0.85);
  EXPECT_FALSE(h.client->safety_violated());
}

TEST(Bft, ThreeSiteGroupSurvivesSiteIsolation) {
  BftHarness h({6, 6, 6});
  h.sim.schedule_at(10.0, [&] { h.net.set_site_isolated(0, true); });
  h.run(60.0);
  EXPECT_FALSE(h.client->safety_violated());
  EXPECT_GT(h.client->success_fraction(40.0, 59.0), 0.9);
}

TEST(Bft, ThreeSiteGroupStallsWithTwoSitesDown) {
  BftHarness h({6, 6, 6});
  h.sim.schedule_at(10.0, [&] {
    h.net.set_site_down(0, true);
    h.net.set_site_down(1, true);
  });
  h.run(50.0);
  EXPECT_DOUBLE_EQ(h.client->success_fraction(15.0, 45.0), 0.0);
}

// ------------------------------------------- combined WAN impairments

NetworkOptions combined_impairments(std::uint64_t seed) {
  NetworkOptions nopts;
  nopts.loss_probability = 0.03;
  nopts.latency_jitter_s = 0.010;
  nopts.duplicate_probability = 0.05;
  nopts.reorder_probability = 0.10;
  nopts.reorder_window_s = 0.05;
  nopts.impairment_seed = seed;
  return nopts;
}

TEST(PrimaryBackup, ServesThroughCombinedImpairmentsAcrossSeeds) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    PbHarness h(1, false, combined_impairments(seed));
    h.run(30.0);
    EXPECT_GE(h.client->success_fraction(0.0, 29.0), 0.85) << "seed " << seed;
    EXPECT_FALSE(h.client->safety_violated()) << "seed " << seed;
    EXPECT_GT(h.net.messages_duplicated(), 0u);
    EXPECT_GT(h.net.drop_counters().loss, 0u);
  }
}

TEST(Bft, CommitsThroughCombinedImpairmentsAcrossSeeds) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    BftHarness h({6}, BftOptions{}, combined_impairments(seed));
    h.run(30.0);
    EXPECT_GE(h.client->success_fraction(0.0, 29.0), 0.85) << "seed " << seed;
    EXPECT_FALSE(h.client->safety_violated()) << "seed " << seed;
    // Duplicated accepts/replies must not double-execute or double-count:
    // every replica still executes each request exactly once.
    EXPECT_GT(h.net.messages_duplicated(), 0u);
    EXPECT_LE(h.replicas[0]->executed_count(), 30u);
  }
}

TEST(Bft, InterleavedGroupAlternatesSites) {
  const auto group = interleaved_group({0, 1, 2}, {6, 6, 6});
  ASSERT_EQ(group.size(), 18u);
  EXPECT_EQ(group[0], (NodeAddr{0, 0}));
  EXPECT_EQ(group[1], (NodeAddr{1, 0}));
  EXPECT_EQ(group[2], (NodeAddr{2, 0}));
  EXPECT_EQ(group[3], (NodeAddr{0, 1}));
  // Uneven sites still covered.
  const auto uneven = interleaved_group({0, 1}, {2, 1});
  ASSERT_EQ(uneven.size(), 3u);
  EXPECT_EQ(uneven[2], (NodeAddr{0, 1}));
  EXPECT_THROW(interleaved_group({0}, {1, 2}), std::invalid_argument);
}

TEST(Bft, Validation) {
  Simulator sim;
  Network net(sim, {2});
  const std::vector<NodeAddr> group = {{0, 0}, {0, 1}};
  EXPECT_THROW(
      BftReplica(sim, net, {0, 0}, group, 1, BftOptions{}, true),
      std::invalid_argument);
  EXPECT_THROW(RecoveryScheduler(sim, {nullptr}, BftOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ct::sim
