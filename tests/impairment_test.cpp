// Tests for network impairments (loss, jitter) and protocol robustness
// under an imperfect WAN: the Table-I classification must be stable with
// realistic loss rates, since the paper's architectures are deployed over
// real wide-area networks.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "scada/configuration.h"
#include "sim/network.h"
#include "sim/scada_des.h"
#include "sim/simulator.h"
#include "threat/attacker.h"
#include "threat/scenario.h"

namespace ct::sim {
namespace {

TEST(Impairment, LossDropsTheConfiguredFraction) {
  Simulator sim;
  NetworkOptions options;
  options.loss_probability = 0.2;
  Network net(sim, {1, 1}, options);
  std::size_t received = 0;
  net.register_handler({1, 0}, [&](const Message&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    Message m;
    m.type = Message::Type::kRequest;
    net.send({0, 0}, {1, 0}, m);
  }
  sim.run_until(10.0);
  EXPECT_NEAR(static_cast<double>(net.messages_dropped()) / n, 0.2, 0.02);
  EXPECT_EQ(received + net.messages_dropped(), static_cast<std::size_t>(n));
}

TEST(Impairment, LossIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    Simulator sim;
    NetworkOptions options;
    options.loss_probability = 0.3;
    options.impairment_seed = seed;
    Network net(sim, {1, 1}, options);
    net.register_handler({1, 0}, [](const Message&) {});
    for (int i = 0; i < 1000; ++i) {
      Message m;
      net.send({0, 0}, {1, 0}, m);
    }
    sim.run_until(10.0);
    return net.messages_dropped();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Impairment, JitterDelaysWithinBound) {
  Simulator sim;
  NetworkOptions options;
  options.inter_site_latency_s = 0.02;
  options.latency_jitter_s = 0.05;
  Network net(sim, {1, 1}, options);
  std::vector<double> arrivals;
  net.register_handler({1, 0}, [&](const Message&) {
    arrivals.push_back(sim.now());
  });
  for (int i = 0; i < 200; ++i) {
    Message m;
    net.send({0, 0}, {1, 0}, m);
  }
  sim.run_until(1.0);
  ASSERT_EQ(arrivals.size(), 200u);
  double min_arrival = 1e9;
  double max_arrival = 0.0;
  for (const double t : arrivals) {
    min_arrival = std::min(min_arrival, t);
    max_arrival = std::max(max_arrival, t);
  }
  EXPECT_GE(min_arrival, 0.02);
  EXPECT_LE(max_arrival, 0.07 + 1e-9);
  EXPECT_GT(max_arrival - min_arrival, 0.01);  // jitter actually varies
}

TEST(Impairment, Validation) {
  Simulator sim;
  NetworkOptions bad;
  bad.loss_probability = 1.0;
  EXPECT_THROW(Network(sim, {1}, bad), std::invalid_argument);
  NetworkOptions bad2;
  bad2.latency_jitter_s = -0.1;
  EXPECT_THROW(Network(sim, {1}, bad2), std::invalid_argument);
}

/// The headline robustness property: with 3% WAN loss and 10 ms jitter,
/// the DES still classifies every compound-threat case like Table I.
class LossyDesMatchesTableOne
    : public ::testing::TestWithParam<scada::Configuration> {};

TEST_P(LossyDesMatchesTableOne, ObservedStateStable) {
  const scada::Configuration& config = GetParam();
  DesOptions options;
  options.horizon_s = 600.0;
  options.attack_time_s = 120.0;
  options.settle_window_s = 150.0;
  options.orange_gap_s = 70.0;
  options.pb.activation_delay_s = 120.0;
  options.pb.controller_outage_threshold_s = 15.0;
  options.pb.controller_check_interval_s = 3.0;
  options.bft.activation_delay_s = 120.0;
  options.bft.view_timeout_s = 8.0;
  options.net.loss_probability = 0.03;
  options.net.latency_jitter_s = 0.010;
  // Loss can eat single replies; judge availability over more attempts.
  options.request_interval_s = 2.0;

  const ScadaDes des(config, options);
  const threat::GreedyWorstCaseAttacker attacker;
  const std::size_t n = config.sites.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    threat::SystemState base;
    base.intrusions.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      base.site_status.push_back((mask >> i) & 1
                                     ? threat::SiteStatus::kFlooded
                                     : threat::SiteStatus::kUp);
    }
    for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
      const threat::SystemState attacked =
          attacker.attack(config, base, threat::capability_for(scenario));
      EXPECT_EQ(des.run(attacked).observed, core::evaluate(config, attacked))
          << config.name << " mask=" << mask << " "
          << threat::scenario_name(scenario);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, LossyDesMatchesTableOne,
    ::testing::Values(scada::make_config_2("p"),
                      scada::make_config_2_2("p", "b"),
                      scada::make_config_6("p"),
                      scada::make_config_6_6("p", "b"),
                      scada::make_config_6_6_6("p", "b", "d")),
    [](const ::testing::TestParamInfo<scada::Configuration>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
        if (c == '+') c = 'p';
      }
      return "c" + name;
    });

}  // namespace
}  // namespace ct::sim
