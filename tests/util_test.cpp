// Unit tests for the util substrate: RNG, statistics, CSV/JSON writers,
// string helpers, tables, logging.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/fsio.h"
#include "util/json_writer.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace ct::util {
namespace {

// ---------------------------------------------------------------- rng

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NamedStreamsAreIndependent) {
  Rng a(7, "storm");
  Rng b(7, "surge");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ChildStreamsDeterministicAndDistinct) {
  const Rng parent(99);
  Rng c1 = parent.child("realization", 5);
  Rng c2 = parent.child("realization", 5);
  Rng c3 = parent.child("realization", 6);
  const std::uint64_t v1 = c1.next_u64();
  EXPECT_EQ(v1, c2.next_u64());
  EXPECT_NE(v1, c3.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(8);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(rng.uniform_int(0, 9))]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.truncated_normal(0.0, 1.0, -0.5, 0.5);
    EXPECT_GE(v, -0.5);
    EXPECT_LE(v, 0.5);
  }
}

TEST(Rng, TruncatedNormalPathologicalBoundsStillTerminate) {
  Rng rng(12);
  // Bounds 20 sigma away from the mean: rejection would "never" succeed.
  const double v = rng.truncated_normal(0.0, 1.0, 20.0, 21.0);
  EXPECT_GE(v, 20.0);
  EXPECT_LE(v, 21.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexMatchesWeights) {
  Rng rng(14);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(15);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, HashNameStableAndSensitive) {
  EXPECT_EQ(hash_name("abc"), hash_name("abc"));
  EXPECT_NE(hash_name("abc"), hash_name("abd"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

TEST(Xoshiro, JumpChangesState) {
  Xoshiro256 a(1);
  Xoshiro256 b(1);
  b.jump();
  EXPECT_NE(a.next(), b.next());
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, MergeEqualsBulk) {
  Rng rng(20);
  RunningStats bulk;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    bulk.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
  EXPECT_EQ(a.min(), bulk.min());
  EXPECT_EQ(a.max(), bulk.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const Interval iv = wilson_interval(30, 100);
  EXPECT_LE(iv.lo, 0.3);
  EXPECT_GE(iv.hi, 0.3);
  EXPECT_TRUE(iv.contains(0.3));
}

TEST(WilsonInterval, BoundedToUnitInterval) {
  const Interval zero = wilson_interval(0, 50);
  EXPECT_GE(zero.lo, 0.0);
  const Interval one = wilson_interval(50, 50);
  EXPECT_LE(one.hi, 1.0);
  EXPECT_GT(one.lo, 0.9);
}

TEST(WilsonInterval, WidthShrinksWithSamples) {
  const Interval small = wilson_interval(10, 100);
  const Interval large = wilson_interval(1000, 10000);
  EXPECT_LT(large.width(), small.width());
}

TEST(WilsonInterval, EmptySample) {
  const Interval iv = wilson_interval(0, 0);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_EQ(iv.hi, 1.0);
}

TEST(ClopperPearson, EndpointsAreExact) {
  // k = 0: lower bound is exactly 0; the exact upper bound is
  // 1 - (alpha/2)^(1/n).
  const Interval zero = clopper_pearson_interval(0, 10);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_NEAR(zero.hi, 1.0 - std::pow(0.025, 1.0 / 10.0), 1e-6);
  // k = n mirrors it: upper bound exactly 1.
  const Interval full = clopper_pearson_interval(10, 10);
  EXPECT_EQ(full.hi, 1.0);
  EXPECT_NEAR(full.lo, std::pow(0.025, 1.0 / 10.0), 1e-6);
}

TEST(ClopperPearson, ContainsPointEstimateAndUnitBounded) {
  const std::vector<std::pair<std::size_t, std::size_t>> cases = {
      {1, 7}, {30, 100}, {95, 1000}, {999, 1000}};
  for (const auto& [k, n] : cases) {
    const Interval iv = clopper_pearson_interval(k, n);
    const double p_hat = static_cast<double>(k) / static_cast<double>(n);
    EXPECT_TRUE(iv.contains(p_hat)) << k << "/" << n;
    EXPECT_GE(iv.lo, 0.0);
    EXPECT_LE(iv.hi, 1.0);
    EXPECT_LT(iv.lo, iv.hi);
  }
}

TEST(ClopperPearson, CoversAtLeastAsMuchAsWilson) {
  // The exact interval is conservative: it should (weakly) contain the
  // Wilson score interval away from the endpoints.
  const Interval exact = clopper_pearson_interval(30, 100);
  const Interval wilson = wilson_interval(30, 100);
  EXPECT_LE(exact.lo, wilson.lo + 1e-9);
  EXPECT_GE(exact.hi, wilson.hi - 1e-9);
}

TEST(ClopperPearson, WidthShrinksWithSamples) {
  const Interval small = clopper_pearson_interval(10, 100);
  const Interval large = clopper_pearson_interval(1000, 10000);
  EXPECT_LT(large.width(), small.width());
}

TEST(ClopperPearson, DegenerateInputs) {
  const Interval empty = clopper_pearson_interval(0, 0);
  EXPECT_EQ(empty.lo, 0.0);
  EXPECT_EQ(empty.hi, 1.0);
  // successes > n clamps rather than misbehaving.
  const Interval clamped = clopper_pearson_interval(20, 10);
  EXPECT_EQ(clamped.hi, 1.0);
}

TEST(MeanInterval, CoversTrueMeanUsually) {
  Rng rng(21);
  int covered = 0;
  for (int trial = 0; trial < 100; ++trial) {
    RunningStats s;
    for (int i = 0; i < 200; ++i) s.add(rng.normal(10.0, 3.0));
    if (mean_interval(s).contains(10.0)) ++covered;
  }
  EXPECT_GE(covered, 85);  // nominally 95
}

TEST(Histogram, CountsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  for (const double x : {0.5, 1.5, 2.5, 2.6, 9.9}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);  // 0.5 and 1.5
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, OutOfRangeSaturates) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  const auto median = h.quantile(0.5);
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(*median, 5.0, 1.0);
  EXPECT_FALSE(Histogram(0, 1, 1).quantile(0.5).has_value());
}

TEST(Histogram, InvalidArguments) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(ExactQuantile, InterpolatesAndClamps) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 2.5);
  EXPECT_THROW(exact_quantile({}, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------- csv

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.field("x").field(1.5).end_row();
  csv.field(std::int64_t{-3}).field(std::size_t{7}).end_row();
  EXPECT_EQ(out.str(), "a,b\nx,1.5\n-3,7\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, HeaderMustComeFirst) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("x").end_row();
  EXPECT_THROW(csv.header({"a"}), std::logic_error);
}

TEST(Csv, EndRowOnEmptyRowThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_THROW(csv.end_row(), std::logic_error);
}

TEST(Csv, ParseLineBasics) {
  EXPECT_EQ(parse_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_line(""), (std::vector<std::string>{""}));
  EXPECT_EQ(parse_csv_line("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, ParseLineQuoting) {
  EXPECT_EQ(parse_csv_line(R"("a,b",c)"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(parse_csv_line(R"("say ""hi""",x)"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
  EXPECT_EQ(parse_csv_line(R"("")"), (std::vector<std::string>{""}));
  EXPECT_THROW(parse_csv_line(R"("unterminated)"), std::invalid_argument);
}

TEST(Csv, ParseRoundTripsEscape) {
  for (const std::string& field :
       {std::string("plain"), std::string("with,comma"),
        std::string("say \"hi\""), std::string("")}) {
    const auto parsed = parse_csv_line(csv_escape(field) + "," + "tail");
    ASSERT_EQ(parsed.size(), 2u) << field;
    EXPECT_EQ(parsed[0], field);
  }
}

TEST(Csv, RowConvenience) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"p", "q,r"});
  EXPECT_EQ(out.str(), "p,\"q,r\"\n");
}

// ---------------------------------------------------------------- json

TEST(Json, SimpleObject) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object().kv("name", "x").kv("count", 3).kv("ok", true).end_object();
  EXPECT_TRUE(j.complete());
  EXPECT_EQ(out.str(), R"({"name":"x","count":3,"ok":true})");
}

TEST(Json, NestedContainers) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.key("items").begin_array().value(1).value(2).end_array();
  j.key("inner").begin_object().kv("d", 0.5).end_object();
  j.end_object();
  EXPECT_EQ(out.str(), R"({"items":[1,2],"inner":{"d":0.5}})");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, EscapesEveryControlCharacter) {
  // Locks the escaping contract: every byte below 0x20 either gets its
  // named short escape or a \u00xx sequence — raw control bytes in the
  // output would make the JSON unparseable.
  const std::set<char> named = {'\b', '\f', '\n', '\r', '\t'};
  for (int c = 0; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    const std::string out = json_escape(in);
    ASSERT_GE(out.size(), 2u) << "control byte " << c << " not escaped";
    EXPECT_EQ(out[0], '\\') << "control byte " << c;
    if (named.count(static_cast<char>(c)) == 0) {
      char expected[8];
      std::snprintf(expected, sizeof expected, "\\u%04x", c);
      EXPECT_EQ(out, expected);
    }
  }
}

TEST(Json, LoneUtf8ContinuationBytePassesThroughRaw) {
  // The writer does not validate UTF-8: bytes >= 0x20 — including a lone
  // continuation byte like 0x80 — pass through unmodified, leaving
  // encoding policy to the producer of the string.
  EXPECT_EQ(json_escape(std::string_view("\x80", 1)), std::string("\x80", 1));
  EXPECT_EQ(json_escape(std::string_view("a\xbfz", 3)),
            std::string("a\xbfz", 3));
}

TEST(Json, UnsignedOverloadsWidenLosslessly) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.kv("u", 7u);
  j.kv("size", static_cast<std::size_t>(1) << 40);
  j.kv("u16", static_cast<std::uint16_t>(65535));
  j.end_object();
  EXPECT_EQ(out.str(), R"({"u":7,"size":1099511627776,"u16":65535})");
}

TEST(Json, NonFiniteBecomesNull) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_array().value(std::nan("")).value(1.0).end_array();
  EXPECT_EQ(out.str(), "[null,1]");
}

TEST(Json, ErrorsOnMisuse) {
  std::ostringstream out;
  JsonWriter j(out);
  EXPECT_THROW(j.key("k"), std::logic_error);  // key outside object
  j.begin_object();
  EXPECT_THROW(j.value(1), std::logic_error);  // value without key
  EXPECT_THROW(j.end_array(), std::logic_error);
  j.kv("k", 1);
  j.end_object();
  EXPECT_THROW(j.begin_object(), std::logic_error);  // second root
}

TEST(Json, PrettyPrintsIndentation) {
  std::ostringstream out;
  JsonWriter j(out, /*pretty=*/true);
  j.begin_object().kv("a", 1).end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

// ---------------------------------------------------------------- log

TEST(Log, ParsesLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kWarn);
}

TEST(Log, LevelGating) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kOff));
  set_log_level(before);
}

TEST(Log, MonotonicTimestampFormatIsByteStable) {
  // Checkpoint provenance lines are parsed back from logs; the stamp
  // format is a contract (3 decimal places, leading '+', trailing 's').
  EXPECT_EQ(format_log_timestamp(0.0), "+0.000s");
  EXPECT_EQ(format_log_timestamp(12.3456), "+12.346s");
  EXPECT_EQ(format_log_timestamp(3600.25), "+3600.250s");
  const double a = log_uptime_seconds();
  const double b = log_uptime_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);  // steady clock: never goes backwards
}

// ---------------------------------------------------------------- fsio

TEST(Fsio, AtomicWriteFilePublishesAllOrNothing) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ct_fsio_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "record.txt").string();

  ASSERT_TRUE(atomic_write_file(path, "first\n"));
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // published, not half-written
  std::stringstream got;
  got << std::ifstream(path).rdbuf();
  EXPECT_EQ(got.str(), "first\n");

  // Overwrite is atomic too: the reader sees old-or-new, never a mix.
  ASSERT_TRUE(atomic_write_file(path, "second, longer contents\n"));
  got.str("");
  got << std::ifstream(path).rdbuf();
  EXPECT_EQ(got.str(), "second, longer contents\n");

  // A missing parent directory fails soft (no throw) and leaves no tmp.
  const std::string orphan = (dir / "no-such-dir" / "x").string();
  EXPECT_FALSE(atomic_write_file(orphan, "data"));
  EXPECT_FALSE(fs::exists(orphan + ".tmp"));
  fs::remove_all(dir);
}

TEST(Fsio, FsyncHelpersTolerateMissingPaths) {
  EXPECT_FALSE(fsync_file("/no/such/file/anywhere"));
  EXPECT_FALSE(fsync_parent_dir("/no/such/dir/anywhere/x"));
}

// ---------------------------------------------------------------- strings

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("config-6", "config"));
  EXPECT_FALSE(starts_with("6", "config"));
  EXPECT_TRUE(ends_with("fig6.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "figure.csv"));
}

TEST(Strings, ToLowerJoinFormat) {
  EXPECT_EQ(to_lower("HuRriCane"), "hurricane");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.905), "90.5%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Strings, EditDistance) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("jobs", "jobs"), 0u);
  EXPECT_EQ(edit_distance("job", "jobs"), 1u);      // insertion
  EXPECT_EQ(edit_distance("jobs", "jbs"), 1u);      // deletion
  EXPECT_EQ(edit_distance("jobs", "jabs"), 1u);     // substitution
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
}

TEST(Strings, ClosestMatchSuggestsNearbyFlag) {
  const std::vector<std::string> flags = {"jobs", "no-cache", "strict",
                                          "max-retries"};
  EXPECT_EQ(closest_match("job", flags), "jobs");
  EXPECT_EQ(closest_match("no-cahce", flags), "no-cache");
  EXPECT_EQ(closest_match("stric", flags), "strict");
  // Nothing plausible within the distance budget: no suggestion, which
  // is better than a misleading one.
  EXPECT_EQ(closest_match("verbose", flags), "");
  EXPECT_EQ(closest_match("jobs", {}), "");
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.set_columns({"name", "value"}, {Align::kLeft, Align::kRight});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| x      |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| longer |    22 |"), std::string::npos);
}

TEST(Table, SeparatorInsertsRule) {
  TextTable t;
  t.set_columns({"c"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // 5 rules: top, under header, separator, bottom... count '+---' lines.
  std::size_t rules = 0;
  std::istringstream stream(s);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, Validation) {
  TextTable t;
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_THROW(t.set_columns({"x"}), std::logic_error);
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace ct::util
