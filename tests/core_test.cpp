// Tests for the analysis core: the Table-I evaluator (generic vs
// transcribed), the Fig-5 pipeline, outcome distributions, and reporting.
#include <sstream>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "scada/configuration.h"
#include "threat/scenario.h"

namespace ct::core {
namespace {

using scada::Configuration;
using threat::OperationalState;
using threat::SiteStatus;
using threat::SystemState;
using threat::ThreatScenario;

SystemState make_state(std::vector<SiteStatus> status,
                       std::vector<int> intrusions) {
  SystemState s;
  s.site_status = std::move(status);
  s.intrusions = std::move(intrusions);
  return s;
}

// ------------------------------------------------ Table I, transcribed

TEST(TableOne, Config2Rows) {
  const Configuration c = scada::make_config_2("p");
  EXPECT_EQ(evaluate_table1(c, make_state({SiteStatus::kUp}, {0})),
            OperationalState::kGreen);
  EXPECT_EQ(evaluate_table1(c, make_state({SiteStatus::kFlooded}, {0})),
            OperationalState::kRed);
  EXPECT_EQ(evaluate_table1(c, make_state({SiteStatus::kIsolated}, {0})),
            OperationalState::kRed);
  EXPECT_EQ(evaluate_table1(c, make_state({SiteStatus::kUp}, {1})),
            OperationalState::kGray);
}

TEST(TableOne, Config22Rows) {
  const Configuration c = scada::make_config_2_2("p", "b");
  const auto up = SiteStatus::kUp;
  const auto down = SiteStatus::kFlooded;
  EXPECT_EQ(evaluate_table1(c, make_state({up, up}, {0, 0})),
            OperationalState::kGreen);
  EXPECT_EQ(evaluate_table1(c, make_state({down, up}, {0, 0})),
            OperationalState::kOrange);
  EXPECT_EQ(evaluate_table1(c, make_state({SiteStatus::kIsolated, up}, {0, 0})),
            OperationalState::kOrange);
  EXPECT_EQ(evaluate_table1(c, make_state({down, down}, {0, 0})),
            OperationalState::kRed);
  EXPECT_EQ(evaluate_table1(c, make_state({up, up}, {1, 0})),
            OperationalState::kGray);
  EXPECT_EQ(evaluate_table1(c, make_state({down, up}, {0, 1})),
            OperationalState::kGray);
  // An intrusion recorded at a flooded site has no functional server to
  // corrupt: the hurricane already silenced it.
  EXPECT_EQ(evaluate_table1(c, make_state({down, down}, {1, 0})),
            OperationalState::kRed);
}

TEST(TableOne, Config6Rows) {
  const Configuration c = scada::make_config_6("p");
  EXPECT_EQ(evaluate_table1(c, make_state({SiteStatus::kUp}, {1})),
            OperationalState::kGreen);  // tolerates one intrusion
  EXPECT_EQ(evaluate_table1(c, make_state({SiteStatus::kUp}, {2})),
            OperationalState::kGray);
  EXPECT_EQ(evaluate_table1(c, make_state({SiteStatus::kIsolated}, {1})),
            OperationalState::kRed);
}

TEST(TableOne, Config66Rows) {
  const Configuration c = scada::make_config_6_6("p", "b");
  const auto up = SiteStatus::kUp;
  const auto iso = SiteStatus::kIsolated;
  EXPECT_EQ(evaluate_table1(c, make_state({up, up}, {1, 0})),
            OperationalState::kGreen);
  EXPECT_EQ(evaluate_table1(c, make_state({iso, up}, {0, 1})),
            OperationalState::kOrange);
  EXPECT_EQ(evaluate_table1(c, make_state({iso, up}, {0, 2})),
            OperationalState::kGray);
  EXPECT_EQ(evaluate_table1(c, make_state({iso, iso}, {0, 0})),
            OperationalState::kRed);
}

TEST(TableOne, Config666Rows) {
  const Configuration c = scada::make_config_6_6_6("p", "b", "d");
  const auto up = SiteStatus::kUp;
  const auto down = SiteStatus::kFlooded;
  EXPECT_EQ(evaluate_table1(c, make_state({up, up, up}, {1, 0, 0})),
            OperationalState::kGreen);
  EXPECT_EQ(evaluate_table1(c, make_state({down, up, up}, {0, 1, 0})),
            OperationalState::kGreen);
  EXPECT_EQ(evaluate_table1(c, make_state({down, down, up}, {0, 0, 1})),
            OperationalState::kRed);
  EXPECT_EQ(evaluate_table1(c, make_state({up, up, up}, {1, 1, 0})),
            OperationalState::kGray);
  EXPECT_EQ(evaluate_table1(c, make_state({down, up, up}, {0, 1, 1})),
            OperationalState::kGray);
}

TEST(TableOne, UnknownConfigurationRejected) {
  Configuration c = scada::make_config_2("p");
  c.name = "9-9-9";
  EXPECT_THROW(evaluate_table1(c, make_state({SiteStatus::kUp}, {0})),
               std::invalid_argument);
  EXPECT_THROW(evaluate(c, make_state({}, {})), std::invalid_argument);
}

// --------------------------------- generic evaluator == Table I (sweep)

struct EvaluatorCase {
  const char* label;
  Configuration config;
};

class EvaluatorEquivalence : public ::testing::TestWithParam<EvaluatorCase> {};

TEST_P(EvaluatorEquivalence, GenericMatchesTranscribedTableOne) {
  const Configuration& config = GetParam().config;
  const std::size_t sites = config.sites.size();
  // Exhaustive sweep: every site-status combination x intrusion counts
  // 0..3 per site (beyond any reachable attack, to stress the rules).
  std::vector<std::size_t> radix(sites, 0);
  const std::array<SiteStatus, 3> statuses = {
      SiteStatus::kUp, SiteStatus::kFlooded, SiteStatus::kIsolated};
  std::size_t combos = 1;
  for (std::size_t i = 0; i < sites; ++i) combos *= 3;
  for (std::size_t code = 0; code < combos; ++code) {
    SystemState s;
    std::size_t rest = code;
    for (std::size_t i = 0; i < sites; ++i) {
      s.site_status.push_back(statuses[rest % 3]);
      rest /= 3;
    }
    std::size_t int_combos = 1;
    for (std::size_t i = 0; i < sites; ++i) int_combos *= 4;
    for (std::size_t icode = 0; icode < int_combos; ++icode) {
      s.intrusions.clear();
      std::size_t irest = icode;
      for (std::size_t i = 0; i < sites; ++i) {
        s.intrusions.push_back(static_cast<int>(irest % 4));
        irest /= 4;
      }
      EXPECT_EQ(evaluate(config, s), evaluate_table1(config, s))
          << GetParam().label << " code=" << code << " icode=" << icode;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, EvaluatorEquivalence,
    ::testing::Values(EvaluatorCase{"c2", scada::make_config_2("p")},
                      EvaluatorCase{"c22", scada::make_config_2_2("p", "b")},
                      EvaluatorCase{"c6", scada::make_config_6("p")},
                      EvaluatorCase{"c66", scada::make_config_6_6("p", "b")},
                      EvaluatorCase{"c666",
                                    scada::make_config_6_6_6("p", "b", "d")}),
    [](const ::testing::TestParamInfo<EvaluatorCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------- outcomes

TEST(OutcomeDistribution, ProbabilitiesSumToOne) {
  OutcomeDistribution d;
  d.add(OperationalState::kGreen);
  d.add(OperationalState::kGreen);
  d.add(OperationalState::kRed);
  d.add(OperationalState::kGray);
  EXPECT_EQ(d.total(), 4u);
  EXPECT_DOUBLE_EQ(d.probability(OperationalState::kGreen), 0.5);
  EXPECT_DOUBLE_EQ(d.probability(OperationalState::kOrange), 0.0);
  const double sum = d.probability(OperationalState::kGreen) +
                     d.probability(OperationalState::kOrange) +
                     d.probability(OperationalState::kRed) +
                     d.probability(OperationalState::kGray);
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(d.expected_badness(), (0.0 + 0.0 + 2.0 + 3.0) / 4.0);
}

TEST(OutcomeDistribution, EmptyIsSafe) {
  const OutcomeDistribution d;
  EXPECT_EQ(d.total(), 0u);
  EXPECT_DOUBLE_EQ(d.probability(OperationalState::kGreen), 0.0);
  EXPECT_DOUBLE_EQ(d.expected_badness(), 0.0);
}

// ---------------------------------------------------------------- pipeline

/// Builds a synthetic realization in which exactly the given assets failed.
surge::HurricaneRealization synthetic_realization(
    std::vector<std::string> failed_assets) {
  surge::HurricaneRealization r;
  for (std::string& id : failed_assets) {
    surge::AssetImpact impact;
    impact.asset_id = std::move(id);
    impact.failed = true;
    impact.inundation_depth_m = 1.0;
    r.impacts.push_back(std::move(impact));
  }
  return r;
}

TEST(Pipeline, OutcomeForKnownCases) {
  const AnalysisPipeline pipeline;
  const Configuration c22 = scada::make_config_2_2("hon", "waiau");

  // No flooding, hurricane only: green.
  EXPECT_EQ(pipeline.outcome_for(c22, ThreatScenario::kHurricane,
                                 synthetic_realization({})),
            OperationalState::kGreen);
  // Primary flooded: orange (cold backup takes over).
  EXPECT_EQ(pipeline.outcome_for(c22, ThreatScenario::kHurricane,
                                 synthetic_realization({"hon"})),
            OperationalState::kOrange);
  // Both flooded: red.
  EXPECT_EQ(pipeline.outcome_for(c22, ThreatScenario::kHurricane,
                                 synthetic_realization({"hon", "waiau"})),
            OperationalState::kRed);
  // Intrusion scenario: gray unless everything flooded.
  EXPECT_EQ(pipeline.outcome_for(c22, ThreatScenario::kHurricaneIntrusion,
                                 synthetic_realization({})),
            OperationalState::kGray);
  EXPECT_EQ(pipeline.outcome_for(c22, ThreatScenario::kHurricaneIntrusion,
                                 synthetic_realization({"hon", "waiau"})),
            OperationalState::kRed);
}

TEST(Pipeline, SixSixSixUnderFullAttack) {
  const AnalysisPipeline pipeline;
  const Configuration c = scada::make_config_6_6_6("hon", "waiau", "dc");
  EXPECT_EQ(
      pipeline.outcome_for(c, ThreatScenario::kHurricaneIntrusionIsolation,
                           synthetic_realization({})),
      OperationalState::kGreen);
  EXPECT_EQ(
      pipeline.outcome_for(c, ThreatScenario::kHurricaneIntrusionIsolation,
                           synthetic_realization({"hon"})),
      OperationalState::kRed);  // isolation takes a second site
}

TEST(Pipeline, ExhaustiveAttackerModelAgrees) {
  const AnalysisPipeline greedy(AttackerModel::kGreedy);
  const AnalysisPipeline exhaustive(AttackerModel::kExhaustive);
  const auto configs = scada::paper_configurations("hon", "waiau", "dc");
  const std::vector<surge::HurricaneRealization> realizations = {
      synthetic_realization({}), synthetic_realization({"hon"}),
      synthetic_realization({"waiau"}), synthetic_realization({"hon", "waiau"}),
      synthetic_realization({"hon", "waiau", "dc"})};
  for (const Configuration& config : configs) {
    for (const ThreatScenario scenario : threat::all_scenarios()) {
      for (const auto& r : realizations) {
        EXPECT_EQ(greedy.outcome_for(config, scenario, r),
                  exhaustive.outcome_for(config, scenario, r))
            << config.name << " " << threat::scenario_name(scenario);
      }
    }
  }
}

TEST(Pipeline, AnalyzeAggregates) {
  const AnalysisPipeline pipeline;
  const Configuration c2 = scada::make_config_2("hon");
  std::vector<surge::HurricaneRealization> batch;
  for (int i = 0; i < 9; ++i) batch.push_back(synthetic_realization({}));
  batch.push_back(synthetic_realization({"hon"}));
  const ScenarioResult result =
      pipeline.analyze(c2, ThreatScenario::kHurricane, batch);
  EXPECT_EQ(result.config_name, "2");
  EXPECT_EQ(result.outcomes.total(), 10u);
  EXPECT_DOUBLE_EQ(result.outcomes.probability(OperationalState::kGreen), 0.9);
  EXPECT_DOUBLE_EQ(result.outcomes.probability(OperationalState::kRed), 0.1);
}

TEST(Pipeline, AnalyzeAllCoversConfigs) {
  const AnalysisPipeline pipeline;
  const auto configs = scada::paper_configurations("hon", "waiau", "dc");
  const std::vector<surge::HurricaneRealization> batch = {
      synthetic_realization({})};
  const auto results =
      pipeline.analyze_all(configs, ThreatScenario::kHurricane, batch);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_EQ(r.outcomes.total(), 1u);
    EXPECT_DOUBLE_EQ(r.outcomes.probability(OperationalState::kGreen), 1.0);
  }
}

// ---------------------------------------------------------------- report

TEST(Report, PaperExpectationsExistForAllFigures) {
  for (const std::string& fig : paper_figure_ids()) {
    const auto& expected = paper_expected(fig);
    EXPECT_EQ(expected.size(), 5u) << fig;
    for (const PaperProfile& p : expected) {
      EXPECT_NEAR(p.green + p.orange + p.red + p.gray, 1.0, 1e-9)
          << fig << " " << p.config;
    }
  }
  EXPECT_THROW(paper_expected("fig99"), std::invalid_argument);
}

TEST(Report, MaxAbsDeltaZeroWhenMeasuredMatchesPaper) {
  // Construct results that exactly reproduce the fig6 profile with 200
  // realizations: 181 green / 19 red = 90.5% / 9.5%.
  std::vector<ScenarioResult> results;
  for (const PaperProfile& p : paper_expected("fig6")) {
    ScenarioResult r;
    r.config_name = p.config;
    r.scenario = ThreatScenario::kHurricane;
    for (int i = 0; i < 181; ++i) r.outcomes.add(OperationalState::kGreen);
    for (int i = 0; i < 19; ++i) r.outcomes.add(OperationalState::kRed);
    results.push_back(std::move(r));
  }
  EXPECT_NEAR(max_abs_delta(results, paper_expected("fig6")), 0.0, 1e-9);
  EXPECT_GT(max_abs_delta(results, paper_expected("fig8")), 0.5);
}

TEST(Report, TablesRender) {
  std::vector<ScenarioResult> results;
  ScenarioResult r;
  r.config_name = "2";
  r.scenario = ThreatScenario::kHurricane;
  r.outcomes.add(OperationalState::kGreen);
  results.push_back(r);
  const std::string profile = profile_table(results).to_string();
  EXPECT_NE(profile.find("100.0%"), std::string::npos);
  const std::string comparison =
      comparison_table(results, paper_expected("fig6")).to_string();
  EXPECT_NE(comparison.find("green"), std::string::npos);
  EXPECT_NE(comparison.find("pp"), std::string::npos);
}

TEST(Report, JsonOutput) {
  std::vector<ScenarioResult> results;
  ScenarioResult r;
  r.config_name = "6+6+6";
  r.scenario = ThreatScenario::kHurricane;
  for (int i = 0; i < 9; ++i) r.outcomes.add(OperationalState::kGreen);
  r.outcomes.add(OperationalState::kRed);
  results.push_back(r);

  std::ostringstream out;
  write_profiles_json(out, "fig6", results);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"figure\":\"fig6\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"6+6+6\""), std::string::npos);
  EXPECT_NE(json.find("\"green\":0.9"), std::string::npos);
  EXPECT_NE(json.find("\"paper\""), std::string::npos);
  EXPECT_NE(json.find("\"max_abs_delta\""), std::string::npos);

  // Unknown figure id: no paper reference section, still valid output.
  std::ostringstream custom;
  write_profiles_json(custom, "my-study", results);
  EXPECT_EQ(custom.str().find("\"paper\""), std::string::npos);
  EXPECT_NE(custom.str().find("\"measured\""), std::string::npos);
}

TEST(Report, CsvOutput) {
  std::vector<ScenarioResult> results;
  ScenarioResult r;
  r.config_name = "6";
  r.scenario = ThreatScenario::kHurricane;
  r.outcomes.add(OperationalState::kGreen);
  results.push_back(r);
  std::ostringstream out;
  write_profiles_csv(out, "fig6", results);
  const std::string csv = out.str();
  // Header + 4 state rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_NE(csv.find("fig6,6,Hurricane,green,1"), std::string::npos);
}

// ------------------------------------- realization CSV graceful degradation

TEST(RealizationCsv, RoundTripsThroughWriterAndLoader) {
  std::vector<surge::HurricaneRealization> realizations(2);
  realizations[0].index = 0;
  realizations[0].peak_wind_ms = 42.5;
  realizations[0].max_shoreline_wse_m = 1.25;
  surge::AssetImpact impact;
  impact.asset_id = "p";
  impact.failed = true;
  realizations[0].impacts.push_back(impact);
  realizations[1].index = 1;
  realizations[1].peak_wind_ms = 38.0;

  std::ostringstream out;
  write_realizations_csv(out, realizations);
  std::istringstream in(out.str());
  const LoadedRealizations loaded = load_realizations_csv(in);
  EXPECT_EQ(loaded.skipped_rows, 0u);
  ASSERT_EQ(loaded.realizations.size(), 2u);
  EXPECT_TRUE(loaded.realizations[0].asset_failed("p"));
  EXPECT_FALSE(loaded.realizations[1].asset_failed("p"));
  EXPECT_DOUBLE_EQ(loaded.realizations[0].peak_wind_ms, 42.5);
  EXPECT_DOUBLE_EQ(loaded.realizations[0].max_shoreline_wse_m, 1.25);
}

TEST(RealizationCsv, MalformedRowsAreSkippedNotFatal) {
  const std::string csv =
      "realization,flooded_assets,peak_wind_ms,max_wse_m\n"
      "# comment line\n"
      "0,,40.0,1.0\n"
      "oops,not,a,row\n"        // non-numeric index
      "1,p,45.0\n"              // wrong field count
      "2,p,forty,2.0\n"         // non-numeric wind
      "3,p,45.0,2.0\n";
  std::istringstream in(csv);
  ::testing::internal::CaptureStderr();
  const LoadedRealizations loaded = load_realizations_csv(in);
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(loaded.skipped_rows, 3u);
  ASSERT_EQ(loaded.realizations.size(), 2u);
  EXPECT_TRUE(loaded.realizations[1].asset_failed("p"));
  EXPECT_NE(stderr_text.find("malformed realization row"), std::string::npos);
}

TEST(RealizationCsv, QuotedFieldsParseAndBadQuotingIsSkipped) {
  // Quoted asset lists (with an embedded comma and an escaped quote) must
  // parse; an unterminated quote is a malformed row, not a crash.
  const std::string csv =
      "realization,flooded_assets,peak_wind_ms,max_wse_m\n"
      "0,\"p;b\",40.0,1.0\n"            // quoted list of two assets
      "1,\"p,still p\",41.0,1.1\n"      // embedded comma stays one field
      "2,\"say \"\"p\"\"\",42.0,1.2\n"  // escaped quote
      "3,\"p,45.0,2.0\n";               // unterminated quote: skipped
  std::istringstream in(csv);
  ::testing::internal::CaptureStderr();
  const LoadedRealizations loaded = load_realizations_csv(in);
  ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(loaded.skipped_rows, 1u);
  ASSERT_EQ(loaded.realizations.size(), 3u);
  EXPECT_TRUE(loaded.realizations[0].asset_failed("p"));
  EXPECT_TRUE(loaded.realizations[0].asset_failed("b"));
  EXPECT_TRUE(loaded.realizations[1].asset_failed("p,still p"));
  EXPECT_TRUE(loaded.realizations[2].asset_failed("say \"p\""));
}

TEST(RealizationCsv, ShortRowsAndNonNumericCellsCountExactly) {
  const std::string csv =
      "realization,flooded_assets,peak_wind_ms,max_wse_m\n"
      "0,p\n"                   // 2 fields
      "1\n"                     // 1 field
      "2,p,45.0,2.0,extra\n"    // 5 fields
      "three,p,45.0,2.0\n"      // non-numeric index
      "4,p,fast,2.0\n"          // non-numeric wind
      "5,p,45.0,high\n"         // non-numeric surge
      "6,p,45.0,2.0\n";         // the one good row
  std::istringstream in(csv);
  ::testing::internal::CaptureStderr();
  const LoadedRealizations loaded = load_realizations_csv(in);
  ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(loaded.skipped_rows, 6u);
  ASSERT_EQ(loaded.realizations.size(), 1u);
  EXPECT_EQ(loaded.realizations[0].index, 6u);
}

TEST(RealizationCsv, TrailingBlankLinesAreNeitherRowsNorSkips) {
  const std::string csv =
      "realization,flooded_assets,peak_wind_ms,max_wse_m\n"
      "0,p,45.0,2.0\n"
      "\n"
      "   \n"
      "\n";
  std::istringstream in(csv);
  const LoadedRealizations loaded = load_realizations_csv(in);
  EXPECT_EQ(loaded.skipped_rows, 0u);
  EXPECT_EQ(loaded.realizations.size(), 1u);
}

TEST(RealizationCsv, AnalyzeCsvCountsSkippedAndClassifiesTheRest) {
  const std::string csv =
      "realization,flooded_assets,peak_wind_ms,max_wse_m\n"
      "0,,40.0,1.0\n"           // nothing flooded: green
      "garbage row here\n"      // skipped
      "1,p,45.0,2.0\n";         // primary flooded: red for config "2"
  std::istringstream in(csv);
  const AnalysisPipeline pipeline;
  const ScenarioResult result = pipeline.analyze_csv(
      scada::make_config_2("p"), ThreatScenario::kHurricane, in);
  EXPECT_EQ(result.skipped_realizations, 1u);
  EXPECT_EQ(result.outcomes.total(), 2u);
  EXPECT_EQ(result.outcomes.count(OperationalState::kGreen), 1u);
  EXPECT_EQ(result.outcomes.count(OperationalState::kRed), 1u);
}

}  // namespace
}  // namespace ct::core
