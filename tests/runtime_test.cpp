// Unit tests for the ensemble runtime's building blocks: the work-stealing
// TaskPool (coverage + determinism + exception propagation), the typed
// content digest, and the two-layer ResultStore (LRU, disk round-trip,
// corruption tolerance, version invalidation).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/fault_profile.h"
#include "runtime/result_store.h"
#include "runtime/task_pool.h"
#include "util/digest.h"
#include "util/error.h"

namespace ct {
namespace {

namespace fs = std::filesystem;

// --- TaskPool ---------------------------------------------------------------

TEST(TaskPoolTest, EveryIndexRunsExactlyOnce) {
  for (const unsigned jobs : {0u, 1u, 4u, 8u}) {
    runtime::TaskPool pool(jobs);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> seen(kN);
    pool.parallel_for_each(kN, 7, [&](std::size_t i) { seen[i]++; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(TaskPoolTest, InlinePoolSpawnsNoWorkers) {
  runtime::TaskPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.parallelism(), 1u);
}

TEST(TaskPoolTest, HandlesEmptyAndOversizedChunks) {
  runtime::TaskPool pool(4);
  int calls = 0;
  pool.parallel_for_each(0, 16, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::atomic<int> count{0};
  pool.parallel_for_each(5, 1000, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 5);

  // chunk == 0 must not divide by zero; it is treated as 1.
  count = 0;
  pool.parallel_for_ranges(3, 0, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 3);
}

/// The floating-point reduction must be bit-identical at every thread
/// count: chunk boundaries and fold order depend only on (n, chunk).
TEST(TaskPoolTest, MapReduceBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 10007;  // prime: ragged final chunk
  const auto run = [&](unsigned jobs) {
    runtime::TaskPool pool(jobs);
    return pool.map_reduce(
        kN, 13, 0.0,
        [](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            s += 1.0 / (1.0 + static_cast<double>(i) * 0.1);
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  for (const unsigned jobs : {2u, 4u, 8u}) {
    const double parallel = run(jobs);
    EXPECT_EQ(serial, parallel) << "jobs " << jobs;  // exact, not NEAR
  }
}

TEST(TaskPoolTest, FirstExceptionPropagatesAndPoolSurvives) {
  runtime::TaskPool pool(4);
  EXPECT_THROW(pool.parallel_for_each(100, 3,
                                      [&](std::size_t i) {
                                        if (i == 37) {
                                          throw std::runtime_error("boom");
                                        }
                                      }),
               std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for_each(50, 4, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskPoolTest, NestedParallelForDoesNotDeadlock) {
  runtime::TaskPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for_each(4, 1, [&](std::size_t) {
    pool.parallel_for_each(25, 4, [&](std::size_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 100);
}

TEST(TaskPoolTest, SubmissionBeyondDequeCapacityCompletes) {
  runtime::TaskPool pool(2);
  const std::size_t n = runtime::TaskPool::kDequeCapacity * 4;
  std::atomic<std::size_t> count{0};
  pool.parallel_for_each(n, 1, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), n);
}

// --- CancellationToken ------------------------------------------------------

TEST(CancellationTokenTest, ExplicitCancelThrowsTypedError) {
  runtime::CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_NO_THROW(token.poll("test"));
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  try {
    token.poll("test");
    FAIL() << "poll must throw after cancel";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    EXPECT_EQ(e.origin(), "test");
  }
}

TEST(CancellationTokenTest, DeadlineExpiryThrowsTimeout) {
  const runtime::CancellationToken token(std::chrono::milliseconds(1));
  EXPECT_TRUE(token.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(token.cancelled());
  try {
    token.poll("kernel");
    FAIL() << "poll must throw past the deadline";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
}

TEST(CancellationTokenTest, ZeroTimeoutMeansNoDeadline) {
  const runtime::CancellationToken token(std::chrono::milliseconds(0));
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
}

// --- for_each_isolated ------------------------------------------------------

TEST(IsolatedRunTest, FailuresAreContainedAndSortedAtAnyJobs) {
  for (const unsigned jobs : {1u, 4u, 8u}) {
    runtime::TaskPool pool(jobs);
    constexpr std::size_t kN = 200;
    std::vector<std::atomic<int>> runs(kN);
    const auto result = pool.for_each_isolated(
        kN, 7,
        [&](std::size_t i, unsigned, const runtime::CancellationToken&) {
          runs[i]++;
          if (i % 31 == 0) {
            throw Error(ErrorCode::kNumeric, "test", "deterministic boom");
          }
        });
    // Indices 0, 31, 62, ... fail; everything else ran exactly once.
    std::vector<std::size_t> expected_failures;
    for (std::size_t i = 0; i < kN; i += 31) expected_failures.push_back(i);
    ASSERT_EQ(result.failures.size(), expected_failures.size())
        << "jobs " << jobs;
    for (std::size_t f = 0; f < result.failures.size(); ++f) {
      EXPECT_EQ(result.failures[f].index, expected_failures[f]);
      EXPECT_EQ(result.failures[f].attempts, 1u);  // max_retries = 0
      EXPECT_EQ(util::classify_exception(result.failures[f].error),
                ErrorCode::kNumeric);
    }
    // max_retries = 0: every index — failing or not — ran exactly once.
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "index " << i;
    }
  }
}

TEST(IsolatedRunTest, RetryHealsTransientFailure) {
  runtime::TaskPool pool(4);
  constexpr std::size_t kN = 100;
  runtime::TaskOptions options;
  options.max_retries = 2;
  std::atomic<int> first_attempts{0};
  const auto result = pool.for_each_isolated(
      kN, 5,
      [&](std::size_t i, unsigned attempt,
          const runtime::CancellationToken&) {
        if (i % 10 == 3 && attempt == 1) {
          first_attempts++;
          throw std::runtime_error("transient");
        }
      },
      options);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(first_attempts.load(), 10);  // indices 3, 13, ..., 93
  EXPECT_EQ(result.retries, 10u);        // one healing retry each
}

TEST(IsolatedRunTest, ExhaustedRetriesRecordAttemptCount) {
  runtime::TaskPool pool(2);
  runtime::TaskOptions options;
  options.max_retries = 3;
  const auto result = pool.for_each_isolated(
      10, 2,
      [&](std::size_t i, unsigned, const runtime::CancellationToken&) {
        if (i == 4) throw std::runtime_error("permanent");
      },
      options);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, 4u);
  EXPECT_EQ(result.failures[0].attempts, 4u);  // 1 + 3 retries
  EXPECT_EQ(result.retries, 3u);
}

TEST(IsolatedRunTest, WatchdogContainsHungTask) {
  runtime::TaskPool pool(2);
  runtime::TaskOptions options;
  options.timeout = std::chrono::milliseconds(20);
  std::atomic<int> completed{0};
  const auto result = pool.for_each_isolated(
      8, 1,
      [&](std::size_t i, unsigned, const runtime::CancellationToken& token) {
        if (i == 5) {
          // A cooperative "hung" kernel: loops until the watchdog fires.
          for (;;) {
            token.poll("hung-kernel");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        completed++;
      },
      options);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, 5u);
  EXPECT_EQ(util::classify_exception(result.failures[0].error),
            ErrorCode::kTimeout);
  EXPECT_EQ(completed.load(), 7);  // every other index still ran
}

// --- RuntimeFaultProfile ----------------------------------------------------

TEST(FaultProfileTest, ParsesDirectives) {
  const auto p = runtime::RuntimeFaultProfile::parse(
      "throw:every=20;nan:every=25,offset=3;delay:every=10,ms=50;cache-write");
  EXPECT_TRUE(p.any());
  EXPECT_EQ(p.throw_rule.every, 20u);
  EXPECT_EQ(p.nan_rule.every, 25u);
  EXPECT_EQ(p.nan_rule.offset, 3u);
  EXPECT_EQ(p.delay_rule.every, 10u);
  EXPECT_EQ(p.delay.count(), 50);
  EXPECT_TRUE(p.cache_write_failure);
}

TEST(FaultProfileTest, EmptyAndNoneAreOff) {
  EXPECT_FALSE(runtime::RuntimeFaultProfile::parse("").any());
  EXPECT_FALSE(runtime::RuntimeFaultProfile::parse("none").any());
  EXPECT_FALSE(runtime::RuntimeFaultProfile::parse("off").any());
}

TEST(FaultProfileTest, MalformedSpecIsLoud) {
  for (const char* bad : {"explode:every=3", "throw", "throw:every=0",
                          "throw:every=x", "throw:bogus=1"}) {
    try {
      runtime::RuntimeFaultProfile::parse(bad);
      FAIL() << "expected parse failure for: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << bad;
    }
  }
}

TEST(FaultProfileTest, RuleFiringIsPureFunctionOfIndexAndAttempt) {
  runtime::FaultRule rule;
  rule.every = 5;
  rule.offset = 2;
  rule.attempts = 1;
  EXPECT_TRUE(rule.fires(2, 1));
  EXPECT_TRUE(rule.fires(7, 1));
  EXPECT_FALSE(rule.fires(3, 1));   // wrong residue
  EXPECT_FALSE(rule.fires(2, 2));   // retry heals: attempt 2 passes
  runtime::FaultRule off;
  EXPECT_FALSE(off.fires(0, 1));
}

// --- Digest -----------------------------------------------------------------

TEST(DigestTest, StableAndHexFormatted) {
  util::Digest a;
  a.str("hello").u64(42);
  util::Digest b;
  b.str("hello").u64(42);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 32u);
  for (const char c : a.hex()) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

/// Length-prefixed typed framing: concatenation and type confusion must not
/// collide.
TEST(DigestTest, FramingDisambiguates) {
  util::Digest ab_c;
  ab_c.str("ab").str("c");
  util::Digest a_bc;
  a_bc.str("a").str("bc");
  EXPECT_NE(ab_c.hex(), a_bc.hex());

  util::Digest as_u64;
  as_u64.u64(7);
  util::Digest as_i64;
  as_i64.i64(7);
  util::Digest as_f64;
  as_f64.f64(7.0);
  EXPECT_NE(as_u64.hex(), as_i64.hex());
  EXPECT_NE(as_u64.hex(), as_f64.hex());
  EXPECT_NE(as_i64.hex(), as_f64.hex());

  util::Digest empty1;
  util::Digest with_empty;
  with_empty.str("");
  EXPECT_NE(empty1.hex(), with_empty.hex());
}

TEST(DigestTest, SensitiveToEveryInput) {
  util::Digest base;
  base.str("topology").u64(1000).f64(0.0).boolean(true);
  util::Digest flipped;
  flipped.str("topology").u64(1000).f64(0.0).boolean(false);
  EXPECT_NE(base.hex(), flipped.hex());
}

// --- ResultStore ------------------------------------------------------------

runtime::CachedCounts sample_counts() {
  runtime::CachedCounts c;
  c.counts = {700, 150, 100, 50};
  c.total = 1000;
  c.skipped = 2;
  return c;
}

std::string test_key(char fill = 'a') { return std::string(32, fill); }

TEST(ResultStoreTest, MemoryRoundTripAndStats) {
  runtime::ResultStore store;
  EXPECT_FALSE(store.lookup(test_key()).has_value());
  store.store(test_key(), sample_counts());
  const auto hit = store.lookup(test_key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, sample_counts());
  const auto stats = store.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultStoreTest, LruEvictsOldestEntry) {
  runtime::ResultStoreOptions options;
  options.memory_entries = 2;
  runtime::ResultStore store(options);
  store.store(test_key('a'), sample_counts());
  store.store(test_key('b'), sample_counts());
  // Touch 'a' so 'b' becomes the eviction victim.
  EXPECT_TRUE(store.lookup(test_key('a')).has_value());
  store.store(test_key('c'), sample_counts());
  EXPECT_TRUE(store.lookup(test_key('a')).has_value());
  EXPECT_FALSE(store.lookup(test_key('b')).has_value());
  EXPECT_TRUE(store.lookup(test_key('c')).has_value());
}

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("ct_store_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    options_.disk = true;
    options_.disk_dir = dir_.string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Path of the single record under the cache dir (the record naming
  /// scheme is an implementation detail; tests find it by extension).
  fs::path record_path() {
    for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
      if (entry.is_regular_file()) return entry.path();
    }
    return {};
  }

  fs::path dir_;
  runtime::ResultStoreOptions options_;
};

TEST_F(DiskStoreTest, SharedAcrossInstances) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  runtime::ResultStore reader(options_);
  const auto hit = reader.lookup(test_key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, sample_counts());
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  // A disk hit is promoted to memory: the second lookup is a memory hit.
  EXPECT_TRUE(reader.lookup(test_key()).has_value());
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().hits, 2u);
}

TEST_F(DiskStoreTest, TruncatedRecordIsMissThenRewritten) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  const fs::path record = record_path();
  ASSERT_FALSE(record.empty());
  fs::resize_file(record, fs::file_size(record) / 2);

  runtime::ResultStore store(options_);
  EXPECT_FALSE(store.lookup(test_key()).has_value());
  EXPECT_EQ(store.stats().corrupt_discarded, 1u);

  // The next store() heals the record for future processes.
  store.store(test_key(), sample_counts());
  runtime::ResultStore reader(options_);
  EXPECT_TRUE(reader.lookup(test_key()).has_value());
}

TEST_F(DiskStoreTest, GarbageRecordIsMissNeverCrash) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  {
    std::ofstream out(record_path(), std::ios::trunc | std::ios::binary);
    out << "\x00\xff not a record at all \x7f garbage\nmore\n";
  }
  runtime::ResultStore store(options_);
  EXPECT_FALSE(store.lookup(test_key()).has_value());
  EXPECT_EQ(store.stats().corrupt_discarded, 1u);
}

TEST_F(DiskStoreTest, TamperedVersionInvalidatesRecord) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  // Rewrite the header's version field: a record written by any other
  // format version must read as a miss (the checksum binds the version, so
  // old-format records can never alias new-format ones).
  const fs::path record = record_path();
  std::stringstream contents;
  contents << std::ifstream(record).rdbuf();
  std::string text = contents.str();
  const std::string needle = "ctresult 1";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "ctresult 0");
  std::ofstream(record, std::ios::trunc) << text;

  runtime::ResultStore store(options_);
  EXPECT_FALSE(store.lookup(test_key()).has_value());
  EXPECT_EQ(store.stats().corrupt_discarded, 1u);
}

TEST_F(DiskStoreTest, HalfWrittenTmpIsIgnoredAndCollectedOnOpen) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  const fs::path record = record_path();
  ASSERT_FALSE(record.empty());
  // A crash between tmp-write and rename leaves a ".tmp" sibling that
  // never became a record. It must never serve a lookup, and the next
  // open garbage-collects it.
  const fs::path tmp = record.string() + ".tmp";
  std::ofstream(tmp, std::ios::binary) << "ctresult 1 half-writ";
  ASSERT_TRUE(fs::exists(tmp));

  runtime::ResultStore store(options_);
  EXPECT_FALSE(fs::exists(tmp)) << "leftover tmp survived open";
  const auto hit = store.lookup(test_key());
  ASSERT_TRUE(hit.has_value());  // the published record is untouched
  EXPECT_EQ(*hit, sample_counts());
  EXPECT_EQ(store.stats().corrupt_discarded, 0u);
}

TEST_F(DiskStoreTest, RecordUnderWrongKeyIsMiss) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key('a'), sample_counts());
  }
  // Simulate key collision/rename corruption: serve key-a's record when
  // key-b is asked for. The embedded key must reject it.
  runtime::ResultStore probe(options_);
  probe.store(test_key('b'), sample_counts());
  fs::path a_path, b_path;
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(test_key('a')) != std::string::npos) a_path = entry.path();
    if (name.find(test_key('b')) != std::string::npos) b_path = entry.path();
  }
  ASSERT_FALSE(a_path.empty());
  ASSERT_FALSE(b_path.empty());
  fs::copy_file(a_path, b_path, fs::copy_options::overwrite_existing);

  runtime::ResultStore store(options_);
  EXPECT_FALSE(store.lookup(test_key('b')).has_value());
  EXPECT_EQ(store.stats().corrupt_discarded, 1u);
}

TEST_F(DiskStoreTest, HostileKeysNeverTouchDisk) {
  runtime::ResultStore store(options_);
  // Keys are produced by our own digest (lowercase hex), but the store
  // must not turn anything else into a path traversal.
  for (const std::string& key :
       {std::string("../../etc/passwd"), std::string("UPPER"),
        std::string(200, 'a'), std::string("")}) {
    store.store(key, sample_counts());
    // In-memory layer may still serve it; disk must hold only safe names.
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().stem().string();
    EXPECT_LE(name.size(), 128u);
    for (const char c : name) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
          << "unexpected on-disk record name: " << name;
    }
  }
}

TEST_F(DiskStoreTest, InjectedWriteFailureIsSoftAndCounted) {
  options_.inject_write_failure = true;
  runtime::ResultStore store(options_);
  EXPECT_TRUE(store.disk_active());
  store.store(test_key(), sample_counts());
  // The write failed softly: memory still serves the result, the failure
  // is counted, and nothing landed on disk.
  EXPECT_TRUE(store.lookup(test_key()).has_value());
  EXPECT_EQ(store.stats().write_failures, 1u);
  EXPECT_TRUE(record_path().empty());

  runtime::ResultStoreOptions clean = options_;
  clean.inject_write_failure = false;
  runtime::ResultStore reader(clean);
  EXPECT_FALSE(reader.lookup(test_key()).has_value());
}

TEST_F(DiskStoreTest, RepeatedWriteFailuresDisableDiskLayer) {
  options_.inject_write_failure = true;
  runtime::ResultStore store(options_);
  for (char k = 'a';
       k < 'a' + static_cast<char>(
                     runtime::ResultStore::kMaxConsecutiveWriteFailures);
       ++k) {
    EXPECT_TRUE(store.disk_active());
    store.store(test_key(k), sample_counts());
  }
  // After the threshold the disk layer self-disables: further stores are
  // memory-only and the failure counter stops climbing.
  EXPECT_FALSE(store.disk_active());
  store.store(test_key('z'), sample_counts());
  EXPECT_EQ(store.stats().write_failures,
            runtime::ResultStore::kMaxConsecutiveWriteFailures);
  EXPECT_TRUE(store.lookup(test_key('z')).has_value());
}

TEST(ResultStoreDirTest, UnusableDiskDirDegradesToMemory) {
  // A regular file where the cache dir should be: every disk operation
  // fails (even for root), and the store must shrug it off.
  const fs::path blocker = fs::path(::testing::TempDir()) / "ct_store_blocker";
  std::ofstream(blocker) << "not a directory";
  runtime::ResultStoreOptions options;
  options.disk = true;
  options.disk_dir = (blocker / "sub").string();
  runtime::ResultStore store(options);
  store.store(test_key(), sample_counts());  // disk write silently fails
  EXPECT_TRUE(store.lookup(test_key()).has_value());
  fs::remove(blocker);
}

}  // namespace
}  // namespace ct
