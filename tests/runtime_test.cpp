// Unit tests for the ensemble runtime's building blocks: the work-stealing
// TaskPool (coverage + determinism + exception propagation), the typed
// content digest, and the two-layer ResultStore (LRU, disk round-trip,
// corruption tolerance, version invalidation).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/result_store.h"
#include "runtime/task_pool.h"
#include "util/digest.h"

namespace ct {
namespace {

namespace fs = std::filesystem;

// --- TaskPool ---------------------------------------------------------------

TEST(TaskPoolTest, EveryIndexRunsExactlyOnce) {
  for (const unsigned jobs : {0u, 1u, 4u, 8u}) {
    runtime::TaskPool pool(jobs);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> seen(kN);
    pool.parallel_for_each(kN, 7, [&](std::size_t i) { seen[i]++; });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(TaskPoolTest, InlinePoolSpawnsNoWorkers) {
  runtime::TaskPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.parallelism(), 1u);
}

TEST(TaskPoolTest, HandlesEmptyAndOversizedChunks) {
  runtime::TaskPool pool(4);
  int calls = 0;
  pool.parallel_for_each(0, 16, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::atomic<int> count{0};
  pool.parallel_for_each(5, 1000, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 5);

  // chunk == 0 must not divide by zero; it is treated as 1.
  count = 0;
  pool.parallel_for_ranges(3, 0, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 3);
}

/// The floating-point reduction must be bit-identical at every thread
/// count: chunk boundaries and fold order depend only on (n, chunk).
TEST(TaskPoolTest, MapReduceBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 10007;  // prime: ragged final chunk
  const auto run = [&](unsigned jobs) {
    runtime::TaskPool pool(jobs);
    return pool.map_reduce(
        kN, 13, 0.0,
        [](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            s += 1.0 / (1.0 + static_cast<double>(i) * 0.1);
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  for (const unsigned jobs : {2u, 4u, 8u}) {
    const double parallel = run(jobs);
    EXPECT_EQ(serial, parallel) << "jobs " << jobs;  // exact, not NEAR
  }
}

TEST(TaskPoolTest, FirstExceptionPropagatesAndPoolSurvives) {
  runtime::TaskPool pool(4);
  EXPECT_THROW(pool.parallel_for_each(100, 3,
                                      [&](std::size_t i) {
                                        if (i == 37) {
                                          throw std::runtime_error("boom");
                                        }
                                      }),
               std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for_each(50, 4, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskPoolTest, NestedParallelForDoesNotDeadlock) {
  runtime::TaskPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for_each(4, 1, [&](std::size_t) {
    pool.parallel_for_each(25, 4, [&](std::size_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 100);
}

TEST(TaskPoolTest, SubmissionBeyondDequeCapacityCompletes) {
  runtime::TaskPool pool(2);
  const std::size_t n = runtime::TaskPool::kDequeCapacity * 4;
  std::atomic<std::size_t> count{0};
  pool.parallel_for_each(n, 1, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), n);
}

// --- Digest -----------------------------------------------------------------

TEST(DigestTest, StableAndHexFormatted) {
  util::Digest a;
  a.str("hello").u64(42);
  util::Digest b;
  b.str("hello").u64(42);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 32u);
  for (const char c : a.hex()) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

/// Length-prefixed typed framing: concatenation and type confusion must not
/// collide.
TEST(DigestTest, FramingDisambiguates) {
  util::Digest ab_c;
  ab_c.str("ab").str("c");
  util::Digest a_bc;
  a_bc.str("a").str("bc");
  EXPECT_NE(ab_c.hex(), a_bc.hex());

  util::Digest as_u64;
  as_u64.u64(7);
  util::Digest as_i64;
  as_i64.i64(7);
  util::Digest as_f64;
  as_f64.f64(7.0);
  EXPECT_NE(as_u64.hex(), as_i64.hex());
  EXPECT_NE(as_u64.hex(), as_f64.hex());
  EXPECT_NE(as_i64.hex(), as_f64.hex());

  util::Digest empty1;
  util::Digest with_empty;
  with_empty.str("");
  EXPECT_NE(empty1.hex(), with_empty.hex());
}

TEST(DigestTest, SensitiveToEveryInput) {
  util::Digest base;
  base.str("topology").u64(1000).f64(0.0).boolean(true);
  util::Digest flipped;
  flipped.str("topology").u64(1000).f64(0.0).boolean(false);
  EXPECT_NE(base.hex(), flipped.hex());
}

// --- ResultStore ------------------------------------------------------------

runtime::CachedCounts sample_counts() {
  runtime::CachedCounts c;
  c.counts = {700, 150, 100, 50};
  c.total = 1000;
  c.skipped = 2;
  return c;
}

std::string test_key(char fill = 'a') { return std::string(32, fill); }

TEST(ResultStoreTest, MemoryRoundTripAndStats) {
  runtime::ResultStore store;
  EXPECT_FALSE(store.lookup(test_key()).has_value());
  store.store(test_key(), sample_counts());
  const auto hit = store.lookup(test_key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, sample_counts());
  const auto stats = store.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultStoreTest, LruEvictsOldestEntry) {
  runtime::ResultStoreOptions options;
  options.memory_entries = 2;
  runtime::ResultStore store(options);
  store.store(test_key('a'), sample_counts());
  store.store(test_key('b'), sample_counts());
  // Touch 'a' so 'b' becomes the eviction victim.
  EXPECT_TRUE(store.lookup(test_key('a')).has_value());
  store.store(test_key('c'), sample_counts());
  EXPECT_TRUE(store.lookup(test_key('a')).has_value());
  EXPECT_FALSE(store.lookup(test_key('b')).has_value());
  EXPECT_TRUE(store.lookup(test_key('c')).has_value());
}

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("ct_store_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    options_.disk = true;
    options_.disk_dir = dir_.string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Path of the single record under the cache dir (the record naming
  /// scheme is an implementation detail; tests find it by extension).
  fs::path record_path() {
    for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
      if (entry.is_regular_file()) return entry.path();
    }
    return {};
  }

  fs::path dir_;
  runtime::ResultStoreOptions options_;
};

TEST_F(DiskStoreTest, SharedAcrossInstances) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  runtime::ResultStore reader(options_);
  const auto hit = reader.lookup(test_key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, sample_counts());
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  // A disk hit is promoted to memory: the second lookup is a memory hit.
  EXPECT_TRUE(reader.lookup(test_key()).has_value());
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().hits, 2u);
}

TEST_F(DiskStoreTest, TruncatedRecordIsMissThenRewritten) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  const fs::path record = record_path();
  ASSERT_FALSE(record.empty());
  fs::resize_file(record, fs::file_size(record) / 2);

  runtime::ResultStore store(options_);
  EXPECT_FALSE(store.lookup(test_key()).has_value());
  EXPECT_EQ(store.stats().corrupt_discarded, 1u);

  // The next store() heals the record for future processes.
  store.store(test_key(), sample_counts());
  runtime::ResultStore reader(options_);
  EXPECT_TRUE(reader.lookup(test_key()).has_value());
}

TEST_F(DiskStoreTest, GarbageRecordIsMissNeverCrash) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  {
    std::ofstream out(record_path(), std::ios::trunc | std::ios::binary);
    out << "\x00\xff not a record at all \x7f garbage\nmore\n";
  }
  runtime::ResultStore store(options_);
  EXPECT_FALSE(store.lookup(test_key()).has_value());
  EXPECT_EQ(store.stats().corrupt_discarded, 1u);
}

TEST_F(DiskStoreTest, TamperedVersionInvalidatesRecord) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key(), sample_counts());
  }
  // Rewrite the header's version field: a record written by any other
  // format version must read as a miss (the checksum binds the version, so
  // old-format records can never alias new-format ones).
  const fs::path record = record_path();
  std::stringstream contents;
  contents << std::ifstream(record).rdbuf();
  std::string text = contents.str();
  const std::string needle = "ctresult 1";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "ctresult 0");
  std::ofstream(record, std::ios::trunc) << text;

  runtime::ResultStore store(options_);
  EXPECT_FALSE(store.lookup(test_key()).has_value());
  EXPECT_EQ(store.stats().corrupt_discarded, 1u);
}

TEST_F(DiskStoreTest, RecordUnderWrongKeyIsMiss) {
  {
    runtime::ResultStore writer(options_);
    writer.store(test_key('a'), sample_counts());
  }
  // Simulate key collision/rename corruption: serve key-a's record when
  // key-b is asked for. The embedded key must reject it.
  runtime::ResultStore probe(options_);
  probe.store(test_key('b'), sample_counts());
  fs::path a_path, b_path;
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(test_key('a')) != std::string::npos) a_path = entry.path();
    if (name.find(test_key('b')) != std::string::npos) b_path = entry.path();
  }
  ASSERT_FALSE(a_path.empty());
  ASSERT_FALSE(b_path.empty());
  fs::copy_file(a_path, b_path, fs::copy_options::overwrite_existing);

  runtime::ResultStore store(options_);
  EXPECT_FALSE(store.lookup(test_key('b')).has_value());
  EXPECT_EQ(store.stats().corrupt_discarded, 1u);
}

TEST_F(DiskStoreTest, HostileKeysNeverTouchDisk) {
  runtime::ResultStore store(options_);
  // Keys are produced by our own digest (lowercase hex), but the store
  // must not turn anything else into a path traversal.
  for (const std::string& key :
       {std::string("../../etc/passwd"), std::string("UPPER"),
        std::string(200, 'a'), std::string("")}) {
    store.store(key, sample_counts());
    // In-memory layer may still serve it; disk must hold only safe names.
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().stem().string();
    EXPECT_LE(name.size(), 128u);
    for (const char c : name) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
          << "unexpected on-disk record name: " << name;
    }
  }
}

TEST(ResultStoreDirTest, UnusableDiskDirDegradesToMemory) {
  // A regular file where the cache dir should be: every disk operation
  // fails (even for root), and the store must shrug it off.
  const fs::path blocker = fs::path(::testing::TempDir()) / "ct_store_blocker";
  std::ofstream(blocker) << "not a directory";
  runtime::ResultStoreOptions options;
  options.disk = true;
  options.disk_dir = (blocker / "sub").string();
  runtime::ResultStore store(options);
  store.store(test_key(), sample_counts());  // disk write silently fails
  EXPECT_TRUE(store.lookup(test_key()).has_value());
  fs::remove(blocker);
}

}  // namespace
}  // namespace ct
