// Structural property tests across the whole pipeline, including the
// paper's own counterintuitive observation (§VI-B): "Interestingly,
// however, this probability is not 100%: if the hurricane renders the
// system non-operational by flooding the control center(s), there are no
// operational servers for the attacker to compromise" — i.e. more flooding
// can IMPROVE the outcome under the badness order, because red is better
// than gray. Monotonicity in the flood set therefore only holds for the
// hurricane-only scenario; the compound scenarios exhibit the paradox.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "scada/configuration.h"
#include "threat/scenario.h"

namespace ct::core {
namespace {

using threat::OperationalState;
using threat::ThreatScenario;

surge::HurricaneRealization realization_with(std::vector<std::string> failed) {
  surge::HurricaneRealization r;
  for (std::string& id : failed) {
    surge::AssetImpact impact;
    impact.asset_id = std::move(id);
    impact.failed = true;
    r.impacts.push_back(std::move(impact));
  }
  return r;
}

/// All subsets of the given asset ids, ordered by inclusion-compatible
/// bitmask (A subset of B iff maskA & maskB == maskA).
std::vector<std::vector<std::string>> subsets(
    const std::vector<std::string>& ids) {
  std::vector<std::vector<std::string>> out;
  for (std::size_t mask = 0; mask < (std::size_t{1} << ids.size()); ++mask) {
    std::vector<std::string> subset;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (mask & (std::size_t{1} << i)) subset.push_back(ids[i]);
    }
    out.push_back(std::move(subset));
  }
  return out;
}

struct ParadoxCase {
  const char* label;
  scada::Configuration config;
  std::vector<std::string> site_ids;
};

std::vector<ParadoxCase> paradox_cases() {
  return {
      {"c2", scada::make_config_2("a"), {"a"}},
      {"c22", scada::make_config_2_2("a", "b"), {"a", "b"}},
      {"c6", scada::make_config_6("a"), {"a"}},
      {"c66", scada::make_config_6_6("a", "b"), {"a", "b"}},
      {"c666", scada::make_config_6_6_6("a", "b", "c"), {"a", "b", "c"}},
  };
}

class FloodMonotonicity : public ::testing::TestWithParam<ParadoxCase> {};

TEST_P(FloodMonotonicity, HurricaneOnlyOutcomeMonotoneInFloodSet) {
  const auto& param = GetParam();
  const AnalysisPipeline pipeline;
  const auto all = subsets(param.site_ids);
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = 0; b < all.size(); ++b) {
      // Subset relation via bitmask inclusion.
      if ((a & b) != a) continue;
      const OperationalState less = pipeline.outcome_for(
          param.config, ThreatScenario::kHurricane, realization_with(all[a]));
      const OperationalState more = pipeline.outcome_for(
          param.config, ThreatScenario::kHurricane, realization_with(all[b]));
      EXPECT_LE(threat::badness(less), threat::badness(more))
          << param.label << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigurations, FloodMonotonicity,
                         ::testing::ValuesIn(paradox_cases()),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

TEST(FloodParadox, MoreFloodingCanPreventTheGrayState) {
  // The paper's §VI-B observation, as an executable fact: under hurricane +
  // intrusion, "2" is GRAY when its control center survives but only RED
  // when the hurricane already destroyed it.
  const AnalysisPipeline pipeline;
  const auto config = scada::make_config_2("a");
  const OperationalState survived = pipeline.outcome_for(
      config, ThreatScenario::kHurricaneIntrusion, realization_with({}));
  const OperationalState destroyed = pipeline.outcome_for(
      config, ThreatScenario::kHurricaneIntrusion, realization_with({"a"}));
  EXPECT_EQ(survived, OperationalState::kGray);
  EXPECT_EQ(destroyed, OperationalState::kRed);
  // Badness DECREASES as flooding increases: the paradox.
  EXPECT_GT(threat::badness(survived), threat::badness(destroyed));
}

TEST(FloodParadox, AvailabilityViewIsStillMonotone) {
  // Seen purely as "is the system serving" (green/orange vs red/gray-as-
  // unavailable-to-trust), more flooding never helps: green never appears
  // where a subset of the flooding produced a non-green state.
  const AnalysisPipeline pipeline;
  for (const auto& param : paradox_cases()) {
    const auto all = subsets(param.site_ids);
    for (const ThreatScenario scenario : threat::all_scenarios()) {
      for (std::size_t a = 0; a < all.size(); ++a) {
        for (std::size_t b = 0; b < all.size(); ++b) {
          if ((a & b) != a) continue;
          const OperationalState less = pipeline.outcome_for(
              param.config, scenario, realization_with(all[a]));
          const OperationalState more = pipeline.outcome_for(
              param.config, scenario, realization_with(all[b]));
          const auto usable = [](OperationalState s) {
            return s == OperationalState::kGreen ||
                   s == OperationalState::kOrange;
          };
          if (usable(more)) {
            EXPECT_TRUE(usable(less))
                << param.label << " " << threat::scenario_name(scenario)
                << " a=" << a << " b=" << b;
          }
        }
      }
    }
  }
}

TEST(FloodParadox, IrrelevantAssetsDoNotAffectOutcomes) {
  // Flooding assets that host no control site never changes the result.
  const AnalysisPipeline pipeline;
  const auto config = scada::make_config_6_6("a", "b");
  for (const ThreatScenario scenario : threat::all_scenarios()) {
    const OperationalState base = pipeline.outcome_for(
        config, scenario, realization_with({"substation_x"}));
    const OperationalState clean =
        pipeline.outcome_for(config, scenario, realization_with({}));
    EXPECT_EQ(base, clean) << threat::scenario_name(scenario);
  }
}

}  // namespace
}  // namespace ct::core
