// Tests for topology CSV interchange, the realization-CSV loader's
// malformed-row hardening, and the ASCII region map.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/map.h"
#include "core/pipeline.h"
#include "scada/oahu.h"
#include "scada/topology_io.h"
#include "terrain/oahu.h"
#include "util/error.h"

namespace ct::scada {
namespace {

TEST(TopologyIo, ParseAssetType) {
  EXPECT_EQ(parse_asset_type("control center"), AssetType::kControlCenter);
  EXPECT_EQ(parse_asset_type("Control_Center"), AssetType::kControlCenter);
  EXPECT_EQ(parse_asset_type(" data center "), AssetType::kDataCenter);
  EXPECT_EQ(parse_asset_type("POWER PLANT"), AssetType::kPowerPlant);
  EXPECT_EQ(parse_asset_type("substation"), AssetType::kSubstation);
  EXPECT_EQ(parse_asset_type("widget"), std::nullopt);
}

TEST(TopologyIo, RoundTripPreservesEverything) {
  const ScadaTopology original = oahu_topology();
  std::stringstream buffer;
  save_topology_csv(buffer, original);
  const ScadaTopology loaded = load_topology_csv(buffer);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.assets().size(); ++i) {
    const Asset& a = original.assets()[i];
    const Asset& b = loaded.assets()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_NEAR(a.location.lat_deg, b.location.lat_deg, 1e-8);
    EXPECT_NEAR(a.location.lon_deg, b.location.lon_deg, 1e-8);
    EXPECT_NEAR(a.ground_elevation_m, b.ground_elevation_m, 1e-6);
  }
}

TEST(TopologyIo, RoundTripsNamesWithCommas) {
  ScadaTopology original;
  original.add({"cc1", "Main, Primary \"A\" Control",
                AssetType::kControlCenter, {21.30, -157.85}, 1.5});
  std::stringstream buffer;
  save_topology_csv(buffer, original);
  const ScadaTopology loaded = load_topology_csv(buffer);
  EXPECT_EQ(loaded.at("cc1").name, "Main, Primary \"A\" Control");
}

TEST(TopologyIo, LoadsHandWrittenCsv) {
  std::istringstream in(
      "id,name,type,lat,lon,elevation_m\n"
      "cc1,Main Control,control center,21.30,-157.85,1.5\n"
      "\n"
      "ss1,East Sub,substation,21.40,-157.70,12\n");
  const ScadaTopology topo = load_topology_csv(in);
  ASSERT_EQ(topo.size(), 2u);
  EXPECT_EQ(topo.at("cc1").type, AssetType::kControlCenter);
  EXPECT_DOUBLE_EQ(topo.at("ss1").ground_elevation_m, 12.0);
}

TEST(TopologyIo, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* csv, const char* needle) {
    std::istringstream in(csv);
    try {
      load_topology_csv(in);
      FAIL() << "expected failure for: " << csv;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("", "empty input");
  expect_error("id,nope\n", "expected header");
  expect_error("id,name,type,lat,lon,elevation_m\na,b,substation,21.3\n",
               "topology.csv:2:");
  expect_error(
      "id,name,type,lat,lon,elevation_m\na,b,widget,21.3,-157.8,1\n",
      "unknown asset type");
  expect_error(
      "id,name,type,lat,lon,elevation_m\na,b,substation,x,-157.8,1\n",
      "cannot parse lat");
  expect_error(
      "id,name,type,lat,lon,elevation_m\na,b,substation,121.3,-157.8,1\n",
      "latitude out of range");
  expect_error(
      "id,name,type,lat,lon,elevation_m\n"
      "a,b,substation,21.3,-157.8,1\n"
      "a,c,substation,21.4,-157.9,2\n",
      "duplicate");
}

TEST(TopologyIo, MalformedRowsThrowTypedParseErrors) {
  std::istringstream in(
      "id,name,type,lat,lon,elevation_m\n"
      "ok,Fine,substation,21.3,-157.8,5\n"
      "bad,Broken,substation,21.3,-157.8\n");
  try {
    load_topology_csv(in, "grid-export.csv");
    FAIL() << "expected a parse failure";
  } catch (const ct::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kParse);
    EXPECT_EQ(e.origin(), "topology-csv");
    // The message pins the SOURCE and the 1-based line: the operator can
    // jump straight to the offending row of their export.
    EXPECT_NE(e.message().find("grid-export.csv:3:"), std::string::npos)
        << e.message();
  }
}

TEST(TopologyIo, NonFiniteNumbersAreRejected) {
  for (const char* value : {"nan", "inf", "-inf", "NAN", "Infinity"}) {
    std::istringstream in(std::string("id,name,type,lat,lon,elevation_m\n") +
                          "a,b,substation,21.3,-157.8," + value + "\n");
    EXPECT_THROW(load_topology_csv(in), ct::Error) << value;
  }
}

/// Fuzz-ish hardening sweep: every mangled body row must produce a typed
/// parse error with a line number — never a crash, never a silent accept.
TEST(TopologyIo, MangledRowsNeverCrash) {
  const char* header = "id,name,type,lat,lon,elevation_m\n";
  const std::vector<std::string> rows = {
      "\"unterminated,quote,substation,21.3,-157.8,1",
      "a,b,substation,21.3,-157.8,1,extra,extra,extra",
      ",,,,,",
      " , empty id ,substation,21.3,-157.8,1",
      "a,b,substation,1e999,-157.8,1",
      "a,b,substation,21.3,-157.8,0x1f",
      "a,b,\x01\x02\x03,21.3,-157.8,1",
      "a,b,substation,21.3e,-157.8,1",
      "a,b,substation,--21.3,-157.8,1",
      std::string(4096, 'x'),
      "a,b,substation,21.3,-157.8,9" + std::string(400, '9'),
  };
  for (const std::string& row : rows) {
    std::istringstream in(header + row + "\n");
    try {
      load_topology_csv(in, "fuzz.csv");
      FAIL() << "expected rejection of: " << row.substr(0, 60);
    } catch (const ct::Error& e) {
      EXPECT_EQ(e.code(), util::ErrorCode::kParse) << row.substr(0, 60);
      EXPECT_NE(e.message().find("fuzz.csv:2:"), std::string::npos)
          << e.message();
    }
  }
}

}  // namespace
}  // namespace ct::scada

namespace ct::core {
namespace {

TEST(RealizationCsv, MalformedRowsAreCountedTypedAndSkipped) {
  std::istringstream in(
      "realization,flooded_assets,peak_wind_ms,max_wse_m\n"
      "0,,42.0,1.1\n"
      "1,a;b,not-a-number,1.2\n"   // bad wind
      "2,a,43.0\n"                 // short row
      "3,a,44.0,nan\n"             // non-finite WSE
      "4,,45.0,1.4\n");
  const LoadedRealizations loaded =
      load_realizations_csv(in, "ensemble.csv");
  // The good rows (0 and 4) survive; each bad row is one typed record.
  ASSERT_EQ(loaded.realizations.size(), 2u);
  EXPECT_EQ(loaded.realizations[0].index, 0u);
  EXPECT_EQ(loaded.realizations[1].index, 4u);
  EXPECT_EQ(loaded.skipped_rows, 3u);
  ASSERT_EQ(loaded.errors.size(), 3u);
  for (const util::Error& e : loaded.errors) {
    EXPECT_EQ(e.code(), util::ErrorCode::kParse);
    EXPECT_EQ(e.origin(), "realizations-csv");
  }
  // Line numbers are 1-based over the raw stream (header is line 1).
  EXPECT_NE(loaded.errors[0].message().find("ensemble.csv:3:"),
            std::string::npos)
      << loaded.errors[0].message();
  EXPECT_NE(loaded.errors[1].message().find("ensemble.csv:4:"),
            std::string::npos);
  EXPECT_NE(loaded.errors[2].message().find("ensemble.csv:5:"),
            std::string::npos);
}

TEST(RealizationCsv, FuzzedRowsNeverAbortTheLoad) {
  const std::vector<std::string> rows = {
      "x,,42.0,1.1",
      "5,\"unterminated,42.0,1.1",
      "6,,1e999,1.1",
      "7,,42.0,inf",
      "8,,42.0,-inf",
      ",,,",
      "9,,42.0,1.1,surplus",
      std::string(2048, ','),
  };
  std::string csv = "realization,flooded_assets,peak_wind_ms,max_wse_m\n";
  for (const std::string& row : rows) csv += row + "\n";
  csv += "10,a;b;c,41.0,0.9\n";
  std::istringstream in(csv);
  const LoadedRealizations loaded = load_realizations_csv(in, "fuzz.csv");
  ASSERT_EQ(loaded.realizations.size(), 1u);
  EXPECT_EQ(loaded.realizations[0].index, 10u);
  EXPECT_EQ(loaded.realizations[0].impacts.size(), 3u);
  EXPECT_EQ(loaded.skipped_rows, rows.size());
  EXPECT_EQ(loaded.errors.size(), rows.size());
}

TEST(RegionMap, RendersTerrainAndAssets) {
  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();
  const std::string map = render_region_map(*terrain, topo);

  EXPECT_NE(map.find('~'), std::string::npos);  // ocean
  EXPECT_NE(map.find('.'), std::string::npos);  // plain
  EXPECT_NE(map.find('^'), std::string::npos);  // mountains
  EXPECT_NE(map.find('C'), std::string::npos);  // control center
  EXPECT_NE(map.find('D'), std::string::npos);  // data center
  EXPECT_NE(map.find("honolulu_cc"), std::string::npos);  // legend
}

TEST(RegionMap, FloodedAssetsRenderAsX) {
  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();
  surge::HurricaneRealization realization;
  surge::AssetImpact impact;
  impact.asset_id = scada::oahu_ids::kHonoluluCc;
  impact.failed = true;
  realization.impacts.push_back(impact);

  const std::string map = render_region_map(*terrain, topo, &realization);
  EXPECT_NE(map.find('X'), std::string::npos);
  EXPECT_NE(map.find("[FLOODED]"), std::string::npos);
}

TEST(RegionMap, DimensionsRespected) {
  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();
  MapOptions options;
  options.width = 40;
  options.height = 12;
  options.legend = false;
  const std::string map = render_region_map(*terrain, topo, nullptr, options);
  std::istringstream stream(map);
  std::string line;
  std::getline(stream, line);  // title
  std::size_t rows = 0;
  while (std::getline(stream, line)) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), 40u);
      ++rows;
    }
  }
  EXPECT_EQ(rows, 12u);
}

}  // namespace
}  // namespace ct::core
