// Tests for topology CSV interchange and the ASCII region map.
#include <sstream>

#include <gtest/gtest.h>

#include "core/map.h"
#include "scada/oahu.h"
#include "scada/topology_io.h"
#include "terrain/oahu.h"

namespace ct::scada {
namespace {

TEST(TopologyIo, ParseAssetType) {
  EXPECT_EQ(parse_asset_type("control center"), AssetType::kControlCenter);
  EXPECT_EQ(parse_asset_type("Control_Center"), AssetType::kControlCenter);
  EXPECT_EQ(parse_asset_type(" data center "), AssetType::kDataCenter);
  EXPECT_EQ(parse_asset_type("POWER PLANT"), AssetType::kPowerPlant);
  EXPECT_EQ(parse_asset_type("substation"), AssetType::kSubstation);
  EXPECT_EQ(parse_asset_type("widget"), std::nullopt);
}

TEST(TopologyIo, RoundTripPreservesEverything) {
  const ScadaTopology original = oahu_topology();
  std::stringstream buffer;
  save_topology_csv(buffer, original);
  const ScadaTopology loaded = load_topology_csv(buffer);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.assets().size(); ++i) {
    const Asset& a = original.assets()[i];
    const Asset& b = loaded.assets()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_NEAR(a.location.lat_deg, b.location.lat_deg, 1e-8);
    EXPECT_NEAR(a.location.lon_deg, b.location.lon_deg, 1e-8);
    EXPECT_NEAR(a.ground_elevation_m, b.ground_elevation_m, 1e-6);
  }
}

TEST(TopologyIo, RoundTripsNamesWithCommas) {
  ScadaTopology original;
  original.add({"cc1", "Main, Primary \"A\" Control",
                AssetType::kControlCenter, {21.30, -157.85}, 1.5});
  std::stringstream buffer;
  save_topology_csv(buffer, original);
  const ScadaTopology loaded = load_topology_csv(buffer);
  EXPECT_EQ(loaded.at("cc1").name, "Main, Primary \"A\" Control");
}

TEST(TopologyIo, LoadsHandWrittenCsv) {
  std::istringstream in(
      "id,name,type,lat,lon,elevation_m\n"
      "cc1,Main Control,control center,21.30,-157.85,1.5\n"
      "\n"
      "ss1,East Sub,substation,21.40,-157.70,12\n");
  const ScadaTopology topo = load_topology_csv(in);
  ASSERT_EQ(topo.size(), 2u);
  EXPECT_EQ(topo.at("cc1").type, AssetType::kControlCenter);
  EXPECT_DOUBLE_EQ(topo.at("ss1").ground_elevation_m, 12.0);
}

TEST(TopologyIo, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* csv, const char* needle) {
    std::istringstream in(csv);
    try {
      load_topology_csv(in);
      FAIL() << "expected failure for: " << csv;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("", "empty input");
  expect_error("id,nope\n", "expected header");
  expect_error("id,name,type,lat,lon,elevation_m\na,b,substation,21.3\n",
               "line 2");
  expect_error(
      "id,name,type,lat,lon,elevation_m\na,b,widget,21.3,-157.8,1\n",
      "unknown asset type");
  expect_error(
      "id,name,type,lat,lon,elevation_m\na,b,substation,x,-157.8,1\n",
      "cannot parse lat");
  expect_error(
      "id,name,type,lat,lon,elevation_m\na,b,substation,121.3,-157.8,1\n",
      "latitude out of range");
  expect_error(
      "id,name,type,lat,lon,elevation_m\n"
      "a,b,substation,21.3,-157.8,1\n"
      "a,c,substation,21.4,-157.9,2\n",
      "duplicate");
}

}  // namespace
}  // namespace ct::scada

namespace ct::core {
namespace {

TEST(RegionMap, RendersTerrainAndAssets) {
  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();
  const std::string map = render_region_map(*terrain, topo);

  EXPECT_NE(map.find('~'), std::string::npos);  // ocean
  EXPECT_NE(map.find('.'), std::string::npos);  // plain
  EXPECT_NE(map.find('^'), std::string::npos);  // mountains
  EXPECT_NE(map.find('C'), std::string::npos);  // control center
  EXPECT_NE(map.find('D'), std::string::npos);  // data center
  EXPECT_NE(map.find("honolulu_cc"), std::string::npos);  // legend
}

TEST(RegionMap, FloodedAssetsRenderAsX) {
  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();
  surge::HurricaneRealization realization;
  surge::AssetImpact impact;
  impact.asset_id = scada::oahu_ids::kHonoluluCc;
  impact.failed = true;
  realization.impacts.push_back(impact);

  const std::string map = render_region_map(*terrain, topo, &realization);
  EXPECT_NE(map.find('X'), std::string::npos);
  EXPECT_NE(map.find("[FLOODED]"), std::string::npos);
}

TEST(RegionMap, DimensionsRespected) {
  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();
  MapOptions options;
  options.width = 40;
  options.height = 12;
  options.legend = false;
  const std::string map = render_region_map(*terrain, topo, nullptr, options);
  std::istringstream stream(map);
  std::string line;
  std::getline(stream, line);  // title
  std::size_t rows = 0;
  while (std::getline(stream, line)) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), 40u);
      ++rows;
    }
  }
  EXPECT_EQ(rows, 12u);
}

}  // namespace
}  // namespace ct::core
