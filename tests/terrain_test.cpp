// Tests for the procedural terrain and shoreline sampling.
#include <gtest/gtest.h>

#include "terrain/oahu.h"
#include "terrain/shoreline.h"
#include "terrain/terrain.h"

namespace ct::terrain {
namespace {

IslandParams tiny_island() {
  IslandParams p;
  p.name = "diamond";
  // Diamond roughly 20 km across.
  p.coastline = {{21.0, -158.0}, {21.09, -157.9}, {21.18, -158.0},
                 {21.09, -158.1}};
  p.projection_reference = {21.09, -158.0};
  p.shore_elevation_m = 1.0;
  p.plain_slope = 0.01;
  return p;
}

TEST(SyntheticIsland, LandSeaClassification) {
  const SyntheticIslandTerrain island(tiny_island());
  const auto& proj = island.projection();
  EXPECT_TRUE(island.is_land(proj.to_enu({21.09, -158.0})));     // center
  EXPECT_FALSE(island.is_land(proj.to_enu({21.09, -158.5})));    // far west
  EXPECT_FALSE(island.is_land(proj.to_enu({22.0, -158.0})));     // far north
}

TEST(SyntheticIsland, ElevationSigns) {
  const SyntheticIslandTerrain island(tiny_island());
  const auto& proj = island.projection();
  EXPECT_GT(island.elevation(proj.to_enu({21.09, -158.0})), 0.0);
  EXPECT_LT(island.elevation(proj.to_enu({21.09, -158.4})), 0.0);
}

TEST(SyntheticIsland, PlainRisesInland) {
  const SyntheticIslandTerrain island(tiny_island());
  const auto& proj = island.projection();
  const double near_shore = island.elevation(proj.to_enu({21.005, -158.0}));
  const double center = island.elevation(proj.to_enu({21.09, -158.0}));
  EXPECT_GT(center, near_shore);
}

TEST(SyntheticIsland, OceanDeepensOffshore) {
  const SyntheticIslandTerrain island(tiny_island());
  const auto& proj = island.projection();
  const double shallow = island.elevation(proj.to_enu({21.09, -158.12}));
  const double deep = island.elevation(proj.to_enu({21.09, -158.5}));
  EXPECT_LT(deep, shallow);
  EXPECT_GE(deep, -island.params().max_depth_m - 1e-9);
}

TEST(SyntheticIsland, RidgeRaisesElevation) {
  IslandParams p = tiny_island();
  const SyntheticIslandTerrain flat(p);
  p.ridges = {{{21.06, -158.0}, {21.12, -158.0}, 500.0, 2000.0}};
  const SyntheticIslandTerrain ridged(p);
  const geo::Vec2 on_ridge = ridged.projection().to_enu({21.09, -158.0});
  EXPECT_NEAR(ridged.elevation(on_ridge) - flat.elevation(on_ridge), 500.0,
              50.0);
}

TEST(SyntheticIsland, RejectsDegenerateCoast) {
  IslandParams p = tiny_island();
  p.coastline = {{21.0, -158.0}, {21.1, -158.0}};
  EXPECT_THROW(SyntheticIslandTerrain{p}, std::invalid_argument);
}

// ---------------------------------------------------------------- oahu

TEST(Oahu, ParamsAreSane) {
  const IslandParams p = oahu_params();
  EXPECT_GE(p.coastline.size(), 20u);
  EXPECT_EQ(p.ridges.size(), 2u);  // WaiÊ»anae and KoÊ»olau
  EXPECT_GT(p.max_depth_m, 1000.0);
}

TEST(Oahu, CaseStudySitesAreOnLand) {
  const auto oahu = make_oahu_terrain();
  for (const geo::GeoPoint site :
       {oahu_sites::kHonolulu, oahu_sites::kWaiau, oahu_sites::kKahe,
        oahu_sites::kDrFortress, oahu_sites::kWahiawa}) {
    EXPECT_TRUE(oahu->is_land(oahu->projection().to_enu(site)))
        << site.lat_deg << "," << site.lon_deg;
  }
}

TEST(Oahu, MountainsAreHigh) {
  const auto oahu = make_oahu_terrain();
  // Near the WaiÊ»anae crest (Mt. KaÊ»ala area).
  const double waianae = oahu->elevation_at({21.47, -158.15});
  EXPECT_GT(waianae, 500.0);
  // Wahiawa plateau sits between the ranges, moderately high.
  const double wahiawa = oahu->elevation_at(oahu_sites::kWahiawa);
  EXPECT_GT(wahiawa, 50.0);
  EXPECT_LT(wahiawa, waianae);
}

TEST(Oahu, OffshoreIsOcean) {
  const auto oahu = make_oahu_terrain();
  EXPECT_LT(oahu->elevation_at({20.8, -158.0}), -100.0);
  EXPECT_LT(oahu->elevation_at({21.45, -157.4}), -100.0);
}

TEST(Oahu, IslandAreaIsPlausible) {
  // Real Oahu is ~1545 km^2; the synthetic outline should be same order.
  const auto oahu = make_oahu_terrain();
  const double area_km2 = oahu->coastline().abs_area() / 1e6;
  EXPECT_GT(area_km2, 1000.0);
  EXPECT_LT(area_km2, 2300.0);
}

// ---------------------------------------------------------------- shoreline

TEST(Shoreline, SpacingAndArclength) {
  const geo::Polygon square(
      {{0, 0}, {10000, 0}, {10000, 10000}, {0, 10000}});
  const auto shore = sample_shoreline(square, 1000.0);
  EXPECT_EQ(shore.size(), 40u);  // perimeter 40 km / 1 km
  for (std::size_t i = 1; i < shore.size(); ++i) {
    EXPECT_NEAR(shore[i].arclength - shore[i - 1].arclength, 1000.0, 1e-6);
  }
}

TEST(Shoreline, NormalsPointOutward) {
  const geo::Polygon square(
      {{0, 0}, {10000, 0}, {10000, 10000}, {0, 10000}});
  for (const auto& sp : sample_shoreline(square, 500.0)) {
    EXPECT_NEAR(sp.outward_normal.norm(), 1.0, 1e-9);
    EXPECT_FALSE(square.contains(sp.position + sp.outward_normal * 10.0));
  }
}

TEST(Shoreline, NormalsOutwardOnOahu) {
  const auto oahu = make_oahu_terrain();
  const auto shore = sample_shoreline(oahu->coastline(), 2000.0);
  EXPECT_GT(shore.size(), 50u);
  std::size_t outward = 0;
  for (const auto& sp : shore) {
    if (!oahu->coastline().contains(sp.position + sp.outward_normal * 50.0)) {
      ++outward;
    }
  }
  // All but possibly a couple of stations at sharp concave corners.
  EXPECT_GE(outward, shore.size() - 2);
}

TEST(Shoreline, NearestShorePoint) {
  const geo::Polygon square(
      {{0, 0}, {10000, 0}, {10000, 10000}, {0, 10000}});
  const auto shore = sample_shoreline(square, 1000.0);
  const std::size_t idx = nearest_shore_point(shore, {5100.0, -300.0});
  EXPECT_NEAR(shore[idx].position.x, 5000.0, 600.0);
  EXPECT_NEAR(shore[idx].position.y, 0.0, 1e-9);
}

TEST(Shoreline, RejectsBadSpacing) {
  const geo::Polygon square({{0, 0}, {1, 0}, {1, 1}});
  EXPECT_THROW(sample_shoreline(square, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_shoreline(square, -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace ct::terrain
