// Coverage for the remaining extension surfaces: the simulator's event
// limit (storm guard), sea-level-rise offsets, and hot- vs cold-backup
// evaluator semantics for custom architectures.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "scada/configuration.h"
#include "scada/oahu.h"
#include "sim/scada_des.h"
#include "sim/simulator.h"
#include "surge/realization.h"
#include "terrain/oahu.h"

namespace ct {
namespace {

TEST(EventLimit, StopsRunawaySimulations) {
  sim::Simulator simulator;
  simulator.set_event_limit(100);
  std::function<void()> bomb = [&] {
    // Two children per event: exponential growth without a limit.
    simulator.schedule_in(0.001, bomb);
    simulator.schedule_in(0.001, bomb);
  };
  simulator.schedule_at(0.0, bomb);
  simulator.run_until(1000.0);
  EXPECT_TRUE(simulator.event_limit_hit());
  EXPECT_EQ(simulator.events_processed(), 100u);
}

TEST(EventLimit, ZeroMeansUnlimited) {
  sim::Simulator simulator;
  for (int i = 0; i < 500; ++i) simulator.schedule_at(i, [] {});
  simulator.run_until(1000.0);
  EXPECT_FALSE(simulator.event_limit_hit());
  EXPECT_EQ(simulator.events_processed(), 500u);
}

TEST(EventLimit, DesReportsTruncation) {
  sim::DesOptions options;
  options.horizon_s = 300.0;
  options.attack_time_s = 60.0;
  options.event_limit = 200;  // absurdly small: guaranteed truncation
  const sim::ScadaDes des(scada::make_config_6("p"), options);
  threat::SystemState state;
  state.site_status = {threat::SiteStatus::kUp};
  state.intrusions = {0};
  const sim::DesOutcome outcome = des.run(state);
  EXPECT_TRUE(outcome.truncated);
  EXPECT_LE(outcome.events, 200u);
}

TEST(SeaLevelRise, FloodProbabilityMonotonic) {
  const scada::ScadaTopology topo = scada::oahu_topology();
  double previous = -1.0;
  for (const double slr : {0.0, 0.4, 0.8}) {
    surge::RealizationConfig config;
    config.sea_level_offset_m = slr;
    const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                          topo.exposed_assets(), config);
    std::size_t failures = 0;
    const std::size_t n = 150;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (engine.run(i).asset_failed(scada::oahu_ids::kHonoluluCc)) {
        ++failures;
      }
    }
    const double rate = static_cast<double>(failures) / static_cast<double>(n);
    EXPECT_GE(rate, previous);
    previous = rate;
  }
  // 0.8 m of SLR must visibly worsen flooding over the baseline.
  EXPECT_GT(previous, 0.25);
}

TEST(SeaLevelRise, NegativeOffsetProtects) {
  const scada::ScadaTopology topo = scada::oahu_topology();
  surge::RealizationConfig config;
  config.sea_level_offset_m = -0.5;
  const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                        topo.exposed_assets(), config);
  surge::RealizationConfig baseline;
  const surge::RealizationEngine base_engine(terrain::make_oahu_terrain(),
                                             topo.exposed_assets(), baseline);
  std::size_t failures = 0;
  std::size_t base_failures = 0;
  for (std::uint64_t i = 0; i < 150; ++i) {
    if (engine.run(i).asset_failed(scada::oahu_ids::kHonoluluCc)) ++failures;
    if (base_engine.run(i).asset_failed(scada::oahu_ids::kHonoluluCc)) {
      ++base_failures;
    }
  }
  // Half a meter of protection must eliminate nearly all failures.
  EXPECT_LE(failures, 1u);
  EXPECT_LT(failures, base_failures);
}

TEST(Evaluator, HotBackupFailsOverWithoutDowntime) {
  // A custom architecture with a HOT backup site: failover is immediate,
  // so losing the primary is green, not orange.
  scada::Configuration hot = scada::make_config_2_2("p", "b");
  hot.name = "2-2hot";
  hot.sites[1].hot = true;
  threat::SystemState state;
  state.site_status = {threat::SiteStatus::kFlooded, threat::SiteStatus::kUp};
  state.intrusions = {0, 0};
  EXPECT_EQ(core::evaluate(hot, state), threat::OperationalState::kGreen);

  // The paper's cold variant is orange in the same state.
  const scada::Configuration cold = scada::make_config_2_2("p", "b");
  EXPECT_EQ(core::evaluate(cold, state), threat::OperationalState::kOrange);
}

TEST(Evaluator, MinActiveSitesRespected) {
  // A 3-site group configured to need all 3 sites goes red on any loss.
  scada::Configuration strict = scada::make_config_6_6_6("p", "b", "d");
  strict.min_active_sites = 3;
  threat::SystemState state;
  state.site_status = {threat::SiteStatus::kUp, threat::SiteStatus::kIsolated,
                       threat::SiteStatus::kUp};
  state.intrusions = {0, 0, 0};
  EXPECT_EQ(core::evaluate(strict, state), threat::OperationalState::kRed);
}

TEST(Rng, ExponentialMeanAndSupport) {
  util::Rng rng(77);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential(5.0);
    EXPECT_GE(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_DOUBLE_EQ(rng.exponential(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.exponential(-2.0), 0.0);
}

}  // namespace
}  // namespace ct
