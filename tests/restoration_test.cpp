// Tests for the restoration/downtime model that quantifies the paper's
// orange / red / gray state semantics.
#include <gtest/gtest.h>

#include "core/restoration.h"
#include "scada/configuration.h"
#include "util/stats.h"

namespace ct::core {
namespace {

using threat::SiteStatus;
using threat::SystemState;

SystemState state_of(std::vector<SiteStatus> status,
                     std::vector<int> intrusions) {
  SystemState s;
  s.site_status = std::move(status);
  s.intrusions = std::move(intrusions);
  return s;
}

const RestorationModel kModel{};  // defaults

TEST(Restoration, GreenCostsNothing) {
  const auto config = scada::make_config_2("p");
  const IncidentCosts costs = expected_incident_costs(
      config, state_of({SiteStatus::kUp}, {0}), kModel);
  EXPECT_DOUBLE_EQ(costs.downtime_hours, 0.0);
  EXPECT_DOUBLE_EQ(costs.incorrect_hours, 0.0);
}

TEST(Restoration, OrangeCostsActivationTime) {
  const auto config = scada::make_config_2_2("p", "b");
  const IncidentCosts costs = expected_incident_costs(
      config, state_of({SiteStatus::kFlooded, SiteStatus::kUp}, {0, 0}),
      kModel);
  EXPECT_NEAR(costs.downtime_hours, kModel.activation_minutes / 60.0, 1e-12);
  EXPECT_DOUBLE_EQ(costs.incorrect_hours, 0.0);
}

TEST(Restoration, RedFromIsolationEndsWithTheAttack) {
  const auto config = scada::make_config_2("p");
  const IncidentCosts costs = expected_incident_costs(
      config, state_of({SiteStatus::kIsolated}, {0}), kModel);
  EXPECT_NEAR(costs.downtime_hours, kModel.isolation_duration_hours, 1e-12);
}

TEST(Restoration, RedFromFloodingWaitsForRepair) {
  const auto config = scada::make_config_2("p");
  const IncidentCosts costs = expected_incident_costs(
      config, state_of({SiteStatus::kFlooded}, {0}), kModel);
  EXPECT_NEAR(costs.downtime_hours, kModel.flood_repair_hours, 1e-12);
}

TEST(Restoration, RedTakesTheFastestRestorationPath) {
  // "2-2" with the primary flooded AND the backup isolated: the isolation
  // ends long before the flood repair, so service resumes via the backup
  // (plus its activation delay).
  const auto config = scada::make_config_2_2("p", "b");
  const IncidentCosts costs = expected_incident_costs(
      config, state_of({SiteStatus::kFlooded, SiteStatus::kIsolated}, {0, 0}),
      kModel);
  EXPECT_NEAR(costs.downtime_hours,
              kModel.isolation_duration_hours + kModel.activation_minutes / 60.0,
              1e-12);
}

TEST(Restoration, MultisiteRedNeedsEnoughSitesBack) {
  // "6+6+6" with two sites flooded and one up: red until ONE flooded site
  // repairs (then 2 of 3 are up -> green, no activation delay).
  const auto config = scada::make_config_6_6_6("p", "b", "d");
  const IncidentCosts costs = expected_incident_costs(
      config,
      state_of({SiteStatus::kFlooded, SiteStatus::kFlooded, SiteStatus::kUp},
               {0, 0, 0}),
      kModel);
  EXPECT_NEAR(costs.downtime_hours, kModel.flood_repair_hours, 1e-12);
}

TEST(Restoration, GrayCostsDetectionPlusCleanup) {
  const auto config = scada::make_config_2("p");
  const IncidentCosts costs = expected_incident_costs(
      config, state_of({SiteStatus::kUp}, {1}), kModel);
  EXPECT_NEAR(costs.incorrect_hours, kModel.compromise_detection_hours, 1e-12);
  EXPECT_NEAR(costs.downtime_hours, kModel.compromise_cleanup_hours, 1e-12);
}

TEST(Restoration, SampledMeanApproachesAnalytic) {
  const auto config = scada::make_config_2("p");
  const SystemState red = state_of({SiteStatus::kFlooded}, {0});
  util::Rng rng(404);
  util::RunningStats downtime;
  for (int i = 0; i < 20000; ++i) {
    downtime.add(sample_incident_costs(config, red, kModel, rng).downtime_hours);
  }
  EXPECT_NEAR(downtime.mean(), kModel.flood_repair_hours,
              kModel.flood_repair_hours * 0.03);
}

TEST(Restoration, AnalyzeAggregatesOverRealizations) {
  const auto config = scada::make_config_2_2("hon", "waiau");
  std::vector<surge::HurricaneRealization> batch;
  const auto realization_with = [](std::vector<std::string> failed) {
    surge::HurricaneRealization r;
    for (std::string& id : failed) {
      surge::AssetImpact impact;
      impact.asset_id = std::move(id);
      impact.failed = true;
      r.impacts.push_back(std::move(impact));
    }
    return r;
  };
  for (int i = 0; i < 8; ++i) batch.push_back(realization_with({}));
  batch.push_back(realization_with({"hon"}));
  batch.push_back(realization_with({"hon", "waiau"}));

  const RestorationResult result = analyze_restoration(
      config, threat::ThreatScenario::kHurricane, batch, kModel,
      /*samples_per_realization=*/0);
  // 8 green (0 h) + 1 orange (1/6 h) + 1 red (96 h) over 10 realizations.
  EXPECT_NEAR(result.expected_downtime_hours,
              (kModel.activation_minutes / 60.0 + kModel.flood_repair_hours) /
                  10.0,
              1e-9);
  EXPECT_DOUBLE_EQ(result.expected_incorrect_hours, 0.0);
  EXPECT_NEAR(result.p_any_downtime, 0.2, 1e-12);
  EXPECT_EQ(result.config_name, "2-2");
}

TEST(Restoration, IntrusionScenarioAccruesIncorrectHours) {
  const auto config = scada::make_config_2("hon");
  surge::HurricaneRealization clean;
  const RestorationResult result = analyze_restoration(
      config, threat::ThreatScenario::kHurricaneIntrusion, {clean}, kModel,
      0);
  EXPECT_NEAR(result.expected_incorrect_hours,
              kModel.compromise_detection_hours, 1e-9);
  EXPECT_NEAR(result.expected_downtime_hours, kModel.compromise_cleanup_hours,
              1e-9);
}

TEST(Restoration, IntrusionTolerantConfigAvoidsIncorrectHours) {
  const auto config = scada::make_config_6("hon");
  surge::HurricaneRealization clean;
  const RestorationResult result = analyze_restoration(
      config, threat::ThreatScenario::kHurricaneIntrusion, {clean}, kModel,
      0);
  EXPECT_DOUBLE_EQ(result.expected_incorrect_hours, 0.0);
  EXPECT_DOUBLE_EQ(result.expected_downtime_hours, 0.0);
}

}  // namespace
}  // namespace ct::core
