// Tests for the storm substrate: Saffir-Simpson scale, Holland vortex,
// tracks, and the CAT-2 ensemble generator.
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "storm/generator.h"
#include "storm/holland.h"
#include "storm/saffir_simpson.h"
#include "storm/track.h"
#include "util/rng.h"

namespace ct::storm {
namespace {

// ---------------------------------------------------------------- scale

TEST(SaffirSimpson, CategoryBoundaries) {
  EXPECT_EQ(category_for_wind(30.0), Category::kTropicalStorm);
  EXPECT_EQ(category_for_wind(33.0), Category::kCat1);
  EXPECT_EQ(category_for_wind(43.0), Category::kCat2);
  EXPECT_EQ(category_for_wind(49.9), Category::kCat2);
  EXPECT_EQ(category_for_wind(50.0), Category::kCat3);
  EXPECT_EQ(category_for_wind(58.0), Category::kCat4);
  EXPECT_EQ(category_for_wind(75.0), Category::kCat5);
}

TEST(SaffirSimpson, BandsAreContiguous) {
  for (const Category c : {Category::kTropicalStorm, Category::kCat1,
                           Category::kCat2, Category::kCat3, Category::kCat4}) {
    const Category next = static_cast<Category>(static_cast<int>(c) + 1);
    EXPECT_DOUBLE_EQ(category_max_wind_ms(c), category_min_wind_ms(next));
  }
}

TEST(SaffirSimpson, WindPressureRoundTrip) {
  for (const double wind : {25.0, 35.0, 45.0, 60.0}) {
    const double pc = central_pressure_for_wind(wind);
    EXPECT_LT(pc, 101000.0);
    EXPECT_NEAR(wind_for_central_pressure(pc), wind, 0.1);
  }
}

TEST(SaffirSimpson, Cat2PressureIsPlausible) {
  // CAT-2 storms typically have central pressures ~ 965-980 hPa.
  const double pc = central_pressure_for_wind(46.0);
  EXPECT_GT(pc, 94500.0);
  EXPECT_LT(pc, 98500.0);
  EXPECT_EQ(category_name(Category::kCat2), "Cat2");
}

// ---------------------------------------------------------------- holland

VortexParams cat2_vortex() {
  VortexParams v;
  v.central_pressure_pa = 96800.0;
  v.ambient_pressure_pa = 101000.0;
  v.rmax_m = 40000.0;
  v.holland_b = 1.35;
  v.latitude_deg = 21.0;
  return v;
}

TEST(Holland, CalmEyeAndPeakNearRmax) {
  const VortexParams v = cat2_vortex();
  EXPECT_DOUBLE_EQ(holland_gradient_wind(v, 0.5), 0.0);
  const double at_rmax = holland_gradient_wind(v, v.rmax_m);
  // The gradient-wind peak sits almost exactly at Rmax.
  EXPECT_GT(at_rmax, holland_gradient_wind(v, v.rmax_m / 3.0));
  EXPECT_GT(at_rmax, holland_gradient_wind(v, v.rmax_m * 3.0));
  // CAT-2-ish magnitude.
  EXPECT_GT(at_rmax, 40.0);
  EXPECT_LT(at_rmax, 60.0);
}

TEST(Holland, WindDecaysFarField) {
  const VortexParams v = cat2_vortex();
  double prev = holland_gradient_wind(v, 100000.0);
  for (double r = 150000.0; r <= 400000.0; r += 50000.0) {
    const double now = holland_gradient_wind(v, r);
    EXPECT_LT(now, prev);
    prev = now;
  }
}

TEST(Holland, PressureProfileMonotonic) {
  const VortexParams v = cat2_vortex();
  EXPECT_DOUBLE_EQ(holland_pressure(v, 0.5), v.central_pressure_pa);
  double prev = holland_pressure(v, 5000.0);
  for (double r = 20000.0; r <= 300000.0; r += 20000.0) {
    const double now = holland_pressure(v, r);
    EXPECT_GT(now, prev);
    prev = now;
  }
  EXPECT_NEAR(holland_pressure(v, 1e7), v.ambient_pressure_pa, 10.0);
}

TEST(Holland, CoriolisSignAndMagnitude) {
  EXPECT_GT(coriolis_parameter(21.0), 0.0);
  EXPECT_LT(coriolis_parameter(-21.0), 0.0);
  EXPECT_NEAR(coriolis_parameter(90.0), 1.4584e-4, 1e-7);
}

TEST(WindField, CounterClockwiseRotation) {
  const HollandWindField field({.inflow_angle_deg = 0.0,
                                .translation_fraction = 0.0});
  const VortexParams v = cat2_vortex();
  // Point due east of the center: CCW rotation means northward wind.
  const WindSample east =
      field.sample(v, {0, 0}, {0, 0}, {v.rmax_m, 0.0});
  EXPECT_GT(east.velocity_ms.y, 0.0);
  EXPECT_NEAR(east.velocity_ms.x, 0.0, 1e-9);
  // Point due north: westward wind.
  const WindSample north =
      field.sample(v, {0, 0}, {0, 0}, {0.0, v.rmax_m});
  EXPECT_LT(north.velocity_ms.x, 0.0);
}

TEST(WindField, InflowTurnsWindInward) {
  const HollandWindField field({.inflow_angle_deg = 20.0,
                                .translation_fraction = 0.0});
  const VortexParams v = cat2_vortex();
  const WindSample east = field.sample(v, {0, 0}, {0, 0}, {v.rmax_m, 0.0});
  // Radially inward at the east point = negative x.
  EXPECT_LT(east.velocity_ms.x, 0.0);
}

TEST(WindField, ForwardMotionAsymmetry) {
  const HollandWindField field;
  const VortexParams v = cat2_vortex();
  const geo::Vec2 northward_motion{0.0, 6.0};
  // Storm moving north: right of track (east) is stronger than left.
  const WindSample right =
      field.sample(v, {0, 0}, northward_motion, {v.rmax_m, 0.0});
  const WindSample left =
      field.sample(v, {0, 0}, northward_motion, {-v.rmax_m, 0.0});
  EXPECT_GT(right.speed_ms, left.speed_ms);
}

TEST(WindField, SampleReportsPressure) {
  const HollandWindField field;
  const VortexParams v = cat2_vortex();
  const WindSample s = field.sample(v, {0, 0}, {0, 0}, {v.rmax_m, 0.0});
  EXPECT_GT(s.pressure_pa, v.central_pressure_pa);
  EXPECT_LT(s.pressure_pa, v.ambient_pressure_pa);
  const WindSample center = field.sample(v, {0, 0}, {0, 0}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(center.speed_ms, 0.0);
}

// ---------------------------------------------------------------- track

StormTrack simple_track() {
  TrackPoint a;
  a.time_s = 0.0;
  a.center = {20.0, -158.0};
  a.vortex = cat2_vortex();
  TrackPoint b = a;
  b.time_s = 36000.0;
  b.center = {21.0, -158.0};  // due north
  return StormTrack({a, b});
}

TEST(Track, InterpolationAndClamping) {
  const StormTrack track = simple_track();
  const geo::EnuProjection proj({20.5, -158.0});
  const StormState mid = track.state_at(18000.0, proj);
  EXPECT_NEAR(mid.center.lat_deg, 20.5, 1e-9);
  const StormState before = track.state_at(-100.0, proj);
  EXPECT_NEAR(before.center.lat_deg, 20.0, 1e-9);
  const StormState after = track.state_at(1e9, proj);
  EXPECT_NEAR(after.center.lat_deg, 21.0, 1e-9);
  EXPECT_DOUBLE_EQ(track.duration(), 36000.0);
}

TEST(Track, TranslationVelocity) {
  const StormTrack track = simple_track();
  const geo::EnuProjection proj({20.5, -158.0});
  const StormState mid = track.state_at(18000.0, proj);
  // 111.2 km of latitude in 10 h ~ 3.09 m/s northward.
  EXPECT_NEAR(mid.translation_ms.y, 3.09, 0.05);
  EXPECT_NEAR(mid.translation_ms.x, 0.0, 0.05);
}

TEST(Track, ClosestApproach) {
  const StormTrack track = simple_track();
  const geo::EnuProjection proj({20.5, -158.0});
  const double t = track.time_of_closest_approach({20.5, -157.9}, proj);
  EXPECT_NEAR(t, 18000.0, 1200.0);
}

TEST(Track, Validation) {
  EXPECT_THROW(StormTrack(std::vector<TrackPoint>{}), std::invalid_argument);
  TrackPoint only;
  EXPECT_THROW(StormTrack({only}), std::invalid_argument);
  TrackPoint a;
  a.time_s = 10.0;
  TrackPoint b;
  b.time_s = 10.0;  // not increasing
  EXPECT_THROW(StormTrack({a, b}), std::invalid_argument);
}

TEST(Track, PeakCategory) {
  const StormTrack track = simple_track();
  EXPECT_GE(static_cast<int>(track.peak_category()),
            static_cast<int>(Category::kCat1));
}

// ---------------------------------------------------------------- generator

TEST(Generator, Deterministic) {
  const TrackGenerator gen{TrackEnsembleConfig{}};
  const StormTrack a = gen.generate(123, 7);
  const StormTrack b = gen.generate(123, 7);
  ASSERT_EQ(a.points().size(), b.points().size());
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].center.lat_deg, b.points()[i].center.lat_deg);
    EXPECT_DOUBLE_EQ(a.points()[i].vortex.rmax_m, b.points()[i].vortex.rmax_m);
  }
}

TEST(Generator, RealizationsDiffer) {
  const TrackGenerator gen{TrackEnsembleConfig{}};
  const StormTrack a = gen.generate(123, 0);
  const StormTrack b = gen.generate(123, 1);
  EXPECT_NE(a.points().front().center.lon_deg,
            b.points().front().center.lon_deg);
}

TEST(Generator, ParametersWithinTruncationBounds) {
  const TrackEnsembleConfig config;
  const TrackGenerator gen(config);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const StormTrack t = gen.generate(99, i);
    const VortexParams& v = t.points().front().vortex;
    EXPECT_GE(v.rmax_m, config.rmax_min_m);
    EXPECT_LE(v.rmax_m, config.rmax_max_m);
    EXPECT_GE(v.holland_b, 1.0);
    EXPECT_LE(v.holland_b, 2.2);
    const double dp = v.ambient_pressure_pa - v.central_pressure_pa;
    EXPECT_GT(dp, 1000.0);
    EXPECT_LT(dp, 7000.0);
  }
}

TEST(Generator, EnsembleIsMostlyCat2) {
  const TrackGenerator gen{TrackEnsembleConfig{}};
  int cat2ish = 0;
  const int n = 100;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Category c = gen.generate(7, i).peak_category();
    if (c == Category::kCat1 || c == Category::kCat2) ++cat2ish;
  }
  EXPECT_GE(cat2ish, 90);
}

TEST(Generator, BaseTrackPassesNearAimPoint) {
  const TrackEnsembleConfig config;
  const TrackGenerator gen(config);
  const StormTrack base = gen.base_track();
  const geo::EnuProjection proj(config.base_aim);
  const double t = base.time_of_closest_approach(config.base_aim, proj);
  const StormState s = base.state_at(t, proj);
  EXPECT_LT(geo::distance(proj.to_enu(s.center), proj.to_enu(config.base_aim)),
            10000.0);
}

TEST(Generator, TrackHeadsNorthwest) {
  const TrackGenerator gen{TrackEnsembleConfig{}};
  const StormTrack t = gen.generate(1, 0);
  const geo::GeoPoint start = t.points().front().center;
  const geo::GeoPoint end = t.points().back().center;
  EXPECT_GT(end.lat_deg, start.lat_deg);   // moving north
  EXPECT_LT(end.lon_deg, start.lon_deg);   // and west
}

TEST(Generator, FixSpacingMatchesConfig) {
  TrackEnsembleConfig config;
  config.fix_interval_s = 1800.0;
  const TrackGenerator gen(config);
  const StormTrack t = gen.generate(5, 3);
  ASSERT_GE(t.points().size(), 3u);
  EXPECT_NEAR(t.points()[1].time_s - t.points()[0].time_s, 1800.0, 1e-9);
}

TEST(StormStepKernel, BitEqualToHollandWindFieldSample) {
  const auto bits = [](double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };

  std::vector<VortexParams> params_set;
  params_set.push_back({});  // defaults
  params_set.push_back({95500.0, 101200.0, 28000.0, 1.9, 13.5});
  params_set.push_back({99900.0, 99800.0, 55000.0, 1.05, 35.0});  // dp < 0
  params_set.push_back({97000.0, 101000.0, 0.5, 1.3, 21.0});      // tiny rmax

  WindFieldOptions opts;
  opts.inflow_angle_deg = 23.0;
  opts.translation_fraction = 0.6;
  const HollandWindField field(opts);

  for (const VortexParams& params : params_set) {
    const geo::Vec2 center{12000.0, -34000.0};
    const geo::Vec2 translation{4.0, 6.5};
    const StormStepKernel kernel(opts, params, center, translation);
    EXPECT_EQ(bits(kernel.vmax_ms()),
              bits(holland_gradient_wind(params, params.rmax_m)));

    for (double dx = -150000.0; dx <= 150000.0; dx += 12500.0) {
      for (double dy = -120000.0; dy <= 120000.0; dy += 17500.0) {
        const geo::Vec2 point = center + geo::Vec2{dx, dy};
        const WindSample a = field.sample(params, center, translation, point);
        const WindSample b = kernel.sample(point);
        EXPECT_EQ(bits(a.velocity_ms.x), bits(b.velocity_ms.x))
            << dx << "," << dy;
        EXPECT_EQ(bits(a.velocity_ms.y), bits(b.velocity_ms.y))
            << dx << "," << dy;
        EXPECT_EQ(bits(a.speed_ms), bits(b.speed_ms)) << dx << "," << dy;
        EXPECT_EQ(bits(a.pressure_pa), bits(b.pressure_pa)) << dx << "," << dy;
      }
    }

    // Calm eye center (r <= 1 branch).
    const WindSample eye_legacy =
        field.sample(params, center, translation, center);
    const WindSample eye_kernel = kernel.sample(center);
    EXPECT_EQ(bits(eye_legacy.pressure_pa), bits(eye_kernel.pressure_pa));
    EXPECT_EQ(eye_kernel.speed_ms, 0.0);
    EXPECT_EQ(eye_kernel.velocity_ms, geo::Vec2{});
  }
}

}  // namespace
}  // namespace ct::storm
