// Integration tests: the full case-study runner and siting optimizer on a
// reduced realization budget (statistical fidelity is covered by
// calibration_test and the bench binaries).
#include <gtest/gtest.h>

#include "core/case_study.h"
#include "core/report.h"
#include "core/siting.h"
#include "scada/oahu.h"

namespace ct::core {
namespace {

using threat::OperationalState;
using threat::ThreatScenario;

class CaseStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CaseStudyOptions options;
    options.realizations = 150;
    runner_ = new CaseStudyRunner(make_oahu_case_study(options));
  }
  static void TearDownTestSuite() {
    delete runner_;
  }
  static CaseStudyRunner* runner_;
};

CaseStudyRunner* CaseStudyTest::runner_ = nullptr;

TEST_F(CaseStudyTest, RealizationsAreCachedAndStable) {
  const auto& first = runner_->realizations();
  EXPECT_EQ(first.size(), 150u);
  const auto& second = runner_->realizations();
  EXPECT_EQ(&first, &second);  // same cached vector
}

TEST_F(CaseStudyTest, ProbabilitiesSumToOneForEveryConfigAndScenario) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  for (const ThreatScenario scenario : threat::all_scenarios()) {
    for (const auto& result : runner_->run_configs(configs, scenario)) {
      const double sum = result.outcomes.probability(OperationalState::kGreen) +
                         result.outcomes.probability(OperationalState::kOrange) +
                         result.outcomes.probability(OperationalState::kRed) +
                         result.outcomes.probability(OperationalState::kGray);
      EXPECT_NEAR(sum, 1.0, 1e-9);
      EXPECT_EQ(result.outcomes.total(), 150u);
    }
  }
}

TEST_F(CaseStudyTest, QualitativeShapeOfThePaperHolds) {
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);

  // Hurricane only: every architecture is mostly green, never gray.
  for (const auto& r :
       runner_->run_configs(configs, ThreatScenario::kHurricane)) {
    EXPECT_GT(r.outcomes.probability(OperationalState::kGreen), 0.7)
        << r.config_name;
    EXPECT_EQ(r.outcomes.probability(OperationalState::kGray), 0.0);
  }

  // Hurricane + intrusion: non-intrusion-tolerant architectures are mostly
  // gray; intrusion-tolerant ones keep their hurricane profile.
  const auto intrusion =
      runner_->run_configs(configs, ThreatScenario::kHurricaneIntrusion);
  EXPECT_GT(intrusion[0].outcomes.probability(OperationalState::kGray), 0.7);
  EXPECT_GT(intrusion[1].outcomes.probability(OperationalState::kGray), 0.7);
  EXPECT_EQ(intrusion[2].outcomes.probability(OperationalState::kGray), 0.0);
  EXPECT_EQ(intrusion[4].outcomes.probability(OperationalState::kGray), 0.0);

  // Hurricane + isolation: single-site architectures are 100% red; only
  // "6+6+6" keeps green mass.
  const auto isolation =
      runner_->run_configs(configs, ThreatScenario::kHurricaneIsolation);
  EXPECT_DOUBLE_EQ(isolation[0].outcomes.probability(OperationalState::kRed),
                   1.0);
  EXPECT_DOUBLE_EQ(isolation[2].outcomes.probability(OperationalState::kRed),
                   1.0);
  EXPECT_GT(isolation[4].outcomes.probability(OperationalState::kGreen), 0.7);
  EXPECT_EQ(isolation[4].outcomes.probability(OperationalState::kOrange), 0.0);

  // Full compound threat: "6-6" is the minimum survivable configuration
  // (orange), "6+6+6" stays green.
  const auto full = runner_->run_configs(
      configs, ThreatScenario::kHurricaneIntrusionIsolation);
  EXPECT_DOUBLE_EQ(full[2].outcomes.probability(OperationalState::kRed), 1.0);
  EXPECT_GT(full[3].outcomes.probability(OperationalState::kOrange), 0.7);
  EXPECT_GT(full[4].outcomes.probability(OperationalState::kGreen), 0.7);
}

TEST_F(CaseStudyTest, KaheSitingRemovesRedMass) {
  // The paper's §VII: with Kahe as backup, "2-2"/"6-6" convert red to
  // orange and "6+6+6" becomes fully green (Figs. 10-11).
  const auto kahe_configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kKaheCc,
      scada::oahu_ids::kDrFortress);
  const auto results =
      runner_->run_configs(kahe_configs, ThreatScenario::kHurricane);
  EXPECT_EQ(results[1].outcomes.probability(OperationalState::kRed), 0.0);
  EXPECT_EQ(results[3].outcomes.probability(OperationalState::kRed), 0.0);
  EXPECT_DOUBLE_EQ(results[4].outcomes.probability(OperationalState::kGreen),
                   1.0);
}

TEST_F(CaseStudyTest, FloodProbabilityHelpers) {
  const double hon =
      runner_->asset_flood_probability(scada::oahu_ids::kHonoluluCc);
  EXPECT_GT(hon, 0.0);
  EXPECT_LT(hon, 0.25);
  EXPECT_EQ(runner_->asset_flood_probability(scada::oahu_ids::kKaheCc), 0.0);
  // Conditional on a never-flooding asset is defined as 0.
  EXPECT_EQ(runner_->conditional_flood_probability(
                scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kKaheCc),
            0.0);
  EXPECT_GT(runner_->conditional_flood_probability(
                scada::oahu_ids::kWaiauCc, scada::oahu_ids::kHonoluluCc),
            0.8);
}

// ---------------------------------------------------------------- siting

TEST_F(CaseStudyTest, SitingRankCoversAllCombinations) {
  SitingOptimizer optimizer(*runner_);
  const auto scores = optimizer.rank_backup_sites(
      scada::oahu_ids::kHonoluluCc, scada::oahu_control_site_candidates(),
      ThreatScenario::kHurricane);
  EXPECT_EQ(scores.size(), 4u);  // 5 candidates minus the fixed primary
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_LE(scores[i - 1].expected_badness, scores[i].expected_badness);
  }
  for (const auto& s : scores) {
    EXPECT_NE(s.chosen.at(0), scada::oahu_ids::kHonoluluCc);
    EXPECT_NEAR(s.green_probability + s.orange_probability +
                    s.red_probability + s.gray_probability,
                1.0, 1e-9);
  }
}

TEST_F(CaseStudyTest, KaheIsTheBestBackupSite) {
  // The paper's headline siting finding.
  SitingOptimizer optimizer(*runner_);
  const auto scores = optimizer.rank_backup_sites(
      scada::oahu_ids::kHonoluluCc, scada::oahu_control_site_candidates(),
      ThreatScenario::kHurricane);
  ASSERT_FALSE(scores.empty());
  EXPECT_EQ(scores.front().chosen.at(0), scada::oahu_ids::kKaheCc);
}

TEST_F(CaseStudyTest, SitePairsRankedForTriple) {
  SitingOptimizer optimizer(*runner_);
  const auto scores = optimizer.rank_site_pairs(
      scada::oahu_ids::kHonoluluCc, scada::oahu_control_site_candidates(),
      ThreatScenario::kHurricaneIntrusionIsolation);
  EXPECT_EQ(scores.size(), 6u);  // C(4, 2)
  // Under the full compound threat no pair reaches 100% green (when the
  // Honolulu primary floods, the isolation attack takes a second site),
  // but dry-site pairs keep the hurricane profile and never go gray.
  EXPECT_GT(scores.front().green_probability, 0.8);
  EXPECT_EQ(scores.front().gray_probability, 0.0);
}

TEST_F(CaseStudyTest, SitingValidation) {
  SitingOptimizer optimizer(*runner_);
  EXPECT_THROW(optimizer.rank(nullptr, {"a"}, 1, ThreatScenario::kHurricane),
               std::invalid_argument);
  const ConfigBuilder builder = [](const std::vector<std::string>& chosen) {
    return scada::make_config_6_6("p", chosen.at(0));
  };
  EXPECT_THROW(optimizer.rank(builder, {"a"}, 2, ThreatScenario::kHurricane),
               std::invalid_argument);
  EXPECT_THROW(optimizer.rank(builder, {"a"}, 0, ThreatScenario::kHurricane),
               std::invalid_argument);
}

}  // namespace
}  // namespace ct::core
