// Tests for the architecture designer: the generated configurations must
// reproduce the paper's five architectures exactly, size novel ones per
// the replication rules, and stay compatible with the evaluator/attacker.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "scada/architect.h"
#include "scada/requirements.h"
#include "threat/attacker.h"

namespace ct::scada {
namespace {

TEST(Architect, ReproducesPaperConfig2) {
  const Configuration designed = design_configuration(
      {ArchitectureStyle::kPrimaryBackup, 0, 0, 1}, {"hon"});
  const Configuration factory = make_config_2("hon");
  EXPECT_EQ(designed.name, factory.name);
  EXPECT_EQ(designed.style, factory.style);
  EXPECT_EQ(designed.sites.size(), factory.sites.size());
  EXPECT_EQ(designed.sites[0].replicas, factory.sites[0].replicas);
}

TEST(Architect, ReproducesPaperConfig66) {
  const Configuration designed = design_configuration(
      {ArchitectureStyle::kBftColdBackup, 1, 1, 2}, {"hon", "waiau"});
  const Configuration factory = make_config_6_6("hon", "waiau");
  EXPECT_EQ(designed.name, "6-6");
  EXPECT_EQ(designed.intrusion_tolerance_f, factory.intrusion_tolerance_f);
  EXPECT_EQ(designed.sites[1].hot, factory.sites[1].hot);
  EXPECT_EQ(designed.total_replicas(), factory.total_replicas());
}

TEST(Architect, ReproducesPaperConfig666) {
  const Configuration designed = design_configuration(
      {ArchitectureStyle::kBftActiveMultisite, 1, 1, 3},
      {"hon", "waiau", "dc"});
  const Configuration factory = make_config_6_6_6("hon", "waiau", "dc");
  EXPECT_EQ(designed.name, "6+6+6");
  EXPECT_TRUE(designed.active_multisite);
  EXPECT_EQ(designed.min_active_sites, factory.min_active_sites);
  EXPECT_EQ(designed.total_replicas(), 18);
  EXPECT_EQ(designed.sites[2].role, SiteRole::kDataCenter);
}

TEST(Architect, SpecNamesFollowThePaperNotation) {
  EXPECT_EQ(spec_name({ArchitectureStyle::kPrimaryBackup, 0, 0, 1}), "2");
  EXPECT_EQ(spec_name({ArchitectureStyle::kPrimaryColdBackup, 0, 0, 2}),
            "2-2");
  EXPECT_EQ(spec_name({ArchitectureStyle::kBft, 1, 1, 1}), "6");
  EXPECT_EQ(spec_name({ArchitectureStyle::kBft, 1, 0, 1}), "4");
  EXPECT_EQ(spec_name({ArchitectureStyle::kBft, 2, 1, 1}), "9");
  EXPECT_EQ(spec_name({ArchitectureStyle::kBftActiveMultisite, 2, 1, 3}),
            "9+9+9");
  EXPECT_EQ(spec_name({ArchitectureStyle::kBftActiveMultisite, 1, 1, 4}),
            "3+3+3+3");
}

TEST(Architect, FourSiteDesignSurvivesOneSiteLoss) {
  // 3 replicas per site x 4 sites, f=k=1: losing one site leaves 9
  // connected, 9 - 1 - 1 = 7 >= quorum(12, 1) = 7.
  const Configuration c = design_configuration(
      {ArchitectureStyle::kBftActiveMultisite, 1, 1, 4},
      {"a", "b", "c", "d"});
  EXPECT_EQ(c.total_replicas(), 12);
  EXPECT_EQ(c.min_active_sites, 3);
  threat::SystemState state;
  state.site_status.assign(4, threat::SiteStatus::kUp);
  state.intrusions.assign(4, 0);
  state.site_status[0] = threat::SiteStatus::kFlooded;
  EXPECT_EQ(core::evaluate(c, state), threat::OperationalState::kGreen);
  state.site_status[1] = threat::SiteStatus::kIsolated;
  EXPECT_EQ(core::evaluate(c, state), threat::OperationalState::kRed);
}

TEST(Architect, HigherToleranceSurvivesStrongerAttacker) {
  // f=2 single site ("9") survives a 2-intrusion attacker that defeats "6".
  const Configuration nine = design_configuration(
      {ArchitectureStyle::kBft, 2, 1, 1}, {"hon"});
  EXPECT_EQ(nine.total_replicas(), 9);
  threat::SystemState base;
  base.site_status = {threat::SiteStatus::kUp};
  base.intrusions = {0};
  const threat::GreedyWorstCaseAttacker attacker;
  const auto attacked = attacker.attack(nine, base, {2, 0});
  EXPECT_EQ(core::evaluate(nine, attacked), threat::OperationalState::kGreen);
  const auto defeated = attacker.attack(nine, base, {3, 0});
  EXPECT_EQ(core::evaluate(nine, defeated), threat::OperationalState::kGray);
}

TEST(Architect, RequiredSitesAndValidation) {
  EXPECT_EQ(required_sites({ArchitectureStyle::kBft, 1, 1, 1}), 1);
  EXPECT_EQ(required_sites({ArchitectureStyle::kBftColdBackup, 1, 1, 2}), 2);
  EXPECT_EQ(
      required_sites({ArchitectureStyle::kBftActiveMultisite, 1, 1, 5}), 5);

  EXPECT_THROW(design_configuration({ArchitectureStyle::kBft, 0, 1, 1},
                                    {"a"}),
               std::invalid_argument);
  EXPECT_THROW(design_configuration(
                   {ArchitectureStyle::kBftActiveMultisite, 1, 1, 2},
                   {"a", "b"}),
               std::invalid_argument);
  EXPECT_THROW(design_configuration({ArchitectureStyle::kBft, 1, 1, 1},
                                    {"a", "b"}),
               std::invalid_argument);
  EXPECT_THROW(design_configuration({ArchitectureStyle::kBft, -1, 1, 1},
                                    {"a"}),
               std::invalid_argument);
}

TEST(Architect, StandardDesignSpace) {
  const auto space = standard_design_space(2, 4);
  // 2 PB styles + per (f in {1,2}, k in {0,1}): single, cold backup, and
  // multisite with 3 and 4 sites = 4 specs -> 2 + 2*2*4 = 18.
  EXPECT_EQ(space.size(), 18u);
  // Every spec must produce a valid named configuration.
  for (const auto& spec : space) {
    std::vector<std::string> assets;
    for (int i = 0; i < required_sites(spec); ++i) {
      assets.push_back("site" + std::to_string(i));
    }
    const Configuration c = design_configuration(spec, assets);
    EXPECT_FALSE(c.name.empty());
    EXPECT_GE(c.total_replicas(), 2);
  }
  EXPECT_THROW(standard_design_space(0, 3), std::invalid_argument);
}

TEST(Architect, StyleNames) {
  EXPECT_EQ(architecture_style_name(ArchitectureStyle::kPrimaryBackup),
            "primary-backup");
  EXPECT_EQ(
      architecture_style_name(ArchitectureStyle::kBftActiveMultisite),
      "network-attack-resilient intrusion-tolerant");
}

}  // namespace
}  // namespace ct::scada
