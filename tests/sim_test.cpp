// Tests for the discrete-event engine, the network model, and the client
// workload.
#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace ct::sim {
namespace {

// ---------------------------------------------------------------- engine

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, FifoTieBreakAtSameInstant) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run_until(5.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run_until(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, StopsAtHorizonEvenWithPendingEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(50.0, [&] { ran = true; });
  sim.run_until(10.0);
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  sim.run_until(100.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RejectsPastAndNullEvents) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(10.0, nullptr), std::invalid_argument);
}

TEST(Simulator, TraceGatedByFlag) {
  Simulator sim;
  sim.trace("ignored");
  EXPECT_TRUE(sim.trace_log().empty());
  sim.set_tracing(true);
  sim.trace("kept");
  ASSERT_EQ(sim.trace_log().size(), 1u);
  EXPECT_NE(sim.trace_log()[0].find("kept"), std::string::npos);
}

// A thousand-plus ties at one instant must pop in exact scheduling order:
// this is the case the timer wheel's sorted buckets and the packed
// (seq, slot) heap keys have to get right, including ties created from
// inside a handler at the very instant being drained.
TEST(Simulator, ThousandSameInstantTiesStayFifo) {
  Simulator sim;
  std::vector<int> order;
  order.reserve(1500);
  sim.schedule_at(5.0, [&] {
    order.push_back(0);
    // Mid-drain, add 500 more ties at the same instant: they carry later
    // sequence numbers, so they run after the original block, in order.
    for (int i = 1000; i < 1500; ++i) {
      sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
    }
  });
  for (int i = 1; i < 1000; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run_until(5.0);
  ASSERT_EQ(order.size(), 1500u);
  for (int i = 0; i < 1500; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "tie index " << i;
  }
  EXPECT_EQ(sim.events_processed(), 1500u);
}

// The storm guard must trip only when a due event actually exists beyond
// the limit: exactly N pending events under a limit of N drain cleanly.
TEST(Simulator, EventLimitBoundaryAtExactlyN) {
  {
    Simulator sim;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_at(1.0 + i, [] {});
    }
    sim.set_event_limit(100);
    sim.run_until(1000.0);
    EXPECT_EQ(sim.events_processed(), 100u);
    EXPECT_FALSE(sim.event_limit_hit());
    EXPECT_EQ(sim.pending_events(), 0u);
  }
  {
    Simulator sim;
    for (int i = 0; i < 101; ++i) {
      sim.schedule_at(1.0 + i, [] {});
    }
    sim.set_event_limit(100);
    sim.run_until(1000.0);
    EXPECT_EQ(sim.events_processed(), 100u);
    EXPECT_TRUE(sim.event_limit_hit());
    EXPECT_EQ(sim.pending_events(), 1u);
    // Lifting the limit resumes the run where the guard stopped it.
    sim.set_event_limit(0);
    sim.run_until(1000.0);
    EXPECT_EQ(sim.events_processed(), 101u);
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

// Scheduling between run_until calls at a time below the wheel's window:
// after the queue drains down to a far-future event, the window rebases
// onto it, and a subsequent near-term schedule_at must rebase back down
// rather than land behind the cursor.
TEST(Simulator, ScheduleBetweenRunsBelowRebasedWindow) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(50.0, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(1000.0, [&] { fired.push_back(sim.now()); });
  // Pops t=50; peeking at t=1000 (far outside the 8 s window) rebases.
  sim.run_until(60.0);
  ASSERT_EQ(fired.size(), 1u);
  // Now schedule below the rebased window base.
  sim.schedule_at(70.0, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(65.0, [&] { fired.push_back(sim.now()); });
  sim.run_until(2000.0);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(fired[0], 50.0);
  EXPECT_DOUBLE_EQ(fired[1], 65.0);
  EXPECT_DOUBLE_EQ(fired[2], 70.0);
  EXPECT_DOUBLE_EQ(fired[3], 1000.0);
}

// reset() must recycle every pooled event slot — including events that
// never ran — and leave the simulator observably identical to a fresh
// one: the same workload replays identically with zero slab growth.
TEST(Simulator, ResetRecyclesEventPoolWithoutGrowth) {
  const auto workload = [](Simulator& sim, std::vector<int>& order) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_at(1.0 + 0.25 * i, [&order, i] { order.push_back(i); });
    }
    // Chained events exercise slot reuse mid-run.
    std::function<void()> tick = [&] {
      order.push_back(-1);
      if (order.size() < 80) sim.schedule_in(0.5, tick);
    };
    sim.schedule_at(2.0, tick);
    // Left pending at the horizon: reset() must reclaim these slots too.
    sim.schedule_at(1e6, [&order] { order.push_back(-2); });
    sim.run_until(100.0);
  };

  Simulator sim;
  std::vector<int> first;
  workload(sim, first);
  EXPECT_GT(sim.pool_stats().slab_grows, 0u);
  EXPECT_EQ(sim.pending_events(), 1u);
  const std::size_t capacity = sim.pool_stats().slab_capacity;

  sim.reset();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.trace_log().empty());

  std::vector<int> second;
  workload(sim, second);
  EXPECT_EQ(second, first);
  // The zero-allocation steady state: a warmed pool re-running the same
  // workload creates no new slots.
  EXPECT_EQ(sim.pool_stats().slab_grows, 0u);
  EXPECT_EQ(sim.pool_stats().slab_capacity, capacity);
}

// ---------------------------------------------------------------- network

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, {2, 2, 1}) {
    for (int s = 0; s < 3; ++s) {
      for (int n = 0; n < net_.nodes_at(s); ++n) {
        net_.register_handler({s, n}, [this, s, n](const Message& m) {
          received_.push_back({{s, n}, m});
        });
      }
    }
  }

  Message request() {
    Message m;
    m.type = Message::Type::kRequest;
    m.request_id = 42;
    return m;
  }

  Simulator sim_;
  Network net_;
  std::vector<std::pair<NodeAddr, Message>> received_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  net_.send({0, 0}, {0, 1}, request());  // intra-site
  net_.send({0, 0}, {1, 0}, request());  // inter-site
  sim_.run_until(0.01);
  ASSERT_EQ(received_.size(), 1u);  // only intra-site arrived yet
  EXPECT_EQ(received_[0].first, (NodeAddr{0, 1}));
  sim_.run_until(0.1);
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[1].second.sender, (NodeAddr{0, 0}));
}

TEST_F(NetworkTest, DownSiteNeitherSendsNorReceives) {
  net_.set_site_down(1, true);
  net_.send({0, 0}, {1, 0}, request());
  net_.send({1, 0}, {0, 0}, request());
  sim_.run_until(1.0);
  EXPECT_TRUE(received_.empty());
  EXPECT_FALSE(net_.can_communicate({0, 0}, {1, 0}));
  net_.set_site_down(1, false);
  EXPECT_TRUE(net_.can_communicate({0, 0}, {1, 0}));
}

TEST_F(NetworkTest, IsolatedSiteKeepsIntraSiteTraffic) {
  net_.set_site_isolated(0, true);
  net_.send({0, 0}, {0, 1}, request());  // intra-site still works
  net_.send({0, 0}, {1, 0}, request());  // cross-boundary blocked
  net_.send({1, 0}, {0, 0}, request());  // inbound blocked too
  sim_.run_until(1.0);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, (NodeAddr{0, 1}));
}

TEST_F(NetworkTest, InFlightTrafficDroppedWhenSiteGoesDown) {
  net_.send({0, 0}, {1, 0}, request());
  net_.set_site_down(1, true);  // goes down while the packet is in flight
  sim_.run_until(1.0);
  EXPECT_TRUE(received_.empty());
}

TEST_F(NetworkTest, BroadcastExcludesSender) {
  net_.broadcast({0, 0}, request());
  sim_.run_until(1.0);
  EXPECT_EQ(received_.size(), 4u);  // 5 nodes minus the sender
  for (const auto& [addr, msg] : received_) {
    EXPECT_FALSE(addr == (NodeAddr{0, 0}));
  }
}

TEST_F(NetworkTest, SendToSite) {
  net_.send_to_site({2, 0}, 1, request());
  sim_.run_until(1.0);
  EXPECT_EQ(received_.size(), 2u);
}

TEST_F(NetworkTest, CountsAndValidation) {
  net_.send({0, 0}, {1, 0}, request());
  sim_.run_until(1.0);
  EXPECT_EQ(net_.messages_sent(), 1u);
  EXPECT_EQ(net_.messages_delivered(), 1u);
  EXPECT_THROW(net_.send({0, 0}, {5, 0}, request()), std::out_of_range);
  EXPECT_THROW(net_.send({0, 7}, {1, 0}, request()), std::out_of_range);
  EXPECT_THROW(Network(sim_, {}), std::invalid_argument);
  EXPECT_THROW(Network(sim_, {-1}), std::invalid_argument);
}

TEST(NetworkNames, ToString) {
  EXPECT_EQ(to_string(NodeAddr{2, 3}), "s2/n3");
  EXPECT_EQ(to_string(Message::Type::kProposal), "PROPOSAL");
  EXPECT_EQ(to_string(Message::Type::kViewChange), "VIEW-CHANGE");
}

// ---------------------------------------------------------------- workload

/// A scripted responder standing in for a SCADA master.
class FakeServer {
 public:
  FakeServer(Simulator& sim, Network& net, NodeAddr self, bool corrupt,
             std::int64_t value_offset = 0)
      : sim_(sim), net_(net), self_(self), corrupt_(corrupt),
        value_offset_(value_offset) {
    net_.register_handler(self_, [this](const Message& m) {
      if (m.type != Message::Type::kRequest || silent_) return;
      Message reply;
      reply.type = Message::Type::kReply;
      reply.request_id = m.request_id;
      reply.value = m.request_id + value_offset_;
      reply.corrupt = corrupt_;
      net_.send(self_, m.sender, reply);
    });
  }
  void set_silent(bool silent) { silent_ = silent; }

 private:
  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  bool corrupt_;
  std::int64_t value_offset_;
  bool silent_ = false;
};

TEST(Workload, SingleReplySufficesForPrimaryBackup) {
  Simulator sim;
  Network net(sim, {1, 1});
  WorkloadOptions options;
  options.request_interval_s = 1.0;
  options.replies_needed = 1;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}});
  FakeServer server(sim, net, {0, 0}, /*corrupt=*/false);
  client.start(0.0, 10.0);
  sim.run_until(12.0);
  EXPECT_EQ(client.records().size(), 10u);
  EXPECT_FALSE(client.safety_violated());
  EXPECT_DOUBLE_EQ(client.success_fraction(0.0, 9.5), 1.0);
  EXPECT_LT(client.max_gap(0.0, 9.5), 1.5);
}

TEST(Workload, CorruptReplyAcceptedIsViolation) {
  Simulator sim;
  Network net(sim, {1, 1});
  WorkloadOptions options;
  options.replies_needed = 1;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}});
  FakeServer server(sim, net, {0, 0}, /*corrupt=*/true);
  client.start(0.0, 5.0);
  sim.run_until(6.0);
  EXPECT_TRUE(client.safety_violated());
  EXPECT_GE(client.first_violation_at(), 0.0);
  // Corrupt completions never count toward availability.
  EXPECT_DOUBLE_EQ(client.success_fraction(0.0, 4.5), 0.0);
}

TEST(Workload, QuorumOfMatchingRepliesRequired) {
  Simulator sim;
  Network net(sim, {3, 1});
  WorkloadOptions options;
  options.replies_needed = 2;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}, {0, 1}, {0, 2}});
  FakeServer bad(sim, net, {0, 0}, /*corrupt=*/true);
  FakeServer good1(sim, net, {0, 1}, false);
  FakeServer good2(sim, net, {0, 2}, false);
  client.start(0.0, 5.0);
  sim.run_until(6.0);
  // One corrupt voice cannot win; two matching correct replies accept.
  EXPECT_FALSE(client.safety_violated());
  EXPECT_GT(client.success_fraction(0.0, 4.5), 0.9);
}

TEST(Workload, TwoCollusdingForgersDefeatFPlusOne) {
  Simulator sim;
  Network net(sim, {3, 1});
  WorkloadOptions options;
  options.replies_needed = 2;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}, {0, 1}, {0, 2}});
  FakeServer bad1(sim, net, {0, 0}, true);
  FakeServer bad2(sim, net, {0, 1}, true);
  FakeServer good(sim, net, {0, 2}, false);
  client.start(0.0, 5.0);
  sim.run_until(6.0);
  EXPECT_TRUE(client.safety_violated());
}

TEST(Workload, MismatchedValuesDoNotAccumulate) {
  Simulator sim;
  Network net(sim, {2, 1});
  WorkloadOptions options;
  options.replies_needed = 2;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}, {0, 1}});
  // Two servers disagree on the value: no signature reaches 2 votes.
  FakeServer a(sim, net, {0, 0}, false, /*value_offset=*/0);
  FakeServer b(sim, net, {0, 1}, false, /*value_offset=*/1000);
  client.start(0.0, 5.0);
  sim.run_until(6.0);
  EXPECT_DOUBLE_EQ(client.success_fraction(0.0, 4.5), 0.0);
  for (const auto& r : client.records()) EXPECT_LT(r.completed_at, 0.0);
}

TEST(Workload, MaxGapSeesOutage) {
  Simulator sim;
  Network net(sim, {1, 1});
  WorkloadOptions options;
  options.request_interval_s = 1.0;
  options.replies_needed = 1;
  ClientWorkload client(sim, net, {1, 0}, options);
  client.set_targets({{0, 0}});
  FakeServer server(sim, net, {0, 0}, false);
  client.start(0.0, 30.0);
  // Outage from t=10 to t=20.
  sim.schedule_at(10.0, [&] { net.set_site_down(0, true); });
  sim.schedule_at(20.0, [&] { net.set_site_down(0, false); });
  sim.run_until(31.0);
  const double gap = client.max_gap(0.0, 29.5);
  EXPECT_GT(gap, 9.0);
  EXPECT_LT(gap, 13.0);
  const double during = client.success_fraction(10.5, 19.0);
  EXPECT_DOUBLE_EQ(during, 0.0);
  EXPECT_GT(client.success_fraction(21.0, 29.0), 0.9);
}

TEST(Workload, Validation) {
  Simulator sim;
  Network net(sim, {1, 1});
  WorkloadOptions bad;
  bad.request_interval_s = 0.0;
  EXPECT_THROW(ClientWorkload(sim, net, {1, 0}, bad), std::invalid_argument);
  WorkloadOptions bad2;
  bad2.replies_needed = 0;
  EXPECT_THROW(ClientWorkload(sim, net, {1, 0}, bad2), std::invalid_argument);
}

}  // namespace
}  // namespace ct::sim
