// Tests for the surge solver, inundation mapping, harbor treatment, and
// the realization engine (fast cases; statistical calibration lives in
// calibration_test.cpp).
#include <cmath>

#include <gtest/gtest.h>

#include "scada/oahu.h"
#include "surge/harbor.h"
#include "surge/inundation.h"
#include "surge/realization.h"
#include "surge/surge_model.h"
#include "terrain/oahu.h"

namespace ct::surge {
namespace {

/// Shared slow fixtures: one coastal mesh + one engine for all tests.
class SurgeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    terrain_ = terrain::make_oahu_terrain().release();
    cm_ = new mesh::CoastalMesh(
        mesh::build_coastal_mesh(*terrain_, mesh::CoastalMeshConfig{}));
  }
  static void TearDownTestSuite() {
    delete cm_;
    delete terrain_;
  }

  static const terrain::Terrain* terrain_;
  static const mesh::CoastalMesh* cm_;
};

const terrain::Terrain* SurgeFixture::terrain_ = nullptr;
const mesh::CoastalMesh* SurgeFixture::cm_ = nullptr;

storm::StormTrack direct_hit_track() {
  // Straight south-to-north track over the island's west side.
  std::vector<storm::TrackPoint> fixes;
  for (int i = 0; i <= 24; ++i) {
    storm::TrackPoint p;
    p.time_s = i * 3600.0;
    p.center = {19.5 + 0.125 * i, -158.1};
    p.vortex.central_pressure_pa = 96800.0;
    p.vortex.rmax_m = 40000.0;
    p.vortex.holland_b = 1.35;
    p.vortex.latitude_deg = p.center.lat_deg;
    fixes.push_back(p);
  }
  return storm::StormTrack(std::move(fixes));
}

TEST_F(SurgeFixture, DirectHitProducesRealisticSurge) {
  const SurgeSolver solver;
  const mesh::NodeField envelope =
      solver.max_envelope(*cm_, direct_hit_track(), terrain_->projection());
  const double peak = mesh::field_max(envelope);
  // A CAT-2 passing over the island should raise 1-4 m somewhere.
  EXPECT_GT(peak, 1.0);
  EXPECT_LT(peak, 5.0);
  EXPECT_GE(mesh::field_min(envelope), 0.0);
}

TEST_F(SurgeFixture, EnvelopeDominatesInstantaneous) {
  const SurgeSolver solver;
  const storm::StormTrack track = direct_hit_track();
  const auto& proj = terrain_->projection();
  const mesh::NodeField envelope = solver.max_envelope(*cm_, track, proj);
  for (const double t : {6.0 * 3600.0, 12.0 * 3600.0, 18.0 * 3600.0}) {
    const mesh::NodeField instant =
        solver.instantaneous(*cm_, track.state_at(t, proj), proj);
    for (std::size_t i = 0; i < envelope.size(); i += 37) {
      EXPECT_GE(envelope[i], instant[i] - 1e-9);
    }
  }
}

TEST_F(SurgeFixture, FarAwayStormProducesNoSurge) {
  std::vector<storm::TrackPoint> fixes;
  for (int i = 0; i <= 5; ++i) {
    storm::TrackPoint p;
    p.time_s = i * 3600.0;
    p.center = {5.0, -140.0 + 0.1 * i};  // thousands of km away
    p.vortex = direct_hit_track().points().front().vortex;
    fixes.push_back(p);
  }
  const SurgeSolver solver;
  const mesh::NodeField envelope = solver.max_envelope(
      *cm_, storm::StormTrack(std::move(fixes)), terrain_->projection());
  EXPECT_DOUBLE_EQ(mesh::field_max(envelope), 0.0);  // skipped by distance cull
}

TEST_F(SurgeFixture, StrongerStormMoreSurge) {
  SurgeConfig config;
  const SurgeSolver solver(config);
  const auto& proj = terrain_->projection();
  storm::StormTrack weak = direct_hit_track();
  std::vector<storm::TrackPoint> strong_fixes = weak.points();
  for (auto& p : strong_fixes) p.vortex.central_pressure_pa = 95500.0;
  const storm::StormTrack strong(std::move(strong_fixes));
  EXPECT_GT(mesh::field_max(solver.max_envelope(*cm_, strong, proj)),
            mesh::field_max(solver.max_envelope(*cm_, weak, proj)));
}

// ---------------------------------------------------------------- inundation

TEST_F(SurgeFixture, InundationThresholdAndDecay) {
  const InundationMapper mapper(*cm_, terrain_->projection());
  std::vector<double> wse(cm_->stations.size(), 2.0);

  const ExposedAsset at_shore{"shore", terrain_->projection().to_geo(
                                            cm_->stations[0].position),
                              1.0};
  const AssetImpact shore_impact = mapper.impact(at_shore, wse);
  EXPECT_NEAR(shore_impact.water_level_m, 2.0, 0.05);
  EXPECT_NEAR(shore_impact.inundation_depth_m, 1.0, 0.05);
  EXPECT_TRUE(shore_impact.failed);

  // Same spot but 3 m pad elevation: dry.
  const ExposedAsset high{"high", at_shore.location, 3.0};
  const AssetImpact high_impact = mapper.impact(high, wse);
  EXPECT_DOUBLE_EQ(high_impact.inundation_depth_m, 0.0);
  EXPECT_FALSE(high_impact.failed);

  // An asset 3 km inland sees an attenuated water level.
  const geo::Vec2 inland_pos = cm_->stations[0].position -
                               cm_->stations[0].outward_normal * 3000.0;
  const ExposedAsset inland{"inland",
                            terrain_->projection().to_geo(inland_pos), 0.0};
  const AssetImpact inland_impact = mapper.impact(inland, wse);
  EXPECT_LT(inland_impact.water_level_m, shore_impact.water_level_m);
  EXPECT_GT(inland_impact.water_level_m, 0.0);
}

TEST_F(SurgeFixture, FailureExactlyAboveThreshold) {
  InundationConfig config;
  config.failure_threshold_m = 0.5;
  const InundationMapper mapper(*cm_, terrain_->projection(), config);
  const geo::GeoPoint loc =
      terrain_->projection().to_geo(cm_->stations[3].position);
  std::vector<double> wse(cm_->stations.size(), 1.0);
  // depth = 1.0 - elev; elev 0.5 -> depth 0.5 -> NOT failed (strictly >).
  EXPECT_FALSE(mapper.impact({"a", loc, 0.5}, wse).failed);
  EXPECT_TRUE(mapper.impact({"b", loc, 0.45}, wse).failed);
}

TEST_F(SurgeFixture, InundationValidation) {
  const InundationMapper mapper(*cm_, terrain_->projection());
  std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(mapper.impact({"x", {21.3, -157.9}, 1.0}, wrong),
               std::invalid_argument);
  InundationConfig bad;
  bad.decay_length_m = 0.0;
  EXPECT_THROW(InundationMapper(*cm_, terrain_->projection(), bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------- harbor

TEST_F(SurgeFixture, PearlHarborStationsAreSheltered) {
  const auto sheltered = sheltered_stations(*cm_, *terrain_, HarborConfig{});
  const auto& proj = terrain_->projection();
  std::size_t in_harbor_sheltered = 0;
  std::size_t in_harbor_total = 0;
  std::size_t south_shore_sheltered = 0;
  for (std::size_t i = 0; i < cm_->stations.size(); ++i) {
    const geo::GeoPoint g = proj.to_geo(cm_->stations[i].position);
    // Loch interior (excludes the exposed entrance flanks near 21.32 and
    // the unrelated north shore, which shares these longitudes).
    const bool in_harbor = g.lat_deg > 21.335 && g.lat_deg < 21.40 &&
                           g.lon_deg > -157.99 && g.lon_deg < -157.93;
    if (in_harbor) {
      ++in_harbor_total;
      if (sheltered[i]) ++in_harbor_sheltered;
    }
    // Open south shore from the airport to Diamond Head.
    const bool south_shore =
        g.lat_deg < 21.31 && g.lon_deg > -157.93 && g.lon_deg < -157.80;
    if (south_shore && sheltered[i]) ++south_shore_sheltered;
  }
  ASSERT_GT(in_harbor_total, 2u);
  EXPECT_GE(in_harbor_sheltered, 5u);
  EXPECT_GE(in_harbor_sheltered + 2, in_harbor_total);
  EXPECT_EQ(south_shore_sheltered, 0u);
}

TEST_F(SurgeFixture, HarborSourceMapPointsToExposedStations) {
  const auto sheltered = sheltered_stations(*cm_, *terrain_, HarborConfig{});
  const auto sources = harbor_source_map(*cm_, sheltered);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (sheltered[i]) {
      EXPECT_FALSE(sheltered[sources[i]]);
    } else {
      EXPECT_EQ(sources[i], i);
    }
  }
}

TEST(Harbor, TransferAppliesAmplificationFromSnapshot) {
  std::vector<double> wse = {1.0, 2.0, 3.0};
  const std::vector<bool> sheltered = {false, true, true};
  const std::vector<std::size_t> sources = {0, 0, 0};
  apply_harbor_transfer(wse, sheltered, sources, 1.1);
  EXPECT_DOUBLE_EQ(wse[0], 1.0);
  EXPECT_DOUBLE_EQ(wse[1], 1.1);
  EXPECT_DOUBLE_EQ(wse[2], 1.1);
  EXPECT_THROW(
      apply_harbor_transfer(wse, {false}, sources, 1.0),
      std::invalid_argument);
}

TEST(Harbor, AlongshoreAverageProperties) {
  // Constant field is a fixed point.
  std::vector<double> constant(10, 2.5);
  alongshore_average(constant, std::vector<bool>(10, false), 3);
  for (const double v : constant) EXPECT_DOUBLE_EQ(v, 2.5);

  // Window 0 is a no-op.
  std::vector<double> field = {1, 2, 3, 4};
  const std::vector<double> before = field;
  alongshore_average(field, std::vector<bool>(4, false), 0);
  EXPECT_EQ(field, before);

  // Averaging is bounded by min/max and skips sheltered stations.
  std::vector<double> mixed = {0.0, 10.0, 0.0, 10.0, 0.0, 10.0};
  std::vector<bool> sheltered(6, false);
  sheltered[2] = true;
  alongshore_average(mixed, sheltered, 1);
  EXPECT_DOUBLE_EQ(mixed[2], 0.0);  // untouched
  for (const double v : mixed) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
  EXPECT_THROW(alongshore_average(mixed, std::vector<bool>(2, false), 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------- engine

TEST(RealizationEngine, DeterministicRealizations) {
  const scada::ScadaTopology topo = scada::oahu_topology();
  RealizationConfig config;
  const RealizationEngine engine(terrain::make_oahu_terrain(),
                                 topo.exposed_assets(), config);
  const HurricaneRealization a = engine.run(11);
  const HurricaneRealization b = engine.run(11);
  ASSERT_EQ(a.impacts.size(), b.impacts.size());
  for (std::size_t i = 0; i < a.impacts.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.impacts[i].water_level_m, b.impacts[i].water_level_m);
    EXPECT_EQ(a.impacts[i].failed, b.impacts[i].failed);
  }
  EXPECT_DOUBLE_EQ(a.peak_wind_ms, b.peak_wind_ms);
}

TEST(RealizationEngine, ImpactsAlignWithAssetOrder) {
  const scada::ScadaTopology topo = scada::oahu_topology();
  const RealizationEngine engine(terrain::make_oahu_terrain(),
                                 topo.exposed_assets(), {});
  const HurricaneRealization r = engine.run(0);
  ASSERT_EQ(r.impacts.size(), topo.assets().size());
  for (std::size_t i = 0; i < r.impacts.size(); ++i) {
    EXPECT_EQ(r.impacts[i].asset_id, topo.assets()[i].id);
  }
}

TEST(RealizationEngine, HelpersLookUpById) {
  const scada::ScadaTopology topo = scada::oahu_topology();
  const RealizationEngine engine(terrain::make_oahu_terrain(),
                                 topo.exposed_assets(), {});
  const HurricaneRealization r = engine.run(2);
  EXPECT_GE(r.asset_depth(scada::oahu_ids::kHonoluluCc), 0.0);
  EXPECT_FALSE(r.asset_failed("no-such-asset"));
  EXPECT_DOUBLE_EQ(r.asset_depth("no-such-asset"), 0.0);
}

TEST(RealizationEngine, NullTerrainRejected) {
  EXPECT_THROW(RealizationEngine(nullptr, {}, {}), std::invalid_argument);
}

TEST(RealizationEngine, ParallelBatchMatchesSerial) {
  const scada::ScadaTopology topo = scada::oahu_topology();
  const RealizationEngine engine(terrain::make_oahu_terrain(),
                                 topo.exposed_assets(), {});
  const auto serial = engine.run_batch(8);
  const auto parallel = engine.run_batch_parallel(8, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].index, parallel[i].index);
    ASSERT_EQ(serial[i].impacts.size(), parallel[i].impacts.size());
    for (std::size_t a = 0; a < serial[i].impacts.size(); ++a) {
      EXPECT_DOUBLE_EQ(serial[i].impacts[a].water_level_m,
                       parallel[i].impacts[a].water_level_m);
      EXPECT_EQ(serial[i].impacts[a].failed, parallel[i].impacts[a].failed);
    }
  }
}

TEST(RealizationEngine, ParallelBatchDegenerateCases) {
  const scada::ScadaTopology topo = scada::oahu_topology();
  const RealizationEngine engine(terrain::make_oahu_terrain(),
                                 topo.exposed_assets(), {});
  EXPECT_TRUE(engine.run_batch_parallel(0).empty());
  EXPECT_EQ(engine.run_batch_parallel(1, 8).size(), 1u);
  EXPECT_EQ(engine.run_batch_parallel(3, 1).size(), 3u);
}

TEST(RealizationEngine, BatchIndicesAreStable) {
  // run_batch(n)[i] must equal run(i): realizations are pure functions of
  // (seed, index), so growing the batch never changes earlier entries.
  const scada::ScadaTopology topo = scada::oahu_topology();
  const RealizationEngine engine(terrain::make_oahu_terrain(),
                                 topo.exposed_assets(), {});
  const auto batch = engine.run_batch(3);
  ASSERT_EQ(batch.size(), 3u);
  const HurricaneRealization direct = engine.run(2);
  EXPECT_EQ(batch[2].impacts.size(), direct.impacts.size());
  for (std::size_t i = 0; i < direct.impacts.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[2].impacts[i].water_level_m,
                     direct.impacts[i].water_level_m);
  }
}

TEST_F(SurgeFixture, IndexedHarborSourceMapMatchesReferenceScan) {
  const std::size_t n = cm_->stations.size();
  ASSERT_GT(n, 4u);

  std::vector<std::vector<bool>> masks;
  masks.push_back(sheltered_stations(*cm_, *terrain_, HarborConfig{}));
  masks.emplace_back(n, false);  // nothing sheltered
  masks.emplace_back(n, true);   // everything sheltered
  {
    std::vector<bool> alternating(n, false);
    for (std::size_t i = 0; i < n; i += 2) alternating[i] = true;
    masks.push_back(std::move(alternating));
  }
  {
    std::vector<bool> one_exposed(n, true);
    one_exposed[n / 2] = false;
    masks.push_back(std::move(one_exposed));
  }

  for (std::size_t m = 0; m < masks.size(); ++m) {
    EXPECT_EQ(harbor_source_map(*cm_, masks[m]),
              harbor_source_map_reference(*cm_, masks[m]))
        << "mask " << m;
  }
}

TEST(Harbor, ScratchOverloadsBitIdentical) {
  const std::vector<bool> sheltered{false, true, false, false, true, false};
  const std::vector<std::size_t> sources{0, 2, 2, 3, 5, 5};
  const std::vector<double> base{1.0, 0.25, 2.0, 1.5, 0.125, 3.0};

  std::vector<double> a = base;
  std::vector<double> b = base;
  std::vector<double> snapshot{-1.0};  // stale content must not leak
  alongshore_average(a, sheltered, 2);
  alongshore_average(b, sheltered, 2, snapshot);
  EXPECT_EQ(a, b);

  alongshore_average(a, sheltered, 0, snapshot);  // window 0: no-op
  EXPECT_EQ(a, b);

  std::vector<double> c = a;
  apply_harbor_transfer(a, sheltered, sources, 1.08);
  apply_harbor_transfer(c, sheltered, sources, 1.08, snapshot);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace ct::surge
