// Equivalence and invalidation tests for the realization hot path: the
// MeshBindings precompute (surge/mesh_bindings.h) plus RealizationEngine::
// run must be BIT-identical to run_reference (the original pipeline) for
// every consumed output, across configuration variants, thread counts, and
// the five paper SCADA architectures; and the engine-batch digest must
// change whenever the precompute's inputs change so disk caches can never
// serve stale realizations.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "runtime/ensemble_runner.h"
#include "scada/configuration.h"
#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "terrain/terrain.h"
#include "util/digest.h"

namespace ct {
namespace {

using surge::HurricaneRealization;
using surge::RealizationConfig;
using surge::RealizationEngine;

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

std::shared_ptr<const terrain::Terrain> oahu() {
  static const std::shared_ptr<const terrain::Terrain> t =
      terrain::make_oahu_terrain();
  return t;
}

std::vector<surge::ExposedAsset> oahu_assets() {
  return scada::oahu_topology().exposed_assets();
}

/// Bitwise comparison of every consumed field of two realizations.
void expect_bit_identical(const HurricaneRealization& a,
                          const HurricaneRealization& b,
                          const std::string& tag) {
  ASSERT_EQ(a.impacts.size(), b.impacts.size()) << tag;
  for (std::size_t i = 0; i < a.impacts.size(); ++i) {
    const surge::AssetImpact& x = a.impacts[i];
    const surge::AssetImpact& y = b.impacts[i];
    EXPECT_EQ(x.asset_id, y.asset_id) << tag << " impact " << i;
    EXPECT_EQ(x.shoreline_station, y.shoreline_station) << tag << " " << i;
    EXPECT_EQ(bits(x.shoreline_wse_m), bits(y.shoreline_wse_m))
        << tag << " " << x.asset_id;
    EXPECT_EQ(bits(x.water_level_m), bits(y.water_level_m))
        << tag << " " << x.asset_id;
    EXPECT_EQ(bits(x.inundation_depth_m), bits(y.inundation_depth_m))
        << tag << " " << x.asset_id;
    EXPECT_EQ(x.failed, y.failed) << tag << " " << x.asset_id;
    EXPECT_EQ(bits(x.peak_wind_ms), bits(y.peak_wind_ms))
        << tag << " " << x.asset_id;
    EXPECT_EQ(x.wind_failed, y.wind_failed) << tag << " " << x.asset_id;
  }
  EXPECT_EQ(bits(a.peak_wind_ms), bits(b.peak_wind_ms)) << tag;
  EXPECT_EQ(bits(a.max_shoreline_wse_m), bits(b.max_shoreline_wse_m)) << tag;
}

// ------------------------------------------------- run vs run_reference

TEST(Fastpath, RunMatchesReferenceBitExactAcrossConfigVariants) {
  struct Variant {
    const char* name;
    RealizationConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"default", {}});
  {
    RealizationConfig c;
    c.harbor.enabled = false;
    variants.push_back({"harbor-off", c});
  }
  {
    RealizationConfig c;
    c.fragility.enabled = true;
    variants.push_back({"fragility-on", c});
  }
  {
    RealizationConfig c;
    c.sea_level_offset_m = 0.5;
    variants.push_back({"sea-level-rise", c});
  }
  {
    RealizationConfig c;
    c.smoothing_passes = 0;
    variants.push_back({"passes-0", c});
  }
  {
    RealizationConfig c;
    c.smoothing_passes = 5;
    variants.push_back({"passes-5", c});
  }
  {
    RealizationConfig c;
    c.alongshore_window = 0;
    variants.push_back({"window-0", c});
  }
  {
    RealizationConfig c;
    c.smoothing_band_m = 0.0;
    variants.push_back({"band-0", c});
  }

  for (const Variant& v : variants) {
    const RealizationEngine engine(oahu(), oahu_assets(), v.config);
    for (const std::uint64_t index : {0ull, 3ull, 17ull}) {
      expect_bit_identical(
          engine.run(index), engine.run_reference(index),
          std::string(v.name) + "[" + std::to_string(index) + "]");
    }
  }
}

TEST(Fastpath, CallerOwnedScratchReuseIsBitStable) {
  const RealizationEngine engine(oahu(), oahu_assets(), {});
  surge::RealizationScratch reused;
  for (const std::uint64_t index : {5ull, 0ull, 29ull, 5ull}) {
    surge::RealizationScratch fresh;
    expect_bit_identical(engine.run(index, reused),
                         engine.run(index, fresh),
                         "scratch[" + std::to_string(index) + "]");
  }
}

TEST(Fastpath, ParallelBatchBitIdenticalToReference) {
  const RealizationEngine engine(oahu(), oahu_assets(), {});
  const auto parallel = engine.run_batch_parallel(12, 8);
  ASSERT_EQ(parallel.size(), 12u);
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    expect_bit_identical(parallel[i],
                         engine.run_reference(static_cast<std::uint64_t>(i)),
                         "parallel[" + std::to_string(i) + "]");
  }
}

// --------------------------------- outcome distributions, 5 configs, jobs

TEST(Fastpath, OutcomeDistributionsBitIdenticalForPaperConfigsAtJobs1And8) {
  constexpr std::size_t kCount = 40;
  const RealizationEngine engine(oahu(), oahu_assets(), {});

  // Legacy ensemble via the reference path; fast ensemble via the runner
  // (which routes through run()).
  std::vector<HurricaneRealization> legacy;
  legacy.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    legacy.push_back(engine.run_reference(static_cast<std::uint64_t>(i)));
  }

  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  ASSERT_EQ(configs.size(), 5u);
  const core::AnalysisPipeline pipeline;

  for (const unsigned jobs : {1u, 8u}) {
    runtime::EnsembleOptions options;
    options.jobs = jobs;
    options.cache = false;
    runtime::EnsembleRunner runner(options);
    const std::vector<HurricaneRealization> fast =
        runner.generate(engine, kCount);
    ASSERT_EQ(fast.size(), legacy.size());
    for (std::size_t i = 0; i < kCount; ++i) {
      expect_bit_identical(fast[i], legacy[i],
                           "jobs" + std::to_string(jobs) + "[" +
                               std::to_string(i) + "]");
    }

    for (const scada::Configuration& config : configs) {
      for (const threat::ThreatScenario scenario :
           {threat::ThreatScenario::kHurricane,
            threat::ThreatScenario::kHurricaneIntrusionIsolation}) {
        const core::ScenarioResult from_fast =
            pipeline.analyze(config, scenario, fast, runner);
        const core::ScenarioResult from_legacy =
            pipeline.analyze(config, scenario, legacy);
        ASSERT_EQ(from_fast.outcomes.total(), from_legacy.outcomes.total());
        for (const threat::OperationalState s :
             {threat::OperationalState::kGreen,
              threat::OperationalState::kOrange,
              threat::OperationalState::kRed,
              threat::OperationalState::kGray}) {
          EXPECT_EQ(from_fast.outcomes.count(s), from_legacy.outcomes.count(s))
              << config.name << " jobs=" << jobs;
        }
      }
    }
  }
}

// ------------------------------------------------ digest / invalidation

std::string engine_digest(const RealizationConfig& config,
                          std::shared_ptr<const terrain::Terrain> terrain) {
  const RealizationEngine engine(std::move(terrain), oahu_assets(), config);
  return runtime::EnsembleRunner::digest_engine_batch(engine, 4);
}

TEST(Fastpath, EngineBatchDigestInvalidatesOnEveryPrecomputeKnob) {
  const std::string baseline = engine_digest({}, oahu());
  EXPECT_EQ(engine_digest({}, oahu()), baseline)
      << "identical configs must share the cache key";

  std::vector<std::pair<const char*, RealizationConfig>> variants;
  {
    RealizationConfig c;
    c.mesh.shore_spacing_m = 2500.0;
    variants.emplace_back("mesh.shore_spacing_m", c);
  }
  {
    RealizationConfig c;
    c.mesh.cross_shore_spacing_m = 900.0;
    variants.emplace_back("mesh.cross_shore_spacing_m", c);
  }
  {
    RealizationConfig c;
    c.mesh.offshore_extent_m = 9000.0;
    variants.emplace_back("mesh.offshore_extent_m", c);
  }
  {
    RealizationConfig c;
    c.mesh.inland_extent_m = 2000.0;
    variants.emplace_back("mesh.inland_extent_m", c);
  }
  {
    RealizationConfig c;
    c.surge.min_depth_m = 3.0;
    variants.emplace_back("surge.min_depth_m", c);
  }
  {
    RealizationConfig c;
    c.smoothing_band_m = 1000.0;
    variants.emplace_back("smoothing_band_m", c);
  }
  {
    RealizationConfig c;
    c.smoothing_passes = 1;
    variants.emplace_back("smoothing_passes", c);
  }
  {
    RealizationConfig c;
    c.inundation.decay_length_m = 2500.0;
    variants.emplace_back("inundation.decay_length_m", c);
  }
  for (const auto& [name, config] : variants) {
    EXPECT_NE(engine_digest(config, oahu()), baseline) << name;
  }
}

TEST(Fastpath, EngineBatchDigestDistinguishesTerrains) {
  terrain::IslandParams params = terrain::oahu_params();
  params.name = "shifted island";
  params.shore_elevation_m += 0.4;
  const auto other =
      std::make_shared<const terrain::SyntheticIslandTerrain>(params);
  EXPECT_NE(engine_digest({}, other), engine_digest({}, oahu()));
}

TEST(Fastpath, TerrainDigestSeparatesNameAndElevation) {
  util::Digest base;
  terrain::digest_terrain(*oahu(), base);

  terrain::IslandParams renamed = terrain::oahu_params();
  renamed.name = "renamed";
  util::Digest d1;
  terrain::digest_terrain(terrain::SyntheticIslandTerrain(renamed), d1);
  EXPECT_NE(d1.hex(), base.hex());

  terrain::IslandParams steeper = terrain::oahu_params();
  steeper.plain_slope *= 2.0;
  util::Digest d2;
  terrain::digest_terrain(terrain::SyntheticIslandTerrain(steeper), d2);
  EXPECT_NE(d2.hex(), base.hex());

  util::Digest again;
  terrain::digest_terrain(*oahu(), again);
  EXPECT_EQ(again.hex(), base.hex());
}

TEST(Fastpath, IdenticalEnginesShareTheDiskCacheAcrossInstances) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "ct_fastpath_cache_test";
  std::filesystem::remove_all(dir);

  runtime::EnsembleOptions options;
  options.jobs = 1;
  options.disk_cache = true;
  options.cache_dir = dir.string();

  const auto outcome = [](const HurricaneRealization& r) {
    return r.asset_failed(scada::oahu_ids::kHonoluluCc) ? 1 : 0;
  };

  std::string first_key;
  {
    const RealizationEngine engine(oahu(), oahu_assets(), {});
    runtime::EnsembleRunner runner(options);
    first_key = runtime::EnsembleRunner::digest_engine_batch(engine, 8);
    const auto counts = runner.count_outcomes(
        engine.run_batch(8), outcome, first_key);
    EXPECT_FALSE(counts.from_cache);
  }
  {
    // A separate engine instance with an identical config must produce the
    // same key and be served from the on-disk cache.
    const RealizationEngine engine(oahu(), oahu_assets(), {});
    runtime::EnsembleRunner runner(options);
    const std::string key =
        runtime::EnsembleRunner::digest_engine_batch(engine, 8);
    EXPECT_EQ(key, first_key);
    const auto counts = runner.count_outcomes(
        [&] { return engine.run_batch(8); }, outcome, key);
    EXPECT_TRUE(counts.from_cache);
  }
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- asset-index path

TEST(Fastpath, AssetIndexAcceleratesLookupsWithIdenticalSemantics) {
  const RealizationEngine engine(oahu(), oahu_assets(), {});
  const HurricaneRealization r = engine.run(2);
  ASSERT_NE(r.asset_index, nullptr);
  EXPECT_EQ(r.asset_index->size(), engine.assets().size());

  HurricaneRealization scan = r;
  scan.asset_index.reset();  // force the legacy linear scan
  for (const surge::ExposedAsset& asset : engine.assets()) {
    EXPECT_EQ(r.asset_failed(asset.id), scan.asset_failed(asset.id));
    EXPECT_EQ(bits(r.asset_depth(asset.id)), bits(scan.asset_depth(asset.id)));
    EXPECT_EQ(r.asset_wind_failed(asset.id),
              scan.asset_wind_failed(asset.id));
  }
  EXPECT_FALSE(r.asset_failed("no-such-asset"));
  EXPECT_DOUBLE_EQ(r.asset_depth("no-such-asset"), 0.0);
}

TEST(Fastpath, AssetIndexFallsBackWhenImpactsAreFiltered) {
  const RealizationEngine engine(oahu(), oahu_assets(), {});
  HurricaneRealization r = engine.run(0);
  ASSERT_GE(r.impacts.size(), 2u);
  // Simulate user code that filtered the impacts vector: the stale index
  // no longer matches positions, so lookups must verify and fall back.
  r.impacts.erase(r.impacts.begin());
  const std::string& id = r.impacts.front().asset_id;
  EXPECT_EQ(r.asset_failed(id), r.impacts.front().failed);
  EXPECT_EQ(bits(r.asset_depth(id)),
            bits(r.impacts.front().inundation_depth_m));
}

// ------------------------------------------------------- bindings shape

TEST(Fastpath, BindingsExposeActiveSubsetAndStencils) {
  const RealizationEngine engine(oahu(), oahu_assets(), {});
  const surge::MeshBindings& b = engine.bindings();

  const std::size_t nodes = engine.coastal_mesh().mesh.node_count();
  EXPECT_GT(b.active_nodes().size(), 0u);
  EXPECT_LT(b.active_nodes().size(), nodes)
      << "the active set must be a strict subset for the default band";
  for (std::size_t k = 1; k < b.active_nodes().size(); ++k) {
    EXPECT_LT(b.active_nodes()[k - 1], b.active_nodes()[k]);
  }

  ASSERT_EQ(b.stencils().size(), engine.assets().size());
  // The frozen station binding must agree with the live mapper query, and
  // the frozen barycentric stencil with live interpolation.
  mesh::NodeField field(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    field[i] = 0.25 * static_cast<double>(i % 17) - 1.0;
  }
  for (std::size_t a = 0; a < b.stencils().size(); ++a) {
    const surge::AssetStencil& s = b.stencils()[a];
    EXPECT_LT(s.station, engine.coastal_mesh().stations.size());
    EXPECT_EQ(bits(b.interpolate_at(field, a)),
              bits(engine.coastal_mesh().mesh.interpolate(field, s.enu)));
  }
}

}  // namespace
}  // namespace ct
