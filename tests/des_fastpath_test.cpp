// Bit-identity gate for the DES hot-path overhaul: every outcome the
// pooled engine (slab events, timer wheel, zero-copy messaging, flat
// quorum state) produces must equal the verbatim pre-overhaul engine
// (sim/reference_des.cpp) field-for-field — observed color, safety,
// availability timeline, invariant-monitor verdicts, drop/rejoin
// accounting, everything except the two wall-clock measurement fields.
//
// The corpora mirror ChaosRunner exactly: plans are generated from
// util::Rng(seed, "chaos").child("plan", p) with the same shapes chaos
// sweeps use, over every paper configuration, at seeds {1, 2, 3}.
// CT_DES_IDENTITY_PLANS scales the per-(config, seed) plan count; CI's
// perf-smoke job runs the full 50-plan corpora, the local default keeps
// `ctest` quick.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/chaos.h"
#include "scada/configuration.h"
#include "sim/fault_injector.h"
#include "sim/scada_des.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "util/rng.h"

namespace ct::sim {
namespace {

int plans_per_corpus() {
  if (const char* env = std::getenv("CT_DES_IDENTITY_PLANS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 4;  // local default; CI sets CT_DES_IDENTITY_PLANS=50
}

threat::SystemState attacked_state(const scada::Configuration& config,
                                   threat::ThreatScenario scenario) {
  threat::SystemState base;
  base.site_status.assign(config.sites.size(), threat::SiteStatus::kUp);
  base.intrusions.assign(config.sites.size(), 0);
  return threat::GreedyWorstCaseAttacker{}.attack(
      config, base, threat::capability_for(scenario));
}

enum class Corpus { kBenign, kRestartHeavy };

/// Runs one corpus: for every paper configuration and seed, generate the
/// chaos plans ChaosRunner would and assert run() == run_reference() on
/// each, cycling the threat scenario so floods, intrusions, and compound
/// attacks all cross both engines.
void check_corpus_identity(Corpus corpus) {
  const sim::DesOptions options = core::chaos_des_options();
  const double window_to =
      std::max(10.0 + 1.0,
               options.horizon_s - options.settle_window_s - 60.0);
  const int plans = plans_per_corpus();
  const auto scenarios = threat::all_scenarios();

  DesArena arena;
  for (const auto& config :
       scada::paper_configurations("primary", "backup", "dc")) {
    const ScadaDes des(config, options);
    std::vector<int> nodes_per_site;
    for (const scada::ControlSite& site : config.sites) {
      nodes_per_site.push_back(site.replicas);
    }

    BenignPlanShape benign_shape;
    benign_shape.window_to_s = window_to;
    RestartPlanShape restart_shape;
    restart_shape.window_to_s =
        std::max(restart_shape.window_from_s + 1.0, window_to);

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const util::Rng base_rng(seed, "chaos");
      for (int p = 0; p < plans; ++p) {
        util::Rng plan_rng =
            base_rng.child("plan", static_cast<std::uint64_t>(p));
        const FaultPlan plan =
            corpus == Corpus::kRestartHeavy
                ? random_restart_plan(restart_shape, nodes_per_site, plan_rng)
                : random_benign_plan(benign_shape, nodes_per_site, plan_rng);
        const threat::ThreatScenario scenario =
            scenarios[static_cast<std::size_t>(p) % scenarios.size()];
        const threat::SystemState attacked = attacked_state(config, scenario);

        const DesOutcome fast = des.run(attacked, plan, arena);
        const DesOutcome reference = des.run_reference(attacked, plan);
        EXPECT_TRUE(des_outcomes_identical(fast, reference))
            << "config=" << config.name << " seed=" << seed << " plan=" << p
            << " scenario=" << threat::scenario_name(scenario)
            << "\nschedule:\n" << plan.to_schedule();
        // Redundant with des_outcomes_identical, but kept explicit: the
        // invariant monitor must reach the same verdicts on both engines.
        EXPECT_EQ(fast.invariant_violations, reference.invariant_violations);
      }
    }
  }
}

TEST(DesFastPath, BenignChaosCorpusBitIdentical) {
  check_corpus_identity(Corpus::kBenign);
}

TEST(DesFastPath, RestartHeavyChaosCorpusBitIdentical) {
  check_corpus_identity(Corpus::kRestartHeavy);
}

// The zero-allocation steady state: once the arena is warmed by one run,
// re-running recycles every event slot and message slot — no slab growth,
// no pool misses, and no EventFn heap-fallback constructions.
TEST(DesFastPath, WarmArenaRunsAllocationFree) {
  const sim::DesOptions options = core::chaos_des_options();
  for (const auto& config :
       scada::paper_configurations("primary", "backup", "dc")) {
    const ScadaDes des(config, options);
    const threat::SystemState attacked = attacked_state(
        config, threat::ThreatScenario::kHurricaneIntrusionIsolation);

    DesArena arena;
    const DesOutcome cold = des.run(attacked, arena);  // warms the pools
    const std::uint64_t heap_before = EventFn::heap_allocations();
    const DesOutcome warm = des.run(attacked, arena);
    EXPECT_TRUE(des_outcomes_identical(cold, warm)) << config.name;

    const Simulator::PoolStats sim_stats = arena.simulator_stats();
    const Network::PoolStats net_stats = arena.network_stats();
    EXPECT_EQ(sim_stats.slab_grows, 0u) << config.name;
    EXPECT_EQ(net_stats.pool_misses, 0u) << config.name;
    EXPECT_EQ(EventFn::heap_allocations() - heap_before, 0u) << config.name;
    EXPECT_GT(net_stats.pool_hits, 0u) << config.name;
  }
}

// Arena reuse across *different* plans (the chaos-sweep pattern) must
// still be observably identical to fresh construction per run.
TEST(DesFastPath, ArenaReuseMatchesFreshConstruction) {
  const sim::DesOptions options = core::chaos_des_options();
  const auto configs = scada::paper_configurations("primary", "backup", "dc");
  const ScadaDes des(configs.back(), options);  // largest: 6+6+6
  std::vector<int> nodes_per_site;
  for (const scada::ControlSite& site : configs.back().sites) {
    nodes_per_site.push_back(site.replicas);
  }

  BenignPlanShape shape;
  shape.window_to_s = std::max(
      shape.window_from_s + 1.0,
      options.horizon_s - options.settle_window_s - 60.0);
  const util::Rng base_rng(7, "chaos");
  DesArena arena;
  for (int p = 0; p < 3; ++p) {
    util::Rng plan_rng =
        base_rng.child("plan", static_cast<std::uint64_t>(p));
    const FaultPlan plan =
        random_benign_plan(shape, nodes_per_site, plan_rng);
    const threat::SystemState attacked = attacked_state(
        configs.back(), threat::ThreatScenario::kHurricaneIntrusionIsolation);
    const DesOutcome pooled = des.run(attacked, plan, arena);
    const DesOutcome fresh = des.run(attacked, plan);
    EXPECT_TRUE(des_outcomes_identical(pooled, fresh)) << "plan " << p;
  }
}

}  // namespace
}  // namespace ct::sim
