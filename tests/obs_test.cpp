// ct_obs acceptance tests: registry shard-fold correctness under TaskPool
// concurrency (the TSan job runs this suite), log2 histogram bucket
// boundaries, span ring-buffer overflow accounting, Chrome-trace JSON
// well-formedness, binary exporter round-trip + exhaustive corruption
// rejection — and the determinism gate: analyze() and ScadaDes::run()
// must be bit-identical with observability (metrics + tracing) on and
// off, at every jobs value the CI matrix exercises.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/ensemble_runner.h"
#include "runtime/task_pool.h"
#include "scada/oahu.h"
#include "sim/scada_des.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "threat/scenario.h"
#include "util/error.h"

namespace ct {
namespace {

/// Restores the metrics/tracing gates on scope exit so a test can never
/// leak a disabled registry into the rest of the suite.
struct ObsGateGuard {
  ~ObsGateGuard() {
    obs::set_enabled(true);
    obs::set_trace_enabled(false);
    obs::set_ring_capacity(4096);
  }
};

// --- histogram bucket boundaries -------------------------------------------

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::histogram_bucket_of(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_of(1), 1u);
  EXPECT_EQ(obs::histogram_bucket_of(2), 2u);
  EXPECT_EQ(obs::histogram_bucket_of(3), 2u);
  EXPECT_EQ(obs::histogram_bucket_of(4), 3u);
  EXPECT_EQ(obs::histogram_bucket_of(7), 3u);
  EXPECT_EQ(obs::histogram_bucket_of(8), 4u);
  for (unsigned b = 1; b + 1 < obs::kHistogramBuckets; ++b) {
    const std::uint64_t lo = obs::histogram_bucket_floor(b);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(obs::histogram_bucket_of(lo), b) << "floor of bucket " << b;
    EXPECT_EQ(obs::histogram_bucket_of(hi), b) << "ceiling of bucket " << b;
  }
  // The last bucket absorbs everything too large for the layout.
  EXPECT_EQ(obs::histogram_bucket_of(~std::uint64_t{0}),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogram_bucket_floor(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_floor(5), 16u);
}

TEST(ObsMetricsTest, HistogramObserveCountsAndSums) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Histogram h("obs_test.hist_basic");
  h.observe(0);
  h.observe(1);
  h.observe(5);   // bucket 3
  h.observe(5);
  h.observe(100);  // bucket 7
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(7), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 111u);
}

// --- registry semantics ----------------------------------------------------

TEST(ObsMetricsTest, CounterGaugeAndSnapshot) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Counter counter("obs_test.counter");
  obs::Gauge gauge("obs_test.gauge");
  counter.inc();
  counter.inc(9);
  gauge.set(17);
  gauge.max(5);    // below current: no-op
  gauge.max(99);   // above: wins
  EXPECT_EQ(counter.value(), 10u);
  EXPECT_EQ(gauge.value(), 99u);

  const obs::MetricsSnapshot snapshot = obs::capture_metrics();
  const obs::MetricValue* c = snapshot.find("obs_test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, obs::MetricKind::kCounter);
  EXPECT_EQ(c->value, 10u);
  const obs::MetricValue* g = snapshot.find("obs_test.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 99u);
  EXPECT_EQ(snapshot.find("obs_test.no_such_metric"), nullptr);

  // Snapshot order is sorted by name — the byte-stability contract the
  // shared formatter relies on.
  for (std::size_t i = 1; i < snapshot.metrics.size(); ++i) {
    EXPECT_LT(snapshot.metrics[i - 1].name, snapshot.metrics[i].name);
  }
}

TEST(ObsMetricsTest, SameNameReturnsSameMetric) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Counter a("obs_test.shared_name");
  obs::Counter b("obs_test.shared_name");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
}

TEST(ObsMetricsTest, DisabledRegistryDropsWrites) {
  ObsGateGuard guard;
  obs::Counter counter("obs_test.gated_counter");
  const std::uint64_t before = counter.value();
  obs::set_enabled(false);
  counter.inc(100);
  EXPECT_EQ(counter.value(), before);
  obs::set_enabled(true);
  counter.inc(1);
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(ObsMetricsTest, FormatMetricsRendersTextAndJson) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Counter counter("obs_test.fmt_counter");
  obs::Histogram hist("obs_test.fmt_hist");
  counter.inc(2);
  hist.observe(10);
  const obs::MetricsSnapshot snapshot = obs::capture_metrics();

  const std::string text = obs::format_metrics(snapshot, /*json=*/false);
  EXPECT_NE(text.find("obs_test.fmt_counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.fmt_hist.count"), std::string::npos);

  const std::string json = obs::format_metrics(snapshot, /*json=*/true);
  EXPECT_NE(json.find("\"obs_test.fmt_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);

  // Deterministic rendering: the same snapshot formats to the same bytes
  // (this is what makes local and remote `--metrics` byte-identical).
  EXPECT_EQ(json, obs::format_metrics(snapshot, /*json=*/true));
  EXPECT_EQ(text, obs::format_metrics(snapshot, /*json=*/false));
}

// --- shard-fold under TaskPool concurrency (TSan gate) ---------------------

TEST(ObsMetricsTest, ShardFoldUnderTaskPoolConcurrency) {
  ObsGateGuard guard;
  obs::set_enabled(true);
  obs::Counter counter("obs_test.mt_counter");
  obs::Histogram hist("obs_test.mt_hist");
  const std::uint64_t counter_before = counter.value();
  const std::uint64_t hist_count_before = hist.count();
  const std::uint64_t hist_sum_before = hist.sum();

  constexpr std::size_t kN = 20000;
  runtime::TaskPool pool(8);
  pool.parallel_for_each(kN, 64, [&](std::size_t i) {
    counter.inc();
    hist.observe(i % 17);
  });

  std::uint64_t expected_sum = 0;
  for (std::size_t i = 0; i < kN; ++i) expected_sum += i % 17;
  EXPECT_EQ(counter.value() - counter_before, kN);
  EXPECT_EQ(hist.count() - hist_count_before, kN);
  EXPECT_EQ(hist.sum() - hist_sum_before, expected_sum);

  // Worker threads died with the pool; their shards must have folded into
  // the retired accumulator without losing a single increment.
  const obs::MetricsSnapshot snapshot = obs::capture_metrics();
  const obs::MetricValue* c = snapshot.find("obs_test.mt_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value - counter_before, kN);
}

// --- span tracer -----------------------------------------------------------

TEST(ObsTraceTest, SpansRecordNestingAndParentLinkage) {
  ObsGateGuard guard;
  obs::set_trace_enabled(true);
  obs::reset_trace_for_test();
  {
    obs::Span outer("obs_test.outer");
    {
      obs::Span inner("obs_test.inner");
    }
  }
  const obs::TraceDump dump = obs::collect_trace();
  const obs::SpanRecord* outer = nullptr;
  const obs::SpanRecord* inner = nullptr;
  for (const obs::SpanRecord& s : dump.spans) {
    if (s.name == "obs_test.outer") outer = &s;
    if (s.name == "obs_test.inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_EQ(inner->tid, outer->tid);
}

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  ObsGateGuard guard;
  obs::set_trace_enabled(false);
  obs::reset_trace_for_test();
  {
    obs::Span span("obs_test.should_not_appear");
    obs::trace_instant("obs_test.nor_this");
  }
  const obs::TraceDump dump = obs::collect_trace();
  for (const obs::SpanRecord& s : dump.spans) {
    EXPECT_NE(s.name, "obs_test.should_not_appear");
    EXPECT_NE(s.name, "obs_test.nor_this");
  }
}

TEST(ObsTraceTest, RingOverflowKeepsNewestAndCountsDropped) {
  ObsGateGuard guard;
  obs::set_trace_enabled(true);
  obs::reset_trace_for_test();
  obs::set_ring_capacity(8);
  // A fresh thread gets a fresh ring at the tiny capacity; 20 spans must
  // leave the 8 newest in the ring and count 12 as dropped.
  std::thread emitter([] {
    for (int i = 0; i < 20; ++i) obs::trace_instant("obs_test.overflow");
  });
  emitter.join();
  const obs::TraceDump dump = obs::collect_trace();
  std::size_t kept = 0;
  std::uint64_t max_id = 0;
  for (const obs::SpanRecord& s : dump.spans) {
    if (s.name != "obs_test.overflow") continue;
    ++kept;
    if (s.id > max_id) max_id = s.id;
  }
  EXPECT_EQ(kept, 8u);
  EXPECT_EQ(dump.dropped, 12u);
  // Overwrite-oldest: the survivors are the LAST 8 emitted (ids are
  // monotone, so the max kept id minus 7 is the smallest survivor).
  for (const obs::SpanRecord& s : dump.spans) {
    if (s.name == "obs_test.overflow") {
      EXPECT_GT(s.id + 8, max_id);
    }
  }
}

/// Minimal string-aware JSON structural checker: balanced containers,
/// terminated strings, no trailing garbage. Enough to catch a malformed
/// exporter without dragging a JSON parser into the test.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(ObsTraceTest, ChromeTraceJsonWellFormed) {
  ObsGateGuard guard;
  obs::set_trace_enabled(true);
  obs::reset_trace_for_test();
  {
    obs::Span a("obs_test.chrome \"quoted\\name\"");  // hostile span name
    obs::Span b("obs_test.chrome_child");
    obs::trace_instant("obs_test.chrome_instant");
  }
  std::ostringstream os;
  obs::write_chrome_trace(os, obs::collect_trace());
  const std::string json = os.str();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  EXPECT_NE(json.find("droppedSpans"), std::string::npos);
}

// --- binary exporter -------------------------------------------------------

obs::TraceDump sample_dump() {
  obs::TraceDump dump;
  dump.dropped = 3;
  for (std::uint64_t i = 0; i < 5; ++i) {
    obs::SpanRecord s;
    s.name = "span_" + std::to_string(i);
    s.start_ns = 1000 * i;
    s.dur_ns = 10 + i;
    s.id = i + 1;
    s.parent = i;  // chain
    s.tid = static_cast<std::uint32_t>(i % 2);
    dump.spans.push_back(s);
  }
  return dump;
}

TEST(ObsTraceTest, BinaryTraceRoundTrip) {
  const obs::TraceDump dump = sample_dump();
  const std::string frame = obs::encode_binary_trace(dump);
  const obs::TraceDump decoded = obs::decode_binary_trace(frame);
  EXPECT_EQ(decoded.dropped, dump.dropped);
  ASSERT_EQ(decoded.spans.size(), dump.spans.size());
  for (std::size_t i = 0; i < dump.spans.size(); ++i) {
    EXPECT_EQ(decoded.spans[i].name, dump.spans[i].name);
    EXPECT_EQ(decoded.spans[i].start_ns, dump.spans[i].start_ns);
    EXPECT_EQ(decoded.spans[i].dur_ns, dump.spans[i].dur_ns);
    EXPECT_EQ(decoded.spans[i].id, dump.spans[i].id);
    EXPECT_EQ(decoded.spans[i].parent, dump.spans[i].parent);
    EXPECT_EQ(decoded.spans[i].tid, dump.spans[i].tid);
  }
  // Empty dump round-trips too.
  const obs::TraceDump empty = obs::decode_binary_trace(
      obs::encode_binary_trace(obs::TraceDump{}));
  EXPECT_TRUE(empty.spans.empty());
  EXPECT_EQ(empty.dropped, 0u);
}

TEST(ObsTraceTest, EveryHeaderByteCorruptionIsATypedError) {
  const std::string frame = obs::encode_binary_trace(sample_dump());
  // Header = magic + version + count + dropped + payload size + payload
  // digest + header digest. Flip every single byte of it.
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 * 5 + 16;
  ASSERT_GT(frame.size(), kHeaderBytes);
  for (std::size_t i = 0; i < kHeaderBytes; ++i) {
    std::string corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    try {
      obs::decode_binary_trace(corrupt);
      FAIL() << "header byte " << i << " corruption was accepted";
    } catch (const ct::Error& e) {
      EXPECT_EQ(e.code(), ct::ErrorCode::kParse) << "byte " << i;
      EXPECT_EQ(e.origin(), "obs") << "byte " << i;
    }
  }
}

TEST(ObsTraceTest, PayloadCorruptionTruncationAndTrailingBytesRejected) {
  const std::string frame = obs::encode_binary_trace(sample_dump());
  // Flip a payload byte: the payload digest must catch it.
  {
    std::string corrupt = frame;
    corrupt[frame.size() - 3] ^= 0x01;
    EXPECT_THROW(obs::decode_binary_trace(corrupt), ct::Error);
  }
  // Truncate at every boundary that could fool a sloppy reader.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{20}, frame.size() - 1}) {
    try {
      obs::decode_binary_trace(std::string_view(frame).substr(0, keep));
      FAIL() << "truncation to " << keep << " bytes was accepted";
    } catch (const ct::Error& e) {
      EXPECT_EQ(e.code(), ct::ErrorCode::kParse);
    }
  }
  // Trailing garbage after a valid frame is a length mismatch.
  EXPECT_THROW(obs::decode_binary_trace(frame + "x"), ct::Error);
}

// --- determinism gate: obs on/off must be invisible to results -------------

std::vector<unsigned> job_counts() {
  std::vector<unsigned> jobs = {1, 8};
  if (const char* env = std::getenv("CT_TEST_JOBS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) jobs.push_back(static_cast<unsigned>(n));
  }
  return jobs;
}

scada::Configuration paper_config(std::size_t index) {
  return scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress)[index];
}

core::ScenarioResult analyze_once(unsigned jobs) {
  surge::RealizationConfig config;
  config.base_seed = 20220627;
  const surge::RealizationEngine engine(
      terrain::make_oahu_terrain(), scada::oahu_topology().exposed_assets(),
      config);
  runtime::EnsembleOptions options;
  options.jobs = jobs;
  options.chunk = 7;
  options.cache = false;  // no cache: both runs must actually compute
  runtime::EnsembleRunner runtime(options);
  const std::vector<surge::HurricaneRealization> realizations =
      runtime.generate(engine, 32);
  const core::AnalysisPipeline pipeline;
  return pipeline.analyze(paper_config(2),
                          threat::ThreatScenario::kHurricaneIntrusionIsolation,
                          realizations, runtime, "obs-determinism-gate");
}

TEST(ObsDeterminismTest, AnalyzeBitIdenticalWithObsOnAndOff) {
  ObsGateGuard guard;
  for (const unsigned jobs : job_counts()) {
    obs::set_enabled(true);
    obs::set_trace_enabled(true);
    const core::ScenarioResult on = analyze_once(jobs);
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    const core::ScenarioResult off = analyze_once(jobs);
    for (const auto state :
         {threat::OperationalState::kGreen, threat::OperationalState::kOrange,
          threat::OperationalState::kRed, threat::OperationalState::kGray}) {
      EXPECT_EQ(on.outcomes.count(state), off.outcomes.count(state))
          << "jobs=" << jobs
          << " state=" << static_cast<int>(state);
    }
    EXPECT_EQ(on.outcomes.total(), off.outcomes.total()) << "jobs=" << jobs;
  }
}

TEST(ObsDeterminismTest, ScadaDesRunBitIdenticalWithObsOnAndOff) {
  ObsGateGuard guard;
  const scada::Configuration config = paper_config(3);
  const sim::ScadaDes des(config, sim::DesOptions{});
  std::vector<bool> flooded(config.sites.size(), false);
  flooded[0] = true;

  const threat::AttackerCapability capability = threat::capability_for(
      threat::ThreatScenario::kHurricaneIntrusionIsolation);
  obs::set_enabled(true);
  obs::set_trace_enabled(true);
  const sim::DesOutcome on = des.run(flooded, capability);
  obs::set_enabled(false);
  obs::set_trace_enabled(false);
  const sim::DesOutcome off = des.run(flooded, capability);
  EXPECT_TRUE(sim::des_outcomes_identical(on, off));
}

}  // namespace
}  // namespace ct
