// Unit and property tests for the geo substrate.
#include <cmath>

#include <gtest/gtest.h>

#include "geo/geopoint.h"
#include "geo/grid_index.h"
#include "geo/polygon.h"
#include "geo/vec2.h"
#include "util/rng.h"

namespace ct::geo {
namespace {

// ---------------------------------------------------------------- vec2

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
}

TEST(Vec2, NormalizedAndPerp) {
  const Vec2 v{3.0, 4.0};
  const Vec2 n = v.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{0.0, 0.0}));
  // perp is a CCW quarter turn: cross(v, perp) > 0, dot == 0.
  EXPECT_DOUBLE_EQ(v.dot(v.perp()), 0.0);
  EXPECT_GT(v.cross(v.perp()), 0.0);
}

// ---------------------------------------------------------------- geodesy

TEST(Geodesy, HaversineKnownDistances) {
  // Honolulu CC to Kahe point: about 28 km.
  const GeoPoint honolulu{21.3069, -157.8583};
  const GeoPoint kahe{21.3542, -158.1297};
  const double d = haversine_m(honolulu, kahe);
  EXPECT_NEAR(d, 28600.0, 1500.0);
  EXPECT_DOUBLE_EQ(haversine_m(honolulu, honolulu), 0.0);
}

TEST(Geodesy, OneDegreeLatitude) {
  const double d = haversine_m({21.0, -158.0}, {22.0, -158.0});
  EXPECT_NEAR(d, 111195.0, 100.0);  // pi/180 * R
}

TEST(Geodesy, BearingCardinalDirections) {
  const GeoPoint origin{21.0, -158.0};
  EXPECT_NEAR(initial_bearing_deg(origin, {22.0, -158.0}), 0.0, 0.01);
  EXPECT_NEAR(initial_bearing_deg(origin, {20.0, -158.0}), 180.0, 0.01);
  EXPECT_NEAR(initial_bearing_deg(origin, {21.0, -157.0}), 90.0, 0.5);
  EXPECT_NEAR(initial_bearing_deg(origin, {21.0, -159.0}), 270.0, 0.5);
}

TEST(Geodesy, DestinationRoundTrip) {
  util::Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const GeoPoint start{rng.uniform(20.0, 23.0), rng.uniform(-159.0, -156.0)};
    const double bearing = rng.uniform(0.0, 360.0);
    const double dist = rng.uniform(100.0, 300000.0);
    const GeoPoint end = destination(start, bearing, dist);
    EXPECT_NEAR(haversine_m(start, end), dist, dist * 1e-9 + 0.01);
    EXPECT_NEAR(initial_bearing_deg(start, end), bearing, 0.5);
  }
}

TEST(EnuProjection, RoundTrip) {
  const EnuProjection proj({21.45, -157.95});
  util::Rng rng(32);
  for (int i = 0; i < 100; ++i) {
    const GeoPoint p{rng.uniform(21.0, 22.0), rng.uniform(-158.5, -157.3)};
    const GeoPoint back = proj.to_geo(proj.to_enu(p));
    EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-9);
    EXPECT_NEAR(back.lon_deg, p.lon_deg, 1e-9);
  }
}

TEST(EnuProjection, MatchesHaversineLocally) {
  const EnuProjection proj({21.45, -157.95});
  util::Rng rng(33);
  for (int i = 0; i < 50; ++i) {
    const GeoPoint a{rng.uniform(21.2, 21.7), rng.uniform(-158.3, -157.6)};
    const GeoPoint b{rng.uniform(21.2, 21.7), rng.uniform(-158.3, -157.6)};
    const double planar = distance(proj.to_enu(a), proj.to_enu(b));
    const double spherical = haversine_m(a, b);
    if (spherical > 1000.0) {
      EXPECT_NEAR(planar / spherical, 1.0, 0.005);
    }
  }
}

// ---------------------------------------------------------------- bbox

TEST(BBox, ExpandAndContains) {
  BBox box;
  EXPECT_FALSE(box.valid());
  box.expand(Vec2{0.0, 0.0});
  box.expand(Vec2{2.0, 3.0});
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains({1.0, 1.0}));
  EXPECT_TRUE(box.contains({0.0, 3.0}));
  EXPECT_FALSE(box.contains({-0.1, 1.0}));
  EXPECT_EQ(box.center(), (Vec2{1.0, 1.5}));
  const BBox bigger = box.inflated(1.0);
  EXPECT_TRUE(bigger.contains({-0.5, -0.5}));
}

// ---------------------------------------------------------------- polygon

Polygon unit_square() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(Polygon, ContainsSquare) {
  const Polygon sq = unit_square();
  EXPECT_TRUE(sq.contains({0.5, 0.5}));
  EXPECT_TRUE(sq.contains({0.01, 0.99}));
  EXPECT_FALSE(sq.contains({1.5, 0.5}));
  EXPECT_FALSE(sq.contains({-0.1, 0.5}));
}

TEST(Polygon, ContainsConcave) {
  // A "U" shape: the notch interior is outside.
  const Polygon u({{0, 0}, {4, 0}, {4, 4}, {3, 4}, {3, 1}, {1, 1}, {1, 4},
                   {0, 4}});
  EXPECT_TRUE(u.contains({0.5, 2.0}));   // left arm
  EXPECT_TRUE(u.contains({3.5, 2.0}));   // right arm
  EXPECT_FALSE(u.contains({2.0, 2.0}));  // notch
  EXPECT_TRUE(u.contains({2.0, 0.5}));   // base
}

TEST(Polygon, AreaAndWinding) {
  EXPECT_DOUBLE_EQ(unit_square().area(), 1.0);  // CCW positive
  const Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_DOUBLE_EQ(cw.area(), -1.0);
  EXPECT_DOUBLE_EQ(cw.abs_area(), 1.0);
}

TEST(Polygon, Centroid) {
  const Vec2 c = unit_square().centroid();
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(Polygon, DistanceToBoundary) {
  const Polygon sq = unit_square();
  EXPECT_NEAR(sq.distance_to_boundary({0.5, 0.5}), 0.5, 1e-12);
  EXPECT_NEAR(sq.distance_to_boundary({2.0, 0.5}), 1.0, 1e-12);
  EXPECT_NEAR(sq.distance_to_boundary({0.5, 0.1}), 0.1, 1e-12);
}

TEST(Polygon, RequiresThreeVertices) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(Polygon, ContainsMatchesWindingIndependence) {
  const Polygon ccw({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const Polygon cw({{0, 0}, {0, 2}, {2, 2}, {2, 0}});
  util::Rng rng(34);
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{rng.uniform(-1.0, 3.0), rng.uniform(-1.0, 3.0)};
    EXPECT_EQ(ccw.contains(p), cw.contains(p));
  }
}

// ---------------------------------------------------------------- linestring

TEST(LineString, LengthAndArclength) {
  const LineString line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.length(), 7.0);
  EXPECT_EQ(line.at_arclength(0.0), (Vec2{0, 0}));
  EXPECT_EQ(line.at_arclength(3.0), (Vec2{3, 0}));
  EXPECT_EQ(line.at_arclength(5.0), (Vec2{3, 2}));
  EXPECT_EQ(line.at_arclength(100.0), (Vec2{3, 4}));  // clamped
}

TEST(LineString, NearestPointAndDistance) {
  const LineString line({{0, 0}, {10, 0}});
  const auto nearest = line.nearest_point({5.0, 3.0});
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(*nearest, (Vec2{5.0, 0.0}));
  EXPECT_DOUBLE_EQ(line.distance({5.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(line.distance({-3.0, 4.0}), 5.0);  // clamps to endpoint
  EXPECT_TRUE(std::isinf(LineString().distance({0, 0})));
}

TEST(ClosestPointOnSegment, ClampsToEndpoints) {
  EXPECT_EQ(closest_point_on_segment({0, 0}, {10, 0}, {5, 5}), (Vec2{5, 0}));
  EXPECT_EQ(closest_point_on_segment({0, 0}, {10, 0}, {-5, 5}), (Vec2{0, 0}));
  EXPECT_EQ(closest_point_on_segment({0, 0}, {10, 0}, {15, 5}), (Vec2{10, 0}));
  EXPECT_EQ(closest_point_on_segment({2, 2}, {2, 2}, {0, 0}), (Vec2{2, 2}));
}

// ---------------------------------------------------------------- hull

TEST(ConvexHull, SquareWithInteriorPoints) {
  const std::vector<Vec2> pts = {{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1},
                                 {0.5, 0.5}, {1.5, 0.2}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHull, CollinearPointsDropped) {
  const auto hull = convex_hull({{0, 0}, {1, 0}, {2, 0}, {2, 2}, {1, 1}});
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHull, HullContainsAllPoints) {
  util::Rng rng(35);
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.normal(0, 10), rng.normal(0, 10)});
  }
  const auto hull_pts = convex_hull(pts);
  ASSERT_GE(hull_pts.size(), 3u);
  const Polygon hull(hull_pts);
  for (const Vec2 p : pts) {
    // Interior or on boundary: allow a tiny tolerance via inflation check.
    EXPECT_TRUE(hull.contains(p) || hull.distance_to_boundary(p) < 1e-6);
  }
}

TEST(ConvexHull, SmallInputsPassThrough) {
  EXPECT_TRUE(convex_hull({}).empty());
  EXPECT_EQ(convex_hull({{1, 2}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1, 2}, {3, 4}}).size(), 2u);
}

// ---------------------------------------------------------------- grid index

TEST(GridIndex, NearestMatchesBruteForce) {
  util::Rng rng(36);
  std::vector<Vec2> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  const GridIndex index(pts, 50.0);
  for (int q = 0; q < 200; ++q) {
    const Vec2 query{rng.uniform(-100.0, 1100.0), rng.uniform(-100.0, 1100.0)};
    const std::size_t got = index.nearest(query);
    std::size_t want = 0;
    double best = 1e300;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const double d = (pts[i] - query).norm2();
      if (d < best) {
        best = d;
        want = i;
      }
    }
    ASSERT_NE(got, GridIndex::npos);
    // Ties allowed: got may differ from want if distances are equal.
    EXPECT_DOUBLE_EQ((pts[got] - query).norm2(), (pts[want] - query).norm2())
        << "query " << q;
  }
}

TEST(GridIndex, WithinMatchesBruteForce) {
  util::Rng rng(37);
  std::vector<Vec2> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const GridIndex index(pts, 10.0);
  for (int q = 0; q < 50; ++q) {
    const Vec2 query{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const double radius = rng.uniform(1.0, 30.0);
    auto got = index.within(query, radius);
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if ((pts[i] - query).norm() <= radius) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(GridIndex, EmptyAndDegenerate) {
  const GridIndex empty({}, 10.0);
  EXPECT_EQ(empty.nearest({0, 0}), GridIndex::npos);
  EXPECT_TRUE(empty.within({0, 0}, 5.0).empty());
  const GridIndex one({{3.0, 4.0}}, 10.0);
  EXPECT_EQ(one.nearest({100.0, 100.0}), 0u);
  EXPECT_THROW(GridIndex({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(GridIndex, WithinOutParamMatchesAllocatingForm) {
  util::Rng rng(23, "within-out");
  std::vector<Vec2> points(400);
  for (Vec2& p : points) {
    p = {rng.uniform(-5000.0, 5000.0), rng.uniform(-5000.0, 5000.0)};
  }
  const GridIndex index(points, 750.0);

  std::vector<std::size_t> reused{999, 999, 999};  // must be cleared per call
  for (int q = 0; q < 25; ++q) {
    const Vec2 query{rng.uniform(-6000.0, 6000.0),
                     rng.uniform(-6000.0, 6000.0)};
    const double radius = rng.uniform(0.0, 2500.0);
    const std::vector<std::size_t> allocated = index.within(query, radius);
    index.within(query, radius, reused);
    EXPECT_EQ(reused, allocated);
  }

  index.within({0.0, 0.0}, -1.0, reused);
  EXPECT_TRUE(reused.empty());
}

}  // namespace
}  // namespace ct::geo
