// Statistical calibration tests: assert that the synthetic hurricane
// ensemble reproduces the structure the paper's analysis depends on
// (DESIGN.md §2). These run the full 1000-realization ensemble once and
// check every property against it, so they are the slowest tests in the
// suite (~10 s).
#include <gtest/gtest.h>

#include "scada/oahu.h"
#include "storm/saffir_simpson.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "util/stats.h"

namespace ct::surge {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const scada::ScadaTopology topo = scada::oahu_topology();
    engine_ = new RealizationEngine(terrain::make_oahu_terrain(),
                                    topo.exposed_assets(),
                                    RealizationConfig{});
    batch_ = new std::vector<HurricaneRealization>(engine_->run_batch(1000));
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete engine_;
  }

  static double flood_rate(const char* id) {
    std::size_t failures = 0;
    for (const auto& r : *batch_) {
      if (r.asset_failed(id)) ++failures;
    }
    return static_cast<double>(failures) / static_cast<double>(batch_->size());
  }

  static RealizationEngine* engine_;
  static std::vector<HurricaneRealization>* batch_;
};

RealizationEngine* CalibrationTest::engine_ = nullptr;
std::vector<HurricaneRealization>* CalibrationTest::batch_ = nullptr;

TEST_F(CalibrationTest, HonoluluFloodsNearPaperRate) {
  // Paper: the Honolulu control center floods in 9.5% of realizations.
  const double rate = flood_rate(scada::oahu_ids::kHonoluluCc);
  EXPECT_GE(rate, 0.07);
  EXPECT_LE(rate, 0.12);
}

TEST_F(CalibrationTest, WaiauFloodsWheneverHonoluluDoes) {
  // Paper: "in every hurricane realization in which the primary control
  // center location is flooded, the backup location is flooded as well."
  std::size_t honolulu = 0;
  std::size_t joint = 0;
  for (const auto& r : *batch_) {
    if (r.asset_failed(scada::oahu_ids::kHonoluluCc)) {
      ++honolulu;
      if (r.asset_failed(scada::oahu_ids::kWaiauCc)) ++joint;
    }
  }
  ASSERT_GT(honolulu, 0u);
  EXPECT_GE(static_cast<double>(joint) / static_cast<double>(honolulu), 0.92);
}

TEST_F(CalibrationTest, WaiauRateCloseToHonolulu) {
  const double hon = flood_rate(scada::oahu_ids::kHonoluluCc);
  const double wai = flood_rate(scada::oahu_ids::kWaiauCc);
  EXPECT_NEAR(wai, hon, 0.03);
}

TEST_F(CalibrationTest, KaheNeverFloods) {
  // Paper: "Kahe is the site least impacted by the hurricane"; with Kahe as
  // backup the 9.5% red mass fully converts (Figs. 10-11), which requires
  // Kahe to survive every realization.
  EXPECT_EQ(flood_rate(scada::oahu_ids::kKaheCc), 0.0);
}

TEST_F(CalibrationTest, DataCentersNeverFlood) {
  // "6+6+6" with Kahe is 100% green in the paper, which requires DRFortress
  // to stay up whenever needed; the simplest consistent model keeps both
  // data centers dry.
  EXPECT_EQ(flood_rate(scada::oahu_ids::kDrFortress), 0.0);
  EXPECT_EQ(flood_rate(scada::oahu_ids::kAlohaNap), 0.0);
}

TEST_F(CalibrationTest, HighInlandAssetsNeverFlood) {
  EXPECT_EQ(flood_rate("wahiawa_ss"), 0.0);
  EXPECT_EQ(flood_rate("koolau_ss"), 0.0);
  EXPECT_EQ(flood_rate("pukele_ss"), 0.0);
}

TEST_F(CalibrationTest, StormsAreCat2Class) {
  util::RunningStats wind;
  for (const auto& r : *batch_) wind.add(r.peak_wind_ms);
  // Mean peak wind should sit in the CAT-1/CAT-2 band (surface winds).
  EXPECT_GE(wind.mean(), storm::category_min_wind_ms(storm::Category::kCat1));
  EXPECT_LE(wind.mean(), storm::category_max_wind_ms(storm::Category::kCat2));
}

TEST_F(CalibrationTest, SurgeMagnitudesArePhysical) {
  util::RunningStats wse;
  for (const auto& r : *batch_) wse.add(r.max_shoreline_wse_m);
  // Hawaii CAT-2 planning guidance: peak surge (with wave setup) of a few
  // meters; nothing should approach Katrina-scale 8 m+.
  EXPECT_GT(wse.mean(), 0.8);
  EXPECT_LT(wse.max(), 6.0);
}

TEST_F(CalibrationTest, SomeRealizationsAreHarmless) {
  // Distant passes should leave every control asset dry: the compound
  // threat analysis needs benign realizations too.
  std::size_t harmless = 0;
  for (const auto& r : *batch_) {
    bool any = false;
    for (const auto& impact : r.impacts) any = any || impact.failed;
    if (!any) ++harmless;
  }
  EXPECT_GT(static_cast<double>(harmless) / static_cast<double>(batch_->size()),
            0.5);
}

TEST_F(CalibrationTest, HarborTreatmentMattersForWaiau) {
  // Ablation: with the harbor transfer disabled, Waiau decouples from the
  // open coast and the Waiau|Honolulu conditional flood probability drops.
  const scada::ScadaTopology topo = scada::oahu_topology();
  RealizationConfig config;
  config.harbor.enabled = false;
  const RealizationEngine no_harbor(terrain::make_oahu_terrain(),
                                    topo.exposed_assets(), config);
  std::size_t honolulu = 0;
  std::size_t joint = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const HurricaneRealization r = no_harbor.run(i);
    if (r.asset_failed(scada::oahu_ids::kHonoluluCc)) {
      ++honolulu;
      if (r.asset_failed(scada::oahu_ids::kWaiauCc)) ++joint;
    }
  }
  if (honolulu > 0) {
    EXPECT_LT(static_cast<double>(joint) / static_cast<double>(honolulu),
              0.92);
  }
}

}  // namespace
}  // namespace ct::surge
