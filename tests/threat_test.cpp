// Tests for the compound-threat model: system states, scenarios, and the
// worst-case attackers — including the paper's §V-B claim that the greedy
// 3-rule algorithm achieves the exhaustive worst case.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "scada/configuration.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "threat/system_state.h"

namespace ct::threat {
namespace {

using scada::Configuration;

// ---------------------------------------------------------------- states

TEST(SystemState, PostDisasterMapsFloodedAssets) {
  const Configuration c = scada::make_config_2_2("hon", "waiau");
  const SystemState s = post_disaster_state(
      c, [](std::string_view id) { return id == "hon"; });
  ASSERT_EQ(s.site_status.size(), 2u);
  EXPECT_EQ(s.site_status[0], SiteStatus::kFlooded);
  EXPECT_EQ(s.site_status[1], SiteStatus::kUp);
  EXPECT_EQ(s.intrusions, (std::vector<int>{0, 0}));
  EXPECT_EQ(s.functional_site_count(), 1);
  EXPECT_THROW(post_disaster_state(c, nullptr), std::invalid_argument);
}

TEST(SystemState, EffectiveIntrusionsIgnoreDownSites) {
  SystemState s;
  s.site_status = {SiteStatus::kUp, SiteStatus::kFlooded, SiteStatus::kIsolated};
  s.intrusions = {1, 2, 3};
  EXPECT_EQ(s.effective_intrusions(), 1);
  EXPECT_EQ(s.total_intrusions(), 6);
  EXPECT_EQ(s.functional_site_count(), 1);
}

TEST(SystemState, PriorityOrderPrimaryBackupDataCenter) {
  Configuration c = scada::make_config_6_6_6("p", "b", "d");
  // Shuffle declaration order: data center first.
  std::swap(c.sites[0], c.sites[2]);
  const auto order = site_priority_order(c);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(c.sites[order[0]].role, scada::SiteRole::kPrimary);
  EXPECT_EQ(c.sites[order[1]].role, scada::SiteRole::kBackup);
  EXPECT_EQ(c.sites[order[2]].role, scada::SiteRole::kDataCenter);
}

TEST(SystemState, Names) {
  EXPECT_EQ(state_name(OperationalState::kGreen), "green");
  EXPECT_EQ(state_name(OperationalState::kGray), "gray");
  EXPECT_EQ(site_status_name(SiteStatus::kIsolated), "isolated");
  EXPECT_LT(badness(OperationalState::kGreen),
            badness(OperationalState::kOrange));
  EXPECT_LT(badness(OperationalState::kOrange),
            badness(OperationalState::kRed));
  EXPECT_LT(badness(OperationalState::kRed), badness(OperationalState::kGray));
}

// ---------------------------------------------------------------- scenarios

TEST(Scenario, CapabilitiesMatchPaper) {
  EXPECT_EQ(capability_for(ThreatScenario::kHurricane),
            (AttackerCapability{0, 0}));
  EXPECT_EQ(capability_for(ThreatScenario::kHurricaneIntrusion),
            (AttackerCapability{1, 0}));
  EXPECT_EQ(capability_for(ThreatScenario::kHurricaneIsolation),
            (AttackerCapability{0, 1}));
  EXPECT_EQ(capability_for(ThreatScenario::kHurricaneIntrusionIsolation),
            (AttackerCapability{1, 1}));
  EXPECT_EQ(all_scenarios().size(), 4u);
  EXPECT_EQ(scenario_name(ThreatScenario::kHurricane), "Hurricane");
}

// ---------------------------------------------------------------- greedy

SystemState all_up(const Configuration& c) {
  SystemState s;
  s.site_status.assign(c.sites.size(), SiteStatus::kUp);
  s.intrusions.assign(c.sites.size(), 0);
  return s;
}

TEST(GreedyAttacker, Rule1CompromisesSafetyWhenPossible) {
  const Configuration c = scada::make_config_2_2("p", "b");
  const GreedyWorstCaseAttacker attacker;
  const SystemState attacked = attacker.attack(c, all_up(c), {1, 1});
  // Needs only one intrusion (f = 0): rule 1 fires, no isolation performed.
  EXPECT_EQ(attacked.intrusions[0], 1);
  EXPECT_EQ(attacked.site_status[0], SiteStatus::kUp);
  EXPECT_EQ(attacked.site_status[1], SiteStatus::kUp);
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kGray);
}

TEST(GreedyAttacker, Rule1TargetsBackupWhenPrimaryFlooded) {
  const Configuration c = scada::make_config_2_2("p", "b");
  SystemState state = all_up(c);
  state.site_status[0] = SiteStatus::kFlooded;
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(c, state, {1, 0});
  EXPECT_EQ(attacked.intrusions[1], 1);
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kGray);
}

TEST(GreedyAttacker, NoFunctionalServersNoIntrusion) {
  const Configuration c = scada::make_config_2("p");
  SystemState state = all_up(c);
  state.site_status[0] = SiteStatus::kFlooded;
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(c, state, {1, 1});
  EXPECT_EQ(attacked.total_intrusions(), 0);
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kRed);
}

TEST(GreedyAttacker, Rule2IsolatesPrimaryFirst) {
  const Configuration c = scada::make_config_6_6("p", "b");
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(c, all_up(c), {0, 1});
  EXPECT_EQ(attacked.site_status[0], SiteStatus::kIsolated);
  EXPECT_EQ(attacked.site_status[1], SiteStatus::kUp);
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kOrange);
}

TEST(GreedyAttacker, Rule2FallsThroughToBackup) {
  const Configuration c = scada::make_config_6_6("p", "b");
  SystemState state = all_up(c);
  state.site_status[0] = SiteStatus::kFlooded;
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(c, state, {0, 1});
  EXPECT_EQ(attacked.site_status[1], SiteStatus::kIsolated);
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kRed);
}

TEST(GreedyAttacker, Rule3PlacesToleratedIntrusion) {
  const Configuration c = scada::make_config_6("p");
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(c, all_up(c), {1, 0});
  EXPECT_EQ(attacked.intrusions[0], 1);
  // One intrusion is within f: still green.
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kGreen);
}

TEST(GreedyAttacker, SixSixSixSurvivesFullCyberattack) {
  const Configuration c = scada::make_config_6_6_6("p", "b", "d");
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(c, all_up(c), {1, 1});
  EXPECT_EQ(attacked.site_status[0], SiteStatus::kIsolated);
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kGreen);
}

TEST(GreedyAttacker, TwoIntrusionsGraySix) {
  // Beyond the paper's scenarios: an attacker with budget f+1 = 2 defeats
  // the "6" configuration.
  const Configuration c = scada::make_config_6("p");
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(c, all_up(c), {2, 0});
  EXPECT_EQ(attacked.intrusions[0], 2);
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kGray);
}

TEST(GreedyAttacker, MultisiteGrayNeedsGroupWideIntrusions) {
  const Configuration c = scada::make_config_6_6_6("p", "b", "d");
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(c, all_up(c), {2, 0});
  EXPECT_EQ(attacked.effective_intrusions(), 2);
  EXPECT_EQ(core::evaluate(c, attacked), OperationalState::kGray);
}

TEST(GreedyAttacker, Rule1SpreadsAcrossMultisiteGroup) {
  // A thin multisite group (1 replica per site): safety violation needs
  // intrusions spread across sites — rule 1 must place them greedily
  // across functional hot sites, not require one big site.
  Configuration thin = scada::make_config_6_6_6("a", "b", "c");
  thin.name = "1+1+1";
  for (auto& site : thin.sites) site.replicas = 1;
  thin.intrusion_tolerance_f = 1;  // needs 2 intrusions for gray
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(thin, all_up(thin), {2, 0});
  EXPECT_EQ(attacked.effective_intrusions(), 2);
  EXPECT_EQ(core::evaluate(thin, attacked), OperationalState::kGray);
  // No single site holds more than its replica count.
  for (std::size_t i = 0; i < thin.sites.size(); ++i) {
    EXPECT_LE(attacked.intrusions[i], thin.sites[i].replicas);
  }
}

TEST(GreedyAttacker, Rule1SkipsNonFunctionalSitesWhenSpreading) {
  Configuration thin = scada::make_config_6_6_6("a", "b", "c");
  thin.name = "1+1+1";
  for (auto& site : thin.sites) site.replicas = 1;
  SystemState state = all_up(thin);
  state.site_status[0] = SiteStatus::kFlooded;
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(thin, state, {2, 0});
  EXPECT_EQ(attacked.intrusions[0], 0);  // flooded site has no live servers
  EXPECT_EQ(attacked.effective_intrusions(), 2);
  EXPECT_EQ(core::evaluate(thin, attacked), OperationalState::kGray);
}

TEST(GreedyAttacker, Rule1InfeasibleFallsThroughToRules2And3) {
  // Attacker can afford f+1 intrusions but not enough live servers exist
  // in one group: rules 2-3 apply instead.
  const Configuration c = scada::make_config_6("p");
  SystemState state = all_up(c);
  Configuration small = c;
  small.sites[0].replicas = 1;  // degenerate: one server, f = 1
  const SystemState attacked =
      GreedyWorstCaseAttacker{}.attack(small, state, {2, 1});
  // Rule 1 infeasible (needs 2 servers, site has 1): isolate instead.
  EXPECT_EQ(attacked.site_status[0], SiteStatus::kIsolated);
  EXPECT_EQ(core::evaluate(small, attacked), OperationalState::kRed);
}

TEST(GreedyAttacker, ValidatesStateShape) {
  const Configuration c = scada::make_config_2("p");
  SystemState bad;
  EXPECT_THROW(GreedyWorstCaseAttacker{}.attack(c, bad, {1, 0}),
               std::invalid_argument);
}

// ------------------------------------------------- greedy == exhaustive

/// Enumerates every flood pattern for a configuration's sites.
std::vector<SystemState> all_flood_patterns(const Configuration& c) {
  std::vector<SystemState> out;
  const std::size_t n = c.sites.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    SystemState s;
    s.intrusions.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      s.site_status.push_back((mask >> i) & 1 ? SiteStatus::kFlooded
                                              : SiteStatus::kUp);
    }
    out.push_back(std::move(s));
  }
  return out;
}

struct AttackerEquivalenceCase {
  const char* config_name;
  Configuration config;
};

class AttackerEquivalence
    : public ::testing::TestWithParam<AttackerEquivalenceCase> {};

TEST_P(AttackerEquivalence, GreedyMatchesExhaustiveWorstCase) {
  const Configuration& config = GetParam().config;
  const GreedyWorstCaseAttacker greedy;
  const ExhaustiveAttacker exhaustive(
      [&config](const SystemState& s) { return core::evaluate(config, s); });

  for (const SystemState& base : all_flood_patterns(config)) {
    for (int intrusions = 0; intrusions <= 2; ++intrusions) {
      for (int isolations = 0; isolations <= 2; ++isolations) {
        const AttackerCapability cap{intrusions, isolations};
        const OperationalState g =
            core::evaluate(config, greedy.attack(config, base, cap));
        const OperationalState e =
            core::evaluate(config, exhaustive.attack(config, base, cap));
        EXPECT_EQ(badness(g), badness(e))
            << GetParam().config_name << " intrusions=" << intrusions
            << " isolations=" << isolations;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, AttackerEquivalence,
    ::testing::Values(
        AttackerEquivalenceCase{"2", scada::make_config_2("p")},
        AttackerEquivalenceCase{"2-2", scada::make_config_2_2("p", "b")},
        AttackerEquivalenceCase{"6", scada::make_config_6("p")},
        AttackerEquivalenceCase{"6-6", scada::make_config_6_6("p", "b")},
        AttackerEquivalenceCase{"6+6+6",
                                scada::make_config_6_6_6("p", "b", "d")}),
    [](const ::testing::TestParamInfo<AttackerEquivalenceCase>& info) {
      std::string name = info.param.config_name;
      for (char& ch : name) {
        if (ch == '-' || ch == '+') ch = '_';
      }
      return name;
    });

/// Monotonicity: granting the attacker more capability never improves the
/// outcome. Parameterized over the five architectures.
class AttackerMonotonicity
    : public ::testing::TestWithParam<AttackerEquivalenceCase> {};

TEST_P(AttackerMonotonicity, MoreCapabilityNeverHelpsTheDefender) {
  const Configuration& config = GetParam().config;
  const ExhaustiveAttacker attacker(
      [&config](const SystemState& s) { return core::evaluate(config, s); });
  for (const SystemState& base : all_flood_patterns(config)) {
    int previous_badness = -1;
    for (const AttackerCapability cap :
         {AttackerCapability{0, 0}, AttackerCapability{1, 0},
          AttackerCapability{1, 1}, AttackerCapability{2, 1},
          AttackerCapability{2, 2}}) {
      const int b =
          badness(core::evaluate(config, attacker.attack(config, base, cap)));
      EXPECT_GE(b, previous_badness);
      previous_badness = b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, AttackerMonotonicity,
    ::testing::Values(
        AttackerEquivalenceCase{"2", scada::make_config_2("p")},
        AttackerEquivalenceCase{"2-2", scada::make_config_2_2("p", "b")},
        AttackerEquivalenceCase{"6", scada::make_config_6("p")},
        AttackerEquivalenceCase{"6-6", scada::make_config_6_6("p", "b")},
        AttackerEquivalenceCase{"6+6+6",
                                scada::make_config_6_6_6("p", "b", "d")}),
    [](const ::testing::TestParamInfo<AttackerEquivalenceCase>& info) {
      std::string name = info.param.config_name;
      for (char& ch : name) {
        if (ch == '-' || ch == '+') ch = '_';
      }
      return name;
    });

TEST(ExhaustiveAttacker, CountsCandidates) {
  const Configuration c = scada::make_config_2("p");
  ExhaustiveAttacker attacker(
      [&c](const SystemState& s) { return core::evaluate(c, s); });
  SystemState base;
  base.site_status = {SiteStatus::kUp};
  base.intrusions = {0};
  attacker.attack(c, base, {1, 1});
  // Isolation masks: {}, {site0}; intrusion placements: 0, 1 when the site
  // is functional, only 0 when isolated... at least 3 candidates.
  EXPECT_GE(attacker.last_candidates(), 3u);
  EXPECT_THROW(ExhaustiveAttacker(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace ct::threat
