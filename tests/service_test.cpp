// ct_service tests: wire-protocol round-trips and malformed-frame
// handling (every corruption must surface as ct::Error{kProtocol}, never
// UB — run under ASan/UBSan in CI), plus loopback server tests covering
// the serving-mode contracts: byte-identity with local execution (cold,
// cache-warm, and under fault-injection quarantine), bounded-queue load
// shedding, per-request deadlines, client-death reclamation, and
// concurrent sessions (exercised under TSan in CI).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/client.h"
#include "service/exec.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/rng.h"

namespace ct::service {
namespace {

// ---------------------------------------------------------------- payloads

TEST(Protocol, HelloRoundTrip) {
  Hello in;
  in.client_name = "testctl";
  in.min_version = 1;
  in.max_version = 3;
  EXPECT_EQ(decode_hello(encode_hello(in)), in);
}

TEST(Protocol, WelcomeRoundTrip) {
  Welcome in;
  in.version = kProtocolVersion;
  in.server_name = "unit";
  EXPECT_EQ(decode_welcome(encode_welcome(in)), in);
}

TEST(Protocol, RequestRoundTrip) {
  Request in;
  in.kind = RequestKind::kAnalyze;
  in.realizations = 123456789;
  in.sea_level_offset_m = 0.75;
  in.max_retries = 5;
  in.deadline_ms = 60000;
  in.no_cache = true;
  in.strict = true;
  in.json = false;
  in.primary = "honolulu_cc";
  in.backup = "kahe_cc";
  in.dc = "drfortress_dc";
  in.topology_csv = "id,name\n# not a real csv, just bytes\n";
  EXPECT_EQ(decode_request(encode_request(in)), in);
}

TEST(Protocol, ResponseRoundTrip) {
  Response in;
  in.exit_code = 3;
  in.degraded = true;
  in.all_from_cache = true;
  in.attempted = 20000;
  in.completed = 19990;
  in.quarantined = 10;
  in.retries = 17;
  in.output = std::string("=== Hurricane ===\n") + std::string(4096, 'x');
  EXPECT_EQ(decode_response(encode_response(in)), in);
}

TEST(Protocol, ChunkAndErrorRoundTrip) {
  StreamChunk chunk;
  chunk.done = 128;
  chunk.total = 1000;
  chunk.quarantined = 2;
  chunk.retries = 3;
  EXPECT_EQ(decode_chunk(encode_chunk(chunk)), chunk);

  ErrorInfo error;
  error.status = Status::kOverloaded;
  error.message = "admission queue full";
  error.queue_depth = 8;
  error.retry_after_ms = 250;
  EXPECT_EQ(decode_error(encode_error(error)), error);
}

TEST(Protocol, DecodersRejectTruncationAndTrailingBytes) {
  const std::string good = encode_request(Request{});
  // Truncation at every prefix length must throw, never read past the end.
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_THROW(decode_request(good.substr(0, n)), Error) << "prefix " << n;
  }
  EXPECT_THROW(decode_request(good + "x"), Error);
  try {
    decode_request(good.substr(0, 4));
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocol);
  }
}

TEST(Protocol, DecodersRejectSemanticGarbage) {
  // Unknown request kind.
  std::string bad_kind = encode_request(Request{});
  bad_kind[0] = '\x7f';
  EXPECT_THROW(decode_request(bad_kind), Error);

  // NaN sea-level offset (would poison every downstream digest).
  Request nan_request;
  std::string encoded = encode_request(nan_request);
  // kind(1) + realizations(8), then the f64 — plant an all-ones pattern.
  for (std::size_t i = 9; i < 17; ++i) encoded[i] = '\xff';
  EXPECT_THROW(decode_request(encoded), Error);

  // Empty hello version range.
  Hello hello;
  hello.min_version = 3;
  hello.max_version = 1;
  EXPECT_THROW(decode_hello(encode_hello(hello)), Error);

  // Boolean encoded as 2.
  std::string bad_bool = encode_request(Request{});
  bad_bool[25] = '\x02';  // no_cache field
  EXPECT_THROW(decode_request(bad_bool), Error);

  // Unknown error status.
  std::string bad_status = encode_error(ErrorInfo{});
  bad_status[0] = '\x63';
  EXPECT_THROW(decode_error(bad_status), Error);
}

// ---------------------------------------------------------------- frames

TEST(Frames, RoundTripThroughDecoder) {
  const std::string payload = encode_request(Request{});
  const std::string bytes =
      encode_frame(FrameType::kRequest, 42, payload);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frames, ReassemblesByteAtATime) {
  const std::string bytes = encode_frame(
      FrameType::kResponse, 7, encode_response(Response{}));
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(bytes.data() + i, 1);
    EXPECT_FALSE(decoder.next(frame)) << "complete after byte " << i;
  }
  decoder.feed(bytes.data() + bytes.size() - 1, 1);
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, FrameType::kResponse);
}

TEST(Frames, DrainsSeveralFramesFromOneFeed) {
  std::string stream;
  for (std::uint32_t id = 1; id <= 5; ++id) {
    stream += encode_frame(FrameType::kStreamChunk, id,
                           encode_chunk(StreamChunk{id, 100, 0, 0}));
  }
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  Frame frame;
  for (std::uint32_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(decoder.next(frame));
    EXPECT_EQ(frame.request_id, id);
  }
  EXPECT_FALSE(decoder.next(frame));
}

void expect_protocol_error(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  try {
    while (decoder.next(frame)) {
    }
    FAIL() << "malformed frame decoded without error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocol);
  }
}

TEST(Frames, DetectsEveryHeaderCorruption) {
  const std::string good =
      encode_frame(FrameType::kRequest, 9, encode_request(Request{}));
  {
    std::string bad = good;
    bad[0] = 'X';  // magic
    expect_protocol_error(bad);
  }
  {
    std::string bad = good;
    bad[4] = '\x02';  // unsupported version
    expect_protocol_error(bad);
  }
  {
    std::string bad = good;
    bad[5] = '\x00';  // frame type below range
    expect_protocol_error(bad);
  }
  {
    std::string bad = good;
    bad[6] = '\x01';  // nonzero flags
    expect_protocol_error(bad);
  }
  {
    std::string bad = good;
    bad[13] ^= '\x40';  // request id flip -> header digest mismatch
    expect_protocol_error(bad);
  }
  {
    std::string bad = good;
    bad[24] ^= '\x01';  // header digest itself
    expect_protocol_error(bad);
  }
  {
    std::string bad = good;
    bad[kHeaderSize] ^= '\x01';  // first payload byte -> payload checksum
    expect_protocol_error(bad);
  }
}

TEST(Frames, CorruptLengthCannotCommitToBogusRead) {
  // A flipped payload_size fails the HEADER digest before the decoder
  // ever waits for (or reads) payload bytes — a corrupt length must not
  // make the decoder buffer gigabytes or read out of bounds.
  std::string bad =
      encode_frame(FrameType::kRequest, 1, encode_request(Request{}));
  bad[10] = '\x7f';  // payload_size third byte: now ~8 MiB
  expect_protocol_error(bad);
}

TEST(Frames, OversizePayloadBoundRejected) {
  EXPECT_THROW(encode_frame(FrameType::kResponse, 1,
                            std::string(kMaxPayload + 1, 'a')),
               Error);
}

TEST(Frames, FuzzedFramesNeverCrash) {
  // 1k seeded-random corruptions of valid frames plus raw random byte
  // blobs: every outcome must be "decoded", "need more bytes", or a typed
  // kProtocol error. Anything else (crash, sanitizer report) fails CI.
  util::Rng rng(20260808);
  const std::string seed_frame =
      encode_frame(FrameType::kRequest, 77, encode_request(Request{}));
  std::size_t decoded = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 1000; ++round) {
    std::string bytes;
    if (round % 2 == 0) {
      bytes = seed_frame;
      const std::size_t flips = 1 + rng.next_u64() % 8;
      for (std::size_t f = 0; f < flips; ++f) {
        bytes[rng.next_u64() % bytes.size()] ^=
            static_cast<char>(1 + rng.next_u64() % 255);
      }
    } else {
      bytes.resize(rng.next_u64() % 256);
      for (char& c : bytes) c = static_cast<char>(rng.next_u64());
    }
    FrameDecoder decoder;
    Frame frame;
    try {
      decoder.feed(bytes.data(), bytes.size());
      while (decoder.next(frame)) {
        // A surviving frame must still decode or reject as a typed error.
        try {
          if (frame.type == FrameType::kRequest) decode_request(frame.payload);
        } catch (const Error&) {
        }
        ++decoded;
      }
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kProtocol);
      ++rejected;
    }
  }
  // The flip corpus must actually exercise the reject path.
  EXPECT_GT(rejected, 400u);
  (void)decoded;
}

// ---------------------------------------------------------------- address

TEST(Address, ParsesUnixAndTcpSpecs) {
  Address a = parse_address("unix:/tmp/ct.sock");
  EXPECT_TRUE(a.is_unix);
  EXPECT_EQ(a.path, "/tmp/ct.sock");

  a = parse_address("/var/run/ct.sock");  // bare path
  EXPECT_TRUE(a.is_unix);

  a = parse_address("tcp:127.0.0.1:7733");
  EXPECT_FALSE(a.is_unix);
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 7733);

  a = parse_address("localhost:80");
  EXPECT_EQ(a.host, "localhost");
  EXPECT_EQ(a.port, 80);

  EXPECT_THROW(parse_address("unix:"), Error);
  EXPECT_THROW(parse_address("nonsense"), Error);
  EXPECT_THROW(parse_address("host:99999"), Error);
  EXPECT_THROW(parse_address("host:notaport"), Error);
}

// ---------------------------------------------------------------- server

/// Unique short unix-socket path (sockaddr_un caps at ~107 chars, so no
/// deep temp dirs).
std::string test_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/ct_svc_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

ServerOptions loopback_options(const std::string& socket_path) {
  ServerOptions options;
  options.unix_path = socket_path;
  // Hermetic: memory cache only, small ensembles, two workers.
  options.defaults.runtime.disk_cache = false;
  options.defaults.runtime.jobs = 2;
  options.defaults.runtime.fault_spec = "none";
  return options;
}

Request analyze_request(std::uint64_t realizations) {
  Request request;
  request.kind = RequestKind::kAnalyze;
  request.realizations = realizations;
  return request;
}

/// Local reference execution through the same defaults the server uses.
ExecOutcome run_locally(const Request& request, const ServerOptions& options) {
  const auto runner = make_case_study(request, options.defaults, nullptr);
  return execute_request(request, *runner);
}

TEST(Server, HandshakeAndPing) {
  const std::string path = test_socket_path("ping");
  Server server(loopback_options(path));
  server.start();
  Client client(path, "unit");
  client.connect();
  EXPECT_EQ(client.welcome().version, kProtocolVersion);
  EXPECT_EQ(client.welcome().server_name, "ctserved");
  const CallResult result = client.call(Request{});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.response.exit_code, 0);
  EXPECT_TRUE(result.response.output.empty());
  server.stop();
}

TEST(Server, AnalyzeMatchesLocalColdWarmAndCacheFlag) {
  const std::string path = test_socket_path("ident");
  const ServerOptions options = loopback_options(path);
  Server server(options);
  server.start();
  const Request request = analyze_request(48);
  const ExecOutcome local = run_locally(request, options);

  Client client(path, "unit");
  client.connect();
  const CallResult cold = client.call(request);
  ASSERT_TRUE(cold.ok);
  // The serving contract: remote output is byte-identical to local.
  EXPECT_EQ(cold.response.output, local.output);
  EXPECT_EQ(cold.response.exit_code, local.exit_code);
  EXPECT_FALSE(cold.response.all_from_cache);

  const CallResult warm = client.call(request);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.response.output, local.output);
  // Second identical request is served whole from the shared cache.
  EXPECT_TRUE(warm.response.all_from_cache);
  server.stop();
}

TEST(Server, QuarantineRunsMatchLocalUnderFaultInjection) {
  const std::string path = test_socket_path("fault");
  ServerOptions options = loopback_options(path);
  // Deterministic quarantine: every 7th realization fails all attempts.
  options.defaults.runtime.fault_spec = "throw:every=7";
  Server server(options);
  server.start();
  Request request = analyze_request(40);
  const ExecOutcome local = run_locally(request, options);
  ASSERT_TRUE(local.degraded);

  Client client(path, "unit");
  client.connect();
  const CallResult remote = client.call(request);
  ASSERT_TRUE(remote.ok);
  EXPECT_EQ(remote.response.output, local.output);
  EXPECT_TRUE(remote.response.degraded);
  EXPECT_EQ(remote.response.quarantined, local.quarantined);
  EXPECT_EQ(remote.response.retries, local.retries);

  // Strict policy changes the exit code, not the report bytes.
  request.strict = true;
  const ExecOutcome strict_local = run_locally(request, options);
  const CallResult strict_remote = client.call(request);
  ASSERT_TRUE(strict_remote.ok);
  EXPECT_EQ(strict_remote.response.exit_code, strict_local.exit_code);
  EXPECT_EQ(strict_remote.response.exit_code, 3);
  EXPECT_EQ(strict_remote.response.output, strict_local.output);
  server.stop();
}

TEST(Server, StreamsProgressChunksAtSliceBoundaries) {
  const std::string path = test_socket_path("stream");
  ServerOptions options = loopback_options(path);
  options.stream_interval = 8;
  Server server(options);
  server.start();
  Client client(path, "unit");
  client.connect();
  std::vector<StreamChunk> chunks;
  const CallResult result = client.call(
      analyze_request(32),
      [&chunks](const StreamChunk& chunk) { chunks.push_back(chunk); });
  ASSERT_TRUE(result.ok);
  ASSERT_GE(chunks.size(), 2u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].done, chunks[i - 1].done);  // monotone progress
  }
  EXPECT_EQ(chunks.back().done, chunks.back().total);
  server.stop();
}

TEST(Server, BoundedQueueShedsLoadWithOverloaded) {
  const std::string path = test_socket_path("overload");
  ServerOptions options = loopback_options(path);
  options.queue_capacity = 1;
  // Every realization stalls, so jobs occupy the executor long enough for
  // the burst below to pile up deterministically.
  options.defaults.runtime.fault_spec = "delay:every=1,ms=40";
  options.defaults.runtime.jobs = 1;
  Server server(options);
  server.start();

  constexpr int kBurst = 4;
  std::atomic<int> ok{0};
  std::atomic<int> overloaded{0};
  std::vector<std::thread> threads;
  threads.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    threads.emplace_back([&, i] {
      Client client(path, "burst-" + std::to_string(i));
      client.connect();
      // Distinct no_cache per thread would change session keys; identical
      // requests keep this about admission, not execution.
      const CallResult result = client.call(analyze_request(24));
      if (result.ok) {
        ++ok;
      } else {
        ASSERT_EQ(result.error.status, Status::kOverloaded);
        // The shed answer carries the admission state for backoff.
        EXPECT_LE(result.error.queue_depth, 1u);
        EXPECT_GT(result.error.retry_after_ms, 0u);
        ++overloaded;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // 1 in flight + 1 queued; the rest of the burst must be shed, and the
  // admitted ones must still be answered.
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(ok.load() + overloaded.load(), kBurst);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(overloaded.load()));
  EXPECT_EQ(stats.queue_depth, 0u);
  server.stop();
}

TEST(Server, DeadlineExceededMidSweep) {
  const std::string path = test_socket_path("deadline");
  ServerOptions options = loopback_options(path);
  options.stream_interval = 4;  // poll the token at fine granularity
  options.defaults.runtime.fault_spec = "delay:every=1,ms=25";
  options.defaults.runtime.jobs = 1;
  Server server(options);
  server.start();
  Client client(path, "unit");
  client.connect();
  Request request = analyze_request(200);
  request.deadline_ms = 120;
  const CallResult result = client.call(request);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.status, Status::kDeadlineExceeded);
  // The server must stay fully serviceable afterwards.
  const CallResult ping = client.call(Request{});
  EXPECT_TRUE(ping.ok);
  server.stop();
}

TEST(Server, MalformedRequestAnsweredWithTypedError) {
  const std::string path = test_socket_path("badreq");
  Server server(loopback_options(path));
  server.start();
  Client client(path, "unit");
  client.connect();
  Request request = analyze_request(16);
  request.primary = "atlantis_cc";  // no such asset
  const CallResult result = client.call(request);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.status, Status::kMalformedRequest);
  EXPECT_NE(result.error.message.find("atlantis_cc"), std::string::npos);
  // The connection survives a rejected request.
  const CallResult ping = client.call(Request{});
  EXPECT_TRUE(ping.ok);
  server.stop();
}

TEST(Server, StatsRequestReportsCounters) {
  const std::string path = test_socket_path("stats");
  Server server(loopback_options(path));
  server.start();
  Client client(path, "unit");
  client.connect();
  ASSERT_TRUE(client.call(analyze_request(16)).ok);

  Request stats_request;
  stats_request.kind = RequestKind::kStats;
  const CallResult text = client.call(stats_request);
  ASSERT_TRUE(text.ok);
  EXPECT_NE(text.response.output.find("completed"), std::string::npos);

  stats_request.json = true;
  const CallResult json = client.call(stats_request);
  ASSERT_TRUE(json.ok);
  EXPECT_EQ(json.response.output.front(), '{');
  EXPECT_NE(json.response.output.find("\"cache\""), std::string::npos);
  server.stop();
}

/// Pulls a scalar metric out of a kMetrics JSON reply. Returns 0 when the
/// metric has not been registered yet (nothing has touched it).
std::uint64_t json_metric(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return 0;
  std::size_t i = at + key.size();
  while (i < json.size() && json[i] == ' ') ++i;
  std::uint64_t value = 0;
  while (i < json.size() && json[i] >= '0' && json[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(json[i] - '0');
    ++i;
  }
  return value;
}

CallResult call_metrics(Client& client, bool json) {
  Request request;
  request.kind = RequestKind::kMetrics;
  request.json = json;
  return client.call(request);
}

TEST(Server, MetricsRequestColdVsWarmCacheCountersMonotone) {
  const std::string path = test_socket_path("metrics");
  Server server(loopback_options(path));
  server.start();
  Client client(path, "unit");
  client.connect();

  const CallResult before = call_metrics(client, /*json=*/true);
  ASSERT_TRUE(before.ok);
  EXPECT_EQ(before.response.output.front(), '{');
  const std::uint64_t lookups0 = json_metric(before.response.output,
                                             "cache.lookups");
  const std::uint64_t hits0 = json_metric(before.response.output,
                                          "cache.hits");

  // Cold analyze: a lookup that misses.
  ASSERT_TRUE(client.call(analyze_request(16)).ok);
  const CallResult cold = call_metrics(client, /*json=*/true);
  ASSERT_TRUE(cold.ok);
  const std::uint64_t lookups1 = json_metric(cold.response.output,
                                             "cache.lookups");
  EXPECT_GT(lookups1, lookups0);

  // Warm repeat of the identical request: a lookup that hits.
  ASSERT_TRUE(client.call(analyze_request(16)).ok);
  const CallResult warm = call_metrics(client, /*json=*/true);
  ASSERT_TRUE(warm.ok);
  const std::uint64_t lookups2 = json_metric(warm.response.output,
                                             "cache.lookups");
  const std::uint64_t hits2 = json_metric(warm.response.output, "cache.hits");
  EXPECT_GT(lookups2, lookups1);
  EXPECT_GT(hits2, hits0);

  // Text rendering serves the same snapshot in tabular form.
  const CallResult text = call_metrics(client, /*json=*/false);
  ASSERT_TRUE(text.ok);
  EXPECT_NE(text.response.output.find("cache.lookups"), std::string::npos);
  EXPECT_NE(text.response.output.find("service.requests"), std::string::npos);
  server.stop();
}

TEST(Server, MetricsShedCounterTracksOverloadedAnswers) {
  const std::string path = test_socket_path("metrics_shed");
  ServerOptions options = loopback_options(path);
  options.queue_capacity = 1;
  options.defaults.runtime.fault_spec = "delay:every=1,ms=40";
  options.defaults.runtime.jobs = 1;
  Server server(options);
  server.start();

  Client probe(path, "probe");
  probe.connect();
  const CallResult before = call_metrics(probe, /*json=*/true);
  ASSERT_TRUE(before.ok);
  const std::uint64_t shed0 = json_metric(before.response.output,
                                          "service.shed");

  constexpr int kBurst = 4;
  std::atomic<int> overloaded{0};
  std::vector<std::thread> threads;
  threads.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    threads.emplace_back([&, i] {
      Client client(path, "burst-" + std::to_string(i));
      client.connect();
      const CallResult result = client.call(analyze_request(24));
      if (!result.ok) {
        ASSERT_EQ(result.error.status, Status::kOverloaded);
        ++overloaded;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_GE(overloaded.load(), 1);

  const CallResult after = call_metrics(probe, /*json=*/true);
  ASSERT_TRUE(after.ok);
  const std::uint64_t shed1 = json_metric(after.response.output,
                                          "service.shed");
  // Registry counter moved by exactly the kOverloaded answers this burst
  // produced (the registry is process-wide, hence the delta).
  EXPECT_EQ(shed1 - shed0, static_cast<std::uint64_t>(overloaded.load()));
  EXPECT_EQ(server.stats().shed, static_cast<std::uint64_t>(overloaded.load()));
  server.stop();
}

TEST(Protocol, MetricsRequestRoundTripAndGarbageRejected) {
  Request in;
  in.kind = RequestKind::kMetrics;
  in.json = true;
  EXPECT_EQ(decode_request(encode_request(in)), in);

  // Truncation at every prefix must throw a typed protocol error.
  const std::string good = encode_request(in);
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_THROW(decode_request(good.substr(0, n)), Error) << "prefix " << n;
  }
  // Trailing garbage after a well-formed kMetrics payload.
  EXPECT_THROW(decode_request(good + "\x01"), Error);
  // One past the last known kind is still unknown.
  std::string bad_kind = good;
  bad_kind[0] = static_cast<char>(static_cast<int>(RequestKind::kMetrics) + 1);
  try {
    decode_request(bad_kind);
    FAIL() << "unknown kind accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocol);
  }
}

/// Dials the socket, handshakes, sends one analyze request, and returns
/// the raw fd WITHOUT reading the answer — a client about to die
/// mid-stream.
int send_and_abandon(const std::string& path, const Request& request) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string hello =
      encode_frame(FrameType::kHello, 0, encode_hello(Hello{}));
  EXPECT_EQ(::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hello.size()));
  // Wait for the kWelcome frame so the request is definitely admitted
  // after the handshake.
  FrameDecoder decoder;
  Frame frame;
  char buffer[4096];
  while (!decoder.next(frame)) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    decoder.feed(buffer, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(frame.type, FrameType::kWelcome);
  const std::string bytes =
      encode_frame(FrameType::kRequest, 1, encode_request(request));
  EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  return fd;
}

TEST(Server, DeadClientReclaimedWithoutLeakingQueueSlot) {
  const std::string path = test_socket_path("reclaim");
  ServerOptions options = loopback_options(path);
  options.queue_capacity = 1;
  options.stream_interval = 4;
  options.defaults.runtime.fault_spec = "delay:every=1,ms=25";
  options.defaults.runtime.jobs = 1;
  Server server(options);
  server.start();

  // Kill the client the moment its (slow) request is in flight. The
  // server must cancel the sweep at the next slice boundary and free the
  // session without a response ever being sent.
  const int fd = send_and_abandon(path, analyze_request(400));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::close(fd);

  // A well-behaved client must get served promptly afterwards — if the
  // dead client leaked its queue slot (capacity 1), this would shed or
  // hang rather than complete.
  Client client(path, "survivor");
  client.connect();
  const CallResult result = client.call(analyze_request(12));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.response.exit_code, 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GE(stats.abandoned + stats.completed, 2u);
  server.stop();
}

TEST(Server, ConcurrentSessionsSeeIdenticalBytes) {
  const std::string path = test_socket_path("concurrent");
  const ServerOptions options = loopback_options(path);
  Server server(options);
  server.start();
  const Request request = analyze_request(32);
  const ExecOutcome local = run_locally(request, options);

  constexpr int kSessions = 4;
  std::vector<std::string> outputs(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      Client client(path, "session-" + std::to_string(i));
      client.connect();
      for (int round = 0; round < 2; ++round) {
        const CallResult result = client.call(request);
        ASSERT_TRUE(result.ok);
        outputs[i] = result.response.output;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(outputs[i], local.output) << "session " << i;
  }
  server.stop();
}

TEST(Server, GarbageBytesAnsweredWithErrorAndDropped) {
  const std::string path = test_socket_path("garbage");
  Server server(loopback_options(path));
  server.start();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  // A whole header's worth of non-protocol bytes: the decoder validates
  // nothing until kHeaderSize bytes arrive, so the garbage must cover it.
  const std::string garbage =
      "GET /analyze HTTP/1.1\r\nHost: ct.example.test\r\n\r\n";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));
  // The server answers with a typed error frame, then closes.
  FrameDecoder decoder;
  Frame frame;
  char buffer[4096];
  bool got_error = false;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    decoder.feed(buffer, static_cast<std::size_t>(n));
    if (decoder.next(frame)) {
      EXPECT_EQ(frame.type, FrameType::kError);
      EXPECT_EQ(decode_error(frame.payload).status,
                Status::kMalformedRequest);
      got_error = true;
    }
  }
  EXPECT_TRUE(got_error);
  ::close(fd);

  // Wait for the session teardown to land in the counters.
  for (int i = 0; i < 100; ++i) {
    if (server.stats().protocol_errors > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  server.stop();
}

TEST(Server, VersionMismatchRefusedCleanly) {
  const std::string path = test_socket_path("version");
  Server server(loopback_options(path));
  server.start();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  Hello hello;
  hello.min_version = 9;
  hello.max_version = 9;
  const std::string bytes =
      encode_frame(FrameType::kHello, 0, encode_hello(hello));
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  FrameDecoder decoder;
  Frame frame;
  char buffer[4096];
  bool refused = false;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    decoder.feed(buffer, static_cast<std::size_t>(n));
    if (decoder.next(frame)) {
      ASSERT_EQ(frame.type, FrameType::kError);
      EXPECT_EQ(decode_error(frame.payload).status,
                Status::kUnsupportedVersion);
      refused = true;
    }
  }
  EXPECT_TRUE(refused);
  ::close(fd);
  server.stop();
}

TEST(Server, DrainRefusesNewWorkAfterStop) {
  const std::string path = test_socket_path("drain");
  Server server(loopback_options(path));
  server.start();
  Client client(path, "unit");
  client.connect();
  ASSERT_TRUE(client.call(analyze_request(12)).ok);
  server.stop();
  // The socket is gone after a drain; a fresh dial must fail loudly.
  Client late(path, "late");
  EXPECT_THROW(late.connect(), Error);
}

// The progress hook exec/server streaming is built on: fires with an
// empty checkpoint dir, monotone, and ends at done == total.
TEST(Checkpoint, OnProgressFiresWithoutJournalDir) {
  const Request request = analyze_request(32);
  core::CaseStudyOptions defaults;
  defaults.runtime.disk_cache = false;
  defaults.runtime.jobs = 2;
  defaults.runtime.fault_spec = "none";
  const auto runner = make_case_study(request, defaults, nullptr);
  runtime::CheckpointOptions ckpt;
  ckpt.interval = 8;
  std::vector<runtime::SweepProgressEvent> events;
  ckpt.on_progress = [&events](const runtime::SweepProgressEvent& event) {
    events.push_back(event);
  };
  const ExecOutcome outcome = execute_request(request, *runner, ckpt);
  EXPECT_EQ(outcome.exit_code, 0);
  ASSERT_GE(events.size(), 2u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].done, events[i - 1].done);
  }
  EXPECT_EQ(events.back().done, events.back().total);
}

}  // namespace
}  // namespace ct::service
