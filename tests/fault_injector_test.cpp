// FaultPlan / FaultInjector tests: deterministic seeded plan generation,
// schedule round-tripping, and the network-level fault mechanics (crash,
// link flap, site flap, duplication, reordering, per-cause drop counters).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ct::sim {
namespace {

TEST(FaultPlan, RandomBenignPlanIsDeterministicPerSeed) {
  const BenignPlanShape shape;
  const std::vector<int> nodes{3, 3};
  util::Rng a(42, "plans");
  util::Rng b(42, "plans");
  util::Rng c(43, "plans");
  const FaultPlan pa = random_benign_plan(shape, nodes, a);
  const FaultPlan pb = random_benign_plan(shape, nodes, b);
  const FaultPlan pc = random_benign_plan(shape, nodes, c);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
}

TEST(FaultPlan, RandomBenignPlanStaysBenignAndInWindow) {
  BenignPlanShape shape;
  shape.window_from_s = 20.0;
  shape.window_to_s = 100.0;
  const std::vector<int> nodes{2, 2, 2};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed, "plans");
    const FaultPlan plan = random_benign_plan(shape, nodes, rng);
    EXPECT_TRUE(plan.benign());
    for (const FaultEvent& e : plan.events) {
      EXPECT_GE(e.at, shape.window_from_s);
      EXPECT_LT(e.at, shape.window_to_s);
      EXPECT_NE(e.kind, FaultKind::kCompromise);
    }
  }
}

TEST(FaultPlan, BenignCrashSlotsAreDisjoint) {
  BenignPlanShape shape;
  shape.max_crashes = 4;
  const std::vector<int> nodes{3, 3};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed, "crash-slots");
    const FaultPlan plan = random_benign_plan(shape, nodes, rng);
    double last_end = -1.0;
    for (const FaultEvent& e : plan.events) {
      if (e.kind != FaultKind::kCrash) continue;
      EXPECT_GE(e.at, last_end) << "seed " << seed;
      last_end = e.at + e.duration;
    }
  }
}

TEST(FaultPlan, ScheduleRoundTrips) {
  FaultPlan plan;
  plan.duplicate_probability = 0.05;
  plan.reorder_probability = 0.1;
  plan.reorder_window_s = 0.05;
  plan.events.push_back(
      {FaultKind::kCrash, 15.0, 10.0, {0, 1}, 0, 0, 1.0});
  plan.events.push_back({FaultKind::kSkew, 20.0, 30.0, {0, 0}, 0, 0, 1.5});
  plan.events.push_back({FaultKind::kLinkFlap, 30.0, 2.0, {}, 0, 2, 1.0});
  plan.events.push_back({FaultKind::kSiteFlap, 40.0, 3.0, {}, 1, 0, 1.0});
  plan.events.push_back(
      {FaultKind::kCompromise, 120.0, 0.0, {0, 2}, 0, 0, 1.0});

  const std::string schedule = plan.to_schedule();
  EXPECT_NE(schedule.find("crash @15 s0/n1 +10"), std::string::npos);
  EXPECT_NE(schedule.find("compromise @120 s0/n2"), std::string::npos);
  EXPECT_EQ(FaultPlan::parse_schedule(schedule), plan);
}

TEST(FaultPlan, ParseScheduleIgnoresCommentsAndRejectsGarbage) {
  const FaultPlan plan = FaultPlan::parse_schedule(
      "# comment\n\n  crash @5 s1/n0 +2\ndup 0.01\n");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.duplicate_probability, 0.01);
  EXPECT_THROW(FaultPlan::parse_schedule("explode @5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_schedule("crash s0/n0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_schedule("crash @5 bogus"),
               std::invalid_argument);
}

TEST(FaultPlan, ExcusedWindowsMergeAndPad) {
  FaultPlan plan;
  plan.events.push_back({FaultKind::kCrash, 10.0, 5.0, {0, 0}, 0, 0, 1.0});
  plan.events.push_back({FaultKind::kLinkFlap, 14.0, 2.0, {}, 0, 1, 1.0});
  plan.events.push_back({FaultKind::kSiteFlap, 100.0, 3.0, {}, 0, 0, 1.0});
  plan.events.push_back({FaultKind::kSkew, 50.0, 10.0, {0, 0}, 0, 0, 1.2});
  const auto windows = plan.excused_windows(2.0);
  // Crash [10,17) and flap [14,18) merge; skew is not an outage.
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].first, 10.0);
  EXPECT_DOUBLE_EQ(windows[0].second, 18.0);
  EXPECT_DOUBLE_EQ(windows[1].first, 100.0);
  EXPECT_DOUBLE_EQ(windows[1].second, 105.0);
}

TEST(FaultInjector, CrashMutesNodeAndRestartRestores) {
  Simulator sim;
  Network net(sim, {1, 1});
  int received = 0;
  net.register_handler({1, 0}, [&](const Message&) { ++received; });
  FaultPlan plan;
  plan.events.push_back({FaultKind::kCrash, 5.0, 5.0, {1, 0}, 0, 0, 1.0});
  FaultInjector injector(sim, net, plan);
  injector.arm();
  EXPECT_EQ(injector.events_armed(), 1);
  for (const double t : {1.0, 7.0, 12.0}) {
    sim.schedule_at(t, [&] { net.send({0, 0}, {1, 0}, Message{}); });
  }
  sim.run_until(20.0);
  EXPECT_EQ(received, 2);  // t=7 send hits the crash window
  EXPECT_EQ(net.drop_counters().crashed, 1u);
  EXPECT_FALSE(net.node_crashed({1, 0}));
}

TEST(FaultInjector, LinkFlapBlocksOnlyThatSitePair) {
  Simulator sim;
  Network net(sim, {1, 1, 1});
  int to_site1 = 0;
  int to_site2 = 0;
  net.register_handler({1, 0}, [&](const Message&) { ++to_site1; });
  net.register_handler({2, 0}, [&](const Message&) { ++to_site2; });
  FaultPlan plan;
  plan.events.push_back({FaultKind::kLinkFlap, 5.0, 5.0, {}, 0, 1, 1.0});
  FaultInjector injector(sim, net, plan);
  injector.arm();
  sim.schedule_at(7.0, [&] {
    net.send({0, 0}, {1, 0}, Message{});
    net.send({0, 0}, {2, 0}, Message{});
  });
  sim.schedule_at(12.0, [&] { net.send({0, 0}, {1, 0}, Message{}); });
  sim.run_until(20.0);
  EXPECT_EQ(to_site1, 1);  // only the post-flap send arrives
  EXPECT_EQ(to_site2, 1);  // the 0-2 link never flapped
  EXPECT_EQ(net.drop_counters().link_down, 1u);
}

TEST(FaultInjector, SiteFlapRestoresPriorState) {
  Simulator sim;
  Network net(sim, {1, 1});
  net.set_site_down(1, true);  // already flooded
  FaultPlan plan;
  plan.events.push_back({FaultKind::kSiteFlap, 5.0, 2.0, {}, 1, 0, 1.0});
  FaultInjector injector(sim, net, plan);
  injector.arm();
  sim.run_until(20.0);
  EXPECT_TRUE(net.site_down(1));  // the flap must not resurrect the site
}

TEST(FaultInjector, SkewHookAppliesAndClears) {
  Simulator sim;
  Network net(sim, {1});
  std::vector<std::pair<double, double>> calls;  // (time, factor)
  FaultInjector::Hooks hooks;
  hooks.set_timeout_scale = [&](NodeAddr addr, double factor) {
    EXPECT_EQ(addr, (NodeAddr{0, 0}));
    calls.emplace_back(sim.now(), factor);
  };
  FaultPlan plan;
  plan.events.push_back({FaultKind::kSkew, 5.0, 10.0, {0, 0}, 0, 0, 1.5});
  FaultInjector injector(sim, net, plan, hooks);
  injector.arm();
  sim.run_until(30.0);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_DOUBLE_EQ(calls[0].second, 1.5);
  EXPECT_DOUBLE_EQ(calls[1].second, 1.0);
  EXPECT_DOUBLE_EQ(calls[1].first, 15.0);
}

TEST(FaultInjector, ArmTwiceThrows) {
  Simulator sim;
  Network net(sim, {1});
  FaultInjector injector(sim, net, FaultPlan{});
  injector.arm();
  EXPECT_THROW(injector.arm(), std::logic_error);
}

TEST(Impairment, DuplicationDeliversExtraCopies) {
  Simulator sim;
  NetworkOptions options;
  options.duplicate_probability = 0.2;
  Network net(sim, {1, 1}, options);
  int received = 0;
  net.register_handler({1, 0}, [&](const Message&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) net.send({0, 0}, {1, 0}, Message{});
  sim.run_until(10.0);
  EXPECT_NEAR(static_cast<double>(net.messages_duplicated()) / n, 0.2, 0.02);
  EXPECT_EQ(static_cast<std::uint64_t>(received),
            n + net.messages_duplicated());
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST(Impairment, ReorderingShufflesWithinBound) {
  Simulator sim;
  NetworkOptions options;
  options.inter_site_latency_s = 0.025;
  options.reorder_probability = 0.5;
  options.reorder_window_s = 0.05;
  Network net(sim, {1, 1}, options);
  std::vector<std::int64_t> order;
  std::vector<double> arrivals;
  net.register_handler({1, 0}, [&](const Message& m) {
    order.push_back(m.request_id);
    arrivals.push_back(sim.now());
  });
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    Message m;
    m.request_id = i;
    net.send({0, 0}, {1, 0}, m);
  }
  sim.run_until(1.0);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  bool inverted = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) inverted = true;
  }
  EXPECT_TRUE(inverted);  // some later message overtook an earlier one
  for (const double t : arrivals) {
    EXPECT_GE(t, 0.025);
    EXPECT_LE(t, 0.025 + 0.05 + 1e-9);  // hold-back is bounded
  }
}

TEST(Impairment, DropCountersSplitByCause) {
  Simulator sim;
  Network net(sim, {1, 1, 1, 1});
  net.register_handler({1, 0}, [](const Message&) {});
  net.set_site_down(1, true);
  net.set_site_isolated(2, true);
  net.set_link_down(0, 3, true);
  net.set_node_crashed({0, 0}, true);
  net.send({0, 0}, {1, 0}, Message{});  // crashed sender wins classification
  net.set_node_crashed({0, 0}, false);
  net.send({0, 0}, {1, 0}, Message{});  // site down
  net.send({0, 0}, {2, 0}, Message{});  // isolation
  net.send({0, 0}, {3, 0}, Message{});  // link down
  sim.run_until(1.0);
  const DropCounters& drops = net.drop_counters();
  EXPECT_EQ(drops.crashed, 1u);
  EXPECT_EQ(drops.site_down, 1u);
  EXPECT_EQ(drops.isolation, 1u);
  EXPECT_EQ(drops.link_down, 1u);
  EXPECT_EQ(drops.loss, 0u);
  EXPECT_EQ(drops.in_flight, 0u);
  EXPECT_EQ(net.messages_dropped(), drops.total());
  EXPECT_EQ(drops.total(), 4u);
}

TEST(Impairment, InFlightDropWhenDestinationCrashesMidFlight) {
  Simulator sim;
  Network net(sim, {1, 1});
  int received = 0;
  net.register_handler({1, 0}, [&](const Message&) { ++received; });
  net.send({0, 0}, {1, 0}, Message{});           // in flight now
  net.set_node_crashed({1, 0}, true);            // crashes before delivery
  sim.run_until(1.0);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.drop_counters().in_flight, 1u);
}

}  // namespace
}  // namespace ct::sim
