// Focused coverage for behaviours not exercised elsewhere: degenerate
// geometry, vortex parameter interpolation, harbor amplification, table
// rendering corners, and restoration of hot-backup architectures.
#include <sstream>

#include <gtest/gtest.h>

#include "core/restoration.h"
#include "geo/polygon.h"
#include "mesh/trimesh.h"
#include "storm/track.h"
#include "surge/harbor.h"
#include "util/csv.h"
#include "util/table.h"

namespace ct {
namespace {

TEST(PolygonDegenerate, CollinearCentroidFallsBackToVertexMean) {
  // Zero-area polygon: area-weighted centroid is undefined; the vertex
  // mean is returned instead.
  const geo::Polygon line({{0, 0}, {1, 1}, {2, 2}});
  const geo::Vec2 c = line.centroid();
  EXPECT_NEAR(c.x, 1.0, 1e-9);
  EXPECT_NEAR(c.y, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(line.abs_area(), 0.0);
}

TEST(TriMeshDegenerate, LocateSkipsZeroAreaElements) {
  // A sliver element (all three nodes collinear) next to a proper one.
  std::vector<mesh::Node> nodes(4);
  nodes[0].position = {0, 0};
  nodes[1].position = {1, 0};
  nodes[2].position = {2, 0};  // collinear with 0 and 1
  nodes[3].position = {0.5, 1.0};
  const mesh::TriMesh tri({nodes[0], nodes[1], nodes[2], nodes[3]},
                          {{{0, 1, 2}}, {{0, 1, 3}}});
  const auto hit = tri.locate({0.5, 0.3});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->element, 1u);  // the degenerate element cannot match
}

TEST(StormTrack, VortexParametersInterpolateLinearly) {
  storm::TrackPoint a;
  a.time_s = 0.0;
  a.center = {20.0, -158.0};
  a.vortex.rmax_m = 30000.0;
  a.vortex.holland_b = 1.2;
  a.vortex.central_pressure_pa = 97000.0;
  storm::TrackPoint b = a;
  b.time_s = 100.0;
  b.center = {21.0, -158.0};
  b.vortex.rmax_m = 50000.0;
  b.vortex.holland_b = 1.6;
  b.vortex.central_pressure_pa = 96000.0;
  const storm::StormTrack track({a, b});
  const geo::EnuProjection proj({20.5, -158.0});
  const storm::StormState mid = track.state_at(50.0, proj);
  EXPECT_NEAR(mid.vortex.rmax_m, 40000.0, 1e-6);
  EXPECT_NEAR(mid.vortex.holland_b, 1.4, 1e-9);
  EXPECT_NEAR(mid.vortex.central_pressure_pa, 96500.0, 1e-6);
  // Latitude used for Coriolis follows the interpolated center.
  EXPECT_NEAR(mid.vortex.latitude_deg, 20.5, 1e-9);
}

TEST(Harbor, AmplificationScalesInheritedLevel) {
  std::vector<double> low = {2.0, 0.0};
  std::vector<double> high = low;
  const std::vector<bool> sheltered = {false, true};
  const std::vector<std::size_t> sources = {0, 0};
  surge::apply_harbor_transfer(low, sheltered, sources, 1.0);
  surge::apply_harbor_transfer(high, sheltered, sources, 1.25);
  EXPECT_DOUBLE_EQ(low[1], 2.0);
  EXPECT_DOUBLE_EQ(high[1], 2.5);
}

TEST(TextTable, EmptyTableRendersNothing) {
  util::TextTable table;
  EXPECT_TRUE(table.to_string().empty());
}

TEST(TextTable, HeaderOnlyRenders) {
  util::TextTable table;
  table.set_columns({"a", "bb"});
  const std::string s = table.to_string();
  EXPECT_NE(s.find("| a | bb |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(CsvWriter, PrecisionControlsDigits) {
  std::ostringstream out;
  util::CsvWriter csv(out);
  csv.field(3.14159265, 3).end_row();
  EXPECT_EQ(out.str(), "3.14\n");  // 3 significant digits
}

TEST(Restoration, HotBackupFailoverCostsNothing) {
  scada::Configuration hot = scada::make_config_2_2("p", "b");
  hot.name = "2-2hot";
  hot.sites[1].hot = true;
  threat::SystemState state;
  state.site_status = {threat::SiteStatus::kFlooded, threat::SiteStatus::kUp};
  state.intrusions = {0, 0};
  const core::IncidentCosts costs =
      core::expected_incident_costs(hot, state, core::RestorationModel{});
  EXPECT_DOUBLE_EQ(costs.downtime_hours, 0.0);  // green: instant takeover
}

TEST(Restoration, IsolatedPrimaryRestoresWithoutActivationWhenHot) {
  // Single-site "6" isolated: when the isolation ends, the (hot) site
  // serves again with no activation penalty.
  const scada::Configuration c = scada::make_config_6("p");
  threat::SystemState state;
  state.site_status = {threat::SiteStatus::kIsolated};
  state.intrusions = {0};
  const core::RestorationModel model;
  const core::IncidentCosts costs =
      core::expected_incident_costs(c, state, model);
  EXPECT_DOUBLE_EQ(costs.downtime_hours, model.isolation_duration_hours);
}

TEST(Restoration, GrayDominatesEvenWithSitesDown) {
  // "2-2": backup compromised while the primary is flooded: the incident
  // is a safety problem first (gray branch), not an availability one.
  const scada::Configuration c = scada::make_config_2_2("p", "b");
  threat::SystemState state;
  state.site_status = {threat::SiteStatus::kFlooded, threat::SiteStatus::kUp};
  state.intrusions = {0, 1};
  const core::RestorationModel model;
  const core::IncidentCosts costs =
      core::expected_incident_costs(c, state, model);
  EXPECT_DOUBLE_EQ(costs.incorrect_hours, model.compromise_detection_hours);
  EXPECT_DOUBLE_EQ(costs.downtime_hours, model.compromise_cleanup_hours);
}

TEST(GridIndexCoverage, NearestWithClusteredPoints) {
  // Many points in one cell plus a distant outlier: ring expansion must
  // not stop early.
  std::vector<geo::Vec2> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({1000.0 + i * 0.1, 1000.0});
  }
  pts.push_back({0.0, 0.0});
  const geo::GridIndex index(pts, 10.0);
  EXPECT_EQ(index.nearest({1.0, 1.0}), pts.size() - 1);
  EXPECT_EQ(index.nearest({1000.05, 1000.0}), 0u);
}

}  // namespace
}  // namespace ct
