// Tests for the wind-fragility extension (grid-asset damage channel the
// paper defers; see fragility.h).
#include <gtest/gtest.h>

#include "scada/oahu.h"
#include "surge/fragility.h"
#include "surge/realization.h"
#include "terrain/oahu.h"

namespace ct::surge {
namespace {

TEST(Fragility, CurveIsAProperCdf) {
  const FragilityCurve curve{55.0, 0.25};
  EXPECT_DOUBLE_EQ(damage_probability(curve, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(damage_probability(curve, -5.0), 0.0);
  EXPECT_NEAR(damage_probability(curve, 55.0), 0.5, 1e-9);  // median
  double previous = 0.0;
  for (double v = 10.0; v <= 120.0; v += 5.0) {
    const double p = damage_probability(curve, v);
    EXPECT_GE(p, previous);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
  EXPECT_LT(damage_probability(curve, 30.0), 0.02);
  EXPECT_GT(damage_probability(curve, 90.0), 0.95);
}

TEST(Fragility, SharperDispersionSteepensTheCurve) {
  const FragilityCurve wide{55.0, 0.5};
  const FragilityCurve narrow{55.0, 0.1};
  EXPECT_GT(damage_probability(wide, 40.0), damage_probability(narrow, 40.0));
  EXPECT_LT(damage_probability(wide, 70.0), damage_probability(narrow, 70.0));
}

TEST(Fragility, Validation) {
  EXPECT_THROW(damage_probability({0.0, 0.25}, 50.0), std::invalid_argument);
  EXPECT_THROW(damage_probability({55.0, -1.0}, 50.0), std::invalid_argument);
}

TEST(Fragility, PeakWindHigherNearTheTrack) {
  const storm::TrackGenerator generator{storm::TrackEnsembleConfig{}};
  const storm::StormTrack track = generator.base_track();
  const geo::EnuProjection proj({21.3, -158.0});
  const storm::HollandWindField field;
  // A point near the track's closest approach vs one far inland/north.
  const double near_track =
      peak_wind_at(track, proj, proj.to_enu({21.25, -158.05}), field, 1800.0);
  const double far_away =
      peak_wind_at(track, proj, proj.to_enu({22.4, -156.8}), field, 1800.0);
  EXPECT_GT(near_track, far_away);
  EXPECT_GT(near_track, 25.0);
  EXPECT_THROW(peak_wind_at(track, proj, {0, 0}, field, 0.0),
               std::invalid_argument);
}

TEST(Fragility, DisabledByDefault) {
  const scada::ScadaTopology topo = scada::oahu_topology();
  const RealizationEngine engine(terrain::make_oahu_terrain(),
                                 topo.exposed_assets(), {});
  const HurricaneRealization r = engine.run(0);
  EXPECT_EQ(r.wind_damage_count(), 0u);
  for (const AssetImpact& impact : r.impacts) {
    EXPECT_DOUBLE_EQ(impact.peak_wind_ms, 0.0);
    EXPECT_FALSE(impact.wind_failed);
  }
}

class FragilityEnabledTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const scada::ScadaTopology topo = scada::oahu_topology();
    RealizationConfig config;
    config.fragility.enabled = true;
    // Fragile grid for test visibility: CAT-2 winds should break things.
    config.fragility.substation = {38.0, 0.25};
    config.fragility.power_plant = {45.0, 0.25};
    engine_ = new RealizationEngine(terrain::make_oahu_terrain(),
                                    topo.exposed_assets(), config);
  }
  static void TearDownTestSuite() { delete engine_; }
  static RealizationEngine* engine_;
};

RealizationEngine* FragilityEnabledTest::engine_ = nullptr;

TEST_F(FragilityEnabledTest, RecordsPeakWindsAtAllAssets) {
  const HurricaneRealization r = engine_->run(0);
  for (const AssetImpact& impact : r.impacts) {
    EXPECT_GT(impact.peak_wind_ms, 5.0) << impact.asset_id;
    EXPECT_LT(impact.peak_wind_ms, 80.0) << impact.asset_id;
  }
}

TEST_F(FragilityEnabledTest, OnlyOutdoorAssetsSufferWindDamage) {
  std::size_t substation_failures = 0;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const HurricaneRealization r = engine_->run(i);
    for (const AssetImpact& impact : r.impacts) {
      if (impact.wind_failed) {
        // Control centers and data centers are wind-hardened facilities.
        EXPECT_EQ(impact.asset_id.find("_cc"), std::string::npos);
        EXPECT_EQ(impact.asset_id.find("_dc"), std::string::npos);
        ++substation_failures;
      }
    }
  }
  // With a deliberately fragile grid and CAT-2 winds, some damage occurs.
  EXPECT_GT(substation_failures, 0u);
}

TEST_F(FragilityEnabledTest, Deterministic) {
  const HurricaneRealization a = engine_->run(7);
  const HurricaneRealization b = engine_->run(7);
  for (std::size_t i = 0; i < a.impacts.size(); ++i) {
    EXPECT_EQ(a.impacts[i].wind_failed, b.impacts[i].wind_failed);
    EXPECT_DOUBLE_EQ(a.impacts[i].peak_wind_ms, b.impacts[i].peak_wind_ms);
  }
}

TEST_F(FragilityEnabledTest, HelpersCountDamage) {
  // Find some realization with damage among the first 40.
  bool found = false;
  for (std::uint64_t i = 0; i < 40 && !found; ++i) {
    const HurricaneRealization r = engine_->run(i);
    if (r.wind_damage_count() > 0) {
      found = true;
      for (const AssetImpact& impact : r.impacts) {
        EXPECT_EQ(r.asset_wind_failed(impact.asset_id), impact.wind_failed);
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ct::surge
