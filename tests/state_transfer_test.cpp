// Checkpointing, state transfer, and rejoin catch-up: the BackoffPolicy /
// state_digest / StateTransferClient building blocks in isolation, then the
// BFT and primary-backup rejoin paths end to end (crash/restart catch-up,
// transfer failure degrading to passive, cold-activation sync).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/bft.h"
#include "sim/network.h"
#include "sim/primary_backup.h"
#include "sim/simulator.h"
#include "sim/state_transfer.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace ct::sim {
namespace {

// ------------------------------------------------------------ BackoffPolicy

TEST(BackoffPolicy, GrowsExponentiallyAndCaps) {
  const BackoffPolicy policy{2.0, 2.0, 16.0, 0.0};
  EXPECT_DOUBLE_EQ(policy.delay(0), 2.0);
  EXPECT_DOUBLE_EQ(policy.delay(1), 4.0);
  EXPECT_DOUBLE_EQ(policy.delay(2), 8.0);
  EXPECT_DOUBLE_EQ(policy.delay(3), 16.0);
  EXPECT_DOUBLE_EQ(policy.delay(10), 16.0);  // capped
}

TEST(BackoffPolicy, CapBelowInitialClampsEveryDelay) {
  const BackoffPolicy policy{5.0, 2.0, 3.0, 0.0};
  EXPECT_DOUBLE_EQ(policy.delay(0), 3.0);
  EXPECT_DOUBLE_EQ(policy.delay(4), 3.0);
}

TEST(BackoffPolicy, JitterIsBoundedAndDeterministic) {
  const BackoffPolicy policy{2.0, 2.0, 30.0, 0.25};
  util::Rng rng_a(7, "backoff");
  util::Rng rng_b(7, "backoff");
  for (int attempt = 0; attempt < 5; ++attempt) {
    const double base = policy.delay(attempt);
    const double jittered = policy.delay(attempt, &rng_a);
    EXPECT_GE(jittered, base);
    EXPECT_LT(jittered, base * 1.25);
    // Same seed, same stream: the schedule replays exactly.
    EXPECT_DOUBLE_EQ(policy.delay(attempt, &rng_b), jittered);
  }
}

// -------------------------------------------------------------- state_digest

TEST(StateDigest, EmptySetHasStableNonNegativeDigest) {
  const std::int64_t empty = state_digest({});
  EXPECT_GE(empty, 0);
  EXPECT_EQ(state_digest({}), empty);
}

TEST(StateDigest, DistinguishesSets) {
  const std::int64_t a = state_digest({1, 2, 3});
  EXPECT_EQ(state_digest({1, 2, 3}), a);
  EXPECT_NE(state_digest({1, 2, 4}), a);
  EXPECT_NE(state_digest({1, 2}), a);
  EXPECT_NE(state_digest({}), a);
}

// ------------------------------------------------------ StateTransferClient

struct TransferFixture {
  explicit TransferFixture(StateTransferOptions options, int matching) {
    client = std::make_unique<StateTransferClient>(
        sim, options, matching,
        StateTransferClient::Callbacks{
            [this](std::int64_t epoch) { request_epochs.push_back(epoch); },
            [this](const StateTransferClient::Result& r) { installs.push_back(r); },
            [this](int rounds) { failed_rounds.push_back(rounds); }});
  }

  Message reply_from(int site, int node, std::int64_t epoch,
                     std::vector<std::int64_t> ids) const {
    std::sort(ids.begin(), ids.end());
    Message msg;
    msg.type = Message::Type::kStateReply;
    msg.sender = {site, node};
    msg.request_id = epoch;
    msg.seq = static_cast<std::int64_t>(ids.size());
    msg.value = state_digest(ids);
    msg.payload = std::move(ids);
    return msg;
  }

  Simulator sim;
  std::vector<std::int64_t> request_epochs;
  std::vector<StateTransferClient::Result> installs;
  std::vector<int> failed_rounds;
  std::unique_ptr<StateTransferClient> client;
};

TEST(StateTransferClient, InstallsOnceEnoughMatchingRepliesArrive) {
  TransferFixture fx({4.0, {2.0, 2.0, 16.0, 0.0}, 4}, 2);
  fx.client->begin();
  ASSERT_EQ(fx.request_epochs.size(), 1u);
  const std::int64_t epoch = fx.request_epochs[0];

  fx.client->on_reply(fx.reply_from(0, 1, epoch, {1, 2, 3}));
  EXPECT_TRUE(fx.client->in_progress());  // one vote is not a certificate
  fx.client->on_reply(fx.reply_from(0, 2, epoch, {1, 2, 3}));

  ASSERT_EQ(fx.installs.size(), 1u);
  EXPECT_EQ(fx.installs[0].ids, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(fx.installs[0].count, 3);
  EXPECT_EQ(fx.installs[0].rounds, 1);
  EXPECT_FALSE(fx.client->in_progress());
  EXPECT_EQ(fx.client->transfers_completed(), 1);
  EXPECT_EQ(fx.client->retry_rounds(), 0);
}

TEST(StateTransferClient, DuplicateSenderDoesNotFormCertificate) {
  TransferFixture fx({4.0, {2.0, 2.0, 16.0, 0.0}, 4}, 2);
  fx.client->begin();
  const std::int64_t epoch = fx.request_epochs[0];
  fx.client->on_reply(fx.reply_from(0, 1, epoch, {1, 2}));
  fx.client->on_reply(fx.reply_from(0, 1, epoch, {1, 2}));  // same sender
  EXPECT_TRUE(fx.installs.empty());
  EXPECT_TRUE(fx.client->in_progress());
}

TEST(StateTransferClient, StaleEpochRepliesAreIgnored) {
  TransferFixture fx({4.0, {2.0, 2.0, 16.0, 0.0}, 4}, 2);
  fx.client->begin();
  const std::int64_t old_epoch = fx.request_epochs[0];
  fx.client->on_reply(fx.reply_from(0, 1, old_epoch, {9}));
  fx.client->begin();  // supersedes: fresh epoch, fresh reply set
  const std::int64_t epoch = fx.request_epochs.back();
  EXPECT_NE(epoch, old_epoch);
  fx.client->on_reply(fx.reply_from(0, 1, old_epoch, {9}));  // stale
  EXPECT_TRUE(fx.installs.empty());
  fx.client->on_reply(fx.reply_from(0, 2, epoch, {4, 5}));
  fx.client->on_reply(fx.reply_from(0, 3, epoch, {4, 5}));
  ASSERT_EQ(fx.installs.size(), 1u);
  EXPECT_EQ(fx.installs[0].ids, (std::vector<std::int64_t>{4, 5}));
}

TEST(StateTransferClient, RetriesWithBackoffThenFails) {
  // Rounds at t=0, 1+0.5=1.5ish: round timeout 1s, backoff 0.5 then 1.0,
  // max 3 rounds -> fail() by t ~= 4.5 with no replies at all.
  TransferFixture fx({1.0, {0.5, 2.0, 4.0, 0.0}, 3}, 2);
  fx.client->begin();
  fx.sim.run_until(10.0);
  EXPECT_EQ(fx.request_epochs.size(), 3u);  // initial + 2 retries
  // All rounds share the transfer's epoch: replies can arrive across rounds.
  EXPECT_EQ(fx.request_epochs[0], fx.request_epochs[2]);
  ASSERT_EQ(fx.failed_rounds.size(), 1u);
  EXPECT_EQ(fx.failed_rounds[0], 3);
  EXPECT_EQ(fx.client->transfers_failed(), 1);
  EXPECT_EQ(fx.client->retry_rounds(), 2);
  EXPECT_FALSE(fx.client->in_progress());
}

TEST(StateTransferClient, RepliesAccumulateAcrossRounds) {
  TransferFixture fx({1.0, {0.5, 2.0, 4.0, 0.0}, 4}, 2);
  fx.client->begin();
  const std::int64_t epoch = fx.request_epochs[0];
  // One reply in round 1, the matching one only after the first timeout.
  fx.client->on_reply(fx.reply_from(0, 1, epoch, {7, 8}));
  fx.sim.schedule_at(2.0, [&] {
    fx.client->on_reply(fx.reply_from(0, 2, epoch, {7, 8}));
  });
  fx.sim.run_until(10.0);
  ASSERT_EQ(fx.installs.size(), 1u);
  EXPECT_GE(fx.installs[0].rounds, 2);
  EXPECT_EQ(fx.client->transfers_failed(), 0);
  EXPECT_GT(fx.client->max_catchup_s(), 0.0);
}

TEST(StateTransferClient, AbortCancelsWithoutCountingFailure) {
  TransferFixture fx({1.0, {0.5, 2.0, 4.0, 0.0}, 2}, 2);
  fx.client->begin();
  fx.client->abort();
  fx.sim.run_until(10.0);
  EXPECT_TRUE(fx.failed_rounds.empty());
  EXPECT_TRUE(fx.installs.empty());
  EXPECT_EQ(fx.client->transfers_failed(), 0);
  EXPECT_EQ(fx.request_epochs.size(), 1u);  // no retry rounds after abort
}

TEST(StateTransferClient, MixedCertificatesInstallMajorityIds) {
  // Two replies agree on the certificate; a third (stale peer) disagrees.
  // Only ids vouched for by >= matching_needed of the matching replies
  // install.
  TransferFixture fx({4.0, {2.0, 2.0, 16.0, 0.0}, 4}, 2);
  fx.client->begin();
  const std::int64_t epoch = fx.request_epochs[0];
  fx.client->on_reply(fx.reply_from(0, 1, epoch, {10}));  // stale peer
  fx.client->on_reply(fx.reply_from(0, 2, epoch, {1, 2, 3}));
  fx.client->on_reply(fx.reply_from(0, 3, epoch, {1, 2, 3}));
  ASSERT_EQ(fx.installs.size(), 1u);
  EXPECT_EQ(fx.installs[0].ids, (std::vector<std::int64_t>{1, 2, 3}));
}

// ----------------------------------------------------------- BFT end to end

struct BftHarness {
  explicit BftHarness(int n, BftOptions opts = {}, NetworkOptions nopts = {})
      : options(opts), net(sim, {n, 2}, nopts) {
    std::vector<NodeAddr> group;
    for (int i = 0; i < n; ++i) group.push_back({0, i});
    WorkloadOptions wopts;
    wopts.request_interval_s = 1.0;
    wopts.replies_needed = options.f + 1;
    client = std::make_unique<ClientWorkload>(sim, net, NodeAddr{1, 0}, wopts);
    client->set_targets(group);
    for (std::size_t i = 0; i < group.size(); ++i) {
      replicas.push_back(std::make_unique<BftReplica>(
          sim, net, group[i], group, static_cast<int>(i), options, true));
    }
  }

  void run(double horizon) {
    for (auto& r : replicas) r->start();
    client->start(0.0, horizon);
    sim.run_until(horizon);
  }

  BftOptions options;
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<BftReplica>> replicas;
  std::unique_ptr<ClientWorkload> client;
};

TEST(BftCheckpoint, CheckpointsBecomeStableAndGcOrderingState) {
  BftOptions opts;
  opts.checkpoint_interval = 4;
  BftHarness h(6, opts);
  h.run(30.0);
  for (auto& r : h.replicas) {
    EXPECT_GT(r->checkpoints_formed(), 0) << "replica lacks stable checkpoint";
    EXPECT_GT(r->stable_checkpoint_count(), 0);
    // Stability lags the tip by at most a couple of intervals.
    EXPECT_GE(r->stable_checkpoint_count() + 3 * opts.checkpoint_interval,
              static_cast<std::int64_t>(r->executed_count()));
  }
}

TEST(BftCheckpoint, CrashedReplicaCatchesUpToGroupExecutedCount) {
  BftOptions opts;
  opts.checkpoint_interval = 4;
  opts.state_transfer = {2.0, {1.0, 2.0, 8.0, 0.0}, 4};
  BftHarness h(6, opts);
  const NodeAddr victim{0, 2};
  h.sim.schedule_at(5.0, [&] { h.net.set_node_crashed(victim, true); });
  h.sim.schedule_at(20.0, [&] {
    h.net.set_node_crashed(victim, false);
    h.replicas[2]->on_restart();
  });
  h.run(45.0);
  EXPECT_FALSE(h.client->safety_violated());
  EXPECT_GE(h.replicas[2]->rejoin_stats().rejoins, 1);
  EXPECT_FALSE(h.replicas[2]->catching_up());
  EXPECT_FALSE(h.replicas[2]->passive());
  // Acceptance: the restarted replica's executed count converges to the
  // group's (late replies for the last in-flight requests may be pending).
  const std::size_t peer = h.replicas[1]->executed_count();
  EXPECT_GT(peer, 30u);
  EXPECT_GE(h.replicas[2]->executed_count() + 3, peer);
}

TEST(BftCheckpoint, FailedTransferDegradesToPassiveWithoutWedgingGroup) {
  BftOptions opts;
  opts.checkpoint_interval = 4;
  opts.state_transfer = {1.0, {0.5, 2.0, 2.0, 0.0}, 2};
  NetworkOptions nopts;
  // The recovery plane is dead: every checkpoint / state-transfer message
  // is dropped, so the restarted replica's transfer must exhaust its
  // budget.
  nopts.control_loss_probability = 1.0;
  BftHarness h(6, opts, nopts);
  const NodeAddr victim{0, 3};
  h.sim.schedule_at(5.0, [&] { h.net.set_node_crashed(victim, true); });
  h.sim.schedule_at(12.0, [&] {
    h.net.set_node_crashed(victim, false);
    h.replicas[3]->on_restart();
  });
  h.run(40.0);
  EXPECT_TRUE(h.replicas[3]->passive());
  EXPECT_EQ(h.replicas[3]->rejoin_stats().failures, 1);
  EXPECT_GT(h.net.drop_counters().transfer_loss, 0u);
  // Acceptance: the group is not wedged — the other five keep serving.
  EXPECT_FALSE(h.client->safety_violated());
  EXPECT_GT(h.client->success_fraction(20.0, 39.0), 0.9);
}

TEST(BftCheckpoint, RecoveryRotationCatchesUpEveryReplica) {
  BftOptions opts;
  opts.checkpoint_interval = 4;
  opts.recovery_period_s = 8.0;
  opts.recovery_duration_s = 3.0;
  BftHarness h(6, opts);
  std::vector<BftReplica*> members;
  for (auto& r : h.replicas) members.push_back(r.get());
  RecoveryScheduler scheduler(h.sim, members, opts);
  scheduler.start(4.0);
  h.run(60.0);
  EXPECT_FALSE(h.client->safety_violated());
  EXPECT_GT(h.client->success_fraction(0.0, 59.0), 0.85);
  int rejoins = 0;
  for (auto& r : h.replicas) {
    rejoins += r->rejoin_stats().rejoins;
    EXPECT_FALSE(r->passive());
  }
  // Every completed recovery window ended with a catch-up transfer.
  EXPECT_GE(rejoins, 5);
}

// ------------------------------------------------- primary-backup end to end

struct PbHarness {
  PbHarness(int sites, bool with_controller, NetworkOptions nopts = {})
      : net(sim, [&] {
          std::vector<int> n(static_cast<std::size_t>(sites), 2);
          n.push_back(2);  // client site
          return n;
        }(), nopts) {
    options.activation_delay_s = 30.0;
    options.controller_outage_threshold_s = 6.0;
    options.controller_check_interval_s = 1.0;
    options.activation_retry = {2.0, 2.0, 8.0, 0.0};
    WorkloadOptions wopts;
    wopts.request_interval_s = 1.0;
    wopts.replies_needed = 1;
    client = std::make_unique<ClientWorkload>(
        sim, net, NodeAddr{sites, 0}, wopts);
    std::vector<NodeAddr> targets;
    for (int s = 0; s < sites; ++s) {
      for (int n = 0; n < 2; ++n) {
        targets.push_back({s, n});
        replicas.push_back(std::make_unique<PbReplica>(
            sim, net, NodeAddr{s, n}, options, /*active=*/s == 0));
      }
    }
    client->set_targets(std::move(targets));
    if (with_controller) {
      controller = std::make_unique<FailoverController>(
          sim, net, NodeAddr{sites, 1}, *client, /*backup_site=*/1, options);
    }
  }

  void run(double horizon) {
    for (auto& r : replicas) r->start();
    client->start(0.0, horizon);
    if (controller) controller->start(0.0, horizon);
    sim.run_until(horizon);
  }

  Simulator sim;
  Network net;
  PbOptions options;
  std::vector<std::unique_ptr<PbReplica>> replicas;
  std::unique_ptr<ClientWorkload> client;
  std::unique_ptr<FailoverController> controller;
};

TEST(PbSync, ColdActivationSyncsBeforeServing) {
  PbHarness h(2, true);
  h.sim.schedule_at(10.0, [&] { h.net.set_site_down(0, true); });
  h.run(90.0);
  EXPECT_TRUE(h.replicas[2]->site_active());
  EXPECT_TRUE(h.replicas[2]->is_primary());
  EXPECT_FALSE(h.replicas[2]->syncing());
  EXPECT_EQ(h.replicas[2]->rejoin_stats().rejoins, 1);
  EXPECT_GT(h.client->success_fraction(60.0, 85.0), 0.9);
}

TEST(PbSync, RestartedPrimaryResyncsThenServes) {
  PbHarness h(1, false);
  h.sim.schedule_at(10.0, [&] { h.net.set_node_crashed({0, 0}, true); });
  h.sim.schedule_at(12.0, [&] {
    h.net.set_node_crashed({0, 0}, false);
    h.replicas[0]->on_restart();
  });
  h.run(30.0);
  EXPECT_TRUE(h.replicas[0]->is_primary());
  EXPECT_FALSE(h.replicas[0]->syncing());
  EXPECT_EQ(h.replicas[0]->rejoin_stats().rejoins, 1);
  // Brief crash + sync, then service resumes; executed log survives.
  EXPECT_GT(h.client->success_fraction(15.0, 29.0), 0.9);
  EXPECT_GT(h.replicas[0]->executed_count(), 20u);
}

TEST(PbSync, PromotionSyncFailsOpenWhenNoPeerAnswers) {
  NetworkOptions nopts;
  nopts.control_loss_probability = 1.0;  // sync can never complete
  PbHarness h(1, false, nopts);
  h.sim.schedule_at(10.0, [&] { h.replicas[0]->set_compromised(true); });
  h.run(40.0);
  // The standby promotes, its sync exhausts the (tight) budget, and it
  // serves from the local log instead of wedging the site.
  EXPECT_TRUE(h.replicas[1]->is_primary());
  EXPECT_FALSE(h.replicas[1]->syncing());
  EXPECT_EQ(h.replicas[1]->rejoin_stats().failures, 1);
  EXPECT_GT(h.replicas[1]->executed_count(), 0u);
}

}  // namespace
}  // namespace ct::sim
