// Tests for the probabilistic attacker-power model (the paper's §VII
// future-work extension) and the exact-mixture analysis built on it.
#include <gtest/gtest.h>

#include "core/attacker_power.h"
#include "core/evaluator.h"
#include "core/pipeline.h"
#include "scada/configuration.h"
#include "threat/probabilistic_attacker.h"
#include "util/rng.h"

namespace ct::threat {
namespace {

TEST(BinomialPmf, MatchesKnownValues) {
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(1, 1, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(binomial_pmf(1, 0, 0.25), 0.75);
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_pmf(3, 5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(3, -1, 0.5), 0.0);
}

TEST(BinomialPmf, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 4, 1.0), 0.0);
}

TEST(BinomialPmf, SumsToOne) {
  for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    double total = 0.0;
    for (int k = 0; k <= 10; ++k) total += binomial_pmf(10, k, p);
    EXPECT_NEAR(total, 1.0, 1e-12) << "p=" << p;
  }
}

TEST(AttackerPower, ValidationRejectsBadInputs) {
  AttackerPower bad;
  bad.intrusion_success = 1.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = AttackerPower{};
  bad.isolation_attempts = -1;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  EXPECT_NO_THROW(validate(AttackerPower{}));
}

TEST(AttackerPower, CapabilityProbabilityFactorizes) {
  AttackerPower power;
  power.intrusion_attempts = 2;
  power.isolation_attempts = 1;
  power.intrusion_success = 0.5;
  power.isolation_success = 0.25;
  EXPECT_NEAR(capability_probability(power, 1, 1), 0.5 * 0.25, 1e-12);
  EXPECT_NEAR(capability_probability(power, 0, 0), 0.25 * 0.75, 1e-12);
  double total = 0.0;
  for (int i = 0; i <= 2; ++i) {
    for (int s = 0; s <= 1; ++s) total += capability_probability(power, i, s);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(AttackerPower, SampleMatchesExactDistribution) {
  AttackerPower power;
  power.intrusion_attempts = 1;
  power.isolation_attempts = 1;
  power.intrusion_success = 0.3;
  power.isolation_success = 0.7;
  util::Rng rng(101);
  const int n = 50000;
  int intrusions = 0;
  int isolations = 0;
  for (int i = 0; i < n; ++i) {
    const AttackerCapability c = sample_capability(power, rng);
    intrusions += c.intrusions;
    isolations += c.isolations;
  }
  EXPECT_NEAR(static_cast<double>(intrusions) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(isolations) / n, 0.7, 0.01);
}

TEST(ProbabilisticAttacker, FullPowerEqualsWorstCase) {
  const scada::Configuration config = scada::make_config_6_6("p", "b");
  SystemState base;
  base.site_status = {SiteStatus::kUp, SiteStatus::kUp};
  base.intrusions = {0, 0};

  AttackerPower certain;  // defaults: 1 attempt each, success 1.0
  const ProbabilisticAttacker attacker(certain);
  util::Rng rng(5);
  const SystemState probabilistic = attacker.attack(config, base, rng);
  const SystemState worst =
      GreedyWorstCaseAttacker{}.attack(config, base, {1, 1});
  EXPECT_EQ(probabilistic, worst);
}

TEST(ProbabilisticAttacker, ZeroPowerLeavesStateUntouched) {
  const scada::Configuration config = scada::make_config_2("p");
  SystemState base;
  base.site_status = {SiteStatus::kUp};
  base.intrusions = {0};
  AttackerPower powerless;
  powerless.intrusion_success = 0.0;
  powerless.isolation_success = 0.0;
  const ProbabilisticAttacker attacker(powerless);
  util::Rng rng(6);
  EXPECT_EQ(attacker.attack(config, base, rng), base);
}

}  // namespace
}  // namespace ct::threat

namespace ct::core {
namespace {

using threat::OperationalState;

surge::HurricaneRealization realization_with(
    std::vector<std::string> failed) {
  surge::HurricaneRealization r;
  for (std::string& id : failed) {
    surge::AssetImpact impact;
    impact.asset_id = std::move(id);
    impact.failed = true;
    r.impacts.push_back(std::move(impact));
  }
  return r;
}

TEST(OutcomeMixture, NormalizesWeights) {
  OutcomeMixture m;
  m.add(OperationalState::kGreen, 0.7);
  m.add(OperationalState::kGray, 0.3);
  EXPECT_NEAR(m.probability(OperationalState::kGreen), 0.7, 1e-12);
  EXPECT_NEAR(m.probability(OperationalState::kGray), 0.3, 1e-12);
  EXPECT_NEAR(m.expected_badness(), 0.3 * 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(OutcomeMixture{}.probability(OperationalState::kRed), 0.0);
}

TEST(AnalyzeWithPower, FullPowerReproducesWorstCaseScenario) {
  const auto config = scada::make_config_2_2("hon", "waiau");
  const std::vector<surge::HurricaneRealization> batch = {
      realization_with({}), realization_with({"hon"}),
      realization_with({"hon", "waiau"})};

  threat::AttackerPower full;  // 1 attempt each, p = 1
  const PowerScenarioResult power_result =
      analyze_with_power(config, full, batch);

  const AnalysisPipeline pipeline;
  const ScenarioResult worst = pipeline.analyze(
      config, threat::ThreatScenario::kHurricaneIntrusionIsolation, batch);

  for (const OperationalState s :
       {OperationalState::kGreen, OperationalState::kOrange,
        OperationalState::kRed, OperationalState::kGray}) {
    EXPECT_NEAR(power_result.outcomes.probability(s),
                worst.outcomes.probability(s), 1e-12);
  }
}

TEST(AnalyzeWithPower, ZeroPowerReproducesHurricaneOnly) {
  const auto config = scada::make_config_2_2("hon", "waiau");
  const std::vector<surge::HurricaneRealization> batch = {
      realization_with({}), realization_with({"hon"})};

  threat::AttackerPower none;
  none.intrusion_success = 0.0;
  none.isolation_success = 0.0;
  const PowerScenarioResult result = analyze_with_power(config, none, batch);

  const AnalysisPipeline pipeline;
  const ScenarioResult hurricane =
      pipeline.analyze(config, threat::ThreatScenario::kHurricane, batch);
  for (const OperationalState s :
       {OperationalState::kGreen, OperationalState::kOrange,
        OperationalState::kRed, OperationalState::kGray}) {
    EXPECT_NEAR(result.outcomes.probability(s),
                hurricane.outcomes.probability(s), 1e-12);
  }
}

TEST(AnalyzeWithPower, HalfPowerInterpolates) {
  const auto config = scada::make_config_2("hon");
  const std::vector<surge::HurricaneRealization> batch = {realization_with({})};
  threat::AttackerPower half;
  half.intrusion_success = 0.5;
  half.isolation_success = 0.0;
  const PowerScenarioResult result = analyze_with_power(config, half, batch);
  // Site up; with probability 0.5 the intrusion lands (gray), else green.
  EXPECT_NEAR(result.outcomes.probability(OperationalState::kGray), 0.5,
              1e-12);
  EXPECT_NEAR(result.outcomes.probability(OperationalState::kGreen), 0.5,
              1e-12);
}

TEST(AnalyzeWithPower, GrayProbabilityMonotonicInPower) {
  const auto config = scada::make_config_2("hon");
  const std::vector<surge::HurricaneRealization> batch = {
      realization_with({}), realization_with({"hon"})};
  double previous = -1.0;
  for (const double p : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    threat::AttackerPower power;
    power.intrusion_success = p;
    power.isolation_success = 0.0;
    const auto result = analyze_with_power(config, power, batch);
    const double gray = result.outcomes.probability(OperationalState::kGray);
    EXPECT_GE(gray, previous);
    previous = gray;
  }
}

TEST(AnalyzeWithPower, MultipleAttemptsStrictlyStronger) {
  // Against "6" (f=1), one intrusion attempt can never go gray, but two
  // attempts at p<1 can.
  const auto config = scada::make_config_6("hon");
  const std::vector<surge::HurricaneRealization> batch = {realization_with({})};
  threat::AttackerPower one;
  one.intrusion_attempts = 1;
  one.intrusion_success = 0.9;
  threat::AttackerPower two = one;
  two.intrusion_attempts = 2;
  const double gray_one = analyze_with_power(config, one, batch)
                              .outcomes.probability(OperationalState::kGray);
  const double gray_two = analyze_with_power(config, two, batch)
                              .outcomes.probability(OperationalState::kGray);
  EXPECT_DOUBLE_EQ(gray_one, 0.0);
  EXPECT_NEAR(gray_two, 0.81, 1e-12);
}

TEST(AnalyzeAllWithPower, CoversConfigs) {
  const auto configs = scada::paper_configurations("hon", "waiau", "dc");
  const std::vector<surge::HurricaneRealization> batch = {realization_with({})};
  const auto results =
      analyze_all_with_power(configs, threat::AttackerPower{}, batch);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[4].config_name, "6+6+6");
}

}  // namespace
}  // namespace ct::core
