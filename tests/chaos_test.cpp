// ChaosRunner tests: a seeded benign sweep must keep every run's Table-I
// color equal to the analytic evaluator's with zero invariant violations,
// and an injected f+1 compromise must be detected and shrunk to a minimal
// replayable reproducer.
#include <gtest/gtest.h>

#include "core/chaos.h"
#include "core/evaluator.h"
#include "scada/configuration.h"
#include "sim/fault_injector.h"
#include "threat/scenario.h"
#include "threat/system_state.h"

namespace ct::core {
namespace {

using threat::OperationalState;
using threat::ThreatScenario;

ChaosOptions small_sweep_options() {
  ChaosOptions options;
  options.plans = 5;  // the ≥50-plan acceptance sweep lives in bench_chaos
  return options;
}

TEST(Chaos, BenignSweepIsCleanOnPrimaryBackup) {
  const ChaosRunner runner(small_sweep_options());
  const ChaosReport report = runner.sweep(scada::make_config_2_2("p", "b"));
  EXPECT_EQ(report.plans_run, 5);
  EXPECT_EQ(report.runs, 5 * 4);  // plans x scenarios
  EXPECT_TRUE(report.ok()) << report.findings.size() << " finding(s), first: "
                           << report.findings.front().replay_schedule;
  // The plans actually impaired the WAN — this was not a vacuous pass.
  EXPECT_GT(report.total_duplicates, 0u);
}

TEST(Chaos, BenignSweepIsCleanOnBft) {
  const ChaosRunner runner(small_sweep_options());
  const ChaosReport report = runner.sweep(scada::make_config_6("p"));
  EXPECT_TRUE(report.ok()) << report.findings.size() << " finding(s), first: "
                           << report.findings.front().replay_schedule;
  EXPECT_EQ(report.runs, 5 * 4);
}

TEST(Chaos, RestartHeavySweepIsCleanAndExercisesRejoins) {
  ChaosOptions options = small_sweep_options();
  options.plan_style = ChaosOptions::PlanStyle::kRestartHeavy;
  const ChaosRunner runner(options);
  const ChaosReport report = runner.sweep(scada::make_config_6("p"));
  EXPECT_TRUE(report.ok()) << report.findings.size() << " finding(s), first: "
                           << report.findings.front().replay_schedule;
  EXPECT_EQ(report.runs, 5 * 4);
  // Restart-heavy plans must actually drive the catch-up machinery.
  EXPECT_GT(report.total_rejoins, 0);
}

TEST(Chaos, RestartHeavySweepIsCleanOnPrimaryBackup) {
  ChaosOptions options = small_sweep_options();
  options.plan_style = ChaosOptions::PlanStyle::kRestartHeavy;
  const ChaosRunner runner(options);
  const ChaosReport report = runner.sweep(scada::make_config_2_2("p", "b"));
  EXPECT_TRUE(report.ok()) << report.findings.size() << " finding(s), first: "
                           << report.findings.front().replay_schedule;
}

class CompromiseProbe
    : public ::testing::TestWithParam<scada::Configuration> {};

TEST_P(CompromiseProbe, DetectsAndShrinksToMinimalPlan) {
  const scada::Configuration config = GetParam();
  const ChaosRunner runner(small_sweep_options());
  const ChaosFinding finding = runner.compromise_probe(config);

  // Detection: a clean system is green analytically, but f+1 compromised
  // replicas forge a quorum and the DES observes the compromise.
  EXPECT_EQ(finding.expected, OperationalState::kGreen);
  EXPECT_EQ(finding.observed, OperationalState::kGray);

  // Shrinking strips the decoy crash and every redundant event, leaving
  // exactly the f+1 compromises that cause the violation.
  const int threshold = config.safety_threshold();
  ASSERT_EQ(finding.minimal_plan.events.size(),
            static_cast<std::size_t>(threshold));
  for (const sim::FaultEvent& e : finding.minimal_plan.events) {
    EXPECT_EQ(e.kind, sim::FaultKind::kCompromise);
  }

  // The printed schedule replays to the same minimal plan.
  EXPECT_EQ(sim::FaultPlan::parse_schedule(finding.replay_schedule),
            finding.minimal_plan);
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, CompromiseProbe,
    ::testing::Values(scada::make_config_2("p"), scada::make_config_6("p")),
    [](const ::testing::TestParamInfo<scada::Configuration>& info) {
      return info.param.name == "2" ? "c2" : "c6";
    });

TEST(Chaos, ShrinkKeepsOnlyLoadBearingEvents) {
  const scada::Configuration config = scada::make_config_2("p");
  const ChaosRunner runner(small_sweep_options());

  threat::SystemState clean;
  clean.site_status.assign(config.sites.size(), threat::SiteStatus::kUp);
  clean.intrusions.assign(config.sites.size(), 0);
  const OperationalState expected = evaluate(config, clean);

  sim::FaultPlan plan;
  plan.duplicate_probability = 0.05;
  plan.events.push_back(
      {sim::FaultKind::kCompromise, 120.0, 0.0, {0, 0}, 0, 0, 1.0});
  plan.events.push_back(
      {sim::FaultKind::kSkew, 30.0, 20.0, {0, 1}, 0, 0, 1.2});
  plan.events.push_back(
      {sim::FaultKind::kCrash, 40.0, 5.0, {0, 1}, 0, 0, 1.0});

  const sim::FaultPlan minimal =
      runner.shrink(config, clean, expected, plan);
  ASSERT_EQ(minimal.events.size(), 1u);
  EXPECT_EQ(minimal.events[0].kind, sim::FaultKind::kCompromise);
  EXPECT_EQ(minimal.duplicate_probability, 0.0);
  EXPECT_EQ(minimal.reorder_probability, 0.0);
}

}  // namespace
}  // namespace ct::core
