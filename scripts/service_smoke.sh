#!/usr/bin/env bash
# Serving-mode smoke: boots ctserved on a Unix socket, runs the same
# analysis remotely (twice) and locally, and holds the protocol's three
# user-visible contracts:
#
#   1. `ctctl --connect` stdout is byte-identical to local execution;
#   2. the second identical request is answered entirely from the shared
#      result cache (the whole point of serving mode);
#   3. SIGTERM drains gracefully (exit 0 after finishing admitted work).
#
# Usage: scripts/service_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build=${1:-build}
ctctl="$build/examples/ctctl"
ctserved="$build/examples/ctserved"
work=$(mktemp -d /tmp/ct_service_smoke.XXXXXX)
sock="$work/ct.sock"
server_pid=

cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

# Separate cache roots: the local reference run must not be able to warm
# the server (or vice versa), or the cache-warm assertion proves nothing.
mkdir -p "$work/server-cache" "$work/local-cache"

CT_CACHE_DIR="$work/server-cache" "$ctserved" --listen "unix:$sock" \
    > "$work/server.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  [[ -S "$sock" ]] && break
  kill -0 "$server_pid" 2>/dev/null || {
    echo "FAIL: ctserved died on startup"; cat "$work/server.log"; exit 1; }
  sleep 0.1
done
[[ -S "$sock" ]] || { echo "FAIL: socket never appeared"; exit 1; }

run_flags=(--realizations 200)

echo "== remote analyze (cold)"
"$ctctl" analyze --connect "unix:$sock" "${run_flags[@]}" \
    > "$work/remote-cold.txt" 2> "$work/remote-cold.err"
if grep -q "served entirely" "$work/remote-cold.err"; then
  echo "FAIL: cold request claimed to be cache-served"; exit 1
fi

echo "== remote analyze (must be cache-warm)"
"$ctctl" analyze --connect "unix:$sock" "${run_flags[@]}" \
    > "$work/remote-warm.txt" 2> "$work/remote-warm.err"
grep -q "served entirely from the server's result cache" \
    "$work/remote-warm.err" \
    || { echo "FAIL: second identical request was not cache-warm"; exit 1; }

echo "== local reference run"
CT_CACHE_DIR="$work/local-cache" "$ctctl" analyze "${run_flags[@]}" \
    > "$work/local.txt" 2>/dev/null

echo "== byte-identity: remote(cold) vs local"
diff -u "$work/local.txt" "$work/remote-cold.txt"
echo "== byte-identity: remote(warm) vs local"
diff -u "$work/local.txt" "$work/remote-warm.txt"

echo "== downtime report over the same socket"
"$ctctl" downtime --connect "unix:$sock" "${run_flags[@]}" \
    > "$work/remote-downtime.txt" 2>/dev/null
CT_CACHE_DIR="$work/local-cache" "$ctctl" downtime "${run_flags[@]}" \
    > "$work/local-downtime.txt" 2>/dev/null
diff -u "$work/local-downtime.txt" "$work/remote-downtime.txt"

echo "== server counters"
"$ctctl" stats --connect "unix:$sock" | tee "$work/stats.txt"
grep -Eq "completed[| ]+\|? *3" "$work/stats.txt" \
    || { echo "FAIL: expected 3 completed requests in stats"; exit 1; }

echo "== graceful drain on SIGTERM"
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=
[[ "$rc" -eq 0 ]] || { echo "FAIL: drain exited $rc"; cat "$work/server.log"; exit 1; }
grep -q "stopped" "$work/server.log" \
    || { echo "FAIL: no clean-shutdown marker in server log"; exit 1; }

echo "service smoke OK"
