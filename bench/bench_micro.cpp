// Microbenchmarks (google-benchmark) for the framework's hot paths: wind
// sampling, the surge envelope, a full hurricane realization, the analysis
// pipeline, the evaluators, and the ensemble runtime (task-pool dispatch,
// content digests, parallel outcome counting). These bound the cost of
// scaling the methodology (more realizations, finer meshes, larger
// ensembles).
//
// Before running the registered benchmarks, main() times one small
// end-to-end sweep serially and on the pool and merges the measurement
// into BENCH_runtime.json (same record format as the figure benches).
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <vector>

#include "core/evaluator.h"
#include "core/pipeline.h"
#include "figure_bench.h"
#include "mesh/coastal_builder.h"
#include "runtime/ensemble_runner.h"
#include "runtime/task_pool.h"
#include "scada/oahu.h"
#include "storm/generator.h"
#include "storm/holland.h"
#include "surge/realization.h"
#include "surge/surge_model.h"
#include "terrain/oahu.h"
#include "threat/attacker.h"
#include "util/strings.h"

using namespace ct;

namespace {

const terrain::Terrain& oahu() {
  static const auto terrain = terrain::make_oahu_terrain();
  return *terrain;
}

const surge::RealizationEngine& engine() {
  static const surge::RealizationEngine instance(
      terrain::make_oahu_terrain(), scada::oahu_topology().exposed_assets(),
      surge::RealizationConfig{});
  return instance;
}

runtime::EnsembleOptions runner_options(unsigned jobs, bool cache) {
  runtime::EnsembleOptions options;
  options.jobs = jobs;
  options.cache = cache;
  return options;
}

void BM_HollandWindSample(benchmark::State& state) {
  const storm::HollandWindField field;
  storm::VortexParams vortex;
  vortex.central_pressure_pa = 96800.0;
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Vec2 point{static_cast<double>(i % 100) * 1000.0, 20000.0};
    benchmark::DoNotOptimize(field.sample(vortex, {0, 0}, {0, 6}, point));
    ++i;
  }
}
BENCHMARK(BM_HollandWindSample);

void BM_TerrainElevation(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Vec2 p{static_cast<double>(i % 200) * 200.0 - 20000.0,
                      static_cast<double>(i % 97) * 300.0 - 15000.0};
    benchmark::DoNotOptimize(oahu().elevation(p));
    ++i;
  }
}
BENCHMARK(BM_TerrainElevation);

void BM_CoastalMeshBuild(benchmark::State& state) {
  mesh::CoastalMeshConfig config;
  config.shore_spacing_m = 4000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::build_coastal_mesh(oahu(), config));
  }
}
BENCHMARK(BM_CoastalMeshBuild)->Unit(benchmark::kMillisecond);

void BM_SurgeEnvelope(benchmark::State& state) {
  const auto cm = mesh::build_coastal_mesh(oahu(), mesh::CoastalMeshConfig{});
  const storm::TrackGenerator generator{storm::TrackEnsembleConfig{}};
  const storm::StormTrack track = generator.generate(1, 0);
  const surge::SurgeSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.max_envelope(cm, track, oahu().projection()));
  }
}
BENCHMARK(BM_SurgeEnvelope)->Unit(benchmark::kMillisecond);

void BM_FullRealization(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine().run(i++));
  }
}
BENCHMARK(BM_FullRealization)->Unit(benchmark::kMillisecond);

void BM_PipelineOutcome(benchmark::State& state) {
  const auto realization = engine().run(0);
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.outcome_for(
        configs[i % configs.size()],
        threat::ThreatScenario::kHurricaneIntrusionIsolation, realization));
    ++i;
  }
}
BENCHMARK(BM_PipelineOutcome);

void BM_Evaluator(benchmark::State& state) {
  const auto config = scada::make_config_6_6_6("p", "b", "d");
  threat::SystemState s;
  s.site_status = {threat::SiteStatus::kUp, threat::SiteStatus::kIsolated,
                   threat::SiteStatus::kUp};
  s.intrusions = {1, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate(config, s));
  }
}
BENCHMARK(BM_Evaluator);

void BM_GreedyAttack666(benchmark::State& state) {
  const auto config = scada::make_config_6_6_6("p", "b", "d");
  threat::SystemState base;
  base.site_status.assign(3, threat::SiteStatus::kUp);
  base.intrusions.assign(3, 0);
  const threat::GreedyWorstCaseAttacker attacker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacker.attack(config, base, {1, 1}));
  }
}
BENCHMARK(BM_GreedyAttack666);

// --- ensemble runtime -------------------------------------------------------

/// Pure dispatch overhead of the work-stealing pool: trivial per-element
/// work, so the numbers are dominated by queueing, stealing, and the batch
/// barrier. Arg = worker threads (1 = the inline serial path).
void BM_TaskPoolDispatch(benchmark::State& state) {
  runtime::TaskPool pool(static_cast<unsigned>(state.range(0)));
  std::vector<std::uint64_t> out(1 << 14);
  for (auto _ : state) {
    pool.parallel_for_each(out.size(), 64, [&](std::size_t i) {
      out[i] = i * 0x9e3779b97f4a7c15ull;
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TaskPoolDispatch)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

/// Content digest of a realization set — the cache-key cost a sweep pays
/// even on a hit, so it has to stay far below regeneration cost.
void BM_DigestRealizations(benchmark::State& state) {
  static const std::vector<surge::HurricaneRealization> rels = [] {
    std::vector<surge::HurricaneRealization> r;
    for (std::uint64_t i = 0; i < 8; ++i) r.push_back(engine().run(i));
    return r;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::EnsembleRunner::digest_realizations(rels));
  }
}
BENCHMARK(BM_DigestRealizations);

/// Outcome counting over a pre-generated ensemble, cache off — isolates the
/// map_reduce sharding from realization generation. Arg = jobs.
void BM_EnsembleCount(benchmark::State& state) {
  static const std::vector<surge::HurricaneRealization> rels = [] {
    runtime::EnsembleRunner serial(runner_options(1, false));
    return serial.generate(engine(), 64);
  }();
  const auto config = scada::make_config_6_6_6(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  runtime::EnsembleRunner runner(
      runner_options(static_cast<unsigned>(state.range(0)), false));
  const auto outcome = [&](const surge::HurricaneRealization& r) {
    return static_cast<int>(pipeline.outcome_for(
        config, threat::ThreatScenario::kHurricaneIntrusionIsolation, r));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.count_outcomes(rels, outcome, ""));
  }
}
BENCHMARK(BM_EnsembleCount)->Arg(1)->Arg(8)->Unit(benchmark::kMicrosecond);

/// Times one small end-to-end sweep (all five paper configurations, one
/// compound scenario) serial vs pooled vs cache-warm and merges the record
/// into BENCH_runtime.json.
bench::RuntimeBenchRecord micro_runtime_record() {
  const std::size_t n = std::min<std::size_t>(bench::bench_realizations(), 200);
  const unsigned jobs = bench::bench_jobs();
  const auto scenario = threat::ThreatScenario::kHurricaneIntrusionIsolation;
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;

  runtime::EnsembleRunner serial(runner_options(1, false));
  const std::vector<surge::HurricaneRealization> rels =
      serial.generate(engine(), n);
  const std::string digest = runtime::EnsembleRunner::digest_realizations(rels);

  const auto timed = [&](auto&& analyze) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<core::ScenarioResult> results;
    for (const auto& config : configs) results.push_back(analyze(config));
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    return std::pair(std::move(results), seconds);
  };

  const auto [serial_results, serial_s] = timed([&](const auto& config) {
    return pipeline.analyze(config, scenario, rels);
  });

  runtime::EnsembleRunner pooled(runner_options(jobs, true));
  const auto [parallel_results, parallel_s] = timed([&](const auto& config) {
    return pipeline.analyze(config, scenario, rels, pooled, digest);
  });
  const auto cold_stats = pooled.cache_stats();
  const auto [warm_results, warm_s] = timed([&](const auto& config) {
    return pipeline.analyze(config, scenario, rels, pooled, digest);
  });
  const auto stats = pooled.cache_stats();

  const auto identical = [&](const std::vector<core::ScenarioResult>& other) {
    for (std::size_t i = 0; i < serial_results.size(); ++i) {
      for (const auto s :
           {threat::OperationalState::kGreen, threat::OperationalState::kOrange,
            threat::OperationalState::kRed, threat::OperationalState::kGray}) {
        if (serial_results[i].outcomes.count(s) != other[i].outcomes.count(s)) {
          return false;
        }
      }
    }
    return true;
  };

  bench::RuntimeBenchRecord record;
  record.name = "bench_micro";
  record.realizations = n;
  record.jobs = jobs;
  record.serial_s = serial_s;
  record.parallel_s = parallel_s;
  record.warm_s = warm_s;
  record.identical = identical(parallel_results) && identical(warm_results);
  record.cache_lookups = stats.lookups - cold_stats.lookups;
  record.cache_hits = stats.hits - cold_stats.hits;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::RuntimeBenchRecord record = micro_runtime_record();
  bench::write_runtime_bench_record(record);
  std::cout << "ensemble sweep (" << record.realizations << " realizations): "
            << "serial " << util::format_fixed(record.serial_s, 2)
            << " s, parallel(" << record.jobs << ") "
            << util::format_fixed(record.parallel_s, 2) << " s ("
            << util::format_fixed(record.speedup(), 2) << "x), warm "
            << util::format_fixed(record.warm_s, 3) << " s, "
            << (record.identical ? "bit-identical" : "NOT IDENTICAL")
            << "; recorded in BENCH_runtime.json\n";

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return record.identical ? 0 : 1;
}
