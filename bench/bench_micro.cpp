// Microbenchmarks (google-benchmark) for the framework's hot paths: wind
// sampling, the surge envelope, a full hurricane realization, the analysis
// pipeline, and the evaluators. These bound the cost of scaling the
// methodology (more realizations, finer meshes, larger ensembles).
#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "core/pipeline.h"
#include "mesh/coastal_builder.h"
#include "scada/oahu.h"
#include "storm/generator.h"
#include "storm/holland.h"
#include "surge/realization.h"
#include "surge/surge_model.h"
#include "terrain/oahu.h"
#include "threat/attacker.h"

using namespace ct;

namespace {

const terrain::Terrain& oahu() {
  static const auto terrain = terrain::make_oahu_terrain();
  return *terrain;
}

const surge::RealizationEngine& engine() {
  static const surge::RealizationEngine instance(
      terrain::make_oahu_terrain(), scada::oahu_topology().exposed_assets(),
      surge::RealizationConfig{});
  return instance;
}

void BM_HollandWindSample(benchmark::State& state) {
  const storm::HollandWindField field;
  storm::VortexParams vortex;
  vortex.central_pressure_pa = 96800.0;
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Vec2 point{static_cast<double>(i % 100) * 1000.0, 20000.0};
    benchmark::DoNotOptimize(field.sample(vortex, {0, 0}, {0, 6}, point));
    ++i;
  }
}
BENCHMARK(BM_HollandWindSample);

void BM_TerrainElevation(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Vec2 p{static_cast<double>(i % 200) * 200.0 - 20000.0,
                      static_cast<double>(i % 97) * 300.0 - 15000.0};
    benchmark::DoNotOptimize(oahu().elevation(p));
    ++i;
  }
}
BENCHMARK(BM_TerrainElevation);

void BM_CoastalMeshBuild(benchmark::State& state) {
  mesh::CoastalMeshConfig config;
  config.shore_spacing_m = 4000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::build_coastal_mesh(oahu(), config));
  }
}
BENCHMARK(BM_CoastalMeshBuild)->Unit(benchmark::kMillisecond);

void BM_SurgeEnvelope(benchmark::State& state) {
  const auto cm = mesh::build_coastal_mesh(oahu(), mesh::CoastalMeshConfig{});
  const storm::TrackGenerator generator{storm::TrackEnsembleConfig{}};
  const storm::StormTrack track = generator.generate(1, 0);
  const surge::SurgeSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.max_envelope(cm, track, oahu().projection()));
  }
}
BENCHMARK(BM_SurgeEnvelope)->Unit(benchmark::kMillisecond);

void BM_FullRealization(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine().run(i++));
  }
}
BENCHMARK(BM_FullRealization)->Unit(benchmark::kMillisecond);

void BM_PipelineOutcome(benchmark::State& state) {
  const auto realization = engine().run(0);
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.outcome_for(
        configs[i % configs.size()],
        threat::ThreatScenario::kHurricaneIntrusionIsolation, realization));
    ++i;
  }
}
BENCHMARK(BM_PipelineOutcome);

void BM_Evaluator(benchmark::State& state) {
  const auto config = scada::make_config_6_6_6("p", "b", "d");
  threat::SystemState s;
  s.site_status = {threat::SiteStatus::kUp, threat::SiteStatus::kIsolated,
                   threat::SiteStatus::kUp};
  s.intrusions = {1, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate(config, s));
  }
}
BENCHMARK(BM_Evaluator);

void BM_GreedyAttack666(benchmark::State& state) {
  const auto config = scada::make_config_6_6_6("p", "b", "d");
  threat::SystemState base;
  base.site_status.assign(3, threat::SiteStatus::kUp);
  base.intrusions.assign(3, 0);
  const threat::GreedyWorstCaseAttacker attacker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacker.attack(config, base, {1, 1}));
  }
}
BENCHMARK(BM_GreedyAttack666);

}  // namespace

BENCHMARK_MAIN();
