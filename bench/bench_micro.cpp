// Microbenchmarks (google-benchmark) for the framework's hot paths: wind
// sampling, the surge envelope, a full hurricane realization, the analysis
// pipeline, the evaluators, and the ensemble runtime (task-pool dispatch,
// content digests, parallel outcome counting). These bound the cost of
// scaling the methodology (more realizations, finer meshes, larger
// ensembles).
//
// Before running the registered benchmarks, main() times one small
// end-to-end sweep serially and on the pool and merges the measurement
// into BENCH_runtime.json (same record format as the figure benches).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <vector>

#include "core/chaos.h"
#include "core/evaluator.h"
#include "core/pipeline.h"
#include "figure_bench.h"
#include "mesh/coastal_builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/ensemble_runner.h"
#include "runtime/task_pool.h"
#include "scada/oahu.h"
#include "service/protocol.h"
#include "sim/scada_des.h"
#include "storm/generator.h"
#include "storm/holland.h"
#include "surge/realization.h"
#include "surge/surge_model.h"
#include "terrain/oahu.h"
#include "threat/attacker.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace ct;

namespace {

const terrain::Terrain& oahu() {
  static const auto terrain = terrain::make_oahu_terrain();
  return *terrain;
}

const surge::RealizationEngine& engine() {
  static const surge::RealizationEngine instance(
      terrain::make_oahu_terrain(), scada::oahu_topology().exposed_assets(),
      surge::RealizationConfig{});
  return instance;
}

runtime::EnsembleOptions runner_options(unsigned jobs, bool cache) {
  runtime::EnsembleOptions options;
  options.jobs = jobs;
  options.cache = cache;
  return options;
}

void BM_HollandWindSample(benchmark::State& state) {
  const storm::HollandWindField field;
  storm::VortexParams vortex;
  vortex.central_pressure_pa = 96800.0;
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Vec2 point{static_cast<double>(i % 100) * 1000.0, 20000.0};
    benchmark::DoNotOptimize(field.sample(vortex, {0, 0}, {0, 6}, point));
    ++i;
  }
}
BENCHMARK(BM_HollandWindSample);

void BM_TerrainElevation(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Vec2 p{static_cast<double>(i % 200) * 200.0 - 20000.0,
                      static_cast<double>(i % 97) * 300.0 - 15000.0};
    benchmark::DoNotOptimize(oahu().elevation(p));
    ++i;
  }
}
BENCHMARK(BM_TerrainElevation);

void BM_CoastalMeshBuild(benchmark::State& state) {
  mesh::CoastalMeshConfig config;
  config.shore_spacing_m = 4000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::build_coastal_mesh(oahu(), config));
  }
}
BENCHMARK(BM_CoastalMeshBuild)->Unit(benchmark::kMillisecond);

void BM_SurgeEnvelope(benchmark::State& state) {
  const auto cm = mesh::build_coastal_mesh(oahu(), mesh::CoastalMeshConfig{});
  const storm::TrackGenerator generator{storm::TrackEnsembleConfig{}};
  const storm::StormTrack track = generator.generate(1, 0);
  const surge::SurgeSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.max_envelope(cm, track, oahu().projection()));
  }
}
BENCHMARK(BM_SurgeEnvelope)->Unit(benchmark::kMillisecond);

void BM_FullRealization(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine().run(i++));
  }
}
BENCHMARK(BM_FullRealization)->Unit(benchmark::kMillisecond);

/// The legacy allocating pipeline — the denominator of the hot-path
/// speedup tracked in BENCH_surge.json.
void BM_FullRealizationReference(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine().run_reference(i++));
  }
}
BENCHMARK(BM_FullRealizationReference)->Unit(benchmark::kMillisecond);

/// In-place shoreline smoothing over the frozen plan (the copy of the
/// source envelope is part of the measured loop but is trivial next to
/// the passes themselves).
void BM_ShorelineSmoothing(benchmark::State& state) {
  const auto& cm = engine().coastal_mesh();
  const auto& bindings = engine().bindings();
  const storm::TrackGenerator generator{engine().config().ensemble};
  const storm::StormTrack track =
      generator.generate(engine().config().base_seed, 0);
  mesh::NodeField envelope;
  bindings.accumulate_envelope(track, engine().terrain().projection(),
                               envelope);
  mesh::NodeField field, scratch;
  for (auto _ : state) {
    field = envelope;
    mesh::shoreline_average_and_extend(cm, bindings.shoreline_plan(), field,
                                       scratch);
    benchmark::DoNotOptimize(field.data());
  }
}
BENCHMARK(BM_ShorelineSmoothing)->Unit(benchmark::kMicrosecond);

/// Asset binding: shoreline WSE -> per-asset impacts through the frozen
/// stencils (station lookup, decay, flood test).
void BM_AssetBind(benchmark::State& state) {
  const auto& bindings = engine().bindings();
  std::vector<double> shore_wse(engine().coastal_mesh().stations.size());
  for (std::size_t i = 0; i < shore_wse.size(); ++i) {
    shore_wse[i] = 0.5 + 0.001 * static_cast<double>(i % 700);
  }
  std::vector<surge::AssetImpact> impacts;
  for (auto _ : state) {
    bindings.impacts_into(shore_wse, impacts);
    benchmark::DoNotOptimize(impacts.data());
  }
}
BENCHMARK(BM_AssetBind)->Unit(benchmark::kMicrosecond);

void BM_PipelineOutcome(benchmark::State& state) {
  const auto realization = engine().run(0);
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.outcome_for(
        configs[i % configs.size()],
        threat::ThreatScenario::kHurricaneIntrusionIsolation, realization));
    ++i;
  }
}
BENCHMARK(BM_PipelineOutcome);

void BM_Evaluator(benchmark::State& state) {
  const auto config = scada::make_config_6_6_6("p", "b", "d");
  threat::SystemState s;
  s.site_status = {threat::SiteStatus::kUp, threat::SiteStatus::kIsolated,
                   threat::SiteStatus::kUp};
  s.intrusions = {1, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate(config, s));
  }
}
BENCHMARK(BM_Evaluator);

void BM_GreedyAttack666(benchmark::State& state) {
  const auto config = scada::make_config_6_6_6("p", "b", "d");
  threat::SystemState base;
  base.site_status.assign(3, threat::SiteStatus::kUp);
  base.intrusions.assign(3, 0);
  const threat::GreedyWorstCaseAttacker attacker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacker.attack(config, base, {1, 1}));
  }
}
BENCHMARK(BM_GreedyAttack666);

// --- ensemble runtime -------------------------------------------------------

/// Pure dispatch overhead of the work-stealing pool: trivial per-element
/// work, so the numbers are dominated by queueing, stealing, and the batch
/// barrier. Arg = worker threads (1 = the inline serial path).
void BM_TaskPoolDispatch(benchmark::State& state) {
  runtime::TaskPool pool(static_cast<unsigned>(state.range(0)));
  std::vector<std::uint64_t> out(1 << 14);
  for (auto _ : state) {
    pool.parallel_for_each(out.size(), 64, [&](std::size_t i) {
      out[i] = i * 0x9e3779b97f4a7c15ull;
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TaskPoolDispatch)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

/// Content digest of a realization set — the cache-key cost a sweep pays
/// even on a hit, so it has to stay far below regeneration cost.
void BM_DigestRealizations(benchmark::State& state) {
  static const std::vector<surge::HurricaneRealization> rels = [] {
    std::vector<surge::HurricaneRealization> r;
    for (std::uint64_t i = 0; i < 8; ++i) r.push_back(engine().run(i));
    return r;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::EnsembleRunner::digest_realizations(rels));
  }
}
BENCHMARK(BM_DigestRealizations);

/// Outcome counting over a pre-generated ensemble, cache off — isolates the
/// map_reduce sharding from realization generation. Arg = jobs.
void BM_EnsembleCount(benchmark::State& state) {
  static const std::vector<surge::HurricaneRealization> rels = [] {
    runtime::EnsembleRunner serial(runner_options(1, false));
    return serial.generate(engine(), 64);
  }();
  const auto config = scada::make_config_6_6_6(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;
  runtime::EnsembleRunner runner(
      runner_options(static_cast<unsigned>(state.range(0)), false));
  const auto outcome = [&](const surge::HurricaneRealization& r) {
    return static_cast<int>(pipeline.outcome_for(
        config, threat::ThreatScenario::kHurricaneIntrusionIsolation, r));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.count_outcomes(rels, outcome, ""));
  }
}
BENCHMARK(BM_EnsembleCount)->Arg(1)->Arg(8)->Unit(benchmark::kMicrosecond);

/// Serving-mode framing overhead: encode + checksum + decode one
/// request-sized and one response-sized frame (a few-KiB analysis report).
/// Bounds what `ctctl --connect` pays over a local run besides the socket.
void BM_WireFrameRoundTrip(benchmark::State& state) {
  service::Request request;
  request.kind = service::RequestKind::kAnalyze;
  request.topology_csv = std::string(static_cast<std::size_t>(state.range(0)),
                                     'x');
  std::uint32_t id = 1;
  for (auto _ : state) {
    const std::string bytes = service::encode_frame(
        service::FrameType::kRequest, id++, service::encode_request(request));
    service::FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    service::Frame frame;
    decoder.next(frame);
    benchmark::DoNotOptimize(service::decode_request(frame.payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WireFrameRoundTrip)->Arg(0)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

// --- DES engine -------------------------------------------------------------

/// The busiest protocol configuration (three interleaved BFT sites), so
/// the event loop and message pool dominate the measurement.
const scada::Configuration& des_config() {
  static const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  for (const auto& config : configs) {
    if (config.name == "6+6+6") return config;
  }
  return configs.back();
}

/// Worst-case compound threat (one intrusion + one isolation, no flood):
/// exercises compromise, site isolation, view changes, and recovery.
threat::SystemState des_attacked_state(const scada::Configuration& config) {
  threat::SystemState base;
  base.site_status.assign(config.sites.size(), threat::SiteStatus::kUp);
  base.intrusions.assign(config.sites.size(), 0);
  return threat::GreedyWorstCaseAttacker{}.attack(config, base, {1, 1});
}

/// Full ScadaDes runs on the pooled engine, one arena across iterations —
/// the steady-state (allocation-free) event loop. items/s == events/s.
void BM_DesEventLoop(benchmark::State& state) {
  const sim::ScadaDes des(des_config(), core::chaos_des_options());
  const threat::SystemState attacked = des_attacked_state(des.config());
  sim::DesArena arena;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const sim::DesOutcome outcome = des.run(attacked, arena);
    events += outcome.events;
    benchmark::DoNotOptimize(outcome.observed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_DesEventLoop)->Unit(benchmark::kMillisecond);

/// The same runs through the verbatim pre-overhaul engine
/// (sim/reference_des.cpp) — the denominator of the >=3x speedup gate.
void BM_DesEventLoopReference(benchmark::State& state) {
  const sim::ScadaDes des(des_config(), core::chaos_des_options());
  const threat::SystemState attacked = des_attacked_state(des.config());
  std::uint64_t events = 0;
  for (auto _ : state) {
    const sim::DesOutcome outcome = des.run_reference(attacked);
    events += outcome.events;
    benchmark::DoNotOptimize(outcome.observed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_DesEventLoopReference)->Unit(benchmark::kMillisecond);

/// One f=1 BFT group driven request -> proposal -> quorum -> execute, a
/// round per iteration: isolates the indexed vote/checkpoint bookkeeping
/// from the rest of the simulation.
void BM_BftQuorumRound(benchmark::State& state) {
  sim::Simulator sim;
  sim::Network net(sim, {4, 1});
  sim::BftOptions options;
  options.f = 1;
  options.k = 0;
  const std::vector<sim::NodeAddr> group = sim::interleaved_group({0}, {4});
  std::vector<std::unique_ptr<sim::BftReplica>> replicas;
  for (std::size_t i = 0; i < group.size(); ++i) {
    replicas.push_back(std::make_unique<sim::BftReplica>(
        sim, net, group[i], group, static_cast<int>(i), options, true));
  }
  for (auto& replica : replicas) replica->start();
  const sim::NodeAddr client{1, 0};
  net.register_handler(client, [](const sim::Message&) {});
  sim::Message request;
  request.type = sim::Message::Type::kRequest;
  request.sender = client;
  for (auto _ : state) {
    ++request.request_id;
    for (const sim::NodeAddr member : group) net.send(client, member, request);
    sim.run_until(sim.now() + 1.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BftQuorumRound)->Unit(benchmark::kMicrosecond);

/// A small but real chaos sweep (seeded benign plans, shrink machinery
/// armed) through the thread-local arena path in core/chaos.cpp.
void BM_ChaosSweep(benchmark::State& state) {
  core::ChaosOptions options;
  options.plans = 2;
  options.scenarios = {threat::ThreatScenario::kHurricaneIntrusion};
  const core::ChaosRunner runner(options);
  const scada::Configuration& config = des_config();
  for (auto _ : state) {
    const core::ChaosReport report = runner.sweep(config);
    benchmark::DoNotOptimize(report.runs);
  }
}
BENCHMARK(BM_ChaosSweep)->Unit(benchmark::kMillisecond);

/// The metrics hot path: one counter increment plus one histogram observe
/// per iteration — two relaxed shard adds when the registry is enabled.
/// Arg(0) runs with the registry disabled (the one-branch early-out).
void BM_MetricsHotPath(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  obs::Counter counter("bench.metrics_hot_path");
  obs::Histogram hist("bench.metrics_hot_path_us");
  std::uint64_t i = 0;
  for (auto _ : state) {
    counter.inc();
    hist.observe(i++ & 0xfff);
  }
  obs::set_enabled(was_enabled);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHotPath)->Arg(0)->Arg(1);

/// Span construct/destroy around a trivial region. Arg(0) is the
/// tracing-off cost every instrumented callsite pays when spans are idle;
/// Arg(1) records into the per-thread ring.
void BM_SpanOverhead(benchmark::State& state) {
  obs::set_trace_enabled(state.range(0) != 0);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    obs::Span span("bench.span_overhead");
    benchmark::DoNotOptimize(sink++);
  }
  obs::set_trace_enabled(false);
  obs::reset_trace_for_test();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanOverhead)->Arg(0)->Arg(1);

/// Times the pooled DES engine against the reference over the same run
/// corpus (plain runs + a chaos-style fault-plan sweep), checking every
/// outcome with des_outcomes_identical. Merged into BENCH_des.json.
bench::DesBenchRecord micro_des_record() {
  const scada::Configuration& config = des_config();
  const sim::DesOptions options = core::chaos_des_options();
  const sim::ScadaDes des(config, options);
  const threat::SystemState attacked = des_attacked_state(config);

  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto seconds = [](auto start, auto end) {
    return std::chrono::duration<double>(end - start).count();
  };

  constexpr std::size_t kRuns = 10;
  std::vector<sim::DesOutcome> reference;
  reference.reserve(kRuns);
  const auto ref_start = now();
  for (std::size_t i = 0; i < kRuns; ++i) {
    reference.push_back(des.run_reference(attacked));
  }
  const auto ref_end = now();

  sim::DesArena arena;
  bool identical = true;
  std::uint64_t events = 0;
  const auto fast_start = now();
  for (std::size_t i = 0; i < kRuns; ++i) {
    const sim::DesOutcome fast = des.run(attacked, arena);
    events += fast.events;
    identical = identical && sim::des_outcomes_identical(fast, reference[i]);
  }
  const auto fast_end = now();

  // Quorum round: same microcosm as BM_BftQuorumRound, timed directly.
  double quorum_round_ms = 0.0;
  {
    sim::Simulator qsim;
    sim::Network qnet(qsim, {4, 1});
    sim::BftOptions bft;
    bft.f = 1;
    bft.k = 0;
    const std::vector<sim::NodeAddr> group = sim::interleaved_group({0}, {4});
    std::vector<std::unique_ptr<sim::BftReplica>> replicas;
    for (std::size_t i = 0; i < group.size(); ++i) {
      replicas.push_back(std::make_unique<sim::BftReplica>(
          qsim, qnet, group[i], group, static_cast<int>(i), bft, true));
    }
    for (auto& replica : replicas) replica->start();
    const sim::NodeAddr client{1, 0};
    qnet.register_handler(client, [](const sim::Message&) {});
    sim::Message request;
    request.type = sim::Message::Type::kRequest;
    request.sender = client;
    constexpr std::size_t kRounds = 2000;
    const auto q_start = now();
    for (std::size_t round = 0; round < kRounds; ++round) {
      ++request.request_id;
      for (const sim::NodeAddr member : group) {
        qnet.send(client, member, request);
      }
      qsim.run_until(qsim.now() + 1.0);
    }
    quorum_round_ms = seconds(q_start, now()) * 1000.0 /
                      static_cast<double>(kRounds);
  }

  // Chaos-corpus sweep: the exact plans ChaosRunner would generate
  // (child RNG per plan index), through both engines.
  std::vector<int> nodes_per_site;
  for (const auto& site : config.sites) nodes_per_site.push_back(site.replicas);
  sim::BenignPlanShape shape;
  shape.window_to_s = std::max(shape.window_from_s + 1.0,
                               options.horizon_s - options.settle_window_s -
                                   60.0);
  constexpr std::size_t kPlans = 6;
  const util::Rng base_rng(1, "chaos");
  std::vector<sim::FaultPlan> plans;
  plans.reserve(kPlans);
  for (std::size_t p = 0; p < kPlans; ++p) {
    util::Rng plan_rng = base_rng.child("plan", p);
    plans.push_back(sim::random_benign_plan(shape, nodes_per_site, plan_rng));
  }
  std::vector<sim::DesOutcome> sweep_reference;
  sweep_reference.reserve(kPlans);
  const auto sweep_ref_start = now();
  for (const sim::FaultPlan& plan : plans) {
    sweep_reference.push_back(des.run_reference(attacked, plan));
  }
  const auto sweep_ref_end = now();
  const auto sweep_fast_start = now();
  for (std::size_t p = 0; p < plans.size(); ++p) {
    const sim::DesOutcome fast = des.run(attacked, plans[p], arena);
    identical = identical &&
                sim::des_outcomes_identical(fast, sweep_reference[p]);
  }
  const auto sweep_fast_end = now();

  bench::DesBenchRecord record;
  record.name = "bench_micro";
  record.runs = kRuns;
  record.events = events;
  record.reference_s = seconds(ref_start, ref_end);
  record.fast_s = seconds(fast_start, fast_end);
  record.quorum_round_ms = quorum_round_ms;
  record.sweep_reference_s = seconds(sweep_ref_start, sweep_ref_end);
  record.sweep_fast_s = seconds(sweep_fast_start, sweep_fast_end);
  record.sweep_runs = kPlans;
  record.identical = identical;
  return record;
}

/// Times the ct_obs primitives per-op and the instrumented DES loop with
/// the registry enabled vs disabled — interleaved best-of-N, so scheduler
/// drift hits both variants equally. The enabled-but-idle overhead bound
/// (<2%) is asserted via the exit code in main(). Merged into
/// BENCH_obs.json.
bench::ObsBenchRecord micro_obs_record() {
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto seconds = [](auto start, auto end) {
    return std::chrono::duration<double>(end - start).count();
  };

  bench::ObsBenchRecord record;
  record.name = "bench_micro";

  // Per-op costs of the primitives (single thread, hot shard).
  constexpr std::uint64_t kOps = 2'000'000;
  obs::Counter counter("bench.obs_record_counter");
  obs::Histogram hist("bench.obs_record_hist");
  const auto per_op_ns = [&](auto&& op) {
    const auto start = now();
    for (std::uint64_t i = 0; i < kOps; ++i) op(i);
    return seconds(start, now()) * 1e9 / static_cast<double>(kOps);
  };
  obs::set_enabled(true);
  record.counter_inc_ns = per_op_ns([&](std::uint64_t) { counter.inc(); });
  record.histogram_observe_ns =
      per_op_ns([&](std::uint64_t i) { hist.observe(i & 0xfff); });
  obs::set_enabled(false);
  record.counter_disabled_ns =
      per_op_ns([&](std::uint64_t) { counter.inc(); });
  obs::set_enabled(true);
  obs::set_trace_enabled(true);
  record.span_ns = per_op_ns([&](std::uint64_t) {
    obs::Span span("bench.obs_record_span");
  });
  obs::set_trace_enabled(false);
  obs::reset_trace_for_test();
  record.span_idle_ns = per_op_ns([&](std::uint64_t) {
    obs::Span span("bench.obs_record_span");
  });

  // Enabled-but-idle cost on the DES hot loop: same corpus as
  // BM_DesEventLoop, obs on vs off interleaved, best-of-7 per variant.
  const sim::ScadaDes des(des_config(), core::chaos_des_options());
  const threat::SystemState attacked = des_attacked_state(des.config());
  sim::DesArena arena;
  constexpr std::size_t kRuns = 8;
  constexpr int kReps = 7;
  const auto timed_pass = [&]() {
    const auto start = now();
    for (std::size_t i = 0; i < kRuns; ++i) {
      const sim::DesOutcome outcome = des.run(attacked, arena);
      benchmark::DoNotOptimize(outcome.observed);
    }
    return seconds(start, now());
  };
  des.run(attacked, arena);  // warm the arena before timing anything
  double best_off = 0.0;
  double best_on = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::set_enabled(false);
    const double off = timed_pass();
    obs::set_enabled(true);
    const double on = timed_pass();
    best_off = rep == 0 ? off : std::min(best_off, off);
    best_on = rep == 0 ? on : std::min(best_on, on);
  }
  record.des_runs = kRuns;
  record.des_obs_off_s = best_off;
  record.des_obs_on_s = best_on;

  // Determinism: the instrumentation must not perturb outcomes.
  obs::set_enabled(true);
  obs::set_trace_enabled(true);
  const sim::DesOutcome on_outcome = des.run(attacked, arena);
  obs::set_enabled(false);
  obs::set_trace_enabled(false);
  const sim::DesOutcome off_outcome = des.run(attacked, arena);
  record.identical = sim::des_outcomes_identical(on_outcome, off_outcome);
  obs::set_enabled(true);
  obs::reset_trace_for_test();
  return record;
}

/// Times one small end-to-end sweep (all five paper configurations, one
/// compound scenario) serial vs pooled vs cache-warm and merges the record
/// into BENCH_runtime.json.
bench::RuntimeBenchRecord micro_runtime_record() {
  const std::size_t n = std::min<std::size_t>(bench::bench_realizations(), 200);
  const unsigned jobs = bench::bench_jobs();
  const auto scenario = threat::ThreatScenario::kHurricaneIntrusionIsolation;
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;

  runtime::EnsembleRunner serial(runner_options(1, false));
  const std::vector<surge::HurricaneRealization> rels =
      serial.generate(engine(), n);
  const std::string digest = runtime::EnsembleRunner::digest_realizations(rels);

  const auto timed = [&](auto&& analyze) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<core::ScenarioResult> results;
    for (const auto& config : configs) results.push_back(analyze(config));
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    return std::pair(std::move(results), seconds);
  };

  const auto [serial_results, serial_s] = timed([&](const auto& config) {
    return pipeline.analyze(config, scenario, rels);
  });

  runtime::EnsembleRunner pooled(runner_options(jobs, true));
  const auto [parallel_results, parallel_s] = timed([&](const auto& config) {
    return pipeline.analyze(config, scenario, rels, pooled, digest);
  });
  const auto cold_stats = pooled.cache_stats();
  const auto [warm_results, warm_s] = timed([&](const auto& config) {
    return pipeline.analyze(config, scenario, rels, pooled, digest);
  });
  const auto stats = pooled.cache_stats();

  const auto identical = [&](const std::vector<core::ScenarioResult>& other) {
    for (std::size_t i = 0; i < serial_results.size(); ++i) {
      for (const auto s :
           {threat::OperationalState::kGreen, threat::OperationalState::kOrange,
            threat::OperationalState::kRed, threat::OperationalState::kGray}) {
        if (serial_results[i].outcomes.count(s) != other[i].outcomes.count(s)) {
          return false;
        }
      }
    }
    return true;
  };

  // Healthy-path cost of the fault-isolation machinery: the identical
  // sweep through the guarded entry points with the fault profile off.
  // Must stay within noise of the plain pooled sweep (~2%).
  runtime::EnsembleOptions guarded_options = runner_options(jobs, false);
  guarded_options.fault_spec = "none";
  runtime::EnsembleRunner guarded(guarded_options);
  const runtime::EnsembleRunner::BatchFn healthy_batch = [&]() {
    return runtime::BatchView{&rels, nullptr, rels.size()};
  };
  const auto [guarded_results, guarded_s] = timed([&](const auto& config) {
    return pipeline.analyze_lazy(config, scenario, healthy_batch, guarded,
                                 digest);
  });

  // Degraded path: quarantine-and-retry under an injected fault profile,
  // generation included (that is where the faults fire).
  runtime::EnsembleOptions fault_options = runner_options(jobs, false);
  fault_options.fault_spec = "throw:every=17";
  fault_options.max_retries = 1;
  runtime::EnsembleRunner faulty(fault_options);
  const auto fault_start = std::chrono::steady_clock::now();
  const runtime::GeneratedBatch degraded = faulty.generate_guarded(engine(), n);
  std::vector<core::ScenarioResult> fault_results;
  for (const auto& config : configs) {
    fault_results.push_back(pipeline.analyze_lazy(
        config, scenario, [&]() { return degraded.view(); }, faulty, digest));
  }
  const double fault_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - fault_start)
                             .count();

  bench::RuntimeBenchRecord record;
  record.name = "bench_micro";
  record.realizations = n;
  record.jobs = jobs;
  record.serial_s = serial_s;
  record.parallel_s = parallel_s;
  record.warm_s = warm_s;
  record.identical = identical(parallel_results) && identical(warm_results) &&
                     identical(guarded_results);
  record.cache_lookups = stats.lookups - cold_stats.lookups;
  record.cache_hits = stats.hits - cold_stats.hits;
  record.guarded_s = guarded_s;
  record.fault_s = fault_s;
  record.fault_quarantined = degraded.ledger.failures.size();
  record.fault_retries = degraded.ledger.retries;
  for (const core::ScenarioResult& r : fault_results) {
    record.fault_retries += r.retries;
  }

  // Checkpointed runtime (PR 7): the fused run_resumable sweep — the whole
  // (5 configs x 1 scenario) matrix as one multi-series pass, generation
  // included, exactly what `ctctl analyze --checkpoint-dir` runs — with
  // checkpointing off (baseline) and journal-on at three intervals.
  runtime::SweepSpec sweep;
  sweep.digest = "bench-micro-checkpoint";
  sweep.count = n;
  for (const auto& config : configs) sweep.series.push_back(config.name);
  const auto sweep_outcome = [&](std::size_t series,
                                 const surge::HurricaneRealization& r) {
    return static_cast<int>(
        pipeline.outcome_for(configs[series], scenario, r));
  };
  namespace fs = std::filesystem;
  const std::string ckpt_dir =
      (fs::temp_directory_path() / "ct-bench-micro-ckpt").string();
  // Best-of-3 per variant: the sweeps are sub-second, so a single sample
  // is scheduler noise of the same order as the fsync cost being measured.
  const auto timed_sweep = [&](const runtime::CheckpointOptions& ckpt) {
    std::uint64_t writes = 0;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      if (!ckpt.dir.empty()) fs::remove_all(ckpt.dir);
      runtime::EnsembleOptions options = runner_options(jobs, false);
      options.fault_spec = "none";
      runtime::EnsembleRunner sweeper(options);
      const auto start = std::chrono::steady_clock::now();
      const runtime::ResumableReport report =
          sweeper.run_resumable(engine(), sweep, sweep_outcome, ckpt);
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      writes = report.checkpoints;
      best = rep == 0 ? seconds : std::min(best, seconds);
    }
    return std::pair(writes, best);
  };
  record.resumable_s = timed_sweep(runtime::CheckpointOptions{}).second;
  const auto at_interval = [&](std::size_t interval) {
    runtime::CheckpointOptions ckpt;
    ckpt.dir = ckpt_dir;
    ckpt.interval = interval;
    ckpt.crash_spec = "none";
    return timed_sweep(ckpt);
  };
  record.checkpoint32_s = at_interval(32).second;
  const auto [default_writes, default_s] = at_interval(128);
  record.checkpoint_s = default_s;
  record.checkpoint_writes = default_writes;
  record.checkpoint512_s = at_interval(512).second;
  fs::remove_all(ckpt_dir);
  return record;
}

/// True when the two realizations agree on every bit the pipeline reads.
bool bit_identical(const surge::HurricaneRealization& a,
                   const surge::HurricaneRealization& b) {
  if (a.index != b.index || a.peak_wind_ms != b.peak_wind_ms ||
      a.max_shoreline_wse_m != b.max_shoreline_wse_m ||
      a.impacts.size() != b.impacts.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.impacts.size(); ++i) {
    const auto& x = a.impacts[i];
    const auto& y = b.impacts[i];
    if (x.asset_id != y.asset_id || x.shoreline_station != y.shoreline_station ||
        x.shoreline_wse_m != y.shoreline_wse_m ||
        x.water_level_m != y.water_level_m ||
        x.inundation_depth_m != y.inundation_depth_m || x.failed != y.failed ||
        x.peak_wind_ms != y.peak_wind_ms || x.wind_failed != y.wind_failed) {
      return false;
    }
  }
  return true;
}

/// Times the realization hot path against the legacy pipeline (cold, same
/// indices), checks bit-identity, and isolates the two post-processing
/// kernels. Merged into BENCH_surge.json.
bench::SurgeBenchRecord micro_surge_record() {
  const std::size_t n = std::min<std::size_t>(bench::bench_realizations(), 100);
  const auto& eng = engine();

  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto per_call_ms = [](auto start, auto end, std::size_t calls) {
    return std::chrono::duration<double, std::milli>(end - start).count() /
           static_cast<double>(calls);
  };

  std::vector<surge::HurricaneRealization> reference;
  reference.reserve(n);
  const auto ref_start = now();
  for (std::uint64_t i = 0; i < n; ++i) reference.push_back(eng.run_reference(i));
  const auto ref_end = now();

  surge::RealizationScratch scratch;
  bool identical = true;
  const auto fast_start = now();
  for (std::uint64_t i = 0; i < n; ++i) {
    const surge::HurricaneRealization fast = eng.run(i, scratch);
    identical = identical && bit_identical(fast, reference[i]);
  }
  const auto fast_end = now();

  const auto& bindings = eng.bindings();
  const storm::TrackGenerator generator{eng.config().ensemble};
  const storm::StormTrack track = generator.generate(eng.config().base_seed, 0);
  mesh::NodeField envelope;
  bindings.accumulate_envelope(track, eng.terrain().projection(), envelope);

  constexpr std::size_t kKernelReps = 2000;
  mesh::NodeField field, field_scratch;
  const auto smooth_start = now();
  for (std::size_t i = 0; i < kKernelReps; ++i) {
    field = envelope;
    mesh::shoreline_average_and_extend(eng.coastal_mesh(),
                                       bindings.shoreline_plan(), field,
                                       field_scratch);
  }
  const auto smooth_end = now();

  std::vector<double> shore_wse;
  mesh::shoreline_values(eng.coastal_mesh(), field, shore_wse);
  std::vector<surge::AssetImpact> impacts;
  const auto bind_start = now();
  for (std::size_t i = 0; i < kKernelReps; ++i) {
    bindings.impacts_into(shore_wse, impacts);
  }
  const auto bind_end = now();

  bench::SurgeBenchRecord record;
  record.name = "bench_micro";
  record.realizations = n;
  record.reference_ms = per_call_ms(ref_start, ref_end, n);
  record.fast_ms = per_call_ms(fast_start, fast_end, n);
  record.smoothing_ms = per_call_ms(smooth_start, smooth_end, kKernelReps);
  record.asset_bind_ms = per_call_ms(bind_start, bind_end, kKernelReps);
  record.active_nodes = bindings.active_nodes().size();
  record.mesh_nodes = eng.coastal_mesh().mesh.node_count();
  record.identical = identical;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::SurgeBenchRecord surge_record = micro_surge_record();
  bench::write_surge_bench_record(surge_record);
  std::cout << "realization hot path (" << surge_record.realizations
            << " cold realizations): reference "
            << util::format_fixed(surge_record.reference_ms, 2)
            << " ms, fast " << util::format_fixed(surge_record.fast_ms, 2)
            << " ms (" << util::format_fixed(surge_record.speedup(), 2)
            << "x), smoothing "
            << util::format_fixed(surge_record.smoothing_ms * 1000.0, 1)
            << " us, asset bind "
            << util::format_fixed(surge_record.asset_bind_ms * 1000.0, 1)
            << " us, active " << surge_record.active_nodes << "/"
            << surge_record.mesh_nodes << " nodes, "
            << (surge_record.identical ? "bit-identical" : "NOT IDENTICAL")
            << "; recorded in BENCH_surge.json\n";

  const bench::DesBenchRecord des_record = micro_des_record();
  bench::write_des_bench_record(des_record);
  std::cout << "DES engine (" << des_record.runs << " runs, "
            << des_record.events << " events): reference "
            << util::format_fixed(des_record.reference_s, 2) << " s ("
            << util::format_fixed(des_record.reference_events_per_s() / 1e6, 2)
            << " M ev/s), pooled "
            << util::format_fixed(des_record.fast_s, 2) << " s ("
            << util::format_fixed(des_record.fast_events_per_s() / 1e6, 2)
            << " M ev/s, " << util::format_fixed(des_record.speedup(), 2)
            << "x), quorum round "
            << util::format_fixed(des_record.quorum_round_ms * 1000.0, 1)
            << " us, plan sweep " << des_record.sweep_runs << " plans "
            << util::format_fixed(des_record.sweep_reference_s, 2) << " -> "
            << util::format_fixed(des_record.sweep_fast_s, 2) << " s ("
            << util::format_fixed(des_record.sweep_speedup(), 2) << "x), "
            << (des_record.identical ? "bit-identical" : "NOT IDENTICAL")
            << "; recorded in BENCH_des.json\n";

  const bench::ObsBenchRecord obs_record = micro_obs_record();
  bench::write_obs_bench_record(obs_record);
  // The acceptance bound: enabled-but-idle observability must cost the
  // DES hot loop <2%. Best-of-7 interleaved passes keep this off the
  // noise floor; a violation fails the binary like a determinism break.
  const bool obs_cheap = obs_record.des_overhead() < 0.02;
  std::cout << "observability: counter inc "
            << util::format_fixed(obs_record.counter_inc_ns, 1) << " ns ("
            << util::format_fixed(obs_record.counter_disabled_ns, 1)
            << " ns disabled), histogram observe "
            << util::format_fixed(obs_record.histogram_observe_ns, 1)
            << " ns, span " << util::format_fixed(obs_record.span_ns, 1)
            << " ns (" << util::format_fixed(obs_record.span_idle_ns, 1)
            << " ns idle), DES loop " << obs_record.des_runs << " runs "
            << util::format_fixed(obs_record.des_obs_off_s, 4) << " -> "
            << util::format_fixed(obs_record.des_obs_on_s, 4) << " s ("
            << util::format_fixed(obs_record.des_overhead() * 100.0, 2)
            << "% with obs on, bound 2%"
            << (obs_cheap ? "" : ", EXCEEDED") << "), "
            << (obs_record.identical ? "bit-identical" : "NOT IDENTICAL")
            << "; recorded in BENCH_obs.json\n";

  const bench::RuntimeBenchRecord record = micro_runtime_record();
  bench::write_runtime_bench_record(record);
  std::cout << "ensemble sweep (" << record.realizations << " realizations): "
            << "serial " << util::format_fixed(record.serial_s, 2)
            << " s, parallel(" << record.jobs << ") "
            << util::format_fixed(record.parallel_s, 2) << " s ("
            << util::format_fixed(record.speedup(), 2) << "x), warm "
            << util::format_fixed(record.warm_s, 3) << " s, "
            << (record.identical ? "bit-identical" : "NOT IDENTICAL")
            << "; recorded in BENCH_runtime.json\n";
  std::cout << "fault isolation: guarded healthy path "
            << util::format_fixed(record.guarded_s, 2) << " s ("
            << util::format_fixed(record.guarded_overhead() * 100.0, 1)
            << "% vs plain pool), fault path "
            << util::format_fixed(record.fault_s, 2) << " s with "
            << record.fault_quarantined << " quarantined / "
            << record.fault_retries << " retries\n";
  std::cout << "checkpointing: off "
            << util::format_fixed(record.resumable_s, 2) << " s, interval 32 "
            << util::format_fixed(record.checkpoint32_s, 2)
            << " s, interval 128 " << util::format_fixed(record.checkpoint_s, 2)
            << " s (" << util::format_fixed(record.checkpoint_overhead() * 100.0, 1)
            << "%, " << record.checkpoint_writes
            << " durable writes), interval 512 "
            << util::format_fixed(record.checkpoint512_s, 2) << " s\n";

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return record.identical && surge_record.identical && des_record.identical &&
                 obs_record.identical && obs_cheap
             ? 0
             : 1;
}
