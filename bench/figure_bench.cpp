#include "figure_bench.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#include "core/case_study.h"
#include "core/report.h"
#include "scada/oahu.h"
#include "util/strings.h"

namespace ct::bench {

std::size_t bench_realizations() {
  if (const char* env = std::getenv("CT_BENCH_REALIZATIONS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 1000;  // the paper's ensemble size
}

unsigned bench_jobs() {
  if (const char* env = std::getenv("CT_BENCH_JOBS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return 8;
}

namespace {

std::string record_json(const RuntimeBenchRecord& r) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out << '"' << r.name << "\": {"
      << "\"realizations\": " << r.realizations << ", \"jobs\": " << r.jobs
      << std::setprecision(4) << ", \"serial_s\": " << r.serial_s
      << ", \"parallel_s\": " << r.parallel_s << ", \"warm_s\": " << r.warm_s
      << std::setprecision(3) << ", \"speedup\": " << r.speedup()
      << ", \"identical\": " << (r.identical ? "true" : "false")
      << ", \"cache_lookups\": " << r.cache_lookups
      << ", \"cache_hits\": " << r.cache_hits
      << ", \"warm_hit_rate\": " << r.warm_hit_rate();
  if (r.guarded_s > 0.0) {
    out << std::setprecision(4) << ", \"guarded_s\": " << r.guarded_s
        << ", \"guarded_overhead\": " << r.guarded_overhead()
        << ", \"fault_s\": " << r.fault_s
        << ", \"fault_quarantined\": " << r.fault_quarantined
        << ", \"fault_retries\": " << r.fault_retries;
  }
  if (r.resumable_s > 0.0) {
    out << std::setprecision(4) << ", \"resumable_s\": " << r.resumable_s
        << ", \"checkpoint32_s\": " << r.checkpoint32_s
        << ", \"checkpoint_s\": " << r.checkpoint_s
        << ", \"checkpoint512_s\": " << r.checkpoint512_s
        << ", \"checkpoint_overhead\": " << r.checkpoint_overhead()
        << ", \"checkpoint_writes\": " << r.checkpoint_writes;
  }
  out << '}';
  return out.str();
}

std::string record_json(const SurgeBenchRecord& r) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out << '"' << r.name << "\": {"
      << "\"realizations\": " << r.realizations << std::setprecision(4)
      << ", \"reference_ms\": " << r.reference_ms
      << ", \"fast_ms\": " << r.fast_ms
      << ", \"smoothing_ms\": " << r.smoothing_ms
      << ", \"asset_bind_ms\": " << r.asset_bind_ms << std::setprecision(3)
      << ", \"speedup\": " << r.speedup()
      << ", \"active_nodes\": " << r.active_nodes
      << ", \"mesh_nodes\": " << r.mesh_nodes
      << ", \"identical\": " << (r.identical ? "true" : "false") << '}';
  return out.str();
}

std::string record_json(const DesBenchRecord& r) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out << '"' << r.name << "\": {"
      << "\"runs\": " << r.runs
      << ", \"events\": " << r.events << std::setprecision(4)
      << ", \"reference_s\": " << r.reference_s
      << ", \"fast_s\": " << r.fast_s << std::setprecision(0)
      << ", \"reference_events_per_s\": " << r.reference_events_per_s()
      << ", \"fast_events_per_s\": " << r.fast_events_per_s()
      << std::setprecision(3) << ", \"speedup\": " << r.speedup()
      << std::setprecision(4)
      << ", \"quorum_round_ms\": " << r.quorum_round_ms
      << ", \"sweep_reference_s\": " << r.sweep_reference_s
      << ", \"sweep_fast_s\": " << r.sweep_fast_s << std::setprecision(3)
      << ", \"sweep_speedup\": " << r.sweep_speedup()
      << ", \"sweep_runs\": " << r.sweep_runs
      << ", \"identical\": " << (r.identical ? "true" : "false") << '}';
  return out.str();
}

std::string record_json(const ObsBenchRecord& r) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out << '"' << r.name << "\": {" << std::setprecision(2)
      << "\"counter_inc_ns\": " << r.counter_inc_ns
      << ", \"counter_disabled_ns\": " << r.counter_disabled_ns
      << ", \"histogram_observe_ns\": " << r.histogram_observe_ns
      << ", \"span_ns\": " << r.span_ns
      << ", \"span_idle_ns\": " << r.span_idle_ns
      << ", \"des_runs\": " << r.des_runs << std::setprecision(4)
      << ", \"des_obs_off_s\": " << r.des_obs_off_s
      << ", \"des_obs_on_s\": " << r.des_obs_on_s << std::setprecision(3)
      << ", \"des_overhead\": " << r.des_overhead()
      << ", \"identical\": " << (r.identical ? "true" : "false") << '}';
  return out.str();
}

// The bench files are JSON objects with one record per line so every bench
// binary can update its own row with a line-level merge — no JSON parser
// needed, and `jq` still reads the whole file.
void merge_record_line(const std::string& path, const std::string& name,
                       const std::string& json) {
  std::vector<std::pair<std::string, std::string>> rows;
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      std::string body{util::trim(line)};
      if (body.empty() || body == "{" || body == "}") continue;
      if (body.back() == ',') body.pop_back();
      if (body.size() < 2 || body.front() != '"') continue;  // not a record
      const std::size_t name_end = body.find('"', 1);
      if (name_end == std::string::npos) continue;
      const std::string row_name = body.substr(1, name_end - 1);
      if (row_name == name) continue;  // superseded by the new record
      rows.emplace_back(row_name, std::move(body));
    }
  }
  rows.emplace_back(name, json);

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << rows[i].second << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "}\n";
}

}  // namespace

void write_runtime_bench_record(const RuntimeBenchRecord& record,
                                const std::string& path) {
  merge_record_line(path, record.name, record_json(record));
}

void write_surge_bench_record(const SurgeBenchRecord& record,
                              const std::string& path) {
  merge_record_line(path, record.name, record_json(record));
}

void write_des_bench_record(const DesBenchRecord& record,
                            const std::string& path) {
  merge_record_line(path, record.name, record_json(record));
}

void write_obs_bench_record(const ObsBenchRecord& record,
                            const std::string& path) {
  merge_record_line(path, record.name, record_json(record));
}

namespace {

/// Exact (count-level) equality of two result sets — the determinism
/// contract is bit-identical histograms, not close probabilities.
bool identical_outcomes(const std::vector<core::ScenarioResult>& a,
                        const std::vector<core::ScenarioResult>& b) {
  if (a.size() != b.size()) return false;
  constexpr threat::OperationalState kStates[] = {
      threat::OperationalState::kGreen, threat::OperationalState::kOrange,
      threat::OperationalState::kRed, threat::OperationalState::kGray};
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].outcomes.total() != b[i].outcomes.total()) return false;
    for (const threat::OperationalState s : kStates) {
      if (a[i].outcomes.count(s) != b[i].outcomes.count(s)) return false;
    }
  }
  return true;
}

}  // namespace

int run_figure_bench(const std::string& figure_id,
                     threat::ThreatScenario scenario, Siting siting) {
  const std::size_t realizations = bench_realizations();
  const unsigned jobs = bench_jobs();

  const std::string backup = siting == Siting::kWaiau
                                 ? scada::oahu_ids::kWaiauCc
                                 : scada::oahu_ids::kKaheCc;
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, backup, scada::oahu_ids::kDrFortress);

  std::cout << "=== " << figure_id << ": "
            << threat::scenario_name(scenario) << " (Honolulu + "
            << (siting == Siting::kWaiau ? "Waiau" : "Kahe")
            << " + DRFortress), " << realizations << " realizations ===\n\n";

  const auto timed_run = [&](core::CaseStudyRunner& runner) {
    const auto start = std::chrono::steady_clock::now();
    auto results = runner.run_configs(configs, scenario);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    return std::pair(std::move(results), seconds);
  };

  // Cold serial reference: one worker, cache off — the pre-runtime code
  // path, and the baseline both for the speedup and for bit-identity.
  core::CaseStudyOptions serial_options;
  serial_options.realizations = realizations;
  serial_options.runtime.jobs = 1;
  serial_options.runtime.cache = false;
  core::CaseStudyRunner serial_runner =
      core::make_oahu_case_study(serial_options);
  const auto [serial_results, serial_s] = timed_run(serial_runner);

  // Cold parallel sweep on a fresh runner (nothing shared with the serial
  // one), then a warm replay on the same runner to measure the cache.
  core::CaseStudyOptions parallel_options;
  parallel_options.realizations = realizations;
  parallel_options.runtime.jobs = jobs;
  core::CaseStudyRunner parallel_runner =
      core::make_oahu_case_study(parallel_options);
  const auto [parallel_results, parallel_s] = timed_run(parallel_runner);
  const auto cold_stats = parallel_runner.runtime().cache_stats();
  const auto [warm_results, warm_s] = timed_run(parallel_runner);

  const bool identical = identical_outcomes(serial_results, parallel_results) &&
                         identical_outcomes(serial_results, warm_results);

  std::cout << "measured operational profiles:\n";
  core::profile_table(parallel_results).render(std::cout);

  const auto& expected = core::paper_expected(figure_id);
  std::cout << "\nmeasured vs paper:\n";
  core::comparison_table(parallel_results, expected).render(std::cout);

  const double delta = core::max_abs_delta(parallel_results, expected);
  std::cout << "\nmax |measured - paper| = "
            << util::format_fixed(delta * 100.0, 2) << " pp across all "
            << parallel_results.size() * 4 << " cells\n";

  // Hit rate of the warm replay alone (the cold pass is all misses by
  // construction, so folding it in would halve the number for no reason).
  const auto stats = parallel_runner.runtime().cache_stats();
  RuntimeBenchRecord record;
  record.name = "bench_" + figure_id;
  record.realizations = realizations;
  record.jobs = jobs;
  record.serial_s = serial_s;
  record.parallel_s = parallel_s;
  record.warm_s = warm_s;
  record.identical = identical;
  record.cache_lookups = stats.lookups - cold_stats.lookups;
  record.cache_hits = stats.hits - cold_stats.hits;
  write_runtime_bench_record(record);

  std::cout << "\nruntime: serial " << util::format_fixed(serial_s, 2)
            << " s, parallel(" << jobs << ") "
            << util::format_fixed(parallel_s, 2) << " s ("
            << util::format_fixed(record.speedup(), 2) << "x), warm replay "
            << util::format_fixed(warm_s, 3) << " s, cache "
            << record.cache_hits << "/" << record.cache_lookups << " hits ("
            << util::format_fixed(record.warm_hit_rate() * 100.0, 1)
            << "%)\n"
            << "parallel outcomes "
            << (identical ? "bit-identical to serial"
                          : "DIFFER FROM SERIAL — determinism violation")
            << "; record appended to BENCH_runtime.json\n\n";
  return identical ? 0 : 1;
}

}  // namespace ct::bench
