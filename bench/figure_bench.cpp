#include "figure_bench.h"

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "core/case_study.h"
#include "core/report.h"
#include "scada/oahu.h"
#include "util/strings.h"

namespace ct::bench {

std::size_t bench_realizations() {
  if (const char* env = std::getenv("CT_BENCH_REALIZATIONS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 1000;  // the paper's ensemble size
}

int run_figure_bench(const std::string& figure_id,
                     threat::ThreatScenario scenario, Siting siting) {
  const auto start = std::chrono::steady_clock::now();

  core::CaseStudyOptions options;
  options.realizations = bench_realizations();
  core::CaseStudyRunner runner = core::make_oahu_case_study(options);

  const std::string backup = siting == Siting::kWaiau
                                 ? scada::oahu_ids::kWaiauCc
                                 : scada::oahu_ids::kKaheCc;
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, backup, scada::oahu_ids::kDrFortress);

  std::cout << "=== " << figure_id << ": "
            << threat::scenario_name(scenario) << " (Honolulu + "
            << (siting == Siting::kWaiau ? "Waiau" : "Kahe")
            << " + DRFortress), " << options.realizations
            << " realizations ===\n\n";

  const auto results = runner.run_configs(configs, scenario);

  std::cout << "measured operational profiles:\n";
  core::profile_table(results).render(std::cout);

  const auto& expected = core::paper_expected(figure_id);
  std::cout << "\nmeasured vs paper:\n";
  core::comparison_table(results, expected).render(std::cout);

  const double delta = core::max_abs_delta(results, expected);
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  std::cout << "\nmax |measured - paper| = "
            << util::format_fixed(delta * 100.0, 2) << " pp across all "
            << results.size() * 4 << " cells\n"
            << "wall time: " << util::format_fixed(elapsed.count(), 1)
            << " s\n\n";
  return 0;
}

}  // namespace ct::bench
