// Regenerates the paper's Fig7 (see DESIGN.md §4).
#include "figure_bench.h"

int main() {
  return ct::bench::run_figure_bench(
      "fig7", ct::threat::ThreatScenario::kHurricaneIntrusion,
      ct::bench::Siting::kWaiau);
}
