// Extension bench: restoration costs behind the colors. The paper reports
// state probabilities; operators budget in hours. Converts each
// configuration x scenario profile into expected downtime, expected
// incorrect-operation hours, and p95 downtime under exponential repair
// time uncertainty.
#include <iostream>

#include "core/case_study.h"
#include "core/restoration.h"
#include "figure_bench.h"
#include "scada/oahu.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== restoration costs (hours) per configuration x scenario "
               "===\n\n";
  core::CaseStudyOptions options;
  options.realizations = bench::bench_realizations();
  core::CaseStudyRunner runner = core::make_oahu_case_study(options);
  const auto& realizations = runner.realizations();

  const core::RestorationModel model;
  std::cout << "model: cold activation " << model.activation_minutes
            << " min, flood repair " << model.flood_repair_hours
            << " h, isolation duration " << model.isolation_duration_hours
            << " h,\n       compromise detection "
            << model.compromise_detection_hours << " h, cleanup "
            << model.compromise_cleanup_hours << " h\n\n";

  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);

  for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
    util::TextTable table;
    table.set_columns({"config", "E[downtime] h", "p95 downtime h",
                       "E[incorrect] h", "P(any downtime)"},
                      {util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});
    for (const auto& config : configs) {
      const core::RestorationResult r = core::analyze_restoration(
          config, scenario, realizations, model, /*samples=*/4);
      table.add_row({config.name,
                     util::format_fixed(r.expected_downtime_hours, 2),
                     util::format_fixed(r.p95_downtime_hours, 2),
                     util::format_fixed(r.expected_incorrect_hours, 2),
                     util::format_percent(r.p_any_downtime, 1)});
    }
    std::cout << threat::scenario_name(scenario) << ":\n";
    table.render(std::cout);
    std::cout << "\n";
  }
  std::cout << "expected shape: \"6+6+6\" minimizes downtime in every "
               "scenario; \"2\"/\"2-2\" trade\ndowntime for incorrect-"
               "operation hours once intrusions appear (the worst cell).\n";
  return 0;
}
