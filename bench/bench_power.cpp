// Extension bench (paper §VII future work): operational profiles as a
// function of attacker power. Sweeps the per-attempt success probability
// from 0 (no attacker, Fig. 6) to 1 (the paper's worst case, Fig. 9) using
// the exact binomial mixture — showing how much of the worst-case loss
// materializes against weaker, more realistic adversaries.
#include <iostream>

#include "core/attacker_power.h"
#include "core/case_study.h"
#include "figure_bench.h"
#include "scada/oahu.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== attacker-power sweep (extension of Figs. 6/9) ===\n\n";
  core::CaseStudyOptions options;
  options.realizations = bench::bench_realizations();
  core::CaseStudyRunner runner = core::make_oahu_case_study(options);
  const auto& realizations = runner.realizations();

  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);

  for (const auto& config : configs) {
    util::TextTable table;
    table.set_columns({"attack success p", "green", "orange", "red", "gray"},
                      {util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});
    for (const double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      threat::AttackerPower power;
      power.intrusion_success = p;
      power.isolation_success = p;
      const core::PowerScenarioResult result =
          core::analyze_with_power(config, power, realizations);
      using threat::OperationalState;
      table.add_row(
          {util::format_fixed(p, 2),
           util::format_percent(
               result.outcomes.probability(OperationalState::kGreen), 1),
           util::format_percent(
               result.outcomes.probability(OperationalState::kOrange), 1),
           util::format_percent(
               result.outcomes.probability(OperationalState::kRed), 1),
           util::format_percent(
               result.outcomes.probability(OperationalState::kGray), 1)});
    }
    std::cout << "configuration \"" << config.name << "\":\n";
    table.render(std::cout);
    std::cout << "\n";
  }
  std::cout << "p=0 row must match fig6; p=1 row must match fig9. "
               "Intrusion-tolerant architectures\ndegrade gracefully; \"2\" "
               "and \"2-2\" lose green mass linearly in p.\n";
  return 0;
}
