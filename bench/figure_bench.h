// Shared driver for the figure-regeneration benches: each bench binary
// reproduces one of the paper's evaluation figures (operational profiles
// of the five SCADA architectures under one threat scenario and siting),
// prints measured-vs-paper tables, and reports the worst probability
// delta.
//
// Realization count defaults to the paper's 1000; set CT_BENCH_REALIZATIONS
// to override (e.g. 200 for a quick pass).
#pragma once

#include <string>

#include "threat/scenario.h"

namespace ct::bench {

/// Which backup control center the siting uses (the paper's two variants).
enum class Siting {
  kWaiau,  ///< Honolulu + Waiau + DRFortress (Figs. 6-9)
  kKahe,   ///< Honolulu + Kahe + DRFortress (Figs. 10-11)
};

/// Number of realizations to run (CT_BENCH_REALIZATIONS or 1000).
std::size_t bench_realizations();

/// Runs the figure bench: returns 0 on success (the bench always succeeds;
/// fidelity is reported, not asserted — EXPERIMENTS.md records the deltas).
int run_figure_bench(const std::string& figure_id,
                     threat::ThreatScenario scenario, Siting siting);

}  // namespace ct::bench
