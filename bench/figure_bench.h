// Shared driver for the figure-regeneration benches: each bench binary
// reproduces one of the paper's evaluation figures (operational profiles
// of the five SCADA architectures under one threat scenario and siting),
// prints measured-vs-paper tables, and reports the worst probability
// delta.
//
// Since the ensemble runtime landed, every figure bench also measures the
// runtime itself: the sweep runs once serially (--jobs 1, cache off) and
// once on the work-stealing pool, asserts the two outcome distributions
// are bit-identical, replays the sweep warm to measure the result-cache
// hit rate, and appends the numbers to BENCH_runtime.json so the perf
// trajectory is tracked per commit.
//
// Realization count defaults to the paper's 1000; set CT_BENCH_REALIZATIONS
// to override (e.g. 200 for a quick pass). CT_BENCH_JOBS sets the parallel
// worker count (default 8).
#pragma once

#include <cstdint>
#include <string>

#include "threat/scenario.h"

namespace ct::bench {

/// Which backup control center the siting uses (the paper's two variants).
enum class Siting {
  kWaiau,  ///< Honolulu + Waiau + DRFortress (Figs. 6-9)
  kKahe,   ///< Honolulu + Kahe + DRFortress (Figs. 10-11)
};

/// Number of realizations to run (CT_BENCH_REALIZATIONS or 1000).
std::size_t bench_realizations();

/// Parallel worker count for the runtime measurement (CT_BENCH_JOBS or 8).
unsigned bench_jobs();

/// One serial-vs-parallel runtime measurement, recorded per bench binary.
struct RuntimeBenchRecord {
  std::string name;            ///< bench binary name ("bench_fig6", ...)
  std::size_t realizations = 0;
  unsigned jobs = 0;           ///< parallel worker count
  double serial_s = 0.0;       ///< cold sweep, --jobs 1, cache off
  double parallel_s = 0.0;     ///< cold sweep on the pool
  double warm_s = 0.0;         ///< repeated sweep served from the cache
  bool identical = false;      ///< parallel outcomes bit-identical to serial
  std::uint64_t cache_lookups = 0;  ///< result-cache lookups, warm pass only
  std::uint64_t cache_hits = 0;     ///< result-cache hits, warm pass only

  // Fault-isolated runtime (PR 6): the same sweep through the guarded
  // entry points with no fault profile (healthy-path overhead of the
  // quarantine machinery) and under an injected fault profile (degraded
  // path, quarantine accounting included).
  double guarded_s = 0.0;  ///< cold guarded sweep, fault profile off
  double fault_s = 0.0;    ///< guarded sweep incl. generation, faults injected
  std::size_t fault_quarantined = 0;  ///< realizations quarantined
  std::uint64_t fault_retries = 0;    ///< retry attempts spent

  // Checkpointed runtime (PR 7): the same fused sweep through
  // run_resumable with checkpointing off (baseline) and with the journal
  // on at three intervals; overhead is fsync-bound, so it shrinks as the
  // interval grows.
  double resumable_s = 0.0;      ///< run_resumable, checkpointing off
  double checkpoint32_s = 0.0;   ///< journal on, --checkpoint-interval 32
  double checkpoint_s = 0.0;     ///< journal on, default interval (128)
  double checkpoint512_s = 0.0;  ///< journal on, --checkpoint-interval 512
  std::uint64_t checkpoint_writes = 0;  ///< durable writes, default interval

  double speedup() const noexcept {
    return parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  }
  double warm_hit_rate() const noexcept {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
  /// Healthy-path cost of the guarded entry points relative to the plain
  /// pooled sweep (0.02 = 2% slower; negative = in the noise).
  double guarded_overhead() const noexcept {
    return parallel_s > 0.0 && guarded_s > 0.0
               ? guarded_s / parallel_s - 1.0
               : 0.0;
  }
  /// Durability cost at the default checkpoint interval relative to the
  /// same sweep with checkpointing off (acceptance bound: <= 3%).
  double checkpoint_overhead() const noexcept {
    return resumable_s > 0.0 && checkpoint_s > 0.0
               ? checkpoint_s / resumable_s - 1.0
               : 0.0;
  }
};

/// Merges the record into `path` (default BENCH_runtime.json in the cwd):
/// one JSON object keyed by record name, one record per line, existing
/// records for other benches preserved. An unreadable file is rebuilt.
void write_runtime_bench_record(const RuntimeBenchRecord& record,
                                const std::string& path = "BENCH_runtime.json");

/// Realization hot-path timings, recorded by bench_micro: the legacy
/// allocating pipeline vs the MeshBindings fast path, plus the two
/// post-processing kernels the fast path made allocation-free.
struct SurgeBenchRecord {
  std::string name;              ///< record key ("bench_micro")
  std::size_t realizations = 0;  ///< cold realizations timed per variant
  double reference_ms = 0.0;     ///< legacy pipeline, per realization
  double fast_ms = 0.0;          ///< MeshBindings hot path, per realization
  double smoothing_ms = 0.0;     ///< in-place shoreline smoothing, per call
  double asset_bind_ms = 0.0;    ///< stencil impacts_into, per call
  std::size_t active_nodes = 0;  ///< influence-set size the fast path visits
  std::size_t mesh_nodes = 0;    ///< total mesh nodes the legacy path visits
  bool identical = false;        ///< fast path bit-identical to reference

  double speedup() const noexcept {
    return fast_ms > 0.0 ? reference_ms / fast_ms : 0.0;
  }
};

/// Same line-merge format as write_runtime_bench_record, separate file so
/// the hot-path trajectory is tracked independently of sweep runtimes.
void write_surge_bench_record(const SurgeBenchRecord& record,
                              const std::string& path = "BENCH_surge.json");

/// DES engine throughput: the pooled hot path (slab events, message
/// freelist, indexed quorum state) vs the verbatim reference engine in
/// sim/reference_des.cpp, over the same run corpus. Recorded by
/// bench_micro ("bench_micro": event loop + quorum round + chaos-style
/// sweep) and bench_des ("bench_des": the A4 flood-mask corpus).
struct DesBenchRecord {
  std::string name;                ///< record key
  std::uint64_t runs = 0;          ///< simulated runs timed per engine
  std::uint64_t events = 0;        ///< events processed per engine pass
  double reference_s = 0.0;        ///< run corpus wall time, reference
  double fast_s = 0.0;             ///< run corpus wall time, pooled engine
  double quorum_round_ms = 0.0;    ///< BFT request->quorum->execute round
  double sweep_reference_s = 0.0;  ///< fault-plan sweep, reference engine
  double sweep_fast_s = 0.0;       ///< fault-plan sweep, pooled + arena
  std::uint64_t sweep_runs = 0;
  bool identical = false;          ///< every outcome field-identical

  double reference_events_per_s() const noexcept {
    return reference_s > 0.0 ? static_cast<double>(events) / reference_s : 0.0;
  }
  double fast_events_per_s() const noexcept {
    return fast_s > 0.0 ? static_cast<double>(events) / fast_s : 0.0;
  }
  /// Events/sec ratio, pooled over reference (acceptance bound: >= 3x).
  double speedup() const noexcept {
    return reference_events_per_s() > 0.0 && fast_events_per_s() > 0.0
               ? fast_events_per_s() / reference_events_per_s()
               : 0.0;
  }
  double sweep_speedup() const noexcept {
    return sweep_fast_s > 0.0 && sweep_reference_s > 0.0
               ? sweep_reference_s / sweep_fast_s
               : 0.0;
  }
};

/// Same line-merge format, separate BENCH_des.json file tracking the DES
/// engine's throughput trajectory.
void write_des_bench_record(const DesBenchRecord& record,
                            const std::string& path = "BENCH_des.json");

/// Observability overhead (PR 10): per-op cost of the ct_obs primitives
/// and the enabled-vs-disabled cost of the instrumented DES hot loop.
/// Recorded by bench_micro; the <2% enabled-but-idle bound is asserted in
/// its exit code.
struct ObsBenchRecord {
  std::string name;                  ///< record key ("bench_micro")
  double counter_inc_ns = 0.0;       ///< Counter::inc, registry enabled
  double counter_disabled_ns = 0.0;  ///< Counter::inc, registry disabled
  double histogram_observe_ns = 0.0; ///< Histogram::observe, enabled
  double span_ns = 0.0;              ///< Span ctor+dtor, tracing enabled
  double span_idle_ns = 0.0;         ///< Span ctor+dtor, tracing off
  std::uint64_t des_runs = 0;        ///< DES runs timed per variant
  double des_obs_off_s = 0.0;        ///< instrumented loop, CT_OBS off
  double des_obs_on_s = 0.0;         ///< instrumented loop, CT_OBS on
  bool identical = false;            ///< outcomes bit-identical on vs off

  /// Enabled-but-idle cost of the instrumentation on the DES hot loop
  /// (0.02 = 2% slower; the acceptance bound).
  double des_overhead() const noexcept {
    return des_obs_off_s > 0.0 && des_obs_on_s > 0.0
               ? des_obs_on_s / des_obs_off_s - 1.0
               : 0.0;
  }
};

/// Same line-merge format, separate BENCH_obs.json file tracking the
/// observability overhead trajectory.
void write_obs_bench_record(const ObsBenchRecord& record,
                            const std::string& path = "BENCH_obs.json");

/// Runs the figure bench: returns 0 when the parallel outcome
/// distributions are bit-identical to the serial ones (fidelity to the
/// paper is still reported, not asserted — EXPERIMENTS.md records the
/// deltas), 1 on a determinism violation.
int run_figure_bench(const std::string& figure_id,
                     threat::ThreatScenario scenario, Siting siting);

}  // namespace ct::bench
