// Ablation A5: the paper's §VII open question — how should control-site
// locations be chosen to maximize availability under compound threats?
// Exhaustively ranks backup sites for "6-6" and (second CC, data center)
// pairs for "6+6+6" against the full realization ensemble.
#include <iostream>

#include "core/case_study.h"
#include "core/siting.h"
#include "figure_bench.h"
#include "scada/oahu.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

namespace {

void print_scores(const std::vector<core::SitingScore>& scores) {
  util::TextTable table;
  table.set_columns({"sites", "green", "orange", "red", "gray",
                     "E[badness]"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  for (const auto& s : scores) {
    table.add_row({util::join(s.chosen, " + "),
                   util::format_percent(s.green_probability, 1),
                   util::format_percent(s.orange_probability, 1),
                   util::format_percent(s.red_probability, 1),
                   util::format_percent(s.gray_probability, 1),
                   util::format_fixed(s.expected_badness, 3)});
  }
  table.render(std::cout);
}

}  // namespace

int main() {
  std::cout << "=== A5: control-site placement optimization (paper §VII) "
               "===\n\n";
  core::CaseStudyOptions options;
  options.realizations = bench::bench_realizations();
  core::CaseStudyRunner runner = core::make_oahu_case_study(options);
  core::SitingOptimizer optimizer(runner);
  const auto candidates = scada::oahu_control_site_candidates();

  for (const threat::ThreatScenario scenario :
       {threat::ThreatScenario::kHurricane,
        threat::ThreatScenario::kHurricaneIntrusionIsolation}) {
    std::cout << "backup site for \"6-6\" under "
              << threat::scenario_name(scenario) << ":\n";
    print_scores(optimizer.rank_backup_sites(scada::oahu_ids::kHonoluluCc,
                                             candidates, scenario));
    std::cout << "\n(second CC, data center) for \"6+6+6\" under "
              << threat::scenario_name(scenario) << ":\n";
    print_scores(optimizer.rank_site_pairs(scada::oahu_ids::kHonoluluCc,
                                           candidates, scenario));
    std::cout << "\n";
  }
  std::cout << "expected: Kahe dominates Waiau as backup (the paper's "
               "headline siting finding);\nany dry pair makes \"6+6+6\" "
               "fully green under the hurricane scenario.\n";
  return 0;
}
