// Regenerates the paper's Fig11 (see DESIGN.md §4).
#include "figure_bench.h"

int main() {
  return ct::bench::run_figure_bench(
      "fig11", ct::threat::ThreatScenario::kHurricaneIntrusion,
      ct::bench::Siting::kKahe);
}
