// Extension bench: wind damage to grid assets (the hurricane-damage
// channel the paper notes but defers). Reports per-asset wind-failure
// rates and the distribution of simultaneously damaged grid assets — the
// "how much of the grid is dark while SCADA itself is under attack"
// context for the compound-threat story.
#include <iostream>

#include "figure_bench.h"
#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== wind fragility of grid assets (extension) ===\n\n";
  const std::size_t n = bench::bench_realizations();
  const scada::ScadaTopology topo = scada::oahu_topology();

  surge::RealizationConfig config;
  config.fragility.enabled = true;
  std::cout << "fragility curves (lognormal): substations median "
            << config.fragility.substation.median_wind_ms << " m/s (beta "
            << config.fragility.substation.beta << "), plants median "
            << config.fragility.power_plant.median_wind_ms << " m/s\n\n";

  const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                        topo.exposed_assets(), config);
  const auto batch = engine.run_batch(n);

  util::TextTable per_asset;
  per_asset.set_columns({"asset", "class", "mean peak wind", "max peak wind",
                         "P(wind failure)"},
                        {util::Align::kLeft, util::Align::kLeft,
                         util::Align::kRight, util::Align::kRight,
                         util::Align::kRight});
  for (std::size_t a = 0; a < topo.assets().size(); ++a) {
    const scada::Asset& asset = topo.assets()[a];
    if (asset.type == scada::AssetType::kControlCenter ||
        asset.type == scada::AssetType::kDataCenter) {
      continue;  // wind-hardened facilities: not part of this study
    }
    util::RunningStats wind;
    std::size_t failures = 0;
    for (const auto& r : batch) {
      wind.add(r.impacts[a].peak_wind_ms);
      if (r.impacts[a].wind_failed) ++failures;
    }
    per_asset.add_row(
        {asset.id, std::string(asset_type_name(asset.type)),
         util::format_fixed(wind.mean(), 1), util::format_fixed(wind.max(), 1),
         util::format_percent(
             static_cast<double>(failures) / static_cast<double>(n), 1)});
  }
  per_asset.render(std::cout);

  // Distribution of simultaneous grid-asset failures per realization.
  util::Histogram damaged(0.0, 16.0, 16);
  std::size_t flood_and_wind = 0;
  for (const auto& r : batch) {
    damaged.add(static_cast<double>(r.wind_damage_count()));
    if (r.wind_damage_count() > 0 &&
        r.asset_failed(scada::oahu_ids::kHonoluluCc)) {
      ++flood_and_wind;
    }
  }
  std::cout << "\nsimultaneously wind-damaged grid assets per realization:\n";
  util::TextTable hist;
  hist.set_columns({"damaged assets", "realizations"},
                   {util::Align::kRight, util::Align::kRight});
  for (std::size_t b = 0; b < damaged.bins(); ++b) {
    if (damaged.bin_count(b) == 0) continue;
    hist.add_row({std::to_string(static_cast<int>(damaged.bin_lo(b))),
                  std::to_string(damaged.bin_count(b))});
  }
  hist.render(std::cout);
  std::cout << "\nrealizations where the control center flooded AND grid "
               "assets were wind-damaged: "
            << flood_and_wind << "/" << n
            << "\n(the compound-threat worst case: SCADA degraded exactly "
               "when the grid needs it most)\n";
  return 0;
}
