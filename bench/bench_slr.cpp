// Extension bench: sea-level rise sensitivity. The compound-threat profile
// of every architecture as mean sea level rises — the climate-adaptation
// version of the paper's question (its motivation section is explicitly
// about climatic change compounding with man-made threats).
#include <iostream>

#include "core/case_study.h"
#include "core/pipeline.h"
#include "figure_bench.h"
#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== sea-level-rise sweep (hurricane scenario) ===\n\n";
  const std::size_t n = bench::bench_realizations();
  const scada::ScadaTopology topo = scada::oahu_topology();
  const core::AnalysisPipeline pipeline;
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const auto kahe_configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kKaheCc,
      scada::oahu_ids::kDrFortress);

  util::TextTable table;
  table.set_columns({"SLR (m)", "P(honolulu)", "P(waiau)", "P(kahe)",
                     "\"6+6+6\"/waiau green", "\"6+6+6\"/kahe green"},
                    {util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});

  for (const double slr : {0.0, 0.15, 0.3, 0.5, 0.75, 1.0}) {
    surge::RealizationConfig config;
    config.sea_level_offset_m = slr;
    const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                          topo.exposed_assets(), config);
    const auto batch = engine.run_batch(n);
    const auto rate = [&](const char* id) {
      std::size_t failures = 0;
      for (const auto& r : batch) {
        if (r.asset_failed(id)) ++failures;
      }
      return static_cast<double>(failures) / static_cast<double>(batch.size());
    };
    const auto green = [&](const scada::Configuration& c) {
      return pipeline.analyze(c, threat::ThreatScenario::kHurricane, batch)
          .outcomes.probability(threat::OperationalState::kGreen);
    };
    table.add_row({util::format_fixed(slr, 2),
                   util::format_percent(rate(scada::oahu_ids::kHonoluluCc), 1),
                   util::format_percent(rate(scada::oahu_ids::kWaiauCc), 1),
                   util::format_percent(rate(scada::oahu_ids::kKaheCc), 1),
                   util::format_percent(green(configs[4]), 1),
                   util::format_percent(green(kahe_configs[4]), 1)});
  }
  table.render(std::cout);
  std::cout << "\nexpected shape: flood probabilities grow with SLR; the "
               "Kahe siting stays green far\nlonger than the Waiau siting "
               "(elevation margin), reinforcing the paper's siting "
               "lesson.\n";
  return 0;
}
