// Regenerates the paper's Fig6 (see DESIGN.md §4).
#include "figure_bench.h"

int main() {
  return ct::bench::run_figure_bench(
      "fig6", ct::threat::ThreatScenario::kHurricane,
      ct::bench::Siting::kWaiau);
}
