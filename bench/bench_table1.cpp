// Regenerates the paper's Table I: the conditions determining the
// operational state for each SCADA configuration. The table is derived
// from the generic evaluator by sweeping every reachable system state, and
// cross-checked two ways: against the hand-transcribed Table I rows and
// against the discrete-event protocol simulation.
#include <iostream>
#include <vector>

#include "core/evaluator.h"
#include "scada/configuration.h"
#include "sim/scada_des.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "util/table.h"

using namespace ct;

namespace {

std::vector<threat::SystemState> reachable_states(
    const scada::Configuration& config) {
  // Site status in {up, flooded, isolated}, intrusions 0..2 per site.
  std::vector<threat::SystemState> out;
  const std::size_t n = config.sites.size();
  std::size_t status_combos = 1;
  for (std::size_t i = 0; i < n; ++i) status_combos *= 3;
  std::size_t intrusion_combos = 1;
  for (std::size_t i = 0; i < n; ++i) intrusion_combos *= 3;
  const std::array<threat::SiteStatus, 3> statuses = {
      threat::SiteStatus::kUp, threat::SiteStatus::kFlooded,
      threat::SiteStatus::kIsolated};
  for (std::size_t sc = 0; sc < status_combos; ++sc) {
    for (std::size_t ic = 0; ic < intrusion_combos; ++ic) {
      threat::SystemState s;
      std::size_t sr = sc;
      std::size_t ir = ic;
      for (std::size_t i = 0; i < n; ++i) {
        s.site_status.push_back(statuses[sr % 3]);
        s.intrusions.push_back(static_cast<int>(ir % 3));
        sr /= 3;
        ir /= 3;
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::string describe_conditions(const scada::Configuration& config,
                                threat::OperationalState target) {
  // Summarize which states map to `target` by probing canonical cases;
  // Table I is re-derived as counts over the full reachable state space.
  std::size_t count = 0;
  std::size_t total = 0;
  for (const threat::SystemState& s : reachable_states(config)) {
    ++total;
    if (core::evaluate(config, s) == target) ++count;
  }
  return std::to_string(count) + "/" + std::to_string(total);
}

}  // namespace

int main() {
  std::cout << "=== Table I: operational-state conditions per configuration "
               "===\n\n";

  const auto configs = scada::paper_configurations("primary", "backup", "dc");

  // Part 1: state-space census per configuration and color.
  util::TextTable census;
  census.set_columns({"config", "green", "orange", "red", "gray"},
                     {util::Align::kLeft, util::Align::kRight,
                      util::Align::kRight, util::Align::kRight,
                      util::Align::kRight});
  for (const auto& config : configs) {
    census.add_row(
        {config.name,
         describe_conditions(config, threat::OperationalState::kGreen),
         describe_conditions(config, threat::OperationalState::kOrange),
         describe_conditions(config, threat::OperationalState::kRed),
         describe_conditions(config, threat::OperationalState::kGray)});
  }
  std::cout << "reachable-state census (states mapping to each color):\n";
  census.render(std::cout);

  // Part 2: generic evaluator vs transcribed Table I over every state.
  std::size_t disagreements = 0;
  std::size_t checked = 0;
  for (const auto& config : configs) {
    for (const threat::SystemState& s : reachable_states(config)) {
      ++checked;
      if (core::evaluate(config, s) != core::evaluate_table1(config, s)) {
        ++disagreements;
      }
    }
  }
  std::cout << "\ngeneric evaluator vs transcribed Table I: " << checked
            << " states checked, " << disagreements << " disagreements\n";

  // Part 3: analytic classification vs the discrete-event protocol
  // simulation across every flood pattern and threat scenario.
  sim::DesOptions des_options;
  des_options.horizon_s = 600.0;
  des_options.attack_time_s = 120.0;
  des_options.settle_window_s = 150.0;
  des_options.orange_gap_s = 70.0;
  des_options.pb.activation_delay_s = 120.0;
  des_options.pb.controller_outage_threshold_s = 15.0;
  des_options.pb.controller_check_interval_s = 3.0;
  des_options.bft.activation_delay_s = 120.0;
  des_options.bft.view_timeout_s = 8.0;

  std::size_t des_runs = 0;
  std::size_t des_matches = 0;
  const threat::GreedyWorstCaseAttacker attacker;
  for (const auto& config : configs) {
    const sim::ScadaDes des(config, des_options);
    const std::size_t n = config.sites.size();
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      threat::SystemState base;
      base.intrusions.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        base.site_status.push_back((mask >> i) & 1
                                       ? threat::SiteStatus::kFlooded
                                       : threat::SiteStatus::kUp);
      }
      for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
        const threat::SystemState attacked = attacker.attack(
            config, base, threat::capability_for(scenario));
        ++des_runs;
        if (des.run(attacked).observed == core::evaluate(config, attacked)) {
          ++des_matches;
        }
      }
    }
  }
  std::cout << "protocol simulation vs Table I: " << des_matches << "/"
            << des_runs << " scenario runs agree\n";
  return 0;
}
