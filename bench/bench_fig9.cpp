// Regenerates the paper's Fig9 (see DESIGN.md §4).
#include "figure_bench.h"

int main() {
  return ct::bench::run_figure_bench(
      "fig9", ct::threat::ThreatScenario::kHurricaneIntrusionIsolation,
      ct::bench::Siting::kWaiau);
}
