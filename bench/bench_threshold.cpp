// Ablation A3: sensitivity to the asset-failure inundation threshold. The
// paper fixes 0.5 m ("the typical height for switches in power plants and
// substations"); this sweep shows how the case-study conclusions move if
// equipment were mounted lower or higher.
#include <iostream>

#include "core/pipeline.h"
#include "core/report.h"
#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== A3: failure-threshold sweep (paper: 0.5 m) ===\n\n";

  const scada::ScadaTopology topo = scada::oahu_topology();
  const core::AnalysisPipeline pipeline;
  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);

  util::TextTable table;
  table.set_columns({"threshold (m)", "P(honolulu)", "P(waiau)", "P(kahe)",
                     "\"2\" red", "\"6+6+6\" green"},
                    {util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});

  const std::size_t n = 500;
  for (const double threshold :
       {0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5}) {
    surge::RealizationConfig config;
    config.inundation.failure_threshold_m = threshold;
    const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                          topo.exposed_assets(), config);
    const auto batch = engine.run_batch(n);

    const auto rate = [&](const char* id) {
      std::size_t failures = 0;
      for (const auto& r : batch) {
        if (r.asset_failed(id)) ++failures;
      }
      return static_cast<double>(failures) / static_cast<double>(n);
    };

    const auto two = pipeline.analyze(
        configs[0], threat::ThreatScenario::kHurricane, batch);
    const auto triple = pipeline.analyze(
        configs[4], threat::ThreatScenario::kHurricane, batch);

    table.add_row(
        {util::format_fixed(threshold, 2),
         util::format_percent(rate(scada::oahu_ids::kHonoluluCc), 1),
         util::format_percent(rate(scada::oahu_ids::kWaiauCc), 1),
         util::format_percent(rate(scada::oahu_ids::kKaheCc), 1),
         util::format_percent(
             two.outcomes.probability(threat::OperationalState::kRed), 1),
         util::format_percent(
             triple.outcomes.probability(threat::OperationalState::kGreen),
             1)});
  }
  table.render(std::cout);
  std::cout << "\nexpected shape: flood probabilities fall monotonically "
               "with the threshold;\nKahe stays dry at every threshold "
               "(elevated site), preserving the siting conclusion.\n";
  return 0;
}
