// Ablation A4: discrete-event protocol simulation vs the analytic Table-I
// classifier, with per-configuration event/message costs. This is the
// evidence that the paper's state classification rules follow from
// protocol behaviour rather than being assumed.
#include <chrono>
#include <iostream>

#include "core/evaluator.h"
#include "scada/configuration.h"
#include "sim/scada_des.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== A4: protocol simulation vs analytic classifier ===\n\n";

  sim::DesOptions options;
  options.horizon_s = 900.0;
  options.attack_time_s = 150.0;
  options.settle_window_s = 200.0;
  options.orange_gap_s = 100.0;
  options.pb.activation_delay_s = 180.0;
  options.pb.controller_outage_threshold_s = 15.0;
  options.pb.controller_check_interval_s = 3.0;
  options.bft.activation_delay_s = 180.0;
  options.bft.view_timeout_s = 8.0;

  util::TextTable table;
  table.set_columns({"config", "runs", "agreements", "events/run",
                     "messages/run", "ms/run"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});

  const threat::GreedyWorstCaseAttacker attacker;
  for (const auto& config :
       scada::paper_configurations("primary", "backup", "dc")) {
    const sim::ScadaDes des(config, options);
    const std::size_t n = config.sites.size();
    std::size_t runs = 0;
    std::size_t agreements = 0;
    std::uint64_t events = 0;
    std::uint64_t messages = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      threat::SystemState base;
      base.intrusions.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        base.site_status.push_back((mask >> i) & 1
                                       ? threat::SiteStatus::kFlooded
                                       : threat::SiteStatus::kUp);
      }
      for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
        const threat::SystemState attacked =
            attacker.attack(config, base, threat::capability_for(scenario));
        const sim::DesOutcome outcome = des.run(attacked);
        ++runs;
        events += outcome.events;
        messages += outcome.messages;
        if (outcome.observed == core::evaluate(config, attacked)) {
          ++agreements;
        }
      }
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    table.add_row({config.name, std::to_string(runs),
                   std::to_string(agreements),
                   std::to_string(events / runs),
                   std::to_string(messages / runs),
                   util::format_fixed(elapsed_ms / static_cast<double>(runs),
                                      1)});
  }
  table.render(std::cout);
  std::cout << "\nexpected: agreements == runs for every configuration.\n";
  return 0;
}
