// Ablation A4: discrete-event protocol simulation vs the analytic Table-I
// classifier, with per-configuration event/message costs. This is the
// evidence that the paper's state classification rules follow from
// protocol behaviour rather than being assumed.
//
// Since the DES hot-path overhaul, every run in the corpus also executes
// on the verbatim reference engine (sim/reference_des.cpp): the table
// reports both engines' ms/run, the identity column asserts every outcome
// is field-identical, and the totals are merged into BENCH_des.json as
// the "bench_des" record.
#include <chrono>
#include <iostream>

#include "core/evaluator.h"
#include "figure_bench.h"
#include "scada/configuration.h"
#include "sim/scada_des.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== A4: protocol simulation vs analytic classifier ===\n\n";

  sim::DesOptions options;
  options.horizon_s = 900.0;
  options.attack_time_s = 150.0;
  options.settle_window_s = 200.0;
  options.orange_gap_s = 100.0;
  options.pb.activation_delay_s = 180.0;
  options.pb.controller_outage_threshold_s = 15.0;
  options.pb.controller_check_interval_s = 3.0;
  options.bft.activation_delay_s = 180.0;
  options.bft.view_timeout_s = 8.0;

  util::TextTable table;
  table.set_columns({"config", "runs", "agreements", "events/run",
                     "messages/run", "ms/run", "ref ms/run", "identical"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});

  bench::DesBenchRecord record;
  record.name = "bench_des";
  record.identical = true;
  bool all_agree = true;

  const threat::GreedyWorstCaseAttacker attacker;
  sim::DesArena arena;
  for (const auto& config :
       scada::paper_configurations("primary", "backup", "dc")) {
    const sim::ScadaDes des(config, options);
    const std::size_t n = config.sites.size();
    std::size_t runs = 0;
    std::size_t agreements = 0;
    std::uint64_t events = 0;
    std::uint64_t messages = 0;
    bool identical = true;
    double fast_ms = 0.0;
    double reference_ms = 0.0;
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      threat::SystemState base;
      base.intrusions.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        base.site_status.push_back((mask >> i) & 1
                                       ? threat::SiteStatus::kFlooded
                                       : threat::SiteStatus::kUp);
      }
      for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
        const threat::SystemState attacked =
            attacker.attack(config, base, threat::capability_for(scenario));
        const auto fast_start = std::chrono::steady_clock::now();
        const sim::DesOutcome outcome = des.run(attacked, arena);
        fast_ms += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - fast_start)
                       .count();
        const auto ref_start = std::chrono::steady_clock::now();
        const sim::DesOutcome reference = des.run_reference(attacked);
        reference_ms += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - ref_start)
                            .count();
        identical = identical && sim::des_outcomes_identical(outcome,
                                                             reference);
        ++runs;
        events += outcome.events;
        messages += outcome.messages;
        if (outcome.observed == core::evaluate(config, attacked)) {
          ++agreements;
        }
      }
    }
    record.runs += runs;
    record.events += events;
    record.fast_s += fast_ms / 1000.0;
    record.reference_s += reference_ms / 1000.0;
    record.identical = record.identical && identical;
    all_agree = all_agree && agreements == runs;
    table.add_row({config.name, std::to_string(runs),
                   std::to_string(agreements),
                   std::to_string(events / runs),
                   std::to_string(messages / runs),
                   util::format_fixed(fast_ms / static_cast<double>(runs), 1),
                   util::format_fixed(
                       reference_ms / static_cast<double>(runs), 1),
                   identical ? "yes" : "NO"});
  }
  table.render(std::cout);
  bench::write_des_bench_record(record);
  std::cout << "\nexpected: agreements == runs for every configuration.\n"
            << "corpus: " << record.runs << " runs, pooled "
            << util::format_fixed(record.fast_s, 2) << " s ("
            << util::format_fixed(record.fast_events_per_s() / 1e6, 2)
            << " M ev/s), reference "
            << util::format_fixed(record.reference_s, 2) << " s ("
            << util::format_fixed(record.speedup(), 2) << "x), "
            << (record.identical ? "bit-identical" : "NOT IDENTICAL")
            << "; recorded in BENCH_des.json\n";
  return record.identical && all_agree ? 0 : 1;
}
