// Regenerates the paper's Fig8 (see DESIGN.md §4).
#include "figure_bench.h"

int main() {
  return ct::bench::run_figure_bench(
      "fig8", ct::threat::ThreatScenario::kHurricaneIsolation,
      ct::bench::Siting::kWaiau);
}
