// Ablation A1: the paper's greedy worst-case attack algorithm vs the naive
// exhaustive search it replaces ("analyze the results of attacking every
// possible combination of targets"). Verifies outcome equivalence and
// measures the efficiency gap with google-benchmark.
#include <iostream>

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "scada/configuration.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "util/table.h"

using namespace ct;

namespace {

std::vector<threat::SystemState> flood_patterns(
    const scada::Configuration& config) {
  std::vector<threat::SystemState> out;
  const std::size_t n = config.sites.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    threat::SystemState s;
    s.intrusions.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      s.site_status.push_back((mask >> i) & 1 ? threat::SiteStatus::kFlooded
                                              : threat::SiteStatus::kUp);
    }
    out.push_back(std::move(s));
  }
  return out;
}

const std::vector<scada::Configuration>& all_configs() {
  static const auto configs =
      scada::paper_configurations("primary", "backup", "dc");
  return configs;
}

void BM_GreedyAttacker(benchmark::State& state) {
  const scada::Configuration& config =
      all_configs()[static_cast<std::size_t>(state.range(0))];
  const auto patterns = flood_patterns(config);
  const threat::GreedyWorstCaseAttacker attacker;
  const threat::AttackerCapability cap{1, 1};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attacker.attack(config, patterns[i % patterns.size()], cap));
    ++i;
  }
  state.SetLabel(config.name);
}
BENCHMARK(BM_GreedyAttacker)->DenseRange(0, 4);

void BM_ExhaustiveAttacker(benchmark::State& state) {
  const scada::Configuration& config =
      all_configs()[static_cast<std::size_t>(state.range(0))];
  const auto patterns = flood_patterns(config);
  const threat::ExhaustiveAttacker attacker(
      [&config](const threat::SystemState& s) {
        return core::evaluate(config, s);
      });
  const threat::AttackerCapability cap{1, 1};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attacker.attack(config, patterns[i % patterns.size()], cap));
    ++i;
  }
  state.SetLabel(config.name);
}
BENCHMARK(BM_ExhaustiveAttacker)->DenseRange(0, 4);

/// Equivalence report printed before the timing run.
void print_equivalence_report() {
  std::cout << "=== A1: greedy vs exhaustive worst-case attacker ===\n\n";
  util::TextTable table;
  table.set_columns({"config", "cases", "agreements", "max candidates"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  for (const auto& config : all_configs()) {
    const threat::GreedyWorstCaseAttacker greedy;
    threat::ExhaustiveAttacker exhaustive(
        [&config](const threat::SystemState& s) {
          return core::evaluate(config, s);
        });
    std::size_t cases = 0;
    std::size_t agreements = 0;
    std::size_t max_candidates = 0;
    for (const auto& base : flood_patterns(config)) {
      for (int intrusions = 0; intrusions <= 2; ++intrusions) {
        for (int isolations = 0; isolations <= 2; ++isolations) {
          const threat::AttackerCapability cap{intrusions, isolations};
          const auto g = core::evaluate(config, greedy.attack(config, base, cap));
          const auto e =
              core::evaluate(config, exhaustive.attack(config, base, cap));
          ++cases;
          if (threat::badness(g) == threat::badness(e)) ++agreements;
          max_candidates =
              std::max(max_candidates, exhaustive.last_candidates());
        }
      }
    }
    table.add_row({config.name, std::to_string(cases),
                   std::to_string(agreements), std::to_string(max_candidates)});
  }
  table.render(std::cout);
  std::cout << "\n(greedy examines exactly one attack; timings follow)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_equivalence_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
