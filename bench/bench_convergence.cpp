// Ablation A2: Monte-Carlo convergence — why the paper ran 1000
// realizations. Sweeps the ensemble size and reports the Honolulu flood
// probability with its Wilson 95% interval plus the fig6-profile delta.
#include <iostream>

#include "core/case_study.h"
#include "terrain/oahu.h"
#include "core/report.h"
#include "scada/oahu.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== A2: realization-count convergence ===\n\n";

  // One engine; reuse the realization stream (realization i is identical
  // across sweep points by construction, like growing the paper's
  // ensemble).
  const scada::ScadaTopology topo = scada::oahu_topology();
  const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                        topo.exposed_assets(), {});
  const std::vector<std::size_t> sweep = {50, 100, 200, 500, 1000, 2000};
  const std::size_t max_n = sweep.back();
  const auto batch = engine.run_batch(max_n);

  const auto configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);
  const core::AnalysisPipeline pipeline;

  util::TextTable table;
  table.set_columns({"N", "P(honolulu flooded)", "wilson 95% CI",
                     "fig6 max delta (pp)"},
                    {util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});

  for (const std::size_t n : sweep) {
    const std::vector<surge::HurricaneRealization> prefix(batch.begin(),
                                                          batch.begin() + n);
    std::size_t failures = 0;
    for (const auto& r : prefix) {
      if (r.asset_failed(scada::oahu_ids::kHonoluluCc)) ++failures;
    }
    const double p = static_cast<double>(failures) / static_cast<double>(n);
    const util::Interval ci = util::wilson_interval(failures, n);

    const auto results = pipeline.analyze_all(
        configs, threat::ThreatScenario::kHurricane, prefix);
    const double delta =
        core::max_abs_delta(results, core::paper_expected("fig6"));

    table.add_row({std::to_string(n), util::format_percent(p, 2),
                   "[" + util::format_percent(ci.lo, 1) + ", " +
                       util::format_percent(ci.hi, 1) + "]",
                   util::format_fixed(delta * 100.0, 2)});
  }
  table.render(std::cout);
  std::cout << "\npaper value: 9.5%; the interval should cover it from a few "
               "hundred realizations on,\nand the profile delta should "
               "shrink roughly as 1/sqrt(N).\n";
  return 0;
}
