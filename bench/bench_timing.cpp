// Extension bench: WHEN should the attacker strike? The paper's analytic
// model is timing-free — an isolation after the hurricane always yields
// the same final state. The protocol simulator reveals a timing
// dimension the analysis cannot see: attacking DURING a cold-backup
// activation window versus after the system has settled changes the
// outage shape. Sweeps the attack time for "6-6" with a flooded primary
// (backup mid-activation at the default timeline) under the full
// compound-threat capability.
#include <iostream>

#include "scada/configuration.h"
#include "sim/scada_des.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== attack-timing sweep (DES-only effect) ===\n\n"
               "scenario: \"6-6\", primary flooded at t=0, attacker has one "
               "isolation + one\nintrusion and fires at the swept time. "
               "Cold-backup activation takes 300 s after\nthe ~20 s outage "
               "detection.\n\n";

  const scada::Configuration config = scada::make_config_6_6("hon", "waiau");
  threat::SystemState base;
  base.site_status = {threat::SiteStatus::kFlooded, threat::SiteStatus::kUp};
  base.intrusions = {0, 0};
  const threat::SystemState attacked = threat::GreedyWorstCaseAttacker{}.attack(
      config, base,
      threat::capability_for(
          threat::ThreatScenario::kHurricaneIntrusionIsolation));

  util::TextTable table;
  table.set_columns({"attack at (s)", "observed", "longest outage (s)",
                     "steady availability"},
                    {util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight});

  for (const double attack_time :
       {10.0, 100.0, 200.0, 320.0, 400.0, 600.0, 900.0}) {
    sim::DesOptions options;
    options.horizon_s = 1800.0;
    options.settle_window_s = 300.0;
    options.attack_time_s = attack_time;
    const sim::ScadaDes des(config, options);
    const sim::DesOutcome outcome = des.run(attacked);
    table.add_row({util::format_fixed(attack_time, 0),
                   std::string(threat::state_name(outcome.observed)),
                   util::format_fixed(outcome.max_outage_s, 0),
                   util::format_percent(outcome.steady_availability, 1)});
  }
  table.render(std::cout);
  std::cout
      << "\nNote: the attacker's isolation targets the backup site (the "
         "only one left);\nthe intrusion lands there too but stays within "
         "f = 1. Whenever the attack fires,\nthe analytic state is the "
         "same (red: both control sites down or cut), yet the\nclient-"
         "visible history differs — strike DURING activation and the "
         "operators never\nsee service at all; strike late and a window "
         "of service precedes the final\noutage. The DES turns a static "
         "classification into an incident timeline.\n";
  return 0;
}
