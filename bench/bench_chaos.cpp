// Chaos acceptance sweep: >= 50 seeded benign fault plans per paper
// configuration, each run under every threat scenario, asserting that the
// DES-observed Table-I color stays equal to the analytic evaluator's and
// that the protocol invariant monitor stays silent. Also runs the f+1
// compromise detection probe and prints the shrunk minimal reproducer.
#include <chrono>
#include <iostream>

#include "core/chaos.h"
#include "scada/configuration.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== chaos sweep: benign fault plans vs Table I ===\n\n";

  core::ChaosOptions options;
  options.plans = 50;
  const core::ChaosRunner runner(options);

  util::TextTable table;
  table.set_columns(
      {"config", "plans", "runs", "drops", "duplicates", "findings", "ms"},
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight});

  int total_findings = 0;
  for (const auto& config :
       scada::paper_configurations("primary", "backup", "dc")) {
    const auto start = std::chrono::steady_clock::now();
    const core::ChaosReport report = runner.sweep(config);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    table.add_row({report.config_name, std::to_string(report.plans_run),
                   std::to_string(report.runs),
                   std::to_string(report.total_drops),
                   std::to_string(report.total_duplicates),
                   std::to_string(report.findings.size()),
                   std::to_string(elapsed.count())});
    total_findings += static_cast<int>(report.findings.size());
    for (const core::ChaosFinding& finding : report.findings) {
      std::cout << "FINDING " << finding.config_name << " seed "
                << finding.plan_seed << " scenario "
                << threat::scenario_name(finding.scenario) << ": expected "
                << threat::state_name(finding.expected) << ", observed "
                << threat::state_name(finding.observed) << "\n";
      for (const std::string& v : finding.violations) {
        std::cout << "  violation: " << v << "\n";
      }
      std::cout << "  minimal reproducer:\n" << finding.replay_schedule;
    }
  }
  std::cout << table.to_string() << "\n";

  std::cout << "=== detection probe: f+1 compromised replicas ===\n\n";
  for (const auto& config :
       scada::paper_configurations("primary", "backup", "dc")) {
    const core::ChaosFinding finding = runner.compromise_probe(config);
    const bool detected = finding.observed != finding.expected;
    std::cout << "config " << config.name << ": "
              << (detected ? "DETECTED" : "MISSED") << " (expected "
              << threat::state_name(finding.expected) << ", observed "
              << threat::state_name(finding.observed) << "), minimal plan "
              << finding.minimal_plan.events.size() << " event(s):\n";
    std::cout << finding.replay_schedule << "\n";
    if (!detected) ++total_findings;
  }

  if (total_findings > 0) {
    std::cout << "chaos sweep FAILED: " << total_findings << " finding(s)\n";
    return 1;
  }
  std::cout << "chaos sweep clean: colors stable, invariants silent\n";
  return 0;
}
