// Chaos acceptance sweep: seeded fault plans per paper configuration
// (default 50, overridable via argv for CI smoke runs), each run under
// every threat scenario, asserting that the DES-observed Table-I color
// stays equal to the analytic evaluator's and that the protocol invariant
// monitor stays silent. Two sweeps run per configuration: benign plans
// (crash/flap/skew/duplication/reordering) and restart-heavy plans
// (back-to-back crash/restart windows plus recovery-plane message loss,
// exercising the checkpoint / state-transfer / rejoin machinery). Also
// runs the f+1 compromise detection probe and prints the shrunk minimal
// reproducer for any finding.
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "core/chaos.h"
#include "scada/configuration.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

namespace {

int run_sweep(const core::ChaosRunner& runner, const char* title) {
  std::cout << "=== chaos sweep: " << title << " ===\n\n";
  util::TextTable table;
  table.set_columns(
      {"config", "plans", "runs", "drops", "duplicates", "rejoins",
       "findings", "ms"},
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight});

  int findings = 0;
  for (const auto& config :
       scada::paper_configurations("primary", "backup", "dc")) {
    const auto start = std::chrono::steady_clock::now();
    const core::ChaosReport report = runner.sweep(config);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    table.add_row({report.config_name, std::to_string(report.plans_run),
                   std::to_string(report.runs),
                   std::to_string(report.total_drops),
                   std::to_string(report.total_duplicates),
                   std::to_string(report.total_rejoins),
                   std::to_string(report.findings.size()),
                   std::to_string(elapsed.count())});
    findings += static_cast<int>(report.findings.size());
    for (const core::ChaosFinding& finding : report.findings) {
      std::cout << "FINDING " << finding.config_name << " seed "
                << finding.plan_seed << " scenario "
                << threat::scenario_name(finding.scenario) << ": expected "
                << threat::state_name(finding.expected) << ", observed "
                << threat::state_name(finding.observed) << "\n";
      for (const std::string& v : finding.violations) {
        std::cout << "  violation: " << v << "\n";
      }
      std::cout << "  minimal reproducer:\n" << finding.replay_schedule;
    }
  }
  std::cout << table.to_string() << "\n";
  return findings;
}

}  // namespace

int main(int argc, char** argv) {
  const int plans = argc > 1 ? std::atoi(argv[1]) : 50;
  if (plans <= 0) {
    std::cerr << "usage: bench_chaos [plans-per-config]\n";
    return 2;
  }

  int total_findings = 0;

  core::ChaosOptions benign;
  benign.plans = plans;
  total_findings +=
      run_sweep(core::ChaosRunner(benign), "benign fault plans vs Table I");

  core::ChaosOptions restart_heavy;
  restart_heavy.plans = plans;
  restart_heavy.plan_style = core::ChaosOptions::PlanStyle::kRestartHeavy;
  total_findings += run_sweep(core::ChaosRunner(restart_heavy),
                              "restart-heavy plans with transfer loss");

  std::cout << "=== detection probe: f+1 compromised replicas ===\n\n";
  const core::ChaosRunner runner(benign);
  for (const auto& config :
       scada::paper_configurations("primary", "backup", "dc")) {
    const core::ChaosFinding finding = runner.compromise_probe(config);
    const bool detected = finding.observed != finding.expected;
    std::cout << "config " << config.name << ": "
              << (detected ? "DETECTED" : "MISSED") << " (expected "
              << threat::state_name(finding.expected) << ", observed "
              << threat::state_name(finding.observed) << "), minimal plan "
              << finding.minimal_plan.events.size() << " event(s):\n";
    std::cout << finding.replay_schedule << "\n";
    if (!detected) ++total_findings;
  }

  if (total_findings > 0) {
    std::cout << "chaos sweep FAILED: " << total_findings << " finding(s)\n";
    return 1;
  }
  std::cout << "chaos sweep clean: colors stable, invariants silent\n";
  return 0;
}
