// Extension bench: the architecture cost-resilience frontier. Sizes every
// architecture in the standard design space (f up to 2, up to 4 active
// sites) with the replication rules, then scores replica cost against
// green probability under each compound-threat scenario — the trade study
// a utility would run before committing to a deployment.
#include <iostream>

#include "core/case_study.h"
#include "figure_bench.h"
#include "scada/architect.h"
#include "scada/oahu.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

int main() {
  std::cout << "=== architecture cost vs resilience frontier ===\n\n";
  core::CaseStudyOptions options;
  options.realizations = bench::bench_realizations();
  core::CaseStudyRunner runner = core::make_oahu_case_study(options);

  // Host sites in quality order: dry sites first so multisite designs get
  // the best geography (the paper's siting lesson, applied).
  const std::vector<std::string> hosts = {
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kKaheCc,
      scada::oahu_ids::kDrFortress, scada::oahu_ids::kAlohaNap};

  util::TextTable table;
  table.set_columns({"architecture", "style", "f", "k", "replicas",
                     "hurricane", "+intrusion", "+isolation", "+both"},
                    {util::Align::kLeft, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});

  for (const scada::ArchitectureSpec& spec :
       scada::standard_design_space(/*max_f=*/2, /*max_sites=*/4)) {
    const int sites_needed = scada::required_sites(spec);
    if (sites_needed > static_cast<int>(hosts.size())) continue;
    const std::vector<std::string> assets(hosts.begin(),
                                          hosts.begin() + sites_needed);
    const scada::Configuration config =
        scada::design_configuration(spec, assets);

    std::vector<std::string> row = {
        config.name, std::string(architecture_style_name(spec.style)),
        std::to_string(config.intrusion_tolerance_f),
        std::to_string(config.proactive_recovery_k),
        std::to_string(config.total_replicas())};
    for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
      const core::ScenarioResult result = runner.run(config, scenario);
      row.push_back(util::format_percent(
          result.outcomes.probability(threat::OperationalState::kGreen), 1));
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);
  std::cout << "\n(green probability per scenario; Kahe is the backup/second "
               "site, so cold-backup\narchitectures convert hurricane red "
               "to orange rather than green — see bench_fig10.)\n"
            << "expected shape: resilience to the full compound threat "
               "requires BOTH intrusion\ntolerance (f >= 1) and >= 3 active "
               "sites; extra f protects against stronger\nattackers (see "
               "bench_power), not against this threat model.\n";
  return 0;
}
