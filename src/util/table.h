// Fixed-width ASCII table rendering. The bench binaries print the paper's
// figures as tables (configuration x operational-state probability), so the
// "figure" a bench regenerates is one of these tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ct::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// Accumulates rows, then renders with per-column auto-sizing:
///
///   +--------+-------+--------+
///   | config | green |  red   |
///   +--------+-------+--------+
///   | 2      | 90.5% |  9.5%  |
///   +--------+-------+--------+
class TextTable {
 public:
  /// Declares the columns. Must be called before any row.
  void set_columns(std::vector<std::string> names,
                   std::vector<Align> aligns = {});

  /// Adds a data row; its size must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator before the next row.
  void add_separator();

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table (with borders) to `out`.
  void render(std::ostream& out) const;

  /// Renders to a string (convenience for tests).
  std::string to_string() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> columns_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace ct::util
