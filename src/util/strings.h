// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ct::util {

/// Splits on a single-character delimiter; adjacent delimiters yield empty
/// fields (CSV-like semantics, not whitespace collapsing).
std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// True if `s` begins with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Formats a double with fixed decimals (e.g. percentages in reports).
std::string format_fixed(double v, int decimals);

/// "90.5%" style percentage of a [0,1] probability.
std::string format_percent(double probability, int decimals = 1);

}  // namespace ct::util
