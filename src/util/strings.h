// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ct::util {

/// Splits on a single-character delimiter; adjacent delimiters yield empty
/// fields (CSV-like semantics, not whitespace collapsing).
std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// True if `s` begins with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Levenshtein edit distance (unit-cost insert/delete/substitute).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name` by edit_distance, provided it is within
/// `max_distance` edits (ties broken by candidate order). Returns "" when
/// nothing qualifies — the "did you mean --jobs?" helper for flag typos.
std::string closest_match(std::string_view name,
                          const std::vector<std::string>& candidates,
                          std::size_t max_distance = 2);

/// Formats a double with fixed decimals (e.g. percentages in reports).
std::string format_fixed(double v, int decimals);

/// "90.5%" style percentage of a [0,1] probability.
std::string format_percent(double probability, int decimals = 1);

}  // namespace ct::util
