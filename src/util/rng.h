// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the framework (storm-track perturbation,
// surge noise, attacker tie-breaking in randomized tests) draw from Rng so
// that a (seed, stream-name) pair fully determines an experiment. This is
// what makes 1000-realization runs replayable bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ct::util {

/// SplitMix64: used to seed the main generator and to hash stream names.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit hash of a string, used to derive independent named streams
/// from a base seed (FNV-1a finished with a splitmix64 avalanche).
std::uint64_t hash_name(std::string_view name) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64 (as recommended
  /// by the xoshiro authors; avoids all-zero states).
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface so <random> distributions also work.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Jump function: advances the state by 2^128 calls; used to create
  /// non-overlapping parallel substreams.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// High-level generator with the distributions the framework needs.
///
/// A named substream (`Rng(seed, "surge-noise")`) is statistically
/// independent of any other name, so adding a new consumer of randomness
/// never perturbs existing experiment outputs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed), base_seed_(seed) {}
  Rng(std::uint64_t seed, std::string_view stream) noexcept
      : Rng(seed ^ hash_name(stream)) {}

  /// Derives an independent child generator; `index` distinguishes e.g.
  /// per-realization streams.
  Rng child(std::string_view stream, std::uint64_t index = 0) const noexcept;

  std::uint64_t next_u64() noexcept { return gen_.next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Normal truncated (by rejection) to [lo, hi].
  double truncated_normal(double mean, double stddev, double lo,
                          double hi) noexcept;
  /// Exponential with the given mean (rate 1/mean); 0 for mean <= 0.
  double exponential(double mean) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;
  /// Index in [0, weights.size()) with probability proportional to weight.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  std::uint64_t base_seed() const noexcept { return base_seed_; }

 private:
  Xoshiro256 gen_;
  std::uint64_t base_seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ct::util
