// Crash-consistency filesystem primitives shared by every durable layer
// (result cache, sweep checkpoints). The publish discipline is always the
// same: write a .tmp sibling, fsync the FILE, rename over the final name,
// fsync the DIRECTORY — a rename alone is not durable (the directory entry
// can vanish on power loss even though the data blocks survived).
//
// All functions are best-effort and never throw: durability failures are
// soft at this layer; the caller decides whether losing persistence is
// fatal (a checkpoint) or merely a cold start (a cache).
#pragma once

#include <string>
#include <string_view>

namespace ct::util {

/// fsync(2) the file at `path`. False when the file cannot be opened or
/// the sync fails (contents may still be in the page cache).
bool fsync_file(const std::string& path) noexcept;

/// fsync(2) the DIRECTORY containing `path`, making a completed rename of
/// `path` durable. False on open/sync failure.
bool fsync_parent_dir(const std::string& path) noexcept;

/// Atomic durable publish: write `contents` to "<path>.tmp", fsync the
/// file, rename onto `path`, fsync the parent directory. A reader (or a
/// post-crash reopen) sees either the complete old file or the complete
/// new one — never a prefix. False on any failure (the .tmp is removed).
bool atomic_write_file(const std::string& path,
                       std::string_view contents) noexcept;

}  // namespace ct::util
