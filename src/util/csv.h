// Minimal CSV emission (RFC-4180 quoting) for experiment outputs.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ct::util {

/// Streams rows to an ostream, quoting fields that contain commas, quotes,
/// or newlines. The writer owns no buffer; it is a thin formatting layer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes a header row; callable once, before any data row.
  void header(const std::vector<std::string>& columns);

  /// Begins accumulating a row; fields are added with `field()` and the row
  /// is terminated with `end_row()`.
  CsvWriter& field(std::string_view value);
  CsvWriter& field(double value, int precision = 6);
  CsvWriter& field(std::int64_t value);
  CsvWriter& field(std::size_t value);
  void end_row();

  /// Convenience: writes a complete row of already-formatted fields.
  void row(const std::vector<std::string>& fields);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void raw_field(std::string_view value);

  std::ostream& out_;
  bool row_open_ = false;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

/// Quotes a single CSV field per RFC 4180 if needed.
std::string csv_escape(std::string_view field);

/// Parses one CSV record per RFC 4180: fields separated by commas, quoted
/// fields may contain commas and doubled quotes. The record must not span
/// lines (embedded newlines in quoted fields are not supported by this
/// line-oriented parser). Throws std::invalid_argument on an unterminated
/// quote.
std::vector<std::string> parse_csv_line(std::string_view line);

}  // namespace ct::util
