#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ct::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

Interval wilson_interval(std::size_t successes, std::size_t n,
                         double z) noexcept {
  if (n == 0) return {0.0, 1.0};
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval mean_interval(const RunningStats& stats, double z) noexcept {
  const double half = z * stats.sem();
  return {stats.mean() - half, stats.mean() + half};
}

namespace {

/// Regularized incomplete beta I_x(a, b) via the Lentz continued fraction
/// (Numerical Recipes form). Good to ~1e-12 over the (a, b) range binomial
/// CIs produce; that is far below the quantile bisection tolerance.
double incomplete_beta(double a, double b, double x) noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // The continued fraction converges fast only for x < (a+1)/(a+b+2);
  // otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - incomplete_beta(b, a, 1.0 - x);
  }
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-14;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double frac = d;
  for (int m = 1; m <= 300; ++m) {
    const double dm = static_cast<double>(m);
    // Even step.
    double num = dm * (b - dm) * x / ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
    d = 1.0 + num * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + num / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    frac *= d * c;
    // Odd step.
    num = -(a + dm) * (a + b + dm) * x /
          ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
    d = 1.0 + num * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + num / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    frac *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return std::exp(ln_front) * frac / a;
}

/// Quantile of Beta(a, b): smallest x with I_x(a, b) >= p, by bisection.
/// ~60 halvings reach ~1e-18 interval width — beyond double resolution.
double beta_quantile(double p, double a, double b) noexcept {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (incomplete_beta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

Interval clopper_pearson_interval(std::size_t successes, std::size_t n,
                                  double confidence) noexcept {
  if (n == 0) return {0.0, 1.0};
  if (successes > n) successes = n;
  const double alpha = std::clamp(1.0 - confidence, 1e-12, 1.0);
  const double k = static_cast<double>(successes);
  const double nn = static_cast<double>(n);
  // CP bounds are beta quantiles: lower = B(alpha/2; k, n-k+1),
  // upper = B(1-alpha/2; k+1, n-k), with the exact endpoints at k=0 / k=n.
  const double lo = successes == 0
                        ? 0.0
                        : beta_quantile(alpha / 2.0, k, nn - k + 1.0);
  const double hi = successes == n
                        ? 1.0
                        : beta_quantile(1.0 - alpha / 2.0, k + 1.0, nn - k);
  return {lo, hi};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need >= 1 bin");
}

void Histogram::add(double x) noexcept {
  std::size_t bin = 0;
  if (x >= hi_) {
    bin = counts_.size() - 1;
  } else if (x > lo_) {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

std::optional<double> Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return std::nullopt;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] > 0 ? (target - cum) / static_cast<double>(counts_[i])
                         : 0.0;
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double exact_quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("exact_quantile: empty");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= values.size()) return values.back();
  return values[i] * (1.0 - frac) + values[i + 1] * frac;
}

}  // namespace ct::util
