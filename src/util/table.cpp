#include "util/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ct::util {

void TextTable::set_columns(std::vector<std::string> names,
                            std::vector<Align> aligns) {
  if (!rows_.empty()) {
    throw std::logic_error("TextTable: set_columns after rows were added");
  }
  if (!aligns.empty() && aligns.size() != names.size()) {
    throw std::invalid_argument("TextTable: aligns/names size mismatch");
  }
  columns_ = std::move(names);
  if (aligns.empty()) {
    aligns_.assign(columns_.size(), Align::kLeft);
  } else {
    aligns_ = std::move(aligns);
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("TextTable: row width != column count");
  }
  rows_.push_back({std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

void TextTable::render(std::ostream& out) const {
  if (columns_.empty()) return;
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  const auto rule = [&] {
    out << '+';
    for (const std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t pad = widths[i] - cells[i].size();
      out << ' ';
      if (aligns_[i] == Align::kRight) out << std::string(pad, ' ');
      out << cells[i];
      if (aligns_[i] == Align::kLeft) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  rule();
  line(columns_);
  rule();
  for (const auto& row : rows_) {
    if (row.separator_before) rule();
    line(row.cells);
  }
  rule();
}

std::string TextTable::to_string() const {
  std::ostringstream ss;
  render(ss);
  return ss.str();
}

}  // namespace ct::util
