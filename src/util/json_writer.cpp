#include "util/json_writer.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ct::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (wrote_root_) throw std::logic_error("JsonWriter: multiple roots");
    return;
  }
  if (stack_.back() == Frame::kObject && !key_pending_) {
    throw std::logic_error("JsonWriter: value in object without key");
  }
  if (stack_.back() == Frame::kArray) {
    if (!first_in_frame_.back()) out_ << ',';
    first_in_frame_.back() = false;
    newline_indent();
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  const bool was_empty = first_in_frame_.back();
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (!was_empty) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  const bool was_empty = first_in_frame_.back();
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (!was_empty) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (!first_in_frame_.back()) out_ << ',';
  first_in_frame_.back() = false;
  newline_indent();
  out_ << '"' << json_escape(k) << '"' << (pretty_ ? ": " : ":");
  key_pending_ = true;
  return *this;
}

void JsonWriter::write_escaped(std::string_view s) {
  out_ << '"' << json_escape(s) << '"';
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  write_escaped(v);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no NaN/Inf
  }
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  wrote_root_ = true;
  return *this;
}

}  // namespace ct::util
