#include "util/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <system_error>

namespace ct::util {

namespace fs = std::filesystem;

namespace {

bool fsync_fd_path(const char* path, int flags) noexcept {
  const int fd = ::open(path, flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool fsync_file(const std::string& path) noexcept {
  return fsync_fd_path(path.c_str(), O_RDONLY);
}

bool fsync_parent_dir(const std::string& path) noexcept {
  std::error_code ec;
  fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) parent = ".";
  return fsync_fd_path(parent.c_str(), O_RDONLY | O_DIRECTORY);
}

bool atomic_write_file(const std::string& path,
                       std::string_view contents) noexcept {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return fsync_parent_dir(path);
}

}  // namespace ct::util
