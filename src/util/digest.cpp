#include "util/digest.h"

#include <cstring>

#include "util/rng.h"

namespace ct::util {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// A second, independent multiplier for the high lane (odd, high entropy).
constexpr std::uint64_t kHiPrime = 0x9ddfea08eb382d69ULL;

// Type tags framing each value; a tag change is a format change and must
// come with a ResultStore version bump.
enum : std::uint8_t {
  kTagBytes = 1,
  kTagStr = 2,
  kTagU64 = 3,
  kTagI64 = 4,
  kTagF64 = 5,
  kTagBool = 6,
};

}  // namespace

Digest& Digest::raw(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    lo_ = (lo_ ^ p[i]) * kFnvPrime;
    hi_ = (hi_ ^ (p[i] + 0x9eULL)) * kHiPrime;
  }
  return *this;
}

Digest& Digest::tag(std::uint8_t t) noexcept { return raw(&t, 1); }

Digest& Digest::bytes(const void* data, std::size_t n) noexcept {
  tag(kTagBytes);
  u64(n);
  return raw(data, n);
}

Digest& Digest::str(std::string_view s) noexcept {
  tag(kTagStr);
  u64(s.size());
  return raw(s.data(), s.size());
}

Digest& Digest::u64(std::uint64_t v) noexcept {
  // Byte order fixed by hand so the digest is identical on any endianness.
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  tag(kTagU64);
  return raw(buf, sizeof buf);
}

Digest& Digest::i64(std::int64_t v) noexcept {
  tag(kTagI64);
  return u64(static_cast<std::uint64_t>(v));
}

Digest& Digest::f64(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  tag(kTagF64);
  return u64(bits);
}

Digest& Digest::boolean(bool v) noexcept {
  tag(kTagBool);
  const std::uint8_t b = v ? 1 : 0;
  return raw(&b, 1);
}

std::array<std::uint64_t, 2> Digest::value() const noexcept {
  // Avalanche both lanes, cross-mixing so either lane depends on all input.
  std::uint64_t a = lo_ ^ (hi_ * kFnvPrime);
  std::uint64_t b = hi_ ^ (lo_ * kHiPrime);
  const std::uint64_t fa = splitmix64(a);
  const std::uint64_t fb = splitmix64(b);
  return {fa, fb};
}

std::string Digest::hex() const {
  static const char* kHex = "0123456789abcdef";
  const auto v = value();
  std::string out;
  out.reserve(32);
  for (const std::uint64_t word : v) {
    for (int nibble = 15; nibble >= 0; --nibble) {
      out.push_back(kHex[(word >> (4 * nibble)) & 0xF]);
    }
  }
  return out;
}

}  // namespace ct::util
