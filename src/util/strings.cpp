#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace ct::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    out += item;
    first = false;
  }
  return out;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Two-row dynamic program; strings here are flag names, so quadratic
  // time over a handful of characters is fine.
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::size_t> prev(a.size() + 1);
  std::vector<std::size_t> cur(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t subst = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

std::string closest_match(std::string_view name,
                          const std::vector<std::string>& candidates,
                          std::size_t max_distance) {
  std::string best;
  std::size_t best_distance = max_distance + 1;
  for (const std::string& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_percent(double probability, int decimals) {
  return format_fixed(probability * 100.0, decimals) + "%";
}

}  // namespace ct::util
