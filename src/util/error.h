// Structured error taxonomy for runtime boundaries. Instead of ad-hoc
// `throw std::runtime_error(...)`, fault-isolated layers throw ct::Error:
// a typed code (so failure summaries can aggregate), an origin component,
// and — for per-realization failures — (realization index, seed)
// provenance, so every quarantined Monte-Carlo sample can be replayed
// deterministically from its record.
//
// Error derives from std::runtime_error on purpose: every existing
// `catch (const std::exception&)` / `catch (const std::runtime_error&)`
// boundary keeps working, and what() carries the fully formatted message.
#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ct::util {

/// Failure categories the runtime distinguishes. Aggregation (failure
/// summaries, CI fault matrices) groups by this code, so add a new value
/// rather than overloading an existing one when semantics differ.
enum class ErrorCode {
  kUnknown = 0,     ///< foreign exception normalized at an isolation boundary
  kInvalidInput,    ///< caller-supplied argument/config out of contract
  kParse,           ///< malformed external input (CSV row, fault spec, ...)
  kNumeric,         ///< NaN/Inf escaped a kernel (surge stepping, smoothing)
  kTimeout,         ///< cooperative watchdog deadline expired
  kCancelled,       ///< cancellation requested by the batch owner
  kIo,              ///< file/stream I/O failure outside the cache
  kCacheIo,         ///< result-cache disk layer failure (always soft)
  kFaultInjected,   ///< CT_FAULT / RuntimeFaultProfile injected failure
  kCheckpointCorrupt,  ///< sweep checkpoint/journal interior corruption
  kProtocol,        ///< malformed/unsupported ct_service wire frame
};

/// Stable lower-case name ("numeric", "timeout", ...) for summaries.
std::string_view error_code_name(ErrorCode code) noexcept;

/// Structured runtime error: code + origin component + optional
/// (realization, seed) provenance.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, std::string_view origin, std::string_view message);
  /// Per-realization failure: `realization` is the Monte-Carlo index,
  /// `seed` the ensemble base seed — together they replay the sample.
  Error(ErrorCode code, std::string_view origin, std::string_view message,
        std::uint64_t realization, std::uint64_t seed);

  ErrorCode code() const noexcept { return code_; }
  const std::string& origin() const noexcept { return origin_; }
  /// The raw message without the "[code] origin:" prefix what() carries.
  const std::string& message() const noexcept { return message_; }

  bool has_provenance() const noexcept { return has_provenance_; }
  std::uint64_t realization() const noexcept { return realization_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  ErrorCode code_;
  std::string origin_;
  std::string message_;
  bool has_provenance_ = false;
  std::uint64_t realization_ = 0;
  std::uint64_t seed_ = 0;
};

/// Maps any in-flight exception to its taxonomy code: a ct::Error keeps its
/// own code, everything else normalizes to kUnknown. Never throws.
ErrorCode classify_exception(const std::exception_ptr& error) noexcept;

/// what() of any exception_ptr ("<non-standard exception>" for foreign
/// types). Never throws.
std::string describe_exception(const std::exception_ptr& error) noexcept;

}  // namespace ct::util

namespace ct {
/// The taxonomy is used across layers; `ct::Error` is the canonical name.
using Error = util::Error;
using ErrorCode = util::ErrorCode;
}  // namespace ct
