#include "util/csv.h"

#include <cassert>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ct::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  // Strip a trailing CR from CRLF input.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');  // escaped quote
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (quoted) {
    throw std::invalid_argument("parse_csv_line: unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (header_written_ || rows_ > 0 || row_open_) {
    throw std::logic_error("CsvWriter::header must be the first write");
  }
  header_written_ = true;
  bool first = true;
  for (const auto& c : columns) {
    if (!first) out_ << ',';
    out_ << csv_escape(c);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::raw_field(std::string_view value) {
  if (row_open_) out_ << ',';
  out_ << csv_escape(value);
  row_open_ = true;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  raw_field(value);
  return *this;
}

CsvWriter& CsvWriter::field(double value, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << value;
  raw_field(ss.str());
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t value) {
  raw_field(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::field(std::size_t value) {
  raw_field(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  if (!row_open_) throw std::logic_error("CsvWriter::end_row on empty row");
  out_ << '\n';
  row_open_ = false;
  ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  assert(!row_open_);
  for (const auto& f : fields) raw_field(f);
  end_row();
}

}  // namespace ct::util
