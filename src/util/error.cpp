#include "util/error.h"

namespace ct::util {

namespace {

std::string format_what(ErrorCode code, std::string_view origin,
                        std::string_view message, bool has_provenance,
                        std::uint64_t realization, std::uint64_t seed) {
  std::string out;
  out.reserve(origin.size() + message.size() + 48);
  out += '[';
  out += error_code_name(code);
  out += "] ";
  out += origin;
  out += ": ";
  out += message;
  if (has_provenance) {
    out += " (realization ";
    out += std::to_string(realization);
    out += ", seed ";
    out += std::to_string(seed);
    out += ')';
  }
  return out;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kInvalidInput: return "invalid-input";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kNumeric: return "numeric";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kCacheIo: return "cache-io";
    case ErrorCode::kFaultInjected: return "fault-injected";
    case ErrorCode::kCheckpointCorrupt: return "checkpoint-corrupt";
    case ErrorCode::kProtocol: return "protocol";
  }
  return "unknown";
}

Error::Error(ErrorCode code, std::string_view origin, std::string_view message)
    : std::runtime_error(
          format_what(code, origin, message, false, 0, 0)),
      code_(code), origin_(origin), message_(message) {}

Error::Error(ErrorCode code, std::string_view origin, std::string_view message,
             std::uint64_t realization, std::uint64_t seed)
    : std::runtime_error(
          format_what(code, origin, message, true, realization, seed)),
      code_(code), origin_(origin), message_(message), has_provenance_(true),
      realization_(realization), seed_(seed) {}

ErrorCode classify_exception(const std::exception_ptr& error) noexcept {
  if (!error) return ErrorCode::kUnknown;
  try {
    std::rethrow_exception(error);
  } catch (const Error& e) {
    return e.code();
  } catch (...) {
    return ErrorCode::kUnknown;
  }
}

std::string describe_exception(const std::exception_ptr& error) noexcept {
  if (!error) return "<no exception>";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    try {
      return e.what();
    } catch (...) {
      return "<unprintable exception>";
    }
  } catch (...) {
    return "<non-standard exception>";
  }
}

}  // namespace ct::util
