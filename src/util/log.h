// Leveled logging. Quiet by default (warnings and errors only) so benches
// and tests stay readable; verbosity is raised via set_level or the
// CT_LOG_LEVEL environment variable (trace|debug|info|warn|error|off).
//
// Every line carries a monotonic timestamp (seconds since process start,
// steady clock, so it never jumps with wall-clock adjustments): durable-
// state events — checkpoint writes, journal replays, corruption discards —
// log structured `event=... key=value` lines, and the timestamps let a
// resumed run's provenance be reconstructed from the log alone.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ct::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Parses a case-insensitive level name; returns kWarn on unknown input.
LogLevel parse_log_level(std::string_view name) noexcept;

/// Global log threshold. Thread-safe (atomic).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// True if `level` messages would currently be emitted.
bool log_enabled(LogLevel level) noexcept;

/// Emits one formatted line to stderr:
/// "[LEVEL] +<seconds>s component: message".
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

/// Monotonic seconds since process start (steady clock; first call pins
/// the origin). This is the timestamp log_line prefixes every line with.
double log_uptime_seconds() noexcept;

/// Formats the "+<seconds>s" stamp log_line uses (3 decimal places), so
/// tests and external tools can parse provenance lines byte-exactly.
std::string format_log_timestamp(double uptime_seconds);

/// Stream-style log statement that only formats when enabled:
///   CT_LOG(kInfo, "surge") << "node " << id << " wse=" << wse;
#define CT_LOG(level, component)                                       \
  for (bool ct_log_once =                                              \
           ::ct::util::log_enabled(::ct::util::LogLevel::level);       \
       ct_log_once; ct_log_once = false)                               \
  ::ct::util::LogStatement(::ct::util::LogLevel::level, component)

/// Helper that accumulates a message and emits it on destruction.
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStatement() { log_line(level_, component_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace ct::util
