// Streaming statistics, confidence intervals, and histograms used to
// aggregate Monte-Carlo experiment outcomes.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace ct::util {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator (parallel reduction), Chan et al. update.
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Standard error of the mean.
  double sem() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided confidence interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double x) const noexcept { return x >= lo && x <= hi; }
  double width() const noexcept { return hi - lo; }
};

/// Wilson score interval for a binomial proportion: `successes` out of `n`
/// at confidence level `z` standard deviations (default 1.96 ~ 95%).
/// Behaves sensibly for p near 0 or 1, unlike the normal approximation —
/// important here because several paper outcomes are exactly 0% or 100%.
Interval wilson_interval(std::size_t successes, std::size_t n,
                         double z = 1.96) noexcept;

/// Normal-approximation CI for a mean from running stats.
Interval mean_interval(const RunningStats& stats, double z = 1.96) noexcept;

/// Exact (Clopper-Pearson) two-sided binomial CI for `successes` out of
/// `n` at `confidence` (default 95%). Inverts the regularized incomplete
/// beta function by bisection; conservative by construction — coverage is
/// AT LEAST `confidence` for every true p, which is the guarantee the
/// quarantine mass bounds need (a Wilson interval can undercover at the
/// extreme p values the paper's outcomes actually produce).
Interval clopper_pearson_interval(std::size_t successes, std::size_t n,
                                  double confidence = 0.95) noexcept;

/// Fixed-width histogram over [lo, hi); samples outside the range are
/// counted in saturated edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  /// Left edge of bin `i`.
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Empirical quantile in [0,1] via linear interpolation across bins.
  /// Returns nullopt when empty.
  std::optional<double> quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact empirical quantile of a sample (copies and sorts). q in [0,1].
double exact_quantile(std::vector<double> values, double q);

}  // namespace ct::util
