// Minimal streaming JSON writer for machine-readable experiment outputs.
// Emits objects/arrays with correct escaping; no DOM, no parsing.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ct::util {

/// Streaming writer producing valid JSON (verified by tests against a
/// hand-rolled structural checker). Nesting is tracked so mismatched
/// begin/end calls throw instead of producing garbage.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = false)
      : out_(out), pretty_(pretty) {}
  ~JsonWriter() = default;
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; must be followed by a value or container begin.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  // Unsigned widths besides std::uint64_t used to be ambiguous (equally
  // good conversions to int64/uint64), forcing hand-casts at every call
  // site. The constrained template gives every other unsigned integral —
  // unsigned, std::size_t, whatever the ABI maps them to — an exact match
  // that widens losslessly to the uint64_t overload.
  template <typename U,
            typename = std::enable_if_t<std::is_unsigned_v<U> &&
                                        !std::is_same_v<U, bool>>>
  JsonWriter& value(U v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// True once all opened containers are closed.
  bool complete() const noexcept { return stack_.empty() && wrote_root_; }

 private:
  enum class Frame { kObject, kArray };
  void before_value();
  void newline_indent();
  void write_escaped(std::string_view s);

  std::ostream& out_;
  bool pretty_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool key_pending_ = false;
  bool wrote_root_ = false;
};

/// Escapes a string for inclusion in JSON (without surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace ct::util
