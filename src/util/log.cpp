#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace ct::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void init_from_env() {
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("CT_LOG_LEVEL")) {
      g_level.store(parse_log_level(env), std::memory_order_relaxed);
    }
  });
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ca = static_cast<unsigned char>(a[i]);
    const auto cb = static_cast<unsigned char>(b[i]);
    if (std::tolower(ca) != std::tolower(cb)) return false;
  }
  return true;
}

/// Pinned at first use, not static-init time, so the origin is stable no
/// matter which translation unit logs first.
std::chrono::steady_clock::time_point process_origin() noexcept {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

}  // namespace

double log_uptime_seconds() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_origin())
      .count();
}

std::string format_log_timestamp(double uptime_seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "+%.3fs", uptime_seconds);
  return buf;
}

LogLevel parse_log_level(std::string_view name) noexcept {
  if (iequals(name, "trace")) return LogLevel::kTrace;
  if (iequals(name, "debug")) return LogLevel::kDebug;
  if (iequals(name, "info")) return LogLevel::kInfo;
  if (iequals(name, "warn") || iequals(name, "warning")) return LogLevel::kWarn;
  if (iequals(name, "error")) return LogLevel::kError;
  if (iequals(name, "off") || iequals(name, "none")) return LogLevel::kOff;
  return LogLevel::kWarn;
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  init_from_env();
  return g_level.load(std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return level >= log_level() && level != LogLevel::kOff;
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (!log_enabled(level)) return;
  const std::string stamp = format_log_timestamp(log_uptime_seconds());
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << '[' << level_name(level) << "] " << stamp << ' ' << component
            << ": " << message << '\n';
}

}  // namespace ct::util
