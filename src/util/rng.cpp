#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ct::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;  // FNV prime
  }
  std::uint64_t state = h;
  return splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> t{};
  for (const std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) t[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = t;
}

Rng Rng::child(std::string_view stream, std::uint64_t index) const noexcept {
  std::uint64_t mix = base_seed_ ^ hash_name(stream);
  mix ^= 0x9E3779B97F4A7C15ULL + index;
  std::uint64_t state = mix;
  return Rng(splitmix64(state));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(gen_.next());  // full range
  // Lemire's unbiased bounded generation (rejection on the low word).
  std::uint64_t x = gen_.next();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = gen_.next();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo,
                             double hi) noexcept {
  assert(lo <= hi);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  // Pathological bounds (many sigma from the mean): fall back to uniform so
  // we still terminate with a value in range.
  return uniform(lo, hi);
}

double Rng::exponential(double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  // uniform() is in [0, 1); 1 - u is in (0, 1], so log is finite.
  return -mean * std::log(1.0 - uniform());
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numerical edge: return last positive index
}

}  // namespace ct::util
