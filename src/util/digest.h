// Stable content digest for cache keys. Every value fed into a Digest is
// framed (type tag + length) so distinct field sequences can never collide
// by concatenation ("ab"+"c" vs "a"+"bc"), and the resulting 128-bit value
// is stable across platforms and runs — it is what makes the runtime's
// result cache content-addressed. NOT cryptographic: collisions are
// statistically negligible for cache addressing, but an adversary could
// construct one, so never use this for integrity against attackers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace ct::util {

/// Incremental 128-bit digest (two independent FNV-1a lanes finished with
/// a splitmix64 avalanche). Feed fields in a fixed order, then read hex().
class Digest {
 public:
  Digest& bytes(const void* data, std::size_t n) noexcept;

  /// Length-prefixed string (self-delimiting).
  Digest& str(std::string_view s) noexcept;
  Digest& u64(std::uint64_t v) noexcept;
  Digest& i64(std::int64_t v) noexcept;
  Digest& f64(double v) noexcept;  ///< Hashes the IEEE-754 bit pattern.
  Digest& boolean(bool v) noexcept;

  /// The avalanche-finished 128-bit value (does not reset the state).
  std::array<std::uint64_t, 2> value() const noexcept;
  /// 32 lowercase hex characters of value().
  std::string hex() const;

 private:
  Digest& raw(const void* data, std::size_t n) noexcept;
  Digest& tag(std::uint8_t t) noexcept;

  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  std::uint64_t hi_ = 0x6c62272e07bb0142ULL;  // FNV-1a 128 offset (high word)
};

}  // namespace ct::util
