#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "util/json_writer.h"
#include "util/table.h"

namespace ct::obs {

namespace {

/// Shard capacity in cells. A counter takes 1 cell, a histogram 33; the
/// in-tree metric population is well under a tenth of this, and hitting
/// the cap is a programming error (register_metric throws).
constexpr std::uint32_t kShardCells = 4096;
constexpr std::uint32_t kGaugeCells = 256;

struct Shard {
  std::array<std::atomic<std::uint64_t>, kShardCells> cells{};
};

struct MetricInfo {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint32_t cell = 0;  ///< shard cell offset (gauges: gauge index)
};

/// Process-wide registry state. Intentionally leaked (never destroyed):
/// thread-local shards fold themselves in at arbitrary thread-exit times,
/// including after main() returns, so the registry must outlive everything.
struct Registry {
  std::mutex mutex;                 // guards metrics, shards, next_*
  std::vector<MetricInfo> metrics;  // registration order
  std::vector<Shard*> shards;      // live per-thread shards
  std::array<std::uint64_t, kShardCells> retired{};  // folded dead shards
  std::array<std::atomic<std::uint64_t>, kGaugeCells> gauges{};
  std::uint32_t next_cell = 0;
  std::uint32_t next_gauge = 0;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

bool env_enabled() {
  const char* v = std::getenv("CT_OBS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

/// Per-thread shard handle: registers the heap shard with the registry on
/// first touch and folds it into the retired accumulator at thread exit.
struct ShardHandle {
  Shard* shard;

  ShardHandle() : shard(new Shard()) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.shards.push_back(shard);
  }
  ~ShardHandle() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (std::uint32_t i = 0; i < kShardCells; ++i) {
      r.retired[i] += shard->cells[i].load(std::memory_order_relaxed);
    }
    r.shards.erase(std::find(r.shards.begin(), r.shards.end(), shard));
    delete shard;
  }
};

Shard& local_shard() {
  thread_local ShardHandle handle;
  return *handle.shard;
}

}  // namespace

bool enabled() noexcept {
  return compiled_in() && enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

std::uint32_t register_metric(const char* name, MetricKind kind) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const MetricInfo& m : r.metrics) {
    if (m.name == name) {
      if (m.kind != kind) {
        throw std::logic_error(std::string("obs: metric '") + name +
                               "' re-registered with a different kind");
      }
      return m.cell;
    }
  }
  const std::uint32_t width =
      kind == MetricKind::kHistogram ? kHistogramBuckets + 1 : 1;
  std::uint32_t cell = 0;
  if (kind == MetricKind::kGauge) {
    if (r.next_gauge >= kGaugeCells) {
      throw std::logic_error("obs: gauge capacity exhausted");
    }
    cell = r.next_gauge++;
  } else {
    if (r.next_cell + width > kShardCells) {
      throw std::logic_error("obs: shard cell capacity exhausted");
    }
    cell = r.next_cell;
    r.next_cell += width;
  }
  r.metrics.push_back(MetricInfo{name, kind, cell});
  return cell;
}

void shard_add(std::uint32_t cell, std::uint64_t n) noexcept {
  local_shard().cells[cell].fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t fold_cell(std::uint32_t cell) noexcept {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = r.retired[cell];
  for (const Shard* shard : r.shards) {
    total += shard->cells[cell].load(std::memory_order_relaxed);
  }
  return total;
}

std::atomic<std::uint64_t>& gauge_cell(std::uint32_t index) noexcept {
  return registry().gauges[index];
}

}  // namespace detail

const MetricValue* MetricsSnapshot::find(std::string_view name) const noexcept {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

MetricsSnapshot capture_metrics() {
  Registry& r = registry();
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(r.mutex);
  // Fold once into a flat cell image, then slice it per metric.
  std::array<std::uint64_t, kShardCells> folded = r.retired;
  for (const Shard* shard : r.shards) {
    for (std::uint32_t i = 0; i < r.next_cell; ++i) {
      folded[i] += shard->cells[i].load(std::memory_order_relaxed);
    }
  }
  snapshot.metrics.reserve(r.metrics.size());
  for (const MetricInfo& info : r.metrics) {
    MetricValue v;
    v.name = info.name;
    v.kind = info.kind;
    switch (info.kind) {
      case MetricKind::kCounter:
        v.value = folded[info.cell];
        break;
      case MetricKind::kGauge:
        v.value = r.gauges[info.cell].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram:
        for (unsigned b = 0; b < kHistogramBuckets; ++b) {
          v.buckets[b] = folded[info.cell + b];
          v.count += v.buckets[b];
        }
        v.sum = folded[info.cell + kHistogramBuckets];
        break;
    }
    snapshot.metrics.push_back(std::move(v));
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snapshot;
}

std::string format_metrics(const MetricsSnapshot& snapshot, bool json) {
  std::ostringstream os;
  if (json) {
    util::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    for (const MetricValue& m : snapshot.metrics) {
      if (m.kind == MetricKind::kHistogram) {
        w.key(m.name);
        w.begin_object();
        w.kv("count", m.count);
        w.kv("sum", m.sum);
        w.key("buckets");
        w.begin_array();
        // Trailing empty buckets are elided so idle histograms stay small.
        unsigned last = 0;
        for (unsigned b = 0; b < kHistogramBuckets; ++b) {
          if (m.buckets[b] != 0) last = b + 1;
        }
        for (unsigned b = 0; b < last; ++b) w.value(m.buckets[b]);
        w.end_array();
        w.end_object();
      } else {
        w.kv(m.name, m.value);
      }
    }
    w.end_object();
    os << "\n";
    return os.str();
  }
  util::TextTable table;
  table.set_columns({"metric", "value"},
                    {util::Align::kLeft, util::Align::kRight});
  for (const MetricValue& m : snapshot.metrics) {
    if (m.kind == MetricKind::kHistogram) {
      table.add_row({m.name + ".count", std::to_string(m.count)});
      table.add_row({m.name + ".sum", std::to_string(m.sum)});
      const std::uint64_t mean = m.count == 0 ? 0 : m.sum / m.count;
      table.add_row({m.name + ".mean", std::to_string(mean)});
    } else {
      table.add_row({m.name, std::to_string(m.value)});
    }
  }
  table.render(os);
  return os.str();
}

}  // namespace ct::obs
