#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/digest.h"
#include "util/error.h"
#include "util/json_writer.h"

namespace ct::obs {

namespace {

constexpr std::size_t kDefaultRingCapacity = 4096;
constexpr char kTraceMagic[4] = {'C', 'T', 'O', 'B'};
constexpr std::uint32_t kTraceVersion = 1;

std::uint64_t now_ns() noexcept {
  // Relative to a process-lifetime epoch so exported timestamps are small.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// Bounded per-thread span ring. The mutex is taken per span CLOSE (phase
/// granularity) and by collect_trace(); it is uncontended on the hot path.
struct TraceRing {
  std::mutex mutex;
  std::vector<SpanRecord> slots;  // circular once full
  std::size_t cap;  // exact bound (vector capacity may over-allocate)
  std::size_t next = 0;
  bool wrapped = false;
  std::uint32_t tid = 0;

  explicit TraceRing(std::size_t capacity, std::uint32_t thread_index)
      : cap(capacity == 0 ? 1 : capacity), tid(thread_index) {
    slots.reserve(cap);
  }

  /// Appends, overwriting the oldest record once full. Returns true when a
  /// record was overwritten (caller bumps the dropped counter).
  bool push(SpanRecord&& record) {
    std::lock_guard<std::mutex> lock(mutex);
    if (slots.size() < cap) {
      slots.push_back(std::move(record));
      return false;
    }
    slots[next] = std::move(record);
    next = (next + 1) % slots.size();
    wrapped = true;
    return true;
  }

  /// In-insertion-order copy of the ring contents (oldest first).
  void snapshot_into(std::vector<SpanRecord>& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!wrapped) {
      out.insert(out.end(), slots.begin(), slots.end());
      return;
    }
    out.insert(out.end(), slots.begin() + static_cast<std::ptrdiff_t>(next),
               slots.end());
    out.insert(out.end(), slots.begin(),
               slots.begin() + static_cast<std::ptrdiff_t>(next));
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    slots.clear();
    next = 0;
    wrapped = false;
  }
};

/// Global tracer state. Leaked like the metrics registry: thread-exit
/// retirement may run after main() returns.
struct Tracer {
  std::mutex mutex;                  // guards rings + retired
  std::vector<TraceRing*> rings;     // live per-thread rings
  std::vector<SpanRecord> retired;   // rings of exited threads
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> next_span_id{1};
  std::atomic<std::uint32_t> next_tid{1};
  std::atomic<std::size_t> ring_capacity{kDefaultRingCapacity};
};

Tracer& tracer() {
  static Tracer* t = new Tracer();
  return *t;
}

bool env_trace_enabled() {
  const char* v = std::getenv("CT_OBS_TRACE");
  if (v == nullptr) return false;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& trace_flag() {
  static std::atomic<bool> flag{env_trace_enabled()};
  return flag;
}

/// Per-thread ring handle: registers with the tracer on first span and
/// moves the ring's contents into `retired` at thread exit so spans from
/// joined threads survive until collect_trace().
struct RingHandle {
  TraceRing* ring;

  RingHandle() {
    Tracer& t = tracer();
    ring = new TraceRing(t.ring_capacity.load(std::memory_order_relaxed),
                         t.next_tid.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(t.mutex);
    t.rings.push_back(ring);
  }
  ~RingHandle() {
    Tracer& t = tracer();
    std::lock_guard<std::mutex> lock(t.mutex);
    ring->snapshot_into(t.retired);
    t.rings.erase(std::find(t.rings.begin(), t.rings.end(), ring));
    delete ring;
  }
};

TraceRing& local_ring() {
  thread_local RingHandle handle;
  return *handle.ring;
}

/// Innermost open span id on this thread (0 = none). A plain thread_local
/// — only the owning thread ever touches it.
thread_local std::uint64_t t_open_span = 0;

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, std::uint64_t id,
                 std::uint64_t parent) {
  TraceRing& ring = local_ring();
  SpanRecord record;
  record.name = name;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  record.id = id;
  record.parent = parent;
  record.tid = ring.tid;
  if (ring.push(std::move(record))) {
    tracer().dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- binary frame helpers ---------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

struct Reader {
  std::string_view bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (bytes.size() - pos < n) {
      throw ct::Error(ct::ErrorCode::kParse, "obs",
                      "truncated trace frame");
    }
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::string_view take(std::size_t n) {
    need(n);
    std::string_view v = bytes.substr(pos, n);
    pos += n;
    return v;
  }
};

}  // namespace

bool tracing_enabled() noexcept {
  return compiled_in() && trace_flag().load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept {
  trace_flag().store(on, std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t capacity) noexcept {
  tracer().ring_capacity.store(capacity == 0 ? 1 : capacity,
                               std::memory_order_relaxed);
}

Span::Span(const char* name) noexcept : name_(nullptr) {
  if (!tracing_enabled()) return;
  name_ = name;
  start_ns_ = now_ns();
  id_ = tracer().next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_open_span;
  t_open_span = id_;
}

Span::~Span() {
  if (name_ == nullptr) return;
  t_open_span = parent_;
  record_span(name_, start_ns_, now_ns() - start_ns_, id_, parent_);
}

void trace_instant(const char* name) noexcept {
  if (!tracing_enabled()) return;
  const std::uint64_t id =
      tracer().next_span_id.fetch_add(1, std::memory_order_relaxed);
  record_span(name, now_ns(), 0, id, t_open_span);
}

TraceDump collect_trace() {
  Tracer& t = tracer();
  TraceDump dump;
  {
    std::lock_guard<std::mutex> lock(t.mutex);
    dump.spans = t.retired;
    for (TraceRing* ring : t.rings) ring->snapshot_into(dump.spans);
  }
  dump.dropped = t.dropped.load(std::memory_order_relaxed);
  std::sort(dump.spans.begin(), dump.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return dump;
}

void reset_trace_for_test() {
  Tracer& t = tracer();
  std::lock_guard<std::mutex> lock(t.mutex);
  t.retired.clear();
  for (TraceRing* ring : t.rings) ring->clear();
  t.dropped.store(0, std::memory_order_relaxed);
}

void write_chrome_trace(std::ostream& out, const TraceDump& dump) {
  util::JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const SpanRecord& s : dump.spans) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("ph", "X");
    w.kv("ts", static_cast<double>(s.start_ns) / 1000.0);
    w.kv("dur", static_cast<double>(s.dur_ns) / 1000.0);
    w.kv("pid", 1);
    w.kv("tid", s.tid);
    w.key("args");
    w.begin_object();
    w.kv("id", s.id);
    w.kv("parent", s.parent);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("droppedSpans", dump.dropped);
  w.end_object();
  out << "\n";
}

std::string encode_binary_trace(const TraceDump& dump) {
  std::string payload;
  for (const SpanRecord& s : dump.spans) {
    put_u32(payload, static_cast<std::uint32_t>(s.name.size()));
    payload.append(s.name);
    put_u64(payload, s.start_ns);
    put_u64(payload, s.dur_ns);
    put_u64(payload, s.id);
    put_u64(payload, s.parent);
    put_u32(payload, s.tid);
  }

  util::Digest payload_digest;
  payload_digest.bytes(payload.data(), payload.size());
  const auto pd = payload_digest.value();

  std::string frame(kTraceMagic, sizeof(kTraceMagic));
  put_u32(frame, kTraceVersion);
  put_u64(frame, dump.spans.size());
  put_u64(frame, dump.dropped);
  put_u64(frame, payload.size());
  put_u64(frame, pd[0]);
  put_u64(frame, pd[1]);

  // Header digest covers everything before it, so flipping any header
  // byte (magic included) is caught even when the payload still matches.
  util::Digest header_digest;
  header_digest.bytes(frame.data(), frame.size());
  const auto hd = header_digest.value();
  put_u64(frame, hd[0]);
  put_u64(frame, hd[1]);

  frame.append(payload);
  return frame;
}

TraceDump decode_binary_trace(std::string_view bytes) {
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 * 5;  // up to header digest
  Reader r{bytes};
  r.need(kHeaderBytes + 16);

  // Validate the header digest FIRST: it authenticates every later field,
  // so all subsequent mismatches are genuine parse decisions, not noise.
  util::Digest header_digest;
  header_digest.bytes(bytes.data(), kHeaderBytes);
  const auto hd = header_digest.value();

  if (std::memcmp(bytes.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
    throw ct::Error(ct::ErrorCode::kParse, "obs", "bad trace magic");
  }
  r.pos = sizeof(kTraceMagic);
  const std::uint32_t version = r.u32();
  if (version != kTraceVersion) {
    throw ct::Error(ct::ErrorCode::kParse, "obs",
                    "unsupported trace version " + std::to_string(version));
  }
  const std::uint64_t count = r.u64();
  const std::uint64_t dropped = r.u64();
  const std::uint64_t payload_size = r.u64();
  const std::uint64_t pd0 = r.u64();
  const std::uint64_t pd1 = r.u64();
  if (r.u64() != hd[0] || r.u64() != hd[1]) {
    throw ct::Error(ct::ErrorCode::kParse, "obs",
                    "trace header checksum mismatch");
  }
  if (bytes.size() - r.pos != payload_size) {
    throw ct::Error(ct::ErrorCode::kParse, "obs",
                    "trace payload length mismatch");
  }

  util::Digest payload_digest;
  payload_digest.bytes(bytes.data() + r.pos, payload_size);
  const auto pd = payload_digest.value();
  if (pd[0] != pd0 || pd[1] != pd1) {
    throw ct::Error(ct::ErrorCode::kParse, "obs",
                    "trace payload checksum mismatch");
  }

  TraceDump dump;
  dump.dropped = dropped;
  dump.spans.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SpanRecord s;
    const std::uint32_t name_len = r.u32();
    s.name = std::string(r.take(name_len));
    s.start_ns = r.u64();
    s.dur_ns = r.u64();
    s.id = r.u64();
    s.parent = r.u64();
    s.tid = r.u32();
    dump.spans.push_back(std::move(s));
  }
  if (r.pos != bytes.size()) {
    throw ct::Error(ct::ErrorCode::kParse, "obs",
                    "trailing bytes after trace payload");
  }
  return dump;
}

}  // namespace ct::obs
