// ct_obs span tracer: RAII phase spans with monotonic timestamps, parent
// linkage, and bounded per-thread ring buffers.
//
// A Span records (name, start, duration, id, parent id, thread index) into
// the calling thread's ring when it closes. Rings are bounded: once full
// they overwrite the oldest record and bump a process-wide dropped-span
// counter, so tracing a long sweep has a hard memory ceiling. Parent
// linkage comes from a thread-local stack of open spans — nesting within a
// thread is captured, cross-thread causality intentionally is not (span
// names carry the phase, which is what the exporters visualize).
//
// Spans fire at phase granularity (per realization batch, per DES run, per
// service request), NOT per event, so the per-close ring mutex is
// uncontended in practice and TSan-clean by construction.
//
// Exporters: write_chrome_trace() emits the Chrome trace-event JSON that
// chrome://tracing and Perfetto load directly; encode_binary_trace() emits
// a compact util::Digest-checksummed frame whose decoder rejects every
// header/payload corruption with a typed ct::Error (kParse, origin "obs").
//
// Gating mirrors metrics: CT_OBS_DISABLED compiles spans out entirely;
// at runtime tracing is OFF by default and enabled by the CT_OBS_TRACE
// environment variable or set_trace_enabled(). Like the registry, the
// tracer never feeds back into any computation — determinism oracles pass
// with tracing on and off (tests/obs_test.cpp proves it).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace ct::obs {

/// One closed span. `parent` is the id of the enclosing span on the same
/// thread (0 = root); `tid` is a small stable per-thread index assigned in
/// ring-creation order, not the OS thread id.
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;  ///< monotonic, relative to the trace epoch
  std::uint64_t dur_ns = 0;    ///< 0 for instant events
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint32_t tid = 0;
};

/// Runtime tracing gate: CT_OBS_TRACE environment variable at first use
/// (default OFF — tracing is opt-in, unlike metrics), overridable by
/// set_trace_enabled(). Constant false under CT_OBS_DISABLED.
bool tracing_enabled() noexcept;
void set_trace_enabled(bool on) noexcept;

/// Ring capacity (in spans) for per-thread rings created AFTER this call;
/// existing rings keep their capacity. Tests use a tiny capacity plus a
/// fresh thread to exercise overflow deterministically.
void set_ring_capacity(std::size_t capacity) noexcept;

/// RAII span: opens on construction, records into the thread ring on
/// destruction. Inert (two loads, no stores) when tracing is off. `name`
/// must be a string literal or otherwise outlive the span.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;         // nullptr when inert
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
};

/// Records a zero-duration event (quarantine, retry, shed, ...) at the
/// current instant, parented to the innermost open span.
void trace_instant(const char* name) noexcept;

/// Everything the rings currently hold, in (start_ns, id) order, plus the
/// process-wide count of spans overwritten by ring overflow.
struct TraceDump {
  std::vector<SpanRecord> spans;
  std::uint64_t dropped = 0;
};

/// Snapshots live + retired rings. Does not clear them.
TraceDump collect_trace();

/// Clears all rings, retired records and the dropped counter (span ids
/// keep advancing). Test isolation only.
void reset_trace_for_test();

/// Chrome trace-event JSON ({"traceEvents":[...]}): complete "X" events
/// with microsecond ts/dur, span id/parent under "args".
void write_chrome_trace(std::ostream& out, const TraceDump& dump);

/// Compact binary frame: "CTOB" magic, version, record count, payload
/// length, payload digest, then a digest over the header itself, then the
/// length-prefixed records. Both digests are util::Digest values, so any
/// single-byte corruption anywhere in the frame is detected.
std::string encode_binary_trace(const TraceDump& dump);

/// Decodes encode_binary_trace() output. Throws ct::Error with
/// ErrorCode::kParse (origin "obs") on any truncation, magic/version
/// mismatch, or checksum failure.
TraceDump decode_binary_trace(std::string_view bytes);

}  // namespace ct::obs
