// ct_obs metrics: a lock-cheap process-wide MetricsRegistry.
//
// Three instrument kinds — Counter (monotone), Gauge (last-writer-wins),
// Histogram (fixed log2 bucket layout) — all addressed by a stable
// registered name. Hot-path writes touch ONLY a thread-local shard cell
// (one relaxed atomic add), so instrumenting a sweep costs nanoseconds and
// never serializes workers; reads fold every live shard plus the retired
// accumulator under the registry mutex, which only the (rare) snapshot
// path takes. Gauges are the exception: set() has last-writer-wins
// semantics that per-thread cells cannot fold, so they live in one shared
// atomic cell each.
//
// Determinism contract: nothing in this module feeds back into any
// computation — no RNG draws, no allocation on a recorded value's path
// that a simulation could observe, no ordering side channels. Every
// bit-identity oracle in the repo must (and does — see tests/obs_test.cpp)
// produce identical results with observability on and off.
//
// Gating: compile with CT_OBS_DISABLED to turn every instrument into an
// inlined no-op (enabled() becomes constant false and dead-code
// elimination removes the call sites). At runtime the CT_OBS environment
// variable ("0"/"off"/"false" disables) or set_enabled() flips collection;
// a disabled registry costs one relaxed bool load per call site.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ct::obs {

/// Instrument kinds a registry snapshot distinguishes.
enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Buckets of the fixed log2 histogram layout: bucket 0 holds value 0 and
/// bucket b (b >= 1) holds values in [2^(b-1), 2^b - 1]; the last bucket
/// absorbs everything larger.
inline constexpr unsigned kHistogramBuckets = 32;

/// log2 bucket index of `v` (see kHistogramBuckets).
inline unsigned histogram_bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const unsigned b = static_cast<unsigned>(std::bit_width(v));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Smallest value bucket `b` counts (0 for bucket 0, else 2^(b-1)).
inline std::uint64_t histogram_bucket_floor(unsigned b) noexcept {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

#ifdef CT_OBS_DISABLED
inline constexpr bool compiled_in() noexcept { return false; }
#else
inline constexpr bool compiled_in() noexcept { return true; }
#endif

/// Runtime collection gate: CT_OBS environment variable at first use
/// (default on), overridable by set_enabled(). Constant false when the
/// library was compiled with CT_OBS_DISABLED.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// One metric in a snapshot. Counters/gauges carry `value`; histograms
/// carry the bucket array plus derived count/sum (sum is of the observed
/// values, so mean = sum / count).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// Point-in-time fold of every registered metric, sorted by name (the
/// stable order the formatter — and therefore every byte-identity
/// contract over rendered metrics — relies on).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// The metric named `name`, or nullptr.
  const MetricValue* find(std::string_view name) const noexcept;
};

/// Folds live shards + retired state into a snapshot.
MetricsSnapshot capture_metrics();

/// Renders a snapshot: a two-column text table, or a flat JSON object
/// (counters/gauges as name -> value, histograms as nested objects). The
/// SAME formatter serves `ctctl stats --metrics` locally and the service
/// kMetrics reply, so local and remote output are byte-identical by
/// construction.
std::string format_metrics(const MetricsSnapshot& snapshot, bool json);

namespace detail {
/// Registers a metric (idempotent per name; the kind must match) and
/// returns its shard cell offset. Counters use 1 cell, histograms
/// kHistogramBuckets + 1 (buckets then sum). Gauges return an index into
/// the registry's shared gauge array instead.
std::uint32_t register_metric(const char* name, MetricKind kind);
/// Adds `n` to thread-local shard cell `cell`.
void shard_add(std::uint32_t cell, std::uint64_t n) noexcept;
/// Folded value of shard cell `cell` across live + retired shards.
std::uint64_t fold_cell(std::uint32_t cell) noexcept;
std::atomic<std::uint64_t>& gauge_cell(std::uint32_t index) noexcept;
}  // namespace detail

/// Monotone counter. Construction registers the name; `inc` is the
/// hot-path write (one relaxed add on a thread-local cell).
class Counter {
 public:
  explicit Counter(const char* name)
      : cell_(detail::register_metric(name, MetricKind::kCounter)) {}

  void inc(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    detail::shard_add(cell_, n);
  }
  /// Folded process-wide value.
  std::uint64_t value() const noexcept { return detail::fold_cell(cell_); }

 private:
  std::uint32_t cell_;
};

/// Last-writer-wins gauge (one shared atomic cell).
class Gauge {
 public:
  explicit Gauge(const char* name)
      : index_(detail::register_metric(name, MetricKind::kGauge)) {}

  void set(std::uint64_t v) noexcept {
    if (!enabled()) return;
    detail::gauge_cell(index_).store(v, std::memory_order_relaxed);
  }
  /// Monotone-max update (peak tracking).
  void max(std::uint64_t v) noexcept {
    if (!enabled()) return;
    auto& cell = detail::gauge_cell(index_);
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v > cur &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const noexcept {
    return detail::gauge_cell(index_).load(std::memory_order_relaxed);
  }

 private:
  std::uint32_t index_;
};

/// Fixed log2-bucket histogram; observe() is two relaxed adds on
/// thread-local cells (bucket count + running sum).
class Histogram {
 public:
  explicit Histogram(const char* name)
      : cell_(detail::register_metric(name, MetricKind::kHistogram)) {}

  void observe(std::uint64_t v) noexcept {
    if (!enabled()) return;
    detail::shard_add(cell_ + histogram_bucket_of(v), 1);
    detail::shard_add(cell_ + kHistogramBuckets, v);
  }

  std::uint64_t bucket(unsigned b) const noexcept {
    return detail::fold_cell(cell_ + b);
  }
  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) total += bucket(b);
    return total;
  }
  std::uint64_t sum() const noexcept {
    return detail::fold_cell(cell_ + kHistogramBuckets);
  }

 private:
  std::uint32_t cell_;
};

/// RAII phase timer: observes the scope's wall time in MICROSECONDS into a
/// histogram on destruction. The profiling hooks around realization runs,
/// the DES event loop, cache lookups, checkpoint flushes and service
/// requests are all instances of this.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(enabled() ? &histogram : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    histogram_->observe(static_cast<std::uint64_t>(us.count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace ct::obs
