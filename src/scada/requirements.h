// Replication sizing rules from the intrusion-tolerant SCADA literature
// ([15] Kirsch et al., [16] Babay et al., [23] Sousa et al.): how many
// replicas an architecture needs to tolerate f intrusions, k concurrent
// proactive recoveries, and (for multi-site active replication) the loss of
// one site. These derive the paper's "6" and "6+6+6" configurations from
// first principles, and let users size novel configurations.
#pragma once

#include <string>

namespace ct::scada {

/// Minimum replicas for a single-site BFT system tolerating f intrusions
/// while k replicas are concurrently in proactive recovery:
///   n = 3f + 2k + 1   (Sousa et al. [23]; yields 6 for f=1, k=1).
int min_replicas_single_site(int f, int k);

/// For S equally sized hot sites forming one replication group that must
/// keep a quorum after losing any single site (disconnection or disaster):
/// the surviving replicas must form a quorum of the FULL group,
///   n - m >= ceil((n + 3f + 2k + 1) / 2)   with n = S * m,
/// which solves to m >= (3f + 2k + 1) / (S - 2). Returns the minimal
/// per-site replica count m (yields 6 per site for S=3, f=1, k=1 — the
/// paper's "6+6+6"). Requires S >= 3.
int min_replicas_per_site_active(int sites, int f, int k);

/// BFT quorum of an n-replica group tolerating f intrusions: the smallest
/// q with quorum intersection in at least f+1 replicas,
///   q = ceil((n + f + 1) / 2)    (4 of 6 for f=1).
int bft_quorum(int n, int f);

/// True when `connected` replicas (correct + compromised, still reachable)
/// out of an n-replica group suffice for liveness given f intrusions and k
/// concurrently recovering replicas among the connected ones: the attacker
/// and recovery may silence f + k of them, so progress needs
///   connected - f - k >= bft_quorum(n, f).
bool bft_can_make_progress(int n, int connected, int f, int k);

/// Human-readable derivation (used by the quickstart example and docs).
std::string explain_single_site(int f, int k);
std::string explain_active_multisite(int sites, int f, int k);

}  // namespace ct::scada
