// Topology interchange: load and save ScadaTopology as CSV
// (id,name,type,lat,lon,elevation_m) — the format utilities export from
// GIS asset databases. Lets users run the framework on their own grid
// without writing C++.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string_view>

#include "scada/asset.h"

namespace ct::scada {

/// Parses an asset type from its canonical name ("control center",
/// "data center", "power plant", "substation"); also accepts
/// snake_case variants. nullopt when unknown.
std::optional<AssetType> parse_asset_type(std::string_view name) noexcept;

/// Writes the topology as CSV with a header row.
void save_topology_csv(std::ostream& out, const ScadaTopology& topology);

/// Reads a topology from CSV. The header row is required and validated.
/// Throws std::runtime_error with a line number on malformed input
/// (wrong column count, unknown type, unparsable number, duplicate id,
/// out-of-range coordinates).
ScadaTopology load_topology_csv(std::istream& in);

}  // namespace ct::scada
