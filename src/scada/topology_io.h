// Topology interchange: load and save ScadaTopology as CSV
// (id,name,type,lat,lon,elevation_m) — the format utilities export from
// GIS asset databases. Lets users run the framework on their own grid
// without writing C++.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string_view>

#include "scada/asset.h"

namespace ct::scada {

/// Parses an asset type from its canonical name ("control center",
/// "data center", "power plant", "substation"); also accepts
/// snake_case variants. nullopt when unknown.
std::optional<AssetType> parse_asset_type(std::string_view name) noexcept;

/// Writes the topology as CSV with a header row.
void save_topology_csv(std::ostream& out, const ScadaTopology& topology);

/// Reads a topology from CSV. The header row is required and validated.
/// Throws ct::Error{kParse, "topology-csv"} whose message carries
/// `source_name` and the 1-based line number on malformed input (wrong
/// column count, unknown/empty id or type, unparsable or non-finite
/// number, duplicate id, out-of-range coordinates). Error derives from
/// std::runtime_error, so existing catch sites keep working.
ScadaTopology load_topology_csv(std::istream& in,
                                std::string_view source_name = "topology.csv");

}  // namespace ct::scada
