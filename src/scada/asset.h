// Physical power-grid and SCADA assets and the geospatial topology they
// form (the paper's Fig. 4: control centers, data centers, power plants,
// substations on Oahu).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geopoint.h"
#include "surge/inundation.h"

namespace ct::scada {

/// Kind of physical asset.
enum class AssetType {
  kControlCenter,
  kDataCenter,
  kPowerPlant,
  kSubstation,
};

std::string_view asset_type_name(AssetType t) noexcept;

/// One asset: a place that can host SCADA equipment and can be flooded.
struct Asset {
  std::string id;            ///< Stable identifier, e.g. "honolulu_cc".
  std::string name;          ///< Human-readable, e.g. "Honolulu Control Center".
  AssetType type = AssetType::kSubstation;
  geo::GeoPoint location;
  /// Surveyed pad elevation (m above MSL); drives flood susceptibility.
  double ground_elevation_m = 2.0;
};

/// The geospatial SCADA topology: the set of assets under analysis.
class ScadaTopology {
 public:
  ScadaTopology() = default;
  explicit ScadaTopology(std::vector<Asset> assets);

  /// Adds an asset; throws on duplicate id.
  void add(Asset asset);

  const std::vector<Asset>& assets() const noexcept { return assets_; }
  std::size_t size() const noexcept { return assets_.size(); }

  /// Finds an asset by id (nullptr when absent).
  const Asset* find(std::string_view id) const noexcept;
  /// Finds an asset by id; throws std::out_of_range when absent.
  const Asset& at(std::string_view id) const;
  bool contains(std::string_view id) const noexcept { return find(id) != nullptr; }

  /// All assets of a given type.
  std::vector<const Asset*> of_type(AssetType t) const;

  /// Converts to the surge module's exposure list (same order as assets()).
  std::vector<surge::ExposedAsset> exposed_assets() const;

 private:
  std::vector<Asset> assets_;
};

}  // namespace ct::scada
