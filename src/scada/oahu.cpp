#include "scada/oahu.h"

#include "terrain/oahu.h"

namespace ct::scada {

ScadaTopology oahu_topology() {
  namespace sites = terrain::oahu_sites;
  ScadaTopology topo;

  // Control centers. Elevations are the surveyed pad heights that drive
  // flood susceptibility: Honolulu and Waiau sit on the low south-shore
  // plain (the paper: "relatively close together and at similar altitude
  // levels"), Kahe sits on an elevated bench above the leeward shore (the
  // paper: "Kahe is the site least impacted by the hurricane").
  topo.add({oahu_ids::kHonoluluCc, "Honolulu Control Center",
            AssetType::kControlCenter, sites::kHonolulu, 0.69});
  topo.add({oahu_ids::kWaiauCc, "Waiau Control Center",
            AssetType::kControlCenter, sites::kWaiau, 1.21});
  topo.add({oahu_ids::kKaheCc, "Kahe Control Center",
            AssetType::kControlCenter, sites::kKahe, 9.0});

  // Commercial data centers (paper Fig. 4 labels both; DRFortress is the
  // one selected for the "6+6+6" analysis).
  topo.add({oahu_ids::kDrFortress, "DRFortress Data Center",
            AssetType::kDataCenter, sites::kDrFortress, 5.0});
  topo.add({oahu_ids::kAlohaNap, "AlohaNAP Data Center",
            AssetType::kDataCenter, sites::kAlohaNap, 3.5});

  // Power plants.
  topo.add({"kahe_pp", "Kahe Power Plant", AssetType::kPowerPlant,
            {21.3560, -158.1280}, 7.5});
  topo.add({"waiau_pp", "Waiau Power Plant", AssetType::kPowerPlant,
            {21.3847, -157.9436}, 1.0});
  topo.add({"campbell_pp", "Campbell Industrial Park Generation",
            AssetType::kPowerPlant, {21.3100, -158.0880}, 3.0});
  topo.add({"honolulu_pp", "Honolulu Power Plant", AssetType::kPowerPlant,
            {21.3000, -157.8650}, 1.2});
  topo.add({"kalaeloa_pp", "Kalaeloa Cogeneration Plant",
            AssetType::kPowerPlant, {21.3070, -158.0830}, 3.2});

  // Transmission substations (coordinates approximate, elevations from the
  // synthetic DEM's coastal-plain profile).
  topo.add({"archer_ss", "Archer Substation", AssetType::kSubstation,
            {21.3110, -157.8560}, 2.5});
  topo.add({"kamoku_ss", "Kamoku Substation", AssetType::kSubstation,
            {21.2890, -157.8260}, 2.2});
  topo.add({"halawa_ss", "Halawa Substation", AssetType::kSubstation,
            {21.3720, -157.9210}, 6.0});
  topo.add({"ewa_nui_ss", "Ewa Nui Substation", AssetType::kSubstation,
            {21.3330, -158.0230}, 4.5});
  topo.add({"koolau_ss", "Koolau Substation", AssetType::kSubstation,
            sites::kKoolau, 30.0});
  topo.add({"wahiawa_ss", "Wahiawa Substation", AssetType::kSubstation,
            sites::kWahiawa, 255.0});
  topo.add({"pukele_ss", "Pukele Substation", AssetType::kSubstation,
            {21.2980, -157.7880}, 25.0});
  topo.add({"makalapa_ss", "Makalapa Substation", AssetType::kSubstation,
            {21.3560, -157.9400}, 3.0});
  topo.add({"waialua_ss", "Waialua Substation", AssetType::kSubstation,
            sites::kWaialua, 6.0});
  topo.add({"airport_ss", "Airport Substation", AssetType::kSubstation,
            sites::kAirport, 2.0});

  return topo;
}

std::vector<std::string> oahu_control_site_candidates() {
  return {oahu_ids::kHonoluluCc, oahu_ids::kWaiauCc, oahu_ids::kKaheCc,
          oahu_ids::kDrFortress, oahu_ids::kAlohaNap};
}

}  // namespace ct::scada
