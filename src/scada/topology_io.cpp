#include "scada/topology_io.h"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/csv.h"
#include "util/error.h"
#include "util/strings.h"

namespace ct::scada {

namespace {

/// Every malformed row becomes a ct::Error carrying the source name and
/// 1-based line number, so "topology.csv:17: latitude out of range" is
/// greppable straight from a failure summary.
[[noreturn]] void fail(std::string_view source, std::size_t line,
                       const std::string& what) {
  throw ct::Error(util::ErrorCode::kParse, "topology-csv",
                  std::string(source) + ":" + std::to_string(line) + ": " +
                      what);
}

double parse_double(std::string_view field, std::string_view source,
                    std::size_t line, const char* what) {
  const std::string_view trimmed = util::trim(field);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(
      trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    fail(source, line, std::string("cannot parse ") + what + ": '" +
                           std::string(field) + "'");
  }
  if (!std::isfinite(value)) {
    fail(source, line,
         std::string("non-finite ") + what + ": '" + std::string(field) + "'");
  }
  return value;
}

}  // namespace

std::optional<AssetType> parse_asset_type(std::string_view name) noexcept {
  const std::string lower = util::to_lower(util::trim(name));
  if (lower == "control center" || lower == "control_center") {
    return AssetType::kControlCenter;
  }
  if (lower == "data center" || lower == "data_center") {
    return AssetType::kDataCenter;
  }
  if (lower == "power plant" || lower == "power_plant") {
    return AssetType::kPowerPlant;
  }
  if (lower == "substation") return AssetType::kSubstation;
  return std::nullopt;
}

void save_topology_csv(std::ostream& out, const ScadaTopology& topology) {
  util::CsvWriter csv(out);
  csv.header({"id", "name", "type", "lat", "lon", "elevation_m"});
  for (const Asset& a : topology.assets()) {
    csv.field(a.id)
        .field(a.name)
        .field(asset_type_name(a.type))
        .field(a.location.lat_deg, 10)
        .field(a.location.lon_deg, 10)
        .field(a.ground_elevation_m, 6);
    csv.end_row();
  }
}

ScadaTopology load_topology_csv(std::istream& in,
                                std::string_view source_name) {
  ScadaTopology topology;
  std::string line;
  std::size_t line_number = 0;

  // Header.
  if (!std::getline(in, line)) {
    throw ct::Error(util::ErrorCode::kParse, "topology-csv",
                    std::string(source_name) + ": empty input");
  }
  ++line_number;
  const auto header = util::parse_csv_line(util::trim(line));
  const std::vector<std::string> expected = {"id",  "name", "type",
                                             "lat", "lon",  "elevation_m"};
  if (header != expected) {
    fail(source_name, line_number,
         "expected header 'id,name,type,lat,lon,elevation_m', got '" +
             std::string(util::trim(line)) + "'");
  }

  while (std::getline(in, line)) {
    ++line_number;
    if (util::trim(line).empty()) continue;
    std::vector<std::string> fields;
    try {
      fields = util::parse_csv_line(line);
    } catch (const std::invalid_argument& e) {
      fail(source_name, line_number, e.what());
    }
    if (fields.size() != 6) {
      fail(source_name, line_number,
           "expected 6 fields, got " + std::to_string(fields.size()));
    }
    Asset asset;
    asset.id = std::string(util::trim(fields[0]));
    asset.name = std::string(util::trim(fields[1]));
    if (asset.id.empty()) fail(source_name, line_number, "empty asset id");
    const auto type = parse_asset_type(fields[2]);
    if (!type) {
      fail(source_name, line_number,
           "unknown asset type: '" + fields[2] + "'");
    }
    asset.type = *type;
    asset.location.lat_deg =
        parse_double(fields[3], source_name, line_number, "lat");
    asset.location.lon_deg =
        parse_double(fields[4], source_name, line_number, "lon");
    asset.ground_elevation_m =
        parse_double(fields[5], source_name, line_number, "elevation_m");
    if (asset.location.lat_deg < -90.0 || asset.location.lat_deg > 90.0) {
      fail(source_name, line_number, "latitude out of range");
    }
    if (asset.location.lon_deg < -180.0 || asset.location.lon_deg > 180.0) {
      fail(source_name, line_number, "longitude out of range");
    }
    try {
      topology.add(std::move(asset));
    } catch (const std::invalid_argument& e) {
      fail(source_name, line_number, e.what());
    }
  }
  return topology;
}

}  // namespace ct::scada
