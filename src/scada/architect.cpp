#include "scada/architect.h"

#include <stdexcept>

#include "scada/requirements.h"

namespace ct::scada {

std::string_view architecture_style_name(ArchitectureStyle s) noexcept {
  switch (s) {
    case ArchitectureStyle::kPrimaryBackup: return "primary-backup";
    case ArchitectureStyle::kPrimaryColdBackup: return "primary + cold backup";
    case ArchitectureStyle::kBft: return "intrusion-tolerant";
    case ArchitectureStyle::kBftColdBackup:
      return "intrusion-tolerant + cold backup";
    case ArchitectureStyle::kBftActiveMultisite:
      return "network-attack-resilient intrusion-tolerant";
  }
  return "?";
}

namespace {

void check_spec(const ArchitectureSpec& spec) {
  if (spec.f < 0 || spec.k < 0) {
    throw std::invalid_argument("ArchitectureSpec: f and k must be >= 0");
  }
  const bool bft = spec.style == ArchitectureStyle::kBft ||
                   spec.style == ArchitectureStyle::kBftColdBackup ||
                   spec.style == ArchitectureStyle::kBftActiveMultisite;
  if (bft && spec.f == 0) {
    throw std::invalid_argument(
        "ArchitectureSpec: BFT styles need f >= 1 (use primary-backup for "
        "f = 0)");
  }
  if (spec.style == ArchitectureStyle::kBftActiveMultisite && spec.sites < 3) {
    throw std::invalid_argument(
        "ArchitectureSpec: active multisite needs >= 3 sites");
  }
}

int replicas_per_site(const ArchitectureSpec& spec) {
  switch (spec.style) {
    case ArchitectureStyle::kPrimaryBackup:
    case ArchitectureStyle::kPrimaryColdBackup:
      return 2;  // primary + hot standby
    case ArchitectureStyle::kBft:
    case ArchitectureStyle::kBftColdBackup:
      return min_replicas_single_site(spec.f, spec.k);
    case ArchitectureStyle::kBftActiveMultisite:
      return min_replicas_per_site_active(spec.sites, spec.f, spec.k);
  }
  throw std::logic_error("unreachable");
}

/// Smallest number of functional sites keeping the multisite group live:
/// u * m - f - k >= quorum(S * m, f).
int derive_min_active_sites(int sites, int m, int f, int k) {
  const int quorum = bft_quorum(sites * m, f);
  for (int u = 1; u <= sites; ++u) {
    if (u * m - f - k >= quorum) return u;
  }
  return sites;
}

}  // namespace

int required_sites(const ArchitectureSpec& spec) {
  switch (spec.style) {
    case ArchitectureStyle::kPrimaryBackup:
    case ArchitectureStyle::kBft:
      return 1;
    case ArchitectureStyle::kPrimaryColdBackup:
    case ArchitectureStyle::kBftColdBackup:
      return 2;
    case ArchitectureStyle::kBftActiveMultisite:
      return spec.sites;
  }
  throw std::logic_error("unreachable");
}

std::string spec_name(const ArchitectureSpec& spec) {
  check_spec(spec);
  const std::string m = std::to_string(replicas_per_site(spec));
  switch (spec.style) {
    case ArchitectureStyle::kPrimaryBackup:
    case ArchitectureStyle::kBft:
      return m;
    case ArchitectureStyle::kPrimaryColdBackup:
    case ArchitectureStyle::kBftColdBackup:
      return m + "-" + m;
    case ArchitectureStyle::kBftActiveMultisite: {
      std::string name = m;
      for (int s = 1; s < spec.sites; ++s) name += "+" + m;
      return name;
    }
  }
  throw std::logic_error("unreachable");
}

Configuration design_configuration(
    const ArchitectureSpec& spec, const std::vector<std::string>& site_assets) {
  check_spec(spec);
  const int needed = required_sites(spec);
  if (static_cast<int>(site_assets.size()) != needed) {
    throw std::invalid_argument("design_configuration: expected " +
                                std::to_string(needed) + " site assets, got " +
                                std::to_string(site_assets.size()));
  }

  const bool bft = spec.style == ArchitectureStyle::kBft ||
                   spec.style == ArchitectureStyle::kBftColdBackup ||
                   spec.style == ArchitectureStyle::kBftActiveMultisite;
  const int m = replicas_per_site(spec);

  Configuration config;
  config.name = spec_name(spec);
  config.style = bft ? ReplicationStyle::kIntrusionTolerant
                     : ReplicationStyle::kPrimaryBackup;
  config.intrusion_tolerance_f = bft ? spec.f : 0;
  config.proactive_recovery_k = bft ? spec.k : 0;

  if (spec.style == ArchitectureStyle::kBftActiveMultisite) {
    config.active_multisite = true;
    config.min_active_sites =
        derive_min_active_sites(spec.sites, m, spec.f, spec.k);
    for (int s = 0; s < spec.sites; ++s) {
      SiteRole role = SiteRole::kDataCenter;
      if (s == 0) role = SiteRole::kPrimary;
      if (s == 1) role = SiteRole::kBackup;
      config.sites.push_back(
          {site_assets[static_cast<std::size_t>(s)], role, m, true});
    }
    return config;
  }

  config.sites.push_back({site_assets[0], SiteRole::kPrimary, m, true});
  if (needed == 2) {
    config.sites.push_back({site_assets[1], SiteRole::kBackup, m, false});
  }
  return config;
}

std::vector<ArchitectureSpec> standard_design_space(int max_f, int max_sites) {
  if (max_f < 1 || max_sites < 3) {
    throw std::invalid_argument("standard_design_space: need max_f >= 1 and "
                                "max_sites >= 3");
  }
  std::vector<ArchitectureSpec> out;
  out.push_back({ArchitectureStyle::kPrimaryBackup, 0, 0, 1});
  out.push_back({ArchitectureStyle::kPrimaryColdBackup, 0, 0, 2});
  for (int f = 1; f <= max_f; ++f) {
    for (int k = 0; k <= 1; ++k) {
      out.push_back({ArchitectureStyle::kBft, f, k, 1});
      out.push_back({ArchitectureStyle::kBftColdBackup, f, k, 2});
      for (int sites = 3; sites <= max_sites; ++sites) {
        out.push_back({ArchitectureStyle::kBftActiveMultisite, f, k, sites});
      }
    }
  }
  return out;
}

}  // namespace ct::scada
