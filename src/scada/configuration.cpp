#include "scada/configuration.h"

namespace ct::scada {

std::string_view site_role_name(SiteRole r) noexcept {
  switch (r) {
    case SiteRole::kPrimary: return "primary";
    case SiteRole::kBackup: return "backup";
    case SiteRole::kDataCenter: return "data center";
  }
  return "?";
}

int Configuration::total_replicas() const noexcept {
  int total = 0;
  for (const ControlSite& s : sites) total += s.replicas;
  return total;
}

std::vector<std::size_t> Configuration::sites_with_role(SiteRole r) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].role == r) out.push_back(i);
  }
  return out;
}

std::size_t Configuration::site_index(std::string_view asset_id) const noexcept {
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].asset_id == asset_id) return i;
  }
  return npos;
}

Configuration make_config_2(std::string primary) {
  Configuration c;
  c.name = "2";
  c.style = ReplicationStyle::kPrimaryBackup;
  c.intrusion_tolerance_f = 0;
  c.proactive_recovery_k = 0;
  c.sites = {{std::move(primary), SiteRole::kPrimary, 2, true}};
  return c;
}

Configuration make_config_2_2(std::string primary, std::string backup) {
  Configuration c;
  c.name = "2-2";
  c.style = ReplicationStyle::kPrimaryBackup;
  c.intrusion_tolerance_f = 0;
  c.proactive_recovery_k = 0;
  c.sites = {{std::move(primary), SiteRole::kPrimary, 2, true},
             {std::move(backup), SiteRole::kBackup, 2, false}};
  return c;
}

Configuration make_config_6(std::string primary) {
  Configuration c;
  c.name = "6";
  c.style = ReplicationStyle::kIntrusionTolerant;
  c.intrusion_tolerance_f = 1;
  c.proactive_recovery_k = 1;
  c.sites = {{std::move(primary), SiteRole::kPrimary, 6, true}};
  return c;
}

Configuration make_config_6_6(std::string primary, std::string backup) {
  Configuration c;
  c.name = "6-6";
  c.style = ReplicationStyle::kIntrusionTolerant;
  c.intrusion_tolerance_f = 1;
  c.proactive_recovery_k = 1;
  c.sites = {{std::move(primary), SiteRole::kPrimary, 6, true},
             {std::move(backup), SiteRole::kBackup, 6, false}};
  return c;
}

Configuration make_config_6_6_6(std::string primary, std::string second_cc,
                                std::string data_center) {
  Configuration c;
  c.name = "6+6+6";
  c.style = ReplicationStyle::kIntrusionTolerant;
  c.intrusion_tolerance_f = 1;
  c.proactive_recovery_k = 1;
  c.active_multisite = true;
  c.min_active_sites = 2;
  c.sites = {{std::move(primary), SiteRole::kPrimary, 6, true},
             {std::move(second_cc), SiteRole::kBackup, 6, true},
             {std::move(data_center), SiteRole::kDataCenter, 6, true}};
  return c;
}

std::vector<Configuration> paper_configurations(const std::string& primary,
                                                const std::string& backup,
                                                const std::string& data_center) {
  return {make_config_2(primary), make_config_2_2(primary, backup),
          make_config_6(primary), make_config_6_6(primary, backup),
          make_config_6_6_6(primary, backup, data_center)};
}

}  // namespace ct::scada
