// SCADA architecture configurations: the five architectures the paper
// assesses ("2", "2-2", "6", "6-6", "6+6+6") plus a generic descriptor so
// new architectures can be analyzed without touching the framework.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ct::scada {

/// Role of a control site within a configuration. Priority for the
/// worst-case attacker's site-isolation rule follows this order
/// (paper §V-B rule 2: primary, then backup, then data centers).
enum class SiteRole {
  kPrimary,     ///< Primary control center.
  kBackup,      ///< Backup control center (cold in "2-2"/"6-6", hot in "6+6+6").
  kDataCenter,  ///< Additional active replication site ("6+6+6").
};

std::string_view site_role_name(SiteRole r) noexcept;

/// One control site of a configuration.
struct ControlSite {
  std::string asset_id;  ///< Physical asset hosting the site.
  SiteRole role = SiteRole::kPrimary;
  int replicas = 2;      ///< SCADA masters at this site.
  /// Hot sites participate in (replicated) operation immediately; a cold
  /// site requires activation (minutes of downtime => orange state).
  bool hot = true;
};

/// Replication style of the SCADA masters.
enum class ReplicationStyle {
  /// Primary + hot-standby within a site; no Byzantine tolerance (f = 0).
  kPrimaryBackup,
  /// BFT replication (Prime-style): tolerates f intrusions with k replicas
  /// concurrently undergoing proactive recovery.
  kIntrusionTolerant,
};

/// A SCADA system architecture instance, bound to physical sites.
struct Configuration {
  std::string name;
  ReplicationStyle style = ReplicationStyle::kPrimaryBackup;
  /// Maximum intrusions the active replication group survives (0 for
  /// primary-backup architectures).
  int intrusion_tolerance_f = 0;
  /// Replicas simultaneously in proactive recovery (Prime-style "k").
  int proactive_recovery_k = 0;
  /// When true, all hot sites form ONE active replication group that keeps
  /// operating while at least `min_active_sites` sites are connected
  /// ("6+6+6"). When false, one site operates at a time with cold failover.
  bool active_multisite = false;
  /// Minimum connected sites for the active-multisite group to have a
  /// quorum (2 of 3 for "6+6+6").
  int min_active_sites = 2;
  std::vector<ControlSite> sites;

  /// Intrusions required to violate safety (f + 1).
  int safety_threshold() const noexcept { return intrusion_tolerance_f + 1; }
  int total_replicas() const noexcept;
  /// Sites with the given role, in declaration order.
  std::vector<std::size_t> sites_with_role(SiteRole r) const;
  /// Index of the site hosted on `asset_id`, or npos.
  std::size_t site_index(std::string_view asset_id) const noexcept;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Factories for the paper's five architectures. Arguments are the asset
/// ids of the hosting sites.
Configuration make_config_2(std::string primary);
Configuration make_config_2_2(std::string primary, std::string backup);
Configuration make_config_6(std::string primary);
Configuration make_config_6_6(std::string primary, std::string backup);
Configuration make_config_6_6_6(std::string primary, std::string second_cc,
                                std::string data_center);

/// All five, in the paper's order, for a given siting choice.
std::vector<Configuration> paper_configurations(const std::string& primary,
                                                const std::string& backup,
                                                const std::string& data_center);

}  // namespace ct::scada
