// Architecture designer: generates correctly sized SCADA configurations
// for any (f, k, style, site count) from the replication sizing rules in
// requirements.h — the generalization of the paper's five hand-picked
// architectures. "What would 2 intrusions require?" or "does a 4th active
// site pay off?" become one-liners, and the analysis framework accepts the
// generated configurations unchanged.
#pragma once

#include <string>
#include <vector>

#include "scada/configuration.h"

namespace ct::scada {

/// Families of SCADA deployments covered by the designer.
enum class ArchitectureStyle {
  kPrimaryBackup,       ///< 2 SMs at one site ("2").
  kPrimaryColdBackup,   ///< + a cold-backup site ("2-2").
  kBft,                 ///< 3f+2k+1 replicas at one site ("6").
  kBftColdBackup,       ///< + a cold-backup BFT site ("6-6").
  kBftActiveMultisite,  ///< one group across >= 3 hot sites ("6+6+6").
};

std::string_view architecture_style_name(ArchitectureStyle s) noexcept;

/// What to build.
struct ArchitectureSpec {
  ArchitectureStyle style = ArchitectureStyle::kBft;
  int f = 1;      ///< Intrusions tolerated (ignored by primary-backup).
  int k = 1;      ///< Concurrent proactive recoveries (BFT styles only).
  int sites = 1;  ///< Total control sites (>= 3 for active multisite).
};

/// Canonical name in the paper's notation: "2", "2-2", "6", "6-6",
/// "6+6+6", and e.g. "9+9+9" for f=2, k=1, 3 sites.
std::string spec_name(const ArchitectureSpec& spec);

/// Number of sites the spec needs (1, 2, or spec.sites).
int required_sites(const ArchitectureSpec& spec);

/// Builds the fully sized configuration on the given host assets (one per
/// required site, primary first). min_active_sites for multisite styles is
/// derived from the quorum rules, not assumed. Throws on invalid specs or
/// wrong asset counts.
Configuration design_configuration(const ArchitectureSpec& spec,
                                   const std::vector<std::string>& site_assets);

/// The design space explored by the architecture bench: every style with
/// f in [0 or 1 .. max_f], k in {0, 1}, multisite with 3..max_sites sites.
std::vector<ArchitectureSpec> standard_design_space(int max_f, int max_sites);

}  // namespace ct::scada
