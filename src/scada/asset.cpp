#include "scada/asset.h"

#include <stdexcept>

namespace ct::scada {

std::string_view asset_type_name(AssetType t) noexcept {
  switch (t) {
    case AssetType::kControlCenter: return "control center";
    case AssetType::kDataCenter: return "data center";
    case AssetType::kPowerPlant: return "power plant";
    case AssetType::kSubstation: return "substation";
  }
  return "?";
}

ScadaTopology::ScadaTopology(std::vector<Asset> assets) {
  for (Asset& a : assets) add(std::move(a));
}

void ScadaTopology::add(Asset asset) {
  if (asset.id.empty()) {
    throw std::invalid_argument("ScadaTopology: asset id must be non-empty");
  }
  if (contains(asset.id)) {
    throw std::invalid_argument("ScadaTopology: duplicate asset id: " +
                                asset.id);
  }
  assets_.push_back(std::move(asset));
}

const Asset* ScadaTopology::find(std::string_view id) const noexcept {
  for (const Asset& a : assets_) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

const Asset& ScadaTopology::at(std::string_view id) const {
  if (const Asset* a = find(id)) return *a;
  throw std::out_of_range("ScadaTopology: no asset with id: " +
                          std::string(id));
}

std::vector<const Asset*> ScadaTopology::of_type(AssetType t) const {
  std::vector<const Asset*> out;
  for (const Asset& a : assets_) {
    if (a.type == t) out.push_back(&a);
  }
  return out;
}

std::vector<surge::ExposedAsset> ScadaTopology::exposed_assets() const {
  std::vector<surge::ExposedAsset> out;
  out.reserve(assets_.size());
  for (const Asset& a : assets_) {
    surge::ExposureClass exposure = surge::ExposureClass::kFacility;
    if (a.type == AssetType::kPowerPlant) {
      exposure = surge::ExposureClass::kPowerPlant;
    } else if (a.type == AssetType::kSubstation) {
      exposure = surge::ExposureClass::kSubstation;
    }
    out.push_back({a.id, a.location, a.ground_elevation_m, exposure});
  }
  return out;
}

}  // namespace ct::scada
