#include "scada/requirements.h"

#include <stdexcept>

namespace ct::scada {

namespace {
void check_fk(int f, int k) {
  if (f < 0 || k < 0) {
    throw std::invalid_argument("replication sizing: f and k must be >= 0");
  }
}
}  // namespace

int min_replicas_single_site(int f, int k) {
  check_fk(f, k);
  return 3 * f + 2 * k + 1;
}

int min_replicas_per_site_active(int sites, int f, int k) {
  check_fk(f, k);
  if (sites < 3) {
    throw std::invalid_argument(
        "active multisite replication needs >= 3 sites to survive a site "
        "loss without downtime");
  }
  // Losing one of S sites of size m must leave a live system:
  //   (S-1)m - f - k >= ceil((Sm + f + 1) / 2),
  // which solves to m >= (3f + 2k + 1) / (S - 2).
  const int base = 3 * f + 2 * k + 1;
  return (base + sites - 3) / (sites - 2);  // ceiling division by (S - 2)
}

int bft_quorum(int n, int f) {
  check_fk(f, 0);
  if (n < 3 * f + 1) {
    throw std::invalid_argument("bft_quorum: n below 3f + 1");
  }
  return (n + f + 2) / 2;  // ceil((n + f + 1) / 2)
}

bool bft_can_make_progress(int n, int connected, int f, int k) {
  check_fk(f, k);
  if (connected < 0 || connected > n) {
    throw std::invalid_argument("bft_can_make_progress: bad connected count");
  }
  return connected - f - k >= bft_quorum(n, f);
}

std::string explain_single_site(int f, int k) {
  const int n = min_replicas_single_site(f, k);
  return "tolerating f=" + std::to_string(f) + " intrusions with k=" +
         std::to_string(k) + " replicas in proactive recovery requires n = " +
         "3f + 2k + 1 = " + std::to_string(n) + " replicas";
}

std::string explain_active_multisite(int sites, int f, int k) {
  const int m = min_replicas_per_site_active(sites, f, k);
  return "an active " + std::to_string(sites) +
         "-site group surviving one site loss with f=" + std::to_string(f) +
         ", k=" + std::to_string(k) + " requires m >= (3f + 2k + 1)/(S - 2) = " +
         std::to_string(m) + " replicas per site (" +
         std::to_string(m * sites) + " total)";
}

}  // namespace ct::scada
