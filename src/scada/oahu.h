// Built-in Oahu SCADA topology (the paper's Fig. 4): control-center
// candidates, commercial data centers, power plants, and substations with
// real coordinates and surveyed pad elevations.
#pragma once

#include "scada/asset.h"

namespace ct::scada {

/// Asset ids used by the case study (kept as constants so call sites can't
/// typo them).
namespace oahu_ids {
inline constexpr const char* kHonoluluCc = "honolulu_cc";
inline constexpr const char* kWaiauCc = "waiau_cc";
inline constexpr const char* kKaheCc = "kahe_cc";
inline constexpr const char* kDrFortress = "drfortress_dc";
inline constexpr const char* kAlohaNap = "alohanap_dc";
}  // namespace oahu_ids

/// The full Oahu asset topology. Control-center candidates: Honolulu
/// (primary in all paper sitings), Waiau (paper's backup siting), Kahe
/// (the paper's §VII improved siting). Data centers: DRFortress (selected
/// in the paper) and AlohaNAP.
ScadaTopology oahu_topology();

/// Control-site candidate ids (control centers + data centers), in a
/// deterministic order — the search space of the siting optimizer.
std::vector<std::string> oahu_control_site_candidates();

}  // namespace ct::scada
