// Deterministic fault injection for the HOST runtime — the mirror image of
// PR 1's chaos harness, aimed at the ensemble runner itself instead of the
// simulated SCADA stack. A profile makes the failure-containment paths
// (per-task capture, retry-then-quarantine, NaN guards, cache-write
// fallback) deterministically reachable in tests and CI without patching
// any production kernel.
//
// Spec grammar (CT_FAULT environment variable, or EnsembleOptions.fault_spec):
//
//   directive[;directive...]
//   directive := throw:KEYS | nan:KEYS | delay:KEYS | cache-write
//   KEYS     := every=N[,offset=K][,attempts=A][,ms=M]
//
//   throw:every=20             every 20th realization throws (index % 20 == 0)
//   nan:every=25,offset=3      realization 3, 28, 53, ... produces NaN WSE
//   delay:every=10,ms=50       every 10th realization stalls 50 ms
//   throw:every=5,attempts=1   fires only on the FIRST attempt: the retry
//                              (same seed) succeeds — exercises the retry
//                              path without quarantining anything
//   cache-write                every result-cache disk write fails (soft)
//   none                       explicitly empty (ignores CT_FAULT)
//
// Every rule is a pure function of (realization index, attempt number), so
// the set of injected failures — and therefore the partial distribution
// and the quarantine ledger — is bit-identical at any --jobs value.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace ct::runtime {

/// One deterministic injection site: fires on realization indices with
/// `index % every == offset`, on the first `attempts` attempts only.
struct FaultRule {
  std::uint64_t every = 0;  ///< 0 = rule disabled
  std::uint64_t offset = 0;
  /// Attempts the rule fires on (1 = first attempt only, so one retry
  /// heals it); default fires on every attempt, forcing quarantine.
  unsigned attempts = std::numeric_limits<unsigned>::max();

  bool enabled() const noexcept { return every != 0; }
  bool fires(std::uint64_t index, unsigned attempt) const noexcept {
    return enabled() && index % every == offset % every && attempt <= attempts;
  }
};

/// Parsed CT_FAULT profile. Default-constructed = no faults.
struct RuntimeFaultProfile {
  FaultRule throw_rule;  ///< injected ct::Error{kFaultInjected}
  FaultRule nan_rule;    ///< NaN planted in the realization's surge output
  FaultRule delay_rule;  ///< cooperative stall (polls the cancellation token)
  std::chrono::milliseconds delay{50};
  bool cache_write_failure = false;

  bool any() const noexcept {
    return throw_rule.enabled() || nan_rule.enabled() ||
           delay_rule.enabled() || cache_write_failure;
  }

  /// Parses a spec; "" and "none"/"off" yield an empty profile. Throws
  /// ct::Error{kParse} on a malformed directive — a typo'd CT_FAULT must
  /// be loud, not a silently healthy run.
  static RuntimeFaultProfile parse(std::string_view spec);

  /// Profile from the CT_FAULT environment variable (empty when unset).
  static RuntimeFaultProfile from_env();
};

// --- process-death injection (CT_CRASH) ------------------------------------
//
// The mirror of CT_FAULT one level up: instead of failing a task, the
// PROCESS dies (`_exit`, no unwinding, no flushing — exactly what a
// preempted VM or OOM kill does) at a deterministic crash point inside the
// checkpoint writer. Spec grammar (CT_CRASH environment variable, or
// CheckpointOptions::crash_spec):
//
//   kind:at=N
//   kind := before | torn | after
//
//   before:at=3   die at the 3rd checkpoint site, before any byte is written
//   torn:at=3     die mid-write: a prefix of the record reaches the disk
//                 (the torn-tail case replay must silently drop)
//   after:at=3    die after the full write/fsync (and, for snapshots, after
//                 the rename + directory fsync) completed
//
// The site counter increments once per checkpoint flush in execution
// order, which is deterministic (flushes happen on the sweep thread in
// ascending slice order), so a given spec kills the process at exactly one
// reproducible instant at any --jobs value.

/// Where inside a checkpoint flush the process dies.
enum class CrashPoint {
  kNone = 0,
  kBeforeWrite,   ///< before any byte of the record/snapshot is written
  kTornWrite,     ///< after a PREFIX of the record hit the disk
  kAfterWrite,    ///< after write + fsync (+ rename + dir fsync) completed
};

/// Parsed CT_CRASH profile. Default-constructed = never crashes.
struct CrashProfile {
  CrashPoint point = CrashPoint::kNone;
  std::uint64_t at = 0;  ///< 1-based site counter value the crash fires on

  /// Exit code of an injected crash; distinct from every real exit code so
  /// the harness can tell "died as scheduled" from "died of a bug".
  static constexpr int kExitCode = 86;

  bool enabled() const noexcept {
    return point != CrashPoint::kNone && at != 0;
  }
  bool fires(CrashPoint site_point, std::uint64_t site) const noexcept {
    return enabled() && site_point == point && site == at;
  }

  /// Parses a spec; "" and "none"/"off" yield an empty profile. Throws
  /// ct::Error{kParse} on a malformed directive.
  static CrashProfile parse(std::string_view spec);

  /// Profile from the CT_CRASH environment variable (empty when unset).
  static CrashProfile from_env();
};

}  // namespace ct::runtime
