// Content-addressed result cache for ensemble analyses.
//
// A key is the hex digest of everything that determines an
// OutcomeDistribution — topology, configuration, threat scenario,
// realization set (seed/count/SLR or CSV content), attacker model — so a
// hit can only ever return the value the computation would have produced.
// Two layers:
//
//  * in-memory LRU (bounded entries, thread-safe), and
//  * an optional on-disk layer (one small versioned text record per key,
//    default ~/.cache/ct/, override with CT_CACHE_DIR or options), shared
//    across processes so a repeated `ctctl analyze` or bench rerun skips
//    the whole sweep.
//
// Disk records are corruption-tolerant by construction: any anomaly —
// truncation, garbage, checksum or version or key mismatch — makes the
// lookup a miss (counted in stats), never an error; the next store()
// rewrites the record. Bumping kFormatVersion invalidates every old entry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace ct::runtime {

/// The cached payload: an outcome histogram (green/orange/red/gray counts)
/// plus the skipped-row count CSV-driven sweeps carry along.
struct CachedCounts {
  std::array<std::uint64_t, 4> counts{};
  std::uint64_t total = 0;
  std::uint64_t skipped = 0;

  bool operator==(const CachedCounts&) const = default;
};

struct ResultStoreOptions {
  /// Max in-memory entries before LRU eviction.
  std::size_t memory_entries = 4096;
  /// Enable the on-disk layer.
  bool disk = false;
  /// Disk directory; empty picks CT_CACHE_DIR, else ~/.cache/ct.
  std::string disk_dir;
  /// Fault injection (RuntimeFaultProfile `cache-write`): every disk write
  /// fails as if the filesystem did (ENOSPC-style), exercising the
  /// soft-failure fallback path without needing a full device.
  bool inject_write_failure = false;
};

class ResultStore {
 public:
  /// On-disk format version; bump on any change to the record layout OR to
  /// the digest/key derivation (old entries must not alias new ones).
  static constexpr int kFormatVersion = 1;

  explicit ResultStore(ResultStoreOptions options = {});

  /// Memory first, then disk (a disk hit is promoted into memory).
  std::optional<CachedCounts> lookup(const std::string& key);
  /// Inserts/refreshes both layers. A disk write failure (ENOSPC, read-only
  /// mount, permission flip, injected fault) is a SOFT failure: it is
  /// counted in stats and logged, the memory layer keeps the value, and
  /// after kMaxConsecutiveWriteFailures in a row the disk layer turns
  /// itself off for the rest of the process — the cache is an accelerator,
  /// never a correctness dependency.
  void store(const std::string& key, const CachedCounts& value);

  /// Disk writes failing in a row before the layer self-disables.
  static constexpr unsigned kMaxConsecutiveWriteFailures = 3;

  /// Per-store counter snapshot. Counters are plain relaxed atomics (no
  /// mutex on the increment path); every increment is also folded into the
  /// process-wide metrics registry ("cache.*" counters), which is what
  /// `ctctl stats --metrics` and the service kMetrics reply surface.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;         ///< memory + disk
    std::uint64_t disk_hits = 0;
    std::uint64_t corrupt_discarded = 0;
    std::uint64_t write_failures = 0;  ///< soft disk-write failures
    double hit_rate() const noexcept {
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };
  Stats stats() const;

  const ResultStoreOptions& options() const noexcept { return options_; }
  /// Resolved disk directory ("" when the disk layer is off).
  const std::string& disk_dir() const noexcept { return disk_dir_; }
  /// True while the disk layer is still writing (false when configured off
  /// or self-disabled after repeated write failures).
  bool disk_active() const noexcept {
    return disk_enabled_.load(std::memory_order_acquire);
  }

  /// CT_CACHE_DIR, else $XDG_CACHE_HOME/ct, else $HOME/.cache/ct, else "".
  static std::string default_cache_dir();

 private:
  std::string record_path(const std::string& key) const;
  std::optional<CachedCounts> read_disk(const std::string& key);
  /// Returns false on any write failure (directory, open, flush, rename,
  /// or injected); never throws.
  bool write_disk(const std::string& key, const CachedCounts& value);
  void touch_locked(const std::string& key, const CachedCounts& value);
  /// Removes half-written "*.tmp" files a crashed process left behind in
  /// the fan-out directories (they never renamed, so they are garbage).
  void gc_leftover_tmp_files();

  ResultStoreOptions options_;
  std::string disk_dir_;
  std::atomic<bool> disk_enabled_{false};
  std::atomic<unsigned> consecutive_write_failures_{0};

  mutable std::mutex mutex_;
  // LRU: list front = most recent; map points into the list.
  struct Entry {
    std::string key;
    CachedCounts value;
  };
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;

  // Counters live outside mutex_: increments are relaxed atomic adds
  // mirrored into the metrics registry at the same call sites.
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> corrupt_discarded_{0};
  std::atomic<std::uint64_t> write_failures_{0};
};

}  // namespace ct::runtime
