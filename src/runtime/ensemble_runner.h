// EnsembleRunner — the shared execution engine every Monte Carlo sweep in
// the repo routes through (core/pipeline, core/case_study, core/siting,
// core/restoration, core/chaos, the figure benches, ctctl).
//
// It combines the work-stealing TaskPool with the content-addressed
// ResultStore:
//
//  * realization generation is sharded across workers (realization i is a
//    pure function of (base_seed, i), so scheduling cannot change results);
//  * outcome counting shards the realization range into fixed chunks and
//    merges per-chunk histograms in ascending chunk order — bit-identical
//    to the serial loop at any --jobs value;
//  * a (topology, configuration, scenario, realization set, attacker)
//    digest addresses the result cache, so repeated sweeps over the same
//    inputs — warm `ctctl analyze` reruns, the fig6–fig11 benches sharing
//    one hurricane ensemble — skip the recomputation entirely.
//
// Layering: runtime sits BELOW core (it sees configurations, scenarios and
// realizations, but not the analysis pipeline); core passes the per-
// realization outcome as a callable. This keeps the dependency graph
// acyclic while letting every core module share one pool and one cache.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/result_store.h"
#include "runtime/task_pool.h"
#include "scada/configuration.h"
#include "surge/realization.h"
#include "threat/scenario.h"

namespace ct::runtime {

struct EnsembleOptions {
  /// Worker threads: 0 = hardware concurrency, 1 = strictly serial.
  unsigned jobs = 0;
  /// Realizations per task; chunk boundaries are thread-count independent.
  std::size_t chunk = 16;
  /// In-memory result cache.
  bool cache = true;
  /// On-disk result cache (under cache_dir / CT_CACHE_DIR / ~/.cache/ct).
  bool disk_cache = false;
  std::string cache_dir;
  std::size_t memory_entries = 4096;
};

/// An outcome histogram as the runtime sees it (core converts to its
/// OutcomeDistribution).
struct EnsembleCounts {
  std::array<std::uint64_t, 4> counts{};
  std::uint64_t total = 0;
  bool from_cache = false;
};

class EnsembleRunner {
 public:
  explicit EnsembleRunner(EnsembleOptions options = {});

  /// Classifies one realization into an outcome bucket [0, 4).
  using OutcomeFn = std::function<int(const surge::HurricaneRealization&)>;
  /// Lazily materializes a realization set (only called on a cache miss).
  using RealizationsFn =
      std::function<const std::vector<surge::HurricaneRealization>&()>;

  /// Counts outcomes over `realizations`, parallel + cached. `key` is the
  /// content address from job_key(); pass "" to bypass the cache (the
  /// computation is then unconditionally fresh).
  EnsembleCounts count_outcomes(
      const std::vector<surge::HurricaneRealization>& realizations,
      const OutcomeFn& outcome, const std::string& key);

  /// Lazy variant: a cache hit never calls `realizations` at all — a warm
  /// rerun skips ensemble generation, not just the analysis.
  EnsembleCounts count_outcomes(const RealizationsFn& realizations,
                                const OutcomeFn& outcome,
                                const std::string& key);

  /// Runs realizations [0, count) across the pool; bit-identical to the
  /// engine's serial run_batch at any jobs value.
  std::vector<surge::HurricaneRealization> generate(
      const surge::RealizationEngine& engine, std::size_t count);

  // --- content addressing -------------------------------------------------

  /// Cache key of one (configuration, scenario, attacker, realization-set)
  /// evaluation. `realization_set_digest` comes from one of the digest_*
  /// helpers below; `attacker_tag` names the attack algorithm ("greedy",
  /// "exhaustive", ...).
  static std::string job_key(const scada::Configuration& config,
                             threat::ThreatScenario scenario,
                             std::string_view attacker_tag,
                             std::string_view realization_set_digest);

  /// Content digest of a realization set (covers CSV-loaded ensembles and
  /// any engine output: asset ids, failure flags, depths, winds all mix in,
  /// so topology moves and SLR offsets change the address automatically).
  static std::string digest_realizations(
      const std::vector<surge::HurricaneRealization>& realizations);

  /// Cheap identity digest for an engine-generated set: the engine's knobs
  /// (seed, SLR offset, smoothing, ensemble shape), the exposed-asset list,
  /// and the count determine the content, so hashing them is equivalent to
  /// hashing the output — without generating it first.
  static std::string digest_engine_batch(const surge::RealizationEngine& engine,
                                         std::size_t count);

  TaskPool& pool() noexcept { return pool_; }
  ResultStore& store() noexcept { return store_; }
  const EnsembleOptions& options() const noexcept { return options_; }
  ResultStore::Stats cache_stats() const { return store_.stats(); }

 private:
  /// Parallel recount; stores under `key` unless it is empty.
  EnsembleCounts count_fresh(
      const std::vector<surge::HurricaneRealization>& realizations,
      const OutcomeFn& outcome, const std::string& key);

  EnsembleOptions options_;
  TaskPool pool_;
  ResultStore store_;
};

}  // namespace ct::runtime
