// EnsembleRunner — the shared execution engine every Monte Carlo sweep in
// the repo routes through (core/pipeline, core/case_study, core/siting,
// core/restoration, core/chaos, the figure benches, ctctl).
//
// It combines the work-stealing TaskPool with the content-addressed
// ResultStore:
//
//  * realization generation is sharded across workers (realization i is a
//    pure function of (base_seed, i), so scheduling cannot change results);
//  * outcome counting shards the realization range into fixed chunks and
//    merges per-chunk histograms in ascending chunk order — bit-identical
//    to the serial loop at any --jobs value;
//  * a (topology, configuration, scenario, realization set, attacker)
//    digest addresses the result cache, so repeated sweeps over the same
//    inputs — warm `ctctl analyze` reruns, the fig6–fig11 benches sharing
//    one hurricane ensemble — skip the recomputation entirely.
//
// Layering: runtime sits BELOW core (it sees configurations, scenarios and
// realizations, but not the analysis pipeline); core passes the per-
// realization outcome as a callable. This keeps the dependency graph
// acyclic while letting every core module share one pool and one cache.
// Fault isolation (PR 6): the *_guarded entry points run each realization
// inside TaskPool::for_each_isolated — a failing realization is retried
// deterministically with the SAME seed (realization i is a pure function of
// (base_seed, i), so a retry either heals a transient fault or reproduces a
// deterministic one), then quarantined into a FailureRecord. The surviving
// samples still produce the partial distribution, bit-identical at any
// --jobs value, and EnsembleReport bounds how much probability mass the
// quarantined samples could move (Clopper-Pearson).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/checkpoint.h"
#include "runtime/fault_profile.h"
#include "runtime/result_store.h"
#include "runtime/task_pool.h"
#include "scada/configuration.h"
#include "surge/realization.h"
#include "threat/scenario.h"
#include "util/error.h"
#include "util/stats.h"

namespace ct::runtime {

struct EnsembleOptions {
  /// Worker threads: 0 = hardware concurrency, 1 = strictly serial.
  unsigned jobs = 0;
  /// Realizations per task; chunk boundaries are thread-count independent.
  std::size_t chunk = 16;
  /// In-memory result cache.
  bool cache = true;
  /// On-disk result cache (under cache_dir / CT_CACHE_DIR / ~/.cache/ct).
  bool disk_cache = false;
  std::string cache_dir;
  std::size_t memory_entries = 4096;
  /// Retries of a failed realization (same seed) before quarantine.
  unsigned max_retries = 2;
  /// Cooperative per-attempt watchdog deadline; 0 = no watchdog.
  std::chrono::milliseconds task_timeout{0};
  /// Fault-injection spec: "" defers to the CT_FAULT environment variable,
  /// "none" is explicitly off (ignores the environment), anything else is
  /// parsed by RuntimeFaultProfile::parse.
  std::string fault_spec;
};

/// An outcome histogram as the runtime sees it (core converts to its
/// OutcomeDistribution).
struct EnsembleCounts {
  std::array<std::uint64_t, 4> counts{};
  std::uint64_t total = 0;
  bool from_cache = false;
};

// FailureRecord / FailureLedger live in runtime/checkpoint.h (the journal
// persists them), re-exported here for every existing consumer.

/// TaskFailure -> FailureRecord, preferring the exception's own provenance
/// (a ct::Error knows its realization and seed) over the fallbacks.
FailureRecord make_failure_record(const TaskFailure& failure,
                                  std::uint64_t fallback_realization,
                                  std::uint64_t fallback_seed);

struct BatchView;

/// Output of generate_guarded: the surviving realizations (ascending index
/// order, quarantined slots removed) plus the failure ledger.
struct GeneratedBatch {
  std::vector<surge::HurricaneRealization> realizations;
  FailureLedger ledger;
  std::size_t attempted = 0;
  bool complete() const noexcept { return ledger.failures.empty(); }
  BatchView view() const noexcept;
};

/// Non-owning view of a realization batch handed to guarded counting; the
/// storage must outlive the count_outcomes_guarded call (it always does:
/// the producer — a GeneratedBatch member or a caller-owned vector — lives
/// across the call).
struct BatchView {
  const std::vector<surge::HurricaneRealization>* realizations = nullptr;
  const FailureLedger* ledger = nullptr;  ///< null = clean generation
  std::size_t attempted = 0;
};

inline BatchView GeneratedBatch::view() const noexcept {
  return BatchView{&realizations, &ledger, attempted};
}

/// Outcome of a guarded analysis: the partial histogram over surviving
/// realizations plus the quarantine ledger and enough accounting to bound
/// what the quarantined mass could have changed.
struct EnsembleReport {
  EnsembleCounts counts;                ///< partial distribution (survivors)
  std::vector<FailureRecord> failures;  ///< generation + counting, by index
  std::uint64_t retries = 0;
  std::size_t attempted = 0;  ///< realizations the caller asked for
  std::size_t completed = 0;  ///< attempted - failures.size()

  std::size_t quarantined() const noexcept { return failures.size(); }
  bool degraded() const noexcept { return !failures.empty(); }

  /// Conservative bounds on the TRUE probability of outcome `bucket` had
  /// every quarantined realization completed: a Clopper-Pearson interval
  /// on (count, completed) widened by the quarantined mass — the
  /// quarantined samples might all have landed in this bucket (upper) or
  /// none of them (lower). Exact-method coverage >= `confidence`.
  util::Interval mass_bound(std::size_t bucket,
                            double confidence = 0.95) const noexcept;
};

/// Output of run_resumable: one EnsembleReport per sweep series, plus how
/// the checkpoint layer behaved.
struct ResumableReport {
  std::vector<EnsembleReport> series;  ///< one per SweepSpec::series entry
  ResumeInfo resume;                   ///< how the prior state was used
  bool interrupted = false;   ///< cancelled before completion; state saved
  std::uint64_t restored = 0;  ///< indices restored from the checkpoint
  std::uint64_t executed = 0;  ///< indices actually computed by THIS run
  std::uint64_t checkpoints = 0;  ///< durable writes performed by this run

  bool complete() const noexcept { return !interrupted; }
};

class EnsembleRunner {
 public:
  explicit EnsembleRunner(EnsembleOptions options = {});

  /// Classifies one realization into an outcome bucket [0, 4).
  using OutcomeFn = std::function<int(const surge::HurricaneRealization&)>;
  /// Classifies one realization into a bucket [0, 4) PER SERIES: called
  /// once per (series, realization) pair; `series` indexes
  /// SweepSpec::series. run_resumable generates each realization exactly
  /// once and classifies it into every series — this is what lets a
  /// (configurations x scenarios) sweep matrix share one ensemble pass.
  using MultiOutcomeFn =
      std::function<int(std::size_t series, const surge::HurricaneRealization&)>;
  /// Lazily materializes a realization set (only called on a cache miss).
  using RealizationsFn =
      std::function<const std::vector<surge::HurricaneRealization>&()>;
  /// Lazily materializes a guarded batch view (survivors + failure
  /// ledger); only called on a cache miss.
  using BatchFn = std::function<BatchView()>;

  /// Counts outcomes over `realizations`, parallel + cached. `key` is the
  /// content address from job_key(); pass "" to bypass the cache (the
  /// computation is then unconditionally fresh).
  EnsembleCounts count_outcomes(
      const std::vector<surge::HurricaneRealization>& realizations,
      const OutcomeFn& outcome, const std::string& key);

  /// Lazy variant: a cache hit never calls `realizations` at all — a warm
  /// rerun skips ensemble generation, not just the analysis.
  EnsembleCounts count_outcomes(const RealizationsFn& realizations,
                                const OutcomeFn& outcome,
                                const std::string& key);

  /// Runs realizations [0, count) across the pool; bit-identical to the
  /// engine's serial run_batch at any jobs value. Batch-fatal: the first
  /// realization failure aborts the whole call (use generate_guarded for
  /// quarantine semantics).
  std::vector<surge::HurricaneRealization> generate(
      const surge::RealizationEngine& engine, std::size_t count);

  // --- fault-isolated entry points ----------------------------------------

  /// Fault-isolated generation: each realization runs under per-task
  /// exception capture with the options' watchdog/retry policy, the active
  /// fault profile injected around the engine call. Survivors come back in
  /// ascending index order, so with an empty ledger the batch is
  /// bit-identical to generate().
  GeneratedBatch generate_guarded(const surge::RealizationEngine& engine,
                                  std::size_t count);

  /// Guarded counting over an already-materialized realization set. Each
  /// outcome evaluation is isolated (a throwing classifier quarantines one
  /// sample, not the sweep); the fold over per-index buckets runs in
  /// ascending index order, bit-identical at any jobs value. Results are
  /// cached under `key` ONLY when nothing failed — a partial distribution
  /// must never masquerade as the full one on the next warm run.
  EnsembleReport count_outcomes_guarded(
      const std::vector<surge::HurricaneRealization>& realizations,
      const OutcomeFn& outcome, const std::string& key);

  /// Lazy guarded variant: a cache hit never materializes the batch; a
  /// miss materializes it (typically via generate_guarded) and merges its
  /// ledger into the report.
  EnsembleReport count_outcomes_guarded(const BatchFn& batch_fn,
                                        const OutcomeFn& outcome,
                                        const std::string& key);

  /// Crash-consistent sweep: generates realizations [0, spec.count) in
  /// slices of ckpt.interval, classifies each survivor into every series
  /// via `outcome`, and journals every completed slice (see checkpoint.h).
  /// With ckpt.resume set, prior journal/snapshot state is validated and
  /// replayed first and only the MISSING indices run; the merged result is
  /// bit-identical at any --jobs value to an uninterrupted run. Fault
  /// semantics match the guarded entry points (same CT_FAULT injection,
  /// same retry-then-quarantine policy; a quarantined index is quarantined
  /// in ALL series). `interrupt` (optional) stops the sweep at the next
  /// slice boundary after a final checkpoint flush — the SIGINT/SIGTERM
  /// path; the report then has interrupted=true and partial counts. An
  /// empty ckpt.dir degrades to a plain non-durable sweep.
  ResumableReport run_resumable(const surge::RealizationEngine& engine,
                                const SweepSpec& spec,
                                const MultiOutcomeFn& outcome,
                                const CheckpointOptions& ckpt,
                                CancellationToken* interrupt = nullptr);

  /// The active fault-injection profile (empty unless CT_FAULT or
  /// options.fault_spec configured one).
  const RuntimeFaultProfile& fault_profile() const noexcept { return fault_; }

  // --- content addressing -------------------------------------------------

  /// Cache key of one (configuration, scenario, attacker, realization-set)
  /// evaluation. `realization_set_digest` comes from one of the digest_*
  /// helpers below; `attacker_tag` names the attack algorithm ("greedy",
  /// "exhaustive", ...).
  static std::string job_key(const scada::Configuration& config,
                             threat::ThreatScenario scenario,
                             std::string_view attacker_tag,
                             std::string_view realization_set_digest);

  /// Content digest of a realization set (covers CSV-loaded ensembles and
  /// any engine output: asset ids, failure flags, depths, winds all mix in,
  /// so topology moves and SLR offsets change the address automatically).
  static std::string digest_realizations(
      const std::vector<surge::HurricaneRealization>& realizations);

  /// Cheap identity digest for an engine-generated set: the engine's knobs
  /// (seed, SLR offset, smoothing, ensemble shape), the exposed-asset list,
  /// and the count determine the content, so hashing them is equivalent to
  /// hashing the output — without generating it first.
  static std::string digest_engine_batch(const surge::RealizationEngine& engine,
                                         std::size_t count);

  TaskPool& pool() noexcept { return pool_; }
  ResultStore& store() noexcept { return store_; }
  const EnsembleOptions& options() const noexcept { return options_; }
  ResultStore::Stats cache_stats() const { return store_.stats(); }

 private:
  /// Parallel recount; stores under `key` unless it is empty.
  EnsembleCounts count_fresh(
      const std::vector<surge::HurricaneRealization>& realizations,
      const OutcomeFn& outcome, const std::string& key);
  /// Guarded recount over survivors; merges `generation` accounting into
  /// the report and stores under `key` only on a fully clean run.
  EnsembleReport count_guarded_fresh(
      const std::vector<surge::HurricaneRealization>& realizations,
      FailureLedger generation, std::size_t attempted,
      const OutcomeFn& outcome, const std::string& key);

  EnsembleOptions options_;
  RuntimeFaultProfile fault_;  // must init before store_ (cache-write rule)
  TaskPool pool_;
  ResultStore store_;
};

}  // namespace ct::runtime
