#include "runtime/fault_profile.h"

#include <charconv>
#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"

namespace ct::runtime {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw util::Error(util::ErrorCode::kParse, "fault-profile",
                    "bad CT_FAULT spec '" + std::string(spec) + "': " + why);
}

std::uint64_t parse_u64_or_die(std::string_view spec, std::string_view value) {
  const std::string_view trimmed = util::trim(value);
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), out);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size() ||
      trimmed.empty()) {
    bad_spec(spec, "cannot parse number '" + std::string(value) + "'");
  }
  return out;
}

/// Parses "every=N[,offset=K][,attempts=A][,ms=M]" into `rule` (and the
/// profile-wide delay when `ms` appears).
void parse_keys(std::string_view spec, std::string_view keys, FaultRule& rule,
                RuntimeFaultProfile& profile) {
  for (const std::string& pair : util::split(keys, ',')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      bad_spec(spec, "expected key=value, got '" + pair + "'");
    }
    const std::string_view key = util::trim(std::string_view(pair).substr(0, eq));
    const std::string_view value = std::string_view(pair).substr(eq + 1);
    if (key == "every") {
      rule.every = parse_u64_or_die(spec, value);
      if (rule.every == 0) bad_spec(spec, "every=0 never fires");
    } else if (key == "offset") {
      rule.offset = parse_u64_or_die(spec, value);
    } else if (key == "attempts") {
      rule.attempts = static_cast<unsigned>(parse_u64_or_die(spec, value));
      if (rule.attempts == 0) bad_spec(spec, "attempts=0 never fires");
    } else if (key == "ms") {
      profile.delay =
          std::chrono::milliseconds(parse_u64_or_die(spec, value));
    } else {
      bad_spec(spec, "unknown key '" + std::string(key) + "'");
    }
  }
  if (!rule.enabled()) bad_spec(spec, "directive needs every=N");
}

}  // namespace

RuntimeFaultProfile RuntimeFaultProfile::parse(std::string_view spec) {
  RuntimeFaultProfile profile;
  const std::string_view trimmed = util::trim(spec);
  if (trimmed.empty() || trimmed == "none" || trimmed == "off") {
    return profile;
  }
  for (const std::string& directive : util::split(trimmed, ';')) {
    const std::string_view d = util::trim(directive);
    if (d.empty()) continue;
    if (d == "cache-write") {
      profile.cache_write_failure = true;
      continue;
    }
    const auto colon = d.find(':');
    if (colon == std::string_view::npos) {
      bad_spec(spec, "unknown directive '" + std::string(d) + "'");
    }
    const std::string_view kind = util::trim(d.substr(0, colon));
    const std::string_view keys = d.substr(colon + 1);
    if (kind == "throw") {
      parse_keys(spec, keys, profile.throw_rule, profile);
    } else if (kind == "nan") {
      parse_keys(spec, keys, profile.nan_rule, profile);
    } else if (kind == "delay") {
      parse_keys(spec, keys, profile.delay_rule, profile);
    } else {
      bad_spec(spec, "unknown directive '" + std::string(kind) + "'");
    }
  }
  return profile;
}

RuntimeFaultProfile RuntimeFaultProfile::from_env() {
  const char* env = std::getenv("CT_FAULT");
  if (env == nullptr || *env == '\0') return {};
  return parse(env);
}

CrashProfile CrashProfile::parse(std::string_view spec) {
  CrashProfile profile;
  const std::string_view trimmed = util::trim(spec);
  if (trimmed.empty() || trimmed == "none" || trimmed == "off") {
    return profile;
  }
  const auto colon = trimmed.find(':');
  if (colon == std::string_view::npos) {
    throw util::Error(util::ErrorCode::kParse, "crash-profile",
                      "bad CT_CRASH spec '" + std::string(spec) +
                          "': expected kind:at=N");
  }
  const std::string_view kind = util::trim(trimmed.substr(0, colon));
  if (kind == "before") {
    profile.point = CrashPoint::kBeforeWrite;
  } else if (kind == "torn") {
    profile.point = CrashPoint::kTornWrite;
  } else if (kind == "after") {
    profile.point = CrashPoint::kAfterWrite;
  } else {
    throw util::Error(util::ErrorCode::kParse, "crash-profile",
                      "bad CT_CRASH spec '" + std::string(spec) +
                          "': unknown kind '" + std::string(kind) + "'");
  }
  const std::string_view keys = trimmed.substr(colon + 1);
  for (const std::string& pair : util::split(keys, ',')) {
    const auto eq = pair.find('=');
    const std::string_view key =
        eq == std::string::npos
            ? util::trim(pair)
            : util::trim(std::string_view(pair).substr(0, eq));
    if (key != "at" || eq == std::string::npos) {
      throw util::Error(util::ErrorCode::kParse, "crash-profile",
                        "bad CT_CRASH spec '" + std::string(spec) +
                            "': expected at=N, got '" + pair + "'");
    }
    profile.at = parse_u64_or_die(spec, std::string_view(pair).substr(eq + 1));
  }
  if (profile.at == 0) {
    throw util::Error(util::ErrorCode::kParse, "crash-profile",
                      "bad CT_CRASH spec '" + std::string(spec) +
                          "': at=0 never fires (sites count from 1)");
  }
  return profile;
}

CrashProfile CrashProfile::from_env() {
  const char* env = std::getenv("CT_CRASH");
  if (env == nullptr || *env == '\0') return {};
  return parse(env);
}

}  // namespace ct::runtime
