// Work-stealing thread pool for the ensemble runtime.
//
// Each worker owns a bounded deque; it pops its own tasks LIFO (back) and
// steals FIFO (front) from victims, so big contiguous realization ranges
// stay cache-warm on their owner while idle workers take the oldest —
// coarsest — work. The submitting thread participates too: it executes
// tasks while waiting for its batch, which both bounds queue growth
// (backpressure: a full deque makes submit run the task inline) and makes
// nested parallel_for calls deadlock-free.
//
// Determinism contract: parallel_for_ranges partitions [0, n) into fixed
// chunks independent of the thread count, and map_reduce folds the chunk
// results in ascending chunk order on the calling thread. A pool with
// `threads <= 1` executes everything inline in submission order — the
// serial path is not an approximation, it is literally the same code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ct::runtime {

class TaskPool {
 public:
  /// `threads` = worker count; 0 picks std::thread::hardware_concurrency().
  /// 1 (or a 1-core machine) spawns no workers: all work runs inline.
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Workers actually running (0 for the inline/serial pool).
  unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  /// Degree of parallelism (workers, but at least 1 — the caller).
  unsigned parallelism() const noexcept {
    return worker_count() == 0 ? 1u : worker_count();
  }

  /// Runs fn(begin, end) over a fixed chunking of [0, n); blocks until all
  /// chunks completed. Chunk boundaries depend only on (n, chunk), never on
  /// the thread count. The first exception thrown by any chunk is rethrown
  /// here (remaining chunks still run to completion).
  void parallel_for_ranges(std::size_t n, std::size_t chunk,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  /// Element-wise convenience: fn(i) for every i in [0, n).
  void parallel_for_each(std::size_t n, std::size_t chunk,
                         const std::function<void(std::size_t)>& fn);

  /// Maps fixed chunks of [0, n) to partial results, then reduces them in
  /// ascending chunk order on the calling thread — the reduction order (and
  /// therefore any floating-point result) is identical at every thread
  /// count, including the inline pool.
  template <typename T, typename Map, typename Reduce>
  T map_reduce(std::size_t n, std::size_t chunk, T init, Map&& map,
               Reduce&& reduce) {
    if (chunk == 0) chunk = 1;
    const std::size_t chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
    std::vector<T> partials(chunks);
    parallel_for_ranges(n, chunk,
                        [&](std::size_t begin, std::size_t end) {
                          partials[begin / chunk] = map(begin, end);
                        });
    T acc = std::move(init);
    for (T& p : partials) acc = reduce(std::move(acc), std::move(p));
    return acc;
  }

  /// Per-worker deque capacity; past it, submit executes inline (backpressure).
  static constexpr std::size_t kDequeCapacity = 1024;

 private:
  /// One in-flight parallel_for_ranges call. Lives on the submitter's stack
  /// (the call blocks until remaining == 0, so tasks never outlive it).
  struct Batch {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t remaining = 0;          // guarded by mutex_
    std::exception_ptr error;           // first failure wins; guarded by mutex_
  };
  struct Task {
    Batch* batch = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t self);
  /// Pops a task: own back first (cache warmth), then steals victims' fronts.
  bool try_pop(std::size_t self, Task& out);
  void run_task(Task& task) noexcept;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: a task was queued
  std::condition_variable done_cv_;   // submitters: a batch may be complete
  std::vector<std::deque<Task>> deques_;
  std::vector<std::thread> workers_;
  std::size_t next_victim_ = 0;  // round-robin submission cursor
  bool stop_ = false;
};

}  // namespace ct::runtime
