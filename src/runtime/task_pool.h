// Work-stealing thread pool for the ensemble runtime.
//
// Each worker owns a bounded deque; it pops its own tasks LIFO (back) and
// steals FIFO (front) from victims, so big contiguous realization ranges
// stay cache-warm on their owner while idle workers take the oldest —
// coarsest — work. The submitting thread participates too: it executes
// tasks while waiting for its batch, which both bounds queue growth
// (backpressure: a full deque makes submit run the task inline) and makes
// nested parallel_for calls deadlock-free.
//
// Determinism contract: parallel_for_ranges partitions [0, n) into fixed
// chunks independent of the thread count, and map_reduce folds the chunk
// results in ascending chunk order on the calling thread. A pool with
// `threads <= 1` executes everything inline in submission order — the
// serial path is not an approximation, it is literally the same code.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace ct::runtime {

/// Cooperative cancellation + deadline handle handed to isolated tasks.
/// The watchdog is the deadline itself: there is no killer thread — a long
/// kernel polls `cancelled()` (or `poll()`, which throws a typed
/// ct::Error) and unwinds itself, so a wedged realization is contained
/// without ever interrupting a thread mid-kernel.
class CancellationToken {
 public:
  CancellationToken() = default;
  /// Token whose cancelled() flips true once `timeout` elapses (measured
  /// from construction). timeout <= 0 means no deadline.
  explicit CancellationToken(std::chrono::milliseconds timeout);

  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }
  /// True once cancel was requested OR the deadline passed.
  bool cancelled() const noexcept;
  bool has_deadline() const noexcept { return has_deadline_; }

  /// Throws ct::Error{kTimeout} (deadline) or ct::Error{kCancelled}
  /// (explicit request) when cancelled; otherwise returns. Long kernels
  /// call this between work units.
  void poll(std::string_view origin) const;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Knobs of an isolated batch (TaskPool::for_each_isolated).
struct TaskOptions {
  /// Cooperative per-attempt deadline; 0 = no watchdog.
  std::chrono::milliseconds timeout{0};
  /// Re-runs of a failed index before it is given up on (the caller — the
  /// EnsembleRunner — turns the final failure into a quarantine record).
  unsigned max_retries = 0;
};

/// One index that exhausted its attempts.
struct TaskFailure {
  std::size_t index = 0;
  unsigned attempts = 0;  ///< attempts consumed (1 + retries)
  std::exception_ptr error;  ///< the LAST attempt's exception
};

/// Outcome of for_each_isolated: the failure ledger plus retry accounting.
struct IsolatedRunResult {
  /// Failed indices, sorted ascending — deterministic at any thread count
  /// when fn's behavior is a pure function of (index, attempt).
  std::vector<TaskFailure> failures;
  /// Extra attempts spent across all indices (both healed and exhausted).
  std::uint64_t retries = 0;
};

class TaskPool {
 public:
  /// `threads` = worker count; 0 picks std::thread::hardware_concurrency().
  /// 1 (or a 1-core machine) spawns no workers: all work runs inline.
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Workers actually running (0 for the inline/serial pool).
  unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  /// Degree of parallelism (workers, but at least 1 — the caller).
  unsigned parallelism() const noexcept {
    return worker_count() == 0 ? 1u : worker_count();
  }

  /// Runs fn(begin, end) over a fixed chunking of [0, n); blocks until all
  /// chunks completed. Chunk boundaries depend only on (n, chunk), never on
  /// the thread count. The first exception thrown by any chunk is rethrown
  /// here (remaining chunks still run to completion).
  void parallel_for_ranges(std::size_t n, std::size_t chunk,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  /// Element-wise convenience: fn(i) for every i in [0, n).
  void parallel_for_each(std::size_t n, std::size_t chunk,
                         const std::function<void(std::size_t)>& fn);

  /// Fault-isolated element-wise run: fn(i, attempt, token) for every i in
  /// [0, n), with per-INDEX exception capture instead of the batch-fatal
  /// rethrow of parallel_for_each. A throwing index is re-attempted up to
  /// options.max_retries times (fresh token, deadline restarted; `attempt`
  /// counts from 1), then recorded in the result ledger; every other index
  /// still runs. The token's deadline (options.timeout) is the cooperative
  /// watchdog — fn must poll it for a hung attempt to be contained.
  IsolatedRunResult for_each_isolated(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t, unsigned,
                               const CancellationToken&)>& fn,
      const TaskOptions& options = {});

  /// Maps fixed chunks of [0, n) to partial results, then reduces them in
  /// ascending chunk order on the calling thread — the reduction order (and
  /// therefore any floating-point result) is identical at every thread
  /// count, including the inline pool.
  template <typename T, typename Map, typename Reduce>
  T map_reduce(std::size_t n, std::size_t chunk, T init, Map&& map,
               Reduce&& reduce) {
    if (chunk == 0) chunk = 1;
    const std::size_t chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
    std::vector<T> partials(chunks);
    parallel_for_ranges(n, chunk,
                        [&](std::size_t begin, std::size_t end) {
                          partials[begin / chunk] = map(begin, end);
                        });
    T acc = std::move(init);
    for (T& p : partials) acc = reduce(std::move(acc), std::move(p));
    return acc;
  }

  /// Per-worker deque capacity; past it, submit executes inline (backpressure).
  static constexpr std::size_t kDequeCapacity = 1024;

 private:
  /// One in-flight parallel_for_ranges call. Lives on the submitter's stack
  /// (the call blocks until remaining == 0, so tasks never outlive it).
  struct Batch {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t remaining = 0;          // guarded by mutex_
    std::exception_ptr error;           // first failure wins; guarded by mutex_
  };
  struct Task {
    Batch* batch = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t self);
  /// Pops a task: own back first (cache warmth), then steals victims' fronts.
  bool try_pop(std::size_t self, Task& out);
  void run_task(Task& task) noexcept;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: a task was queued
  std::condition_variable done_cv_;   // submitters: a batch may be complete
  std::vector<std::deque<Task>> deques_;
  std::vector<std::thread> workers_;
  std::size_t next_victim_ = 0;  // round-robin submission cursor
  bool stop_ = false;
};

}  // namespace ct::runtime
