#include "runtime/result_store.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/digest.h"
#include "util/fsio.h"
#include "util/log.h"

namespace ct::runtime {

namespace fs = std::filesystem;

namespace {

/// Process-wide cache counters (every ResultStore instance folds in) plus
/// the lookup-latency profiling hook.
struct CacheMetrics {
  obs::Counter lookups{"cache.lookups"};
  obs::Counter hits{"cache.hits"};
  obs::Counter disk_hits{"cache.disk_hits"};
  obs::Counter corrupt_discarded{"cache.corrupt_discarded"};
  obs::Counter write_failures{"cache.write_failures"};
  obs::Histogram lookup_us{"cache.lookup_us"};
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

/// Checksum line binding a record's payload to its key and version, so a
/// truncated or hand-edited record can never parse as a hit.
std::string record_checksum(const std::string& key, const CachedCounts& v) {
  util::Digest d;
  d.str("ct-result-record").i64(ResultStore::kFormatVersion).str(key);
  for (const std::uint64_t c : v.counts) d.u64(c);
  d.u64(v.total).u64(v.skipped);
  return d.hex();
}

bool key_is_safe(const std::string& key) {
  if (key.empty() || key.size() > 128) return false;
  for (const char c : key) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;  // keys are digest hex; anything else stays out
  }
  return true;
}

}  // namespace

std::string ResultStore::default_cache_dir() {
  if (const char* env = std::getenv("CT_CACHE_DIR"); env && *env) return env;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg) {
    return std::string(xdg) + "/ct";
  }
  if (const char* home = std::getenv("HOME"); home && *home) {
    return std::string(home) + "/.cache/ct";
  }
  return {};
}

ResultStore::ResultStore(ResultStoreOptions options)
    : options_(std::move(options)) {
  if (options_.memory_entries == 0) options_.memory_entries = 1;
  if (options_.disk) {
    disk_dir_ = options_.disk_dir.empty() ? default_cache_dir()
                                          : options_.disk_dir;
    if (!disk_dir_.empty()) {
      std::error_code ec;
      fs::create_directories(disk_dir_, ec);
      if (ec) {
        CT_LOG(kWarn, "runtime") << "result cache: cannot create "
                                 << disk_dir_ << " (" << ec.message()
                                 << "); disk layer disabled";
        disk_dir_.clear();
      }
    }
    disk_enabled_.store(!disk_dir_.empty(), std::memory_order_release);
    if (!disk_dir_.empty()) gc_leftover_tmp_files();
  }
}

void ResultStore::gc_leftover_tmp_files() {
  // A crash between tmp-write and rename leaves a half-written "*.tmp" in
  // a fan-out directory. It never renamed, so it is garbage by
  // construction: readers already ignore it (only ".ctr" paths are ever
  // opened); collect it here so crashes cannot accumulate dead files.
  std::error_code ec;
  std::size_t removed = 0;
  for (fs::directory_iterator dir(disk_dir_, ec);
       !ec && dir != fs::directory_iterator(); dir.increment(ec)) {
    if (!dir->is_directory(ec)) continue;
    for (fs::directory_iterator entry(dir->path(), ec);
         !ec && entry != fs::directory_iterator(); entry.increment(ec)) {
      if (entry->path().extension() == ".tmp") {
        std::error_code remove_ec;
        if (fs::remove(entry->path(), remove_ec)) ++removed;
      }
    }
  }
  if (removed > 0) {
    CT_LOG(kInfo, "runtime")
        << "result cache: collected " << removed
        << " half-written tmp file(s) left by a crashed process";
  }
}

std::string ResultStore::record_path(const std::string& key) const {
  // Two-level fan-out keeps directories small at production entry counts.
  return disk_dir_ + "/" + key.substr(0, 2) + "/" + key + ".ctr";
}

std::optional<CachedCounts> ResultStore::lookup(const std::string& key) {
  CacheMetrics& m = cache_metrics();
  obs::ScopedTimer timer(m.lookup_us);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  m.lookups.inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      m.hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->value;
    }
  }
  if (!disk_active() || !key_is_safe(key)) return std::nullopt;
  const std::optional<CachedCounts> from_disk = read_disk(key);
  if (!from_disk) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  disk_hits_.fetch_add(1, std::memory_order_relaxed);
  m.hits.inc();
  m.disk_hits.inc();
  std::lock_guard<std::mutex> lock(mutex_);
  touch_locked(key, *from_disk);
  return from_disk;
}

void ResultStore::store(const std::string& key, const CachedCounts& value) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    touch_locked(key, value);
  }
  if (!disk_active() || !key_is_safe(key)) return;
  if (write_disk(key, value)) {
    consecutive_write_failures_.store(0, std::memory_order_relaxed);
    return;
  }
  // Soft failure: the memory layer already holds the value, so this run
  // loses nothing — only future processes lose the warm start.
  write_failures_.fetch_add(1, std::memory_order_relaxed);
  cache_metrics().write_failures.inc();
  const unsigned in_a_row =
      consecutive_write_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  CT_LOG(kWarn, "runtime") << "result cache: disk write failed for " << key
                           << " (" << in_a_row << " consecutive); "
                           << "continuing memory-only for this entry";
  if (in_a_row >= kMaxConsecutiveWriteFailures && disk_active()) {
    disk_enabled_.store(false, std::memory_order_release);
    CT_LOG(kWarn, "runtime")
        << "result cache: " << kMaxConsecutiveWriteFailures
        << " consecutive disk write failures; disk layer disabled "
        << "(memory-only from here on)";
  }
}

void ResultStore::touch_locked(const std::string& key,
                               const CachedCounts& value) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, value});
  index_[key] = lru_.begin();
  while (lru_.size() > options_.memory_entries) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::optional<CachedCounts> ResultStore::read_disk(const std::string& key) {
  std::ifstream in(record_path(key));
  if (!in) return std::nullopt;  // plain miss: never cached here

  const auto corrupt = [this]() -> std::optional<CachedCounts> {
    corrupt_discarded_.fetch_add(1, std::memory_order_relaxed);
    cache_metrics().corrupt_discarded.inc();
    return std::nullopt;
  };

  std::string magic, file_key, check;
  int version = -1;
  CachedCounts v;
  in >> magic >> version >> file_key;
  if (!in || magic != "ctresult") return corrupt();
  if (version != kFormatVersion) return corrupt();  // old format: miss
  if (file_key != key) return corrupt();            // hash-bucket collision
  for (std::uint64_t& c : v.counts) in >> c;
  in >> v.total >> v.skipped >> check;
  if (!in) return corrupt();  // truncated / non-numeric payload
  if (check != record_checksum(key, v)) return corrupt();
  std::uint64_t sum = 0;
  for (const std::uint64_t c : v.counts) sum += c;
  if (sum != v.total) return corrupt();  // internally inconsistent
  return v;
}

bool ResultStore::write_disk(const std::string& key,
                             const CachedCounts& value) {
  if (options_.inject_write_failure) return false;  // simulated ENOSPC
  std::error_code ec;
  const fs::path path = record_path(key);
  fs::create_directories(path.parent_path(), ec);
  if (ec) return false;

  std::ostringstream record;
  record << "ctresult " << kFormatVersion << " " << key << "\n";
  for (const std::uint64_t c : value.counts) record << c << " ";
  record << "\n" << value.total << " " << value.skipped << "\n"
         << record_checksum(key, value) << "\n";

  // Write-then-rename so a concurrent reader sees either the old record or
  // the complete new one (and a crash mid-write leaves only a .tmp). The
  // file is fsync'd before the rename and the directory after it: without
  // the second fsync the rename itself can be lost on power failure,
  // resurrecting a deleted-or-absent path (the durability hole the crash
  // harness exercises).
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << record.str();
    if (!out.flush()) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  if (!util::fsync_file(tmp.string())) {
    fs::remove(tmp, ec);
    return false;
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return util::fsync_parent_dir(path.string());
}

ResultStore::Stats ResultStore::stats() const {
  Stats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.corrupt_discarded = corrupt_discarded_.load(std::memory_order_relaxed);
  s.write_failures = write_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ct::runtime
