// Crash-consistent checkpoint/resume for ensemble sweeps.
//
// A sweep (realizations [0, count) × K outcome series) is made preemption-
// safe by two files under the checkpoint directory, both keyed by the
// sweep's content digest (the PR-4 engine-batch digest + the series keys),
// so a checkpoint taken under different knobs can never be resumed:
//
//  * `<digest>.jrnl` — an append-only, record-framed journal. Every
//    checkpoint interval the sweep appends one checksummed record holding
//    a completed index range, the per-series outcome-count deltas for that
//    range, and the PR-6 failure/quarantine records that fell inside it;
//    the record is fsync'd before the sweep moves on.
//  * `<digest>.snap` — a periodic atomic snapshot compacting the journal
//    (full merged state: completed ranges, per-series counts, the whole
//    failure ledger). Published tmp-write → fsync file → rename → fsync
//    directory, then the journal is reset with a bumped epoch; a journal
//    whose epoch predates the snapshot is a strict subset of it and is
//    ignored on replay.
//
// Crash model and the atomicity argument (DESIGN.md §12): the process may
// die at ANY instant (`_exit`, OOM kill, power loss). Because records are
// appended sequentially and checksummed, a crash can only ever produce a
// TORN TAIL — a final record prefix — which replay silently drops (that
// range is simply recomputed). Any OTHER anomaly (a bad record with a
// valid record after it, a checksum/sequence mismatch, an overlapping
// range) cannot be produced by a crash, only by corruption or tampering,
// and is reported as a typed kCheckpointCorrupt event followed by a cold
// start — a checkpoint is an accelerator, never a correctness dependency.
//
// Replayed state is merged IN ASCENDING RANGE ORDER and all folds are
// integer count sums, so a resumed sweep is bit-identical at any --jobs
// value to an uninterrupted one.
//
// Deterministic process-death injection: every durable write (journal
// record, snapshot publish, journal reset) is a numbered crash SITE; the
// CT_CRASH profile (see fault_profile.h) kills the process before / mid-
// write (torn) / after a chosen site, which is how the self-exec crash
// harness proves every instant is recoverable.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/fault_profile.h"
#include "util/error.h"

namespace ct::runtime {

/// One quarantined realization: everything needed to aggregate, report,
/// deterministically replay — and, via the journal, survive a process
/// death (a resumed sweep must not re-count a quarantined index).
struct FailureRecord {
  std::uint64_t realization = 0;  ///< Monte-Carlo index (replay handle)
  std::uint64_t seed = 0;         ///< ensemble base seed (0 when unknown)
  unsigned attempts = 0;          ///< attempts consumed (1 + retries)
  util::ErrorCode code = util::ErrorCode::kUnknown;
  std::string origin;             ///< failing component ("surge", ...)
  std::string message;            ///< last attempt's what()
};

/// Failure accounting threaded between the generation and counting stages.
struct FailureLedger {
  std::vector<FailureRecord> failures;  ///< sorted by realization index
  std::uint64_t retries = 0;            ///< extra attempts (healed + exhausted)
};

/// Progress of a sweep as observed at a slice boundary; handed to
/// CheckpointOptions::on_progress so a caller (the ct_service streaming
/// path, a progress bar) can follow a long sweep without touching its
/// determinism — observation only, the sweep never reads anything back.
struct SweepProgressEvent {
  std::uint64_t done = 0;         ///< indices completed so far (incl. restored)
  std::uint64_t total = 0;        ///< indices the sweep was asked for
  std::uint64_t quarantined = 0;  ///< failures recorded so far
  std::uint64_t retries = 0;      ///< retry attempts spent so far
};

/// Knobs of the checkpoint layer. An empty `dir` disables checkpointing
/// entirely (the sweep still runs, nothing durable is written).
struct CheckpointOptions {
  std::string dir;
  /// Realizations per journal record (the at-most-this-much-work-is-lost
  /// bound); slice boundaries are derived from the MISSING set, so a
  /// resumed run may legally use a different interval.
  std::size_t interval = 128;
  /// Journal records between snapshot compactions (bounds replay length).
  std::size_t snapshot_every = 16;
  /// Attempt to resume from existing checkpoint state.
  bool resume = false;
  /// Crash-injection spec: "" defers to the CT_CRASH environment variable,
  /// "none" is explicitly off, anything else is CrashProfile::parse'd.
  std::string crash_spec;
  /// Optional observer called after every completed slice (durable or
  /// not: it fires with an empty `dir` too, where the sweep still walks
  /// `interval`-sized slices). Runs on the sweep thread between slices —
  /// keep it cheap, and never let it throw.
  std::function<void(const SweepProgressEvent&)> on_progress;
};

/// Identity of a resumable sweep: the content digest binding the journal
/// to its inputs, the realization count, and one key per outcome series
/// (a single-distribution sweep has exactly one).
struct SweepSpec {
  std::string digest;
  std::size_t count = 0;
  std::vector<std::string> series;
};

/// Outcome histogram of one series (green/orange/red/gray).
using SeriesCounts = std::array<std::uint64_t, 4>;

/// Merged sweep state: what a checkpoint persists and a resume restores.
struct SweepProgress {
  /// Completed [begin, end) index ranges — disjoint, ascending, coalesced.
  /// Quarantined indices count as completed (attempted, outcome recorded
  /// in `failures`), so a resume never re-runs them.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> done;
  std::vector<SeriesCounts> series;
  std::vector<FailureRecord> failures;  ///< ascending by realization index
  std::uint64_t retries = 0;

  /// Total indices covered by `done`.
  std::uint64_t completed() const noexcept;
  /// Merges [begin, end); false (state unchanged) on overlap with `done`
  /// — a crash cannot produce overlap, so the caller treats it as
  /// corruption.
  bool merge_range(std::uint64_t begin, std::uint64_t end);
  /// The complement of `done` within [0, count): the indices a resumed
  /// sweep still needs to schedule, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> missing(
      std::uint64_t count) const;
};

/// How a resume attempt went.
enum class ResumeStatus {
  kColdStart,  ///< nothing usable on disk (or resume not requested)
  kResumed,    ///< snapshot/journal validated and replayed
  kStale,      ///< digest/count/series mismatch — different knobs; cold start
  kCorrupt,    ///< interior corruption (typed kCheckpointCorrupt); cold start
};

/// Stable name ("cold-start", "resumed", ...) for logs and reports.
std::string_view resume_status_name(ResumeStatus status) noexcept;

struct ResumeInfo {
  ResumeStatus status = ResumeStatus::kColdStart;
  std::string detail;       ///< operator-facing reason (logged)
  std::uint64_t restored = 0;  ///< indices restored from the checkpoint
  bool torn_tail_dropped = false;  ///< a torn final record was discarded
};

/// The durable side of a resumable sweep. NOT thread-safe: all journal
/// calls happen on the sweep's calling thread, in slice order (which is
/// also what makes the crash-site counter deterministic).
class SweepJournal {
 public:
  /// On-disk format version; bump on any layout or checksum change.
  static constexpr int kFormatVersion = 1;

  SweepJournal(CheckpointOptions options, SweepSpec spec);
  ~SweepJournal();
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Validates and replays snapshot + journal into `progress` (which must
  /// arrive empty). Never throws: staleness and corruption are reported in
  /// the ResumeInfo (and logged as structured events) and leave `progress`
  /// empty for a cold start.
  ResumeInfo load(SweepProgress& progress);

  /// Opens the journal for appending. `cold` discards any previous state
  /// and publishes a fresh header; after a successful load(), pass the
  /// replayed progress and cold=false to append after the existing
  /// records. Returns false when the directory/file cannot be prepared
  /// (checkpointing is then off for this run — soft, like the cache).
  bool begin(const SweepProgress& progress, bool cold);

  /// Appends one completed-slice record (the DELTA for [begin, end)) and
  /// fsyncs it; every `snapshot_every` records compacts `full` (the merged
  /// state INCLUDING this delta) into an atomic snapshot and resets the
  /// journal. Soft-fails like begin().
  bool append(std::uint64_t begin, std::uint64_t end,
              const std::vector<SeriesCounts>& delta,
              const std::vector<FailureRecord>& slice_failures,
              std::uint64_t retries_delta, const SweepProgress& full);

  /// Sweep fully completed: removes both files (the result now lives in
  /// the result cache / the caller's output, not the checkpoint).
  void finish();

  /// Closes the journal fd without removing files (interrupted sweep: the
  /// state stays on disk for the next --resume). Called by the destructor.
  void close();

  std::string journal_path() const;
  std::string snapshot_path() const;

  /// Durable writes performed by THIS run (journal records + snapshots +
  /// journal resets) — the denominator of checkpoint-overhead accounting.
  std::uint64_t writes() const noexcept { return writes_; }

 private:
  bool publish_snapshot(const SweepProgress& full);
  /// Rewrites the journal to just a header at `epoch_` (atomic publish),
  /// then reopens it for appending.
  bool reset_journal();
  std::string header_text() const;
  std::string header_checksum() const;

  CheckpointOptions options_;
  SweepSpec spec_;
  CrashProfile crash_;
  int fd_ = -1;             ///< journal fd (O_APPEND) while open
  std::uint64_t epoch_ = 0; ///< snapshot epoch the journal is relative to
  std::uint64_t next_seq_ = 1;  ///< sequence number of the next record
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace ct::runtime
