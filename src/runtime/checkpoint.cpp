#include "runtime/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/digest.h"
#include "util/fsio.h"
#include "util/log.h"

namespace ct::runtime {

namespace fs = std::filesystem;

namespace {

/// Durable-write telemetry: fsync'd-publish latency and total journal
/// bytes, folded at the single site every checkpoint flush funnels through.
struct CheckpointMetrics {
  obs::Histogram flush_us{"checkpoint.flush_us"};
  obs::Counter flushes{"checkpoint.flushes"};
  obs::Counter journal_bytes{"checkpoint.journal_bytes"};
};

CheckpointMetrics& checkpoint_metrics() {
  static CheckpointMetrics m;
  return m;
}

// --- crash-site accounting --------------------------------------------------

/// Process-wide durable-write counter. Flushes happen on the sweep thread
/// in slice order, so for a given workload the Nth site is always the same
/// instant — which is what makes CT_CRASH reproducible.
std::atomic<std::uint64_t> g_crash_sites{0};

std::uint64_t next_crash_site() noexcept {
  return g_crash_sites.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Injected process death: no unwinding, no stream flushing, no atexit —
/// the same observable behavior as an OOM kill or power loss.
[[noreturn]] void die() { ::_exit(CrashProfile::kExitCode); }

bool write_all(int fd, const char* data, std::size_t n) noexcept {
  std::size_t written = 0;
  while (written < n) {
    const ::ssize_t r = ::write(fd, data + written, n - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(r);
  }
  return true;
}

/// Durable atomic publish with the three CT_CRASH points wired in: die
/// before any byte, die after a torn prefix of the tmp file, die after the
/// rename + directory fsync completed.
bool publish_with_crash_points(const std::string& path,
                               const std::string& contents,
                               const CrashProfile& crash) {
  CheckpointMetrics& m = checkpoint_metrics();
  obs::ScopedTimer timer(m.flush_us);
  m.flushes.inc();
  m.journal_bytes.inc(contents.size());
  const std::uint64_t site = next_crash_site();
  if (crash.fires(CrashPoint::kBeforeWrite, site)) die();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (crash.fires(CrashPoint::kTornWrite, site)) {
    // A prefix of the write reaches the disk, then the process dies — the
    // tmp never renames, so replay must ignore and GC it.
    write_all(fd, contents.data(), std::max<std::size_t>(1, contents.size() / 2));
    ::fsync(fd);
    die();
  }
  const bool ok = write_all(fd, contents.data(), contents.size()) &&
                  ::fsync(fd) == 0;
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  const bool synced = util::fsync_parent_dir(path);
  if (crash.fires(CrashPoint::kAfterWrite, site)) die();
  return synced;
}

// --- text framing -----------------------------------------------------------

/// Journal/snapshot fields are space-separated; strings are percent-
/// escaped so an arbitrary error message can never break record framing.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    if (c <= 0x20 || c == '%' || c >= 0x7f) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  if (out.empty()) out = "%00";  // empty field would vanish in a split
  return out;
}

bool unescape(std::string_view s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) return false;
    const auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(s[i + 1]);
    const int lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) return false;
    const char decoded = static_cast<char>(hi * 16 + lo);
    // %00 doubles as the empty-field marker; a stray NUL in a message is
    // dropped rather than poisoning downstream C strings.
    if (decoded != '\0') out += decoded;
    i += 2;
  }
  return true;
}

/// Line-scoped tokenizer: whitespace-split with typed extraction.
struct LineReader {
  std::istringstream in;
  bool ok = true;

  explicit LineReader(const std::string& line) : in(line) {}

  std::string tok() {
    std::string t;
    if (!(in >> t)) ok = false;
    return t;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!(in >> v)) ok = false;
    return v;
  }
  std::string text() {  // unescaped string token
    std::string raw = tok();
    std::string out;
    if (ok && !unescape(raw, out)) ok = false;
    return out;
  }
  bool done() {  // true when the whole line was consumed
    std::string rest;
    return ok && !(in >> rest);
  }
};

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  if (!in) return lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void failure_to_stream(std::ostringstream& out, const FailureRecord& f) {
  out << "F " << f.realization << ' ' << f.seed << ' ' << f.attempts << ' '
      << static_cast<int>(f.code) << ' ' << escape(f.origin) << ' '
      << escape(f.message) << '\n';
}

bool failure_from_line(const std::string& line, FailureRecord& f) {
  LineReader r(line);
  if (r.tok() != "F") return false;
  f.realization = r.u64();
  f.seed = r.u64();
  f.attempts = static_cast<unsigned>(r.u64());
  f.code = static_cast<util::ErrorCode>(r.u64());
  f.origin = r.text();
  f.message = r.text();
  return r.done();
}

void digest_failure(util::Digest& d, const FailureRecord& f) {
  d.u64(f.realization)
      .u64(f.seed)
      .u64(f.attempts)
      .i64(static_cast<int>(f.code))
      .str(f.origin)
      .str(f.message);
}

}  // namespace

// --- SweepProgress ----------------------------------------------------------

std::uint64_t SweepProgress::completed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [b, e] : done) n += e - b;
  return n;
}

bool SweepProgress::merge_range(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return false;
  auto it = std::lower_bound(
      done.begin(), done.end(), begin,
      [](const auto& range, std::uint64_t v) { return range.first < v; });
  // Overlap (touching does NOT count: [0,512)+[512,544) is the normal
  // shape of consecutive slices) with the predecessor or successor?
  if (it != done.begin() && std::prev(it)->second > begin) return false;
  if (it != done.end() && it->first < end) return false;
  it = done.insert(it, {begin, end});
  // Coalesce with exact-adjacent neighbors to keep `done` minimal.
  if (const auto next = std::next(it);
      next != done.end() && next->first == it->second) {
    it->second = next->second;
    done.erase(next);
  }
  if (it != done.begin()) {
    const auto prev = std::prev(it);
    if (prev->second == it->first) {
      prev->second = it->second;
      done.erase(it);
    }
  }
  return true;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> SweepProgress::missing(
    std::uint64_t count) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  std::uint64_t cursor = 0;
  for (const auto& [b, e] : done) {
    if (b >= count) break;
    if (cursor < b) out.emplace_back(cursor, std::min(b, count));
    cursor = std::max(cursor, e);
  }
  if (cursor < count) out.emplace_back(cursor, count);
  return out;
}

std::string_view resume_status_name(ResumeStatus status) noexcept {
  switch (status) {
    case ResumeStatus::kColdStart: return "cold-start";
    case ResumeStatus::kResumed: return "resumed";
    case ResumeStatus::kStale: return "stale";
    case ResumeStatus::kCorrupt: return "corrupt";
  }
  return "cold-start";
}

// --- SweepJournal -----------------------------------------------------------

SweepJournal::SweepJournal(CheckpointOptions options, SweepSpec spec)
    : options_(std::move(options)), spec_(std::move(spec)),
      crash_(options_.crash_spec.empty()
                 ? CrashProfile::from_env()
                 : CrashProfile::parse(options_.crash_spec)) {
  if (options_.interval == 0) options_.interval = 1;
  if (options_.snapshot_every == 0) options_.snapshot_every = 1;
}

SweepJournal::~SweepJournal() { close(); }

void SweepJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string SweepJournal::journal_path() const {
  util::Digest d;
  d.str("ct-sweep-file").str(spec_.digest);
  return options_.dir + "/" + d.hex() + ".jrnl";
}

std::string SweepJournal::snapshot_path() const {
  util::Digest d;
  d.str("ct-sweep-file").str(spec_.digest);
  return options_.dir + "/" + d.hex() + ".snap";
}

std::string SweepJournal::header_text() const {
  std::ostringstream out;
  out << "ctjournal " << kFormatVersion << ' ' << spec_.count << ' '
      << spec_.series.size() << ' ' << epoch_ << '\n';
  out << "D " << escape(spec_.digest) << '\n';
  for (const std::string& s : spec_.series) out << "S " << escape(s) << '\n';
  out << "H " << header_checksum() << '\n';
  return out.str();
}

std::string SweepJournal::header_checksum() const {
  util::Digest d;
  d.str("ct-journal-header")
      .i64(kFormatVersion)
      .str(spec_.digest)
      .u64(spec_.count)
      .u64(spec_.series.size())
      .u64(epoch_);
  for (const std::string& s : spec_.series) d.str(s);
  return d.hex();
}

namespace {

/// Checksum binding one journal record to its header, sequence position,
/// and full payload — a bit flip, splice, or reorder can never verify.
std::string record_checksum(const std::string& header_checksum,
                            std::uint64_t seq, std::uint64_t begin,
                            std::uint64_t end, std::uint64_t retries,
                            const std::vector<SeriesCounts>& delta,
                            const std::vector<FailureRecord>& failures) {
  util::Digest d;
  d.str("ct-journal-record").str(header_checksum).u64(seq).u64(begin).u64(end)
      .u64(retries);
  d.u64(delta.size());
  for (const SeriesCounts& s : delta) {
    for (const std::uint64_t c : s) d.u64(c);
  }
  d.u64(failures.size());
  for (const FailureRecord& f : failures) digest_failure(d, f);
  return d.hex();
}

std::string snapshot_checksum(const SweepSpec& spec, std::uint64_t epoch,
                              const SweepProgress& p) {
  util::Digest d;
  d.str("ct-snapshot")
      .i64(SweepJournal::kFormatVersion)
      .str(spec.digest)
      .u64(spec.count)
      .u64(spec.series.size())
      .u64(epoch)
      .u64(p.retries);
  for (const std::string& s : spec.series) d.str(s);
  d.u64(p.done.size());
  for (const auto& [b, e] : p.done) d.u64(b).u64(e);
  d.u64(p.series.size());
  for (const SeriesCounts& s : p.series) {
    for (const std::uint64_t c : s) d.u64(c);
  }
  d.u64(p.failures.size());
  for (const FailureRecord& f : p.failures) digest_failure(d, f);
  return d.hex();
}

/// One parsed journal record.
struct ParsedRecord {
  std::uint64_t seq = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t retries = 0;
  std::vector<SeriesCounts> delta;
  std::vector<FailureRecord> failures;
};

enum class RecordParse { kOk, kTorn, kBad };

/// Parses one record starting at lines[idx] (which must be an "R " line).
/// kTorn = the file ended mid-record (the only shape a crash can leave);
/// kBad = framing or checksum violation.
RecordParse parse_record(const std::vector<std::string>& lines,
                         std::size_t idx, std::size_t nseries,
                         const std::string& header_checksum,
                         ParsedRecord& out, std::size_t& next_idx) {
  if (idx >= lines.size()) return RecordParse::kTorn;
  LineReader r(lines[idx]);
  if (r.tok() != "R") return RecordParse::kBad;
  out.seq = r.u64();
  out.begin = r.u64();
  out.end = r.u64();
  out.retries = r.u64();
  const std::uint64_t nfail = r.u64();
  if (!r.done()) return RecordParse::kBad;
  std::size_t at = idx + 1;
  out.delta.assign(nseries, SeriesCounts{});
  for (std::size_t s = 0; s < nseries; ++s, ++at) {
    if (at >= lines.size()) return RecordParse::kTorn;
    LineReader k(lines[at]);
    if (k.tok() != "K") return RecordParse::kBad;
    for (std::uint64_t& c : out.delta[s]) c = k.u64();
    if (!k.done()) return RecordParse::kBad;
  }
  out.failures.clear();
  for (std::uint64_t f = 0; f < nfail; ++f, ++at) {
    if (at >= lines.size()) return RecordParse::kTorn;
    FailureRecord record;
    if (!failure_from_line(lines[at], record)) return RecordParse::kBad;
    out.failures.push_back(std::move(record));
  }
  if (at >= lines.size()) return RecordParse::kTorn;
  LineReader e(lines[at]);
  if (e.tok() != "E") return RecordParse::kBad;
  const std::string checksum = e.tok();
  if (!e.done()) return RecordParse::kBad;
  if (checksum != record_checksum(header_checksum, out.seq, out.begin,
                                  out.end, out.retries, out.delta,
                                  out.failures)) {
    return RecordParse::kBad;
  }
  next_idx = at + 1;
  return RecordParse::kOk;
}

/// True when any complete, checksum-valid record exists at or after
/// lines[from] — the discriminator between a torn tail (nothing valid
/// follows) and interior corruption (valid data follows the damage).
bool any_valid_record_after(const std::vector<std::string>& lines,
                            std::size_t from, std::size_t nseries,
                            const std::string& header_checksum) {
  for (std::size_t i = from; i < lines.size(); ++i) {
    if (lines[i].rfind("R ", 0) != 0) continue;
    ParsedRecord record;
    std::size_t next = 0;
    if (parse_record(lines, i, nseries, header_checksum, record, next) ==
        RecordParse::kOk) {
      return true;
    }
  }
  return false;
}

void remove_leftover_tmp(const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::error_code ec;
  if (fs::exists(tmp, ec)) {
    fs::remove(tmp, ec);
    CT_LOG(kInfo, "checkpoint")
        << "event=checkpoint_gc file=" << tmp
        << " reason=half-written-tmp-from-crash";
  }
}

}  // namespace

ResumeInfo SweepJournal::load(SweepProgress& progress) {
  ResumeInfo info;
  progress = SweepProgress{};
  progress.series.assign(spec_.series.size(), SeriesCounts{});
  // A crash mid-publish leaves only a ".tmp"; it never renamed, so it is
  // garbage by construction — ignore and collect it.
  remove_leftover_tmp(snapshot_path());
  remove_leftover_tmp(journal_path());

  const auto corrupt = [&](const std::string& file, const std::string& why) {
    const util::Error error(util::ErrorCode::kCheckpointCorrupt, "checkpoint",
                            why + " (" + file + ")");
    CT_LOG(kError, "checkpoint")
        << "event=checkpoint_corrupt file=" << file << " reason=" << escape(why)
        << " action=cold-start";
    progress = SweepProgress{};
    progress.series.assign(spec_.series.size(), SeriesCounts{});
    info = ResumeInfo{};
    info.status = ResumeStatus::kCorrupt;
    info.detail = error.what();
    return info;
  };
  const auto stale = [&](const std::string& file, const std::string& why) {
    CT_LOG(kWarn, "checkpoint")
        << "event=checkpoint_stale file=" << file << " reason=" << escape(why)
        << " action=cold-start";
    progress = SweepProgress{};
    progress.series.assign(spec_.series.size(), SeriesCounts{});
    info = ResumeInfo{};
    info.status = ResumeStatus::kStale;
    info.detail = why;
    return info;
  };

  // --- snapshot -------------------------------------------------------------
  std::uint64_t snap_epoch = 0;
  std::error_code ec;
  if (fs::exists(snapshot_path(), ec)) {
    const std::vector<std::string> lines = read_lines(snapshot_path());
    if (lines.size() < 3) {
      return corrupt(snapshot_path(), "snapshot too short");
    }
    LineReader h(lines[0]);
    std::uint64_t version = 0, count = 0, nseries = 0, retries = 0, nfail = 0,
                  nranges = 0;
    if (h.tok() != "ctsnapshot") {
      return corrupt(snapshot_path(), "bad snapshot magic");
    }
    version = h.u64();
    count = h.u64();
    nseries = h.u64();
    snap_epoch = h.u64();
    retries = h.u64();
    nfail = h.u64();
    nranges = h.u64();
    if (!h.done()) return corrupt(snapshot_path(), "bad snapshot header");
    if (version != static_cast<std::uint64_t>(kFormatVersion)) {
      return stale(snapshot_path(), "snapshot format version mismatch");
    }
    std::size_t at = 1;
    LineReader d(lines[at++]);
    std::string digest;
    if (d.tok() != "D" || (digest = d.text(), !d.done())) {
      return corrupt(snapshot_path(), "bad snapshot digest line");
    }
    if (digest != spec_.digest || count != spec_.count ||
        nseries != spec_.series.size()) {
      return stale(snapshot_path(),
                   "snapshot was taken under different sweep inputs");
    }
    for (std::size_t s = 0; s < nseries; ++s, ++at) {
      if (at >= lines.size()) return corrupt(snapshot_path(), "truncated");
      LineReader sr(lines[at]);
      std::string key;
      if (sr.tok() != "S" || (key = sr.text(), !sr.done())) {
        return corrupt(snapshot_path(), "bad series line");
      }
      if (key != spec_.series[s]) {
        return stale(snapshot_path(), "snapshot series keys differ");
      }
    }
    for (std::uint64_t g = 0; g < nranges; ++g, ++at) {
      if (at >= lines.size()) return corrupt(snapshot_path(), "truncated");
      LineReader gr(lines[at]);
      if (gr.tok() != "G") return corrupt(snapshot_path(), "bad range line");
      const std::uint64_t b = gr.u64();
      const std::uint64_t e = gr.u64();
      if (!gr.done() || e > spec_.count || !progress.merge_range(b, e)) {
        return corrupt(snapshot_path(), "invalid or overlapping range");
      }
    }
    for (std::size_t s = 0; s < nseries; ++s, ++at) {
      if (at >= lines.size()) return corrupt(snapshot_path(), "truncated");
      LineReader k(lines[at]);
      if (k.tok() != "K") return corrupt(snapshot_path(), "bad counts line");
      for (std::uint64_t& c : progress.series[s]) c = k.u64();
      if (!k.done()) return corrupt(snapshot_path(), "bad counts line");
    }
    for (std::uint64_t f = 0; f < nfail; ++f, ++at) {
      if (at >= lines.size()) return corrupt(snapshot_path(), "truncated");
      FailureRecord record;
      if (!failure_from_line(lines[at], record)) {
        return corrupt(snapshot_path(), "bad failure line");
      }
      progress.failures.push_back(std::move(record));
    }
    progress.retries = retries;
    if (at >= lines.size()) return corrupt(snapshot_path(), "truncated");
    LineReader e(lines[at]);
    if (e.tok() != "E" ||
        e.tok() != snapshot_checksum(spec_, snap_epoch, progress) ||
        !e.done()) {
      return corrupt(snapshot_path(), "snapshot checksum mismatch");
    }
  }

  // --- journal --------------------------------------------------------------
  if (fs::exists(journal_path(), ec)) {
    const std::vector<std::string> lines = read_lines(journal_path());
    const std::size_t header_lines = 3 + spec_.series.size();
    if (lines.size() < header_lines) {
      // A journal header is published atomically, so a short file can only
      // be external damage — but with no records at stake, a quiet cold
      // journal (keeping any snapshot state) is both safe and forgiving.
      CT_LOG(kWarn, "checkpoint")
          << "event=checkpoint_replay file=" << journal_path()
          << " note=truncated-header records=0";
    } else {
      LineReader h(lines[0]);
      std::uint64_t version = 0, count = 0, nseries = 0, jrnl_epoch = 0;
      bool header_ok = h.tok() == "ctjournal";
      version = h.u64();
      count = h.u64();
      nseries = h.u64();
      jrnl_epoch = h.u64();
      header_ok = header_ok && h.done() && h.ok;
      std::string digest;
      if (header_ok) {
        LineReader d(lines[1]);
        header_ok = d.tok() == "D" && (digest = d.text(), d.done());
      }
      std::vector<std::string> series;
      if (header_ok) {
        for (std::size_t s = 0; s < nseries; ++s) {
          if (2 + s >= lines.size()) {
            header_ok = false;
            break;
          }
          LineReader sr(lines[2 + s]);
          std::string key;
          if (sr.tok() != "S" || (key = sr.text(), !sr.done())) {
            header_ok = false;
            break;
          }
          series.push_back(std::move(key));
        }
      }
      std::string checksum;
      if (header_ok && 2 + nseries < lines.size()) {
        LineReader c(lines[2 + nseries]);
        header_ok = c.tok() == "H" && (checksum = c.tok(), c.done());
      } else {
        header_ok = false;
      }
      if (!header_ok) {
        return corrupt(journal_path(), "malformed journal header");
      }
      if (version != static_cast<std::uint64_t>(kFormatVersion) ||
          digest != spec_.digest || count != spec_.count ||
          series != spec_.series) {
        return stale(journal_path(),
                     "journal was written under different sweep inputs");
      }
      // Recompute the header checksum against the JOURNAL's own epoch.
      const std::uint64_t saved_epoch = epoch_;
      epoch_ = jrnl_epoch;
      const std::string expect = header_checksum();
      epoch_ = saved_epoch;
      if (checksum != expect) {
        return corrupt(journal_path(), "journal header checksum mismatch");
      }
      if (jrnl_epoch > snap_epoch) {
        // The journal claims a snapshot that does not exist (deleted or
        // rolled back): its records are deltas on unknown state.
        return corrupt(journal_path(),
                       "journal epoch is ahead of the snapshot");
      }
      if (jrnl_epoch == snap_epoch) {
        std::size_t idx = header_lines;
        std::uint64_t expect_seq = 1;
        while (idx < lines.size()) {
          if (lines[idx].empty()) {
            ++idx;
            continue;
          }
          ParsedRecord record;
          std::size_t next = 0;
          const RecordParse status =
              parse_record(lines, idx, spec_.series.size(), checksum, record,
                           next);
          if (status != RecordParse::kOk) {
            if (status == RecordParse::kBad &&
                any_valid_record_after(lines, idx + 1, spec_.series.size(),
                                       checksum)) {
              return corrupt(journal_path(),
                             "interior journal record is corrupt");
            }
            // Torn tail: the crash interrupted the final append. The
            // record never committed; its range simply gets recomputed.
            info.torn_tail_dropped = true;
            CT_LOG(kInfo, "checkpoint")
                << "event=checkpoint_replay file=" << journal_path()
                << " note=torn-tail-dropped at_record=" << expect_seq;
            break;
          }
          if (record.seq != expect_seq || record.end > spec_.count ||
              !progress.merge_range(record.begin, record.end)) {
            return corrupt(journal_path(),
                           "journal record sequence/range violation");
          }
          for (std::size_t s = 0; s < spec_.series.size(); ++s) {
            for (std::size_t c = 0; c < 4; ++c) {
              progress.series[s][c] += record.delta[s][c];
            }
          }
          for (FailureRecord& f : record.failures) {
            progress.failures.push_back(std::move(f));
          }
          progress.retries += record.retries;
          ++expect_seq;
          idx = next;
        }
      } else {
        CT_LOG(kInfo, "checkpoint")
            << "event=checkpoint_replay file=" << journal_path()
            << " note=pre-snapshot-journal-ignored epoch=" << jrnl_epoch
            << " snapshot_epoch=" << snap_epoch;
      }
    }
  }

  std::sort(progress.failures.begin(), progress.failures.end(),
            [](const FailureRecord& a, const FailureRecord& b) {
              return a.realization < b.realization;
            });
  epoch_ = snap_epoch;
  info.restored = progress.completed();
  info.status =
      info.restored > 0 ? ResumeStatus::kResumed : ResumeStatus::kColdStart;
  if (info.status == ResumeStatus::kResumed) {
    CT_LOG(kInfo, "checkpoint")
        << "event=checkpoint_replay status=resumed restored=" << info.restored
        << "/" << spec_.count << " failures=" << progress.failures.size()
        << " epoch=" << snap_epoch
        << " torn_tail=" << (info.torn_tail_dropped ? 1 : 0);
  }
  return info;
}

bool SweepJournal::begin(const SweepProgress& progress, bool cold) {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    CT_LOG(kWarn, "checkpoint") << "event=checkpoint_disabled dir="
                                << options_.dir << " reason=" << ec.message();
    return false;
  }
  if (cold) {
    epoch_ = 0;
    fs::remove(snapshot_path(), ec);
    return reset_journal();
  }
  // Warm start: compact everything we just replayed into one fresh
  // snapshot, then reset the journal — the resumed run never appends after
  // foreign records, and replay length stays bounded by snapshot_every.
  if (!publish_snapshot(progress)) return false;
  return reset_journal();
}

bool SweepJournal::append(std::uint64_t begin, std::uint64_t end,
                          const std::vector<SeriesCounts>& delta,
                          const std::vector<FailureRecord>& slice_failures,
                          std::uint64_t retries_delta,
                          const SweepProgress& full) {
  if (fd_ < 0) return false;
  std::ostringstream out;
  out << "R " << next_seq_ << ' ' << begin << ' ' << end << ' '
      << retries_delta << ' ' << slice_failures.size() << '\n';
  for (const SeriesCounts& s : delta) {
    out << "K " << s[0] << ' ' << s[1] << ' ' << s[2] << ' ' << s[3] << '\n';
  }
  for (const FailureRecord& f : slice_failures) failure_to_stream(out, f);
  out << "E "
      << record_checksum(header_checksum(), next_seq_, begin, end,
                         retries_delta, delta, slice_failures)
      << '\n';
  const std::string record = out.str();

  const std::uint64_t site = next_crash_site();
  if (crash_.fires(CrashPoint::kBeforeWrite, site)) die();
  if (crash_.fires(CrashPoint::kTornWrite, site)) {
    // Torn record: a prefix reaches the disk, then the process dies —
    // exactly the tail shape load() must silently drop.
    write_all(fd_, record.data(),
              std::max<std::size_t>(1, record.size() / 2));
    ::fsync(fd_);
    die();
  }
  if (!write_all(fd_, record.data(), record.size()) || ::fsync(fd_) != 0) {
    CT_LOG(kWarn, "checkpoint")
        << "event=checkpoint_disabled file=" << journal_path()
        << " reason=append-write-failed";
    close();
    return false;
  }
  ++writes_;
  CT_LOG(kInfo, "checkpoint")
      << "event=checkpoint_write kind=record seq=" << next_seq_ << " range=["
      << begin << ',' << end << ") bytes=" << record.size()
      << " completed=" << full.completed() << "/" << spec_.count;
  if (crash_.fires(CrashPoint::kAfterWrite, site)) die();
  ++next_seq_;
  if (++records_since_snapshot_ >= options_.snapshot_every) {
    if (!publish_snapshot(full) || !reset_journal()) return false;
  }
  return true;
}

bool SweepJournal::publish_snapshot(const SweepProgress& full) {
  const std::uint64_t epoch = epoch_ + 1;
  std::ostringstream out;
  out << "ctsnapshot " << kFormatVersion << ' ' << spec_.count << ' '
      << spec_.series.size() << ' ' << epoch << ' ' << full.retries << ' '
      << full.failures.size() << ' ' << full.done.size() << '\n';
  out << "D " << escape(spec_.digest) << '\n';
  for (const std::string& s : spec_.series) out << "S " << escape(s) << '\n';
  for (const auto& [b, e] : full.done) out << "G " << b << ' ' << e << '\n';
  for (const SeriesCounts& s : full.series) {
    out << "K " << s[0] << ' ' << s[1] << ' ' << s[2] << ' ' << s[3] << '\n';
  }
  for (const FailureRecord& f : full.failures) failure_to_stream(out, f);
  out << "E " << snapshot_checksum(spec_, epoch, full) << '\n';

  if (!publish_with_crash_points(snapshot_path(), out.str(), crash_)) {
    CT_LOG(kWarn, "checkpoint")
        << "event=checkpoint_disabled file=" << snapshot_path()
        << " reason=snapshot-publish-failed";
    close();
    return false;
  }
  epoch_ = epoch;
  ++writes_;
  CT_LOG(kInfo, "checkpoint")
      << "event=checkpoint_write kind=snapshot epoch=" << epoch
      << " completed=" << full.completed() << "/" << spec_.count
      << " failures=" << full.failures.size();
  return true;
}

bool SweepJournal::reset_journal() {
  close();
  next_seq_ = 1;
  records_since_snapshot_ = 0;
  if (!publish_with_crash_points(journal_path(), header_text(), crash_)) {
    CT_LOG(kWarn, "checkpoint")
        << "event=checkpoint_disabled file=" << journal_path()
        << " reason=header-publish-failed";
    return false;
  }
  ++writes_;
  fd_ = ::open(journal_path().c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    CT_LOG(kWarn, "checkpoint")
        << "event=checkpoint_disabled file=" << journal_path()
        << " reason=cannot-reopen-journal";
    return false;
  }
  CT_LOG(kInfo, "checkpoint")
      << "event=checkpoint_write kind=journal-reset epoch=" << epoch_;
  return true;
}

void SweepJournal::finish() {
  close();
  std::error_code ec;
  fs::remove(journal_path(), ec);
  fs::remove(snapshot_path(), ec);
  util::fsync_parent_dir(journal_path());
  CT_LOG(kInfo, "checkpoint")
      << "event=checkpoint_finish digest=" << escape(spec_.digest)
      << " writes=" << writes_;
}

}  // namespace ct::runtime
