#include "runtime/ensemble_runner.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "terrain/terrain.h"
#include "util/digest.h"

namespace ct::runtime {

namespace {

/// Ensemble-phase telemetry: per-batch latency histograms plus the
/// quarantine/retry counters the fault-isolation machinery folds in.
struct EnsembleMetrics {
  obs::Histogram generate_us{"ensemble.generate_us"};
  obs::Histogram count_us{"ensemble.count_us"};
  obs::Histogram slice_us{"ensemble.slice_us"};
  obs::Counter quarantined{"ensemble.quarantined"};
  obs::Counter retries{"ensemble.retries"};
};

EnsembleMetrics& ensemble_metrics() {
  static EnsembleMetrics m;
  return m;
}

/// Folds an isolated run's quarantine/retry tallies into the registry and
/// marks each as an instant trace event. Called after outcome assembly —
/// pure observation, never part of the computed result.
void fold_guard_result(const IsolatedRunResult& run) {
  EnsembleMetrics& m = ensemble_metrics();
  if (run.retries > 0) {
    m.retries.inc(run.retries);
    obs::trace_instant("ensemble.retry");
  }
  if (!run.failures.empty()) {
    m.quarantined.inc(run.failures.size());
    for (std::size_t i = 0; i < run.failures.size(); ++i) {
      obs::trace_instant("ensemble.quarantine");
    }
  }
}

ResultStoreOptions store_options(const EnsembleOptions& o,
                                 const RuntimeFaultProfile& fault) {
  ResultStoreOptions s;
  s.memory_entries = o.memory_entries;
  s.disk = o.cache && o.disk_cache;
  s.disk_dir = o.cache_dir;
  s.inject_write_failure = fault.cache_write_failure;
  return s;
}

RuntimeFaultProfile resolve_fault(const std::string& spec) {
  return spec.empty() ? RuntimeFaultProfile::from_env()
                      : RuntimeFaultProfile::parse(spec);
}

/// Cooperative stall for the delay rule: sleeps in small slices so the
/// watchdog deadline is honored mid-stall, exactly like a long kernel
/// polling between work units.
void cooperative_delay(std::chrono::milliseconds total,
                       const CancellationToken& token) {
  using namespace std::chrono;
  const steady_clock::time_point until = steady_clock::now() + total;
  while (steady_clock::now() < until) {
    token.poll("fault-delay");
    std::this_thread::sleep_for(milliseconds(1));
  }
  token.poll("fault-delay");
}

}  // namespace

FailureRecord make_failure_record(const TaskFailure& failure,
                                  std::uint64_t fallback_realization,
                                  std::uint64_t fallback_seed) {
  FailureRecord record;
  record.realization = fallback_realization;
  record.seed = fallback_seed;
  record.attempts = failure.attempts;
  record.code = util::classify_exception(failure.error);
  record.message = util::describe_exception(failure.error);
  try {
    if (failure.error) std::rethrow_exception(failure.error);
  } catch (const util::Error& e) {
    record.origin = e.origin();
    record.message = e.message();
    if (e.has_provenance()) {
      record.realization = e.realization();
      record.seed = e.seed();
    }
  } catch (...) {
    // Foreign exception: keep the normalized what() and fallbacks.
  }
  return record;
}

namespace {

void digest_impact(util::Digest& d, const surge::AssetImpact& impact) {
  d.str(impact.asset_id)
      .boolean(impact.failed)
      .f64(impact.inundation_depth_m)
      .boolean(impact.wind_failed);
}

void digest_realization(util::Digest& d,
                        const surge::HurricaneRealization& r) {
  d.u64(r.index).f64(r.peak_wind_ms).f64(r.max_shoreline_wse_m);
  d.u64(r.impacts.size());
  for (const surge::AssetImpact& impact : r.impacts) digest_impact(d, impact);
}

void digest_configuration(util::Digest& d, const scada::Configuration& c) {
  d.str(c.name)
      .i64(static_cast<int>(c.style))
      .i64(c.intrusion_tolerance_f)
      .i64(c.proactive_recovery_k)
      .boolean(c.active_multisite)
      .i64(c.min_active_sites);
  d.u64(c.sites.size());
  for (const scada::ControlSite& s : c.sites) {
    d.str(s.asset_id)
        .i64(static_cast<int>(s.role))
        .i64(s.replicas)
        .boolean(s.hot);
  }
}

// Every knob of the realization pipeline. If you add a field to any of
// these structs, add it here too — a missed field would let the disk cache
// return results for the OLD semantics. The probe realization mixed into
// digest_engine_batch() is defense in depth, not a substitute.
void digest_realization_config(util::Digest& d,
                               const surge::RealizationConfig& c) {
  d.f64(c.mesh.shore_spacing_m)
      .f64(c.mesh.cross_shore_spacing_m)
      .f64(c.mesh.offshore_extent_m)
      .f64(c.mesh.inland_extent_m);
  d.f64(c.surge.dt_s)
      .f64(c.surge.wind_setup_scale_m)
      .f64(c.surge.wind_setup_exponent)
      .f64(c.surge.wave_setup_per_ms)
      .f64(c.surge.min_depth_m)
      .f64(c.surge.max_considered_distance_m)
      .f64(c.surge.wind_options.surface_wind_factor)
      .f64(c.surge.wind_options.inflow_angle_deg)
      .f64(c.surge.wind_options.translation_fraction);
  d.f64(c.inundation.decay_length_m).f64(c.inundation.failure_threshold_m);
  const storm::TrackEnsembleConfig& e = c.ensemble;
  d.f64(e.base_aim.lat_deg)
      .f64(e.base_aim.lon_deg)
      .f64(e.base_heading_deg)
      .f64(e.approach_distance_m)
      .f64(e.departure_distance_m)
      .f64(e.forward_speed_ms)
      .f64(e.forward_speed_jitter_ms)
      .f64(e.cross_track_sigma_m)
      .f64(e.heading_sigma_deg)
      .f64(e.pressure_deficit_pa)
      .f64(e.pressure_deficit_sigma_pa)
      .f64(e.rmax_m)
      .f64(e.rmax_sigma_m)
      .f64(e.rmax_min_m)
      .f64(e.rmax_max_m)
      .f64(e.holland_b)
      .f64(e.holland_b_sigma)
      .f64(e.fix_interval_s)
      .f64(e.ambient_pressure_pa);
  d.boolean(c.harbor.enabled)
      .f64(c.harbor.ray_length_m)
      .f64(c.harbor.ray_step_m)
      .f64(c.harbor.ray_clearance_m)
      .f64(c.harbor.amplification);
  d.boolean(c.fragility.enabled)
      .f64(c.fragility.substation.median_wind_ms)
      .f64(c.fragility.substation.beta)
      .f64(c.fragility.power_plant.median_wind_ms)
      .f64(c.fragility.power_plant.beta)
      .f64(c.fragility.scan_dt_s);
  d.f64(c.smoothing_band_m)
      .i64(c.smoothing_passes)
      .i64(c.alongshore_window)
      .f64(c.sea_level_offset_m)
      .u64(c.base_seed);
}

}  // namespace

EnsembleRunner::EnsembleRunner(EnsembleOptions options)
    : options_(std::move(options)), fault_(resolve_fault(options_.fault_spec)),
      pool_(options_.jobs), store_(store_options(options_, fault_)) {
  if (options_.chunk == 0) options_.chunk = 1;
}

util::Interval EnsembleReport::mass_bound(std::size_t bucket,
                                          double confidence) const noexcept {
  if (attempted == 0 || bucket >= counts.counts.size()) return {0.0, 1.0};
  const std::uint64_t k = counts.counts[bucket];
  // Exact CI for the bucket probability among the COMPLETED samples...
  const util::Interval cp =
      util::clopper_pearson_interval(static_cast<std::size_t>(k), completed,
                                     confidence);
  // ...then account for the quarantined mass: at one extreme none of the
  // quarantined realizations belong to this bucket, at the other all do.
  const double n = static_cast<double>(attempted);
  const double m = static_cast<double>(completed);
  const double q = static_cast<double>(attempted - completed);
  return {std::max(0.0, cp.lo * m / n), std::min(1.0, (cp.hi * m + q) / n)};
}

EnsembleCounts EnsembleRunner::count_outcomes(const RealizationsFn& realizations,
                                              const OutcomeFn& outcome,
                                              const std::string& key) {
  const bool use_cache = options_.cache && !key.empty();
  if (use_cache) {
    if (const auto cached = store_.lookup(key)) {
      EnsembleCounts hit;
      hit.counts = cached->counts;
      hit.total = cached->total;
      hit.from_cache = true;
      return hit;
    }
  }
  return count_fresh(realizations(), outcome, use_cache ? key : std::string());
}

EnsembleCounts EnsembleRunner::count_outcomes(
    const std::vector<surge::HurricaneRealization>& realizations,
    const OutcomeFn& outcome, const std::string& key) {
  const bool use_cache = options_.cache && !key.empty();
  if (use_cache) {
    if (const auto cached = store_.lookup(key)) {
      EnsembleCounts hit;
      hit.counts = cached->counts;
      hit.total = cached->total;
      hit.from_cache = true;
      return hit;
    }
  }
  return count_fresh(realizations, outcome, use_cache ? key : std::string());
}

EnsembleCounts EnsembleRunner::count_fresh(
    const std::vector<surge::HurricaneRealization>& realizations,
    const OutcomeFn& outcome, const std::string& key) {
  obs::Span span("ensemble.count");
  obs::ScopedTimer timer(ensemble_metrics().count_us);
  EnsembleCounts fresh = pool_.map_reduce(
      realizations.size(), options_.chunk, EnsembleCounts{},
      [&](std::size_t begin, std::size_t end) {
        EnsembleCounts partial;
        for (std::size_t i = begin; i < end; ++i) {
          const int bucket = outcome(realizations[i]);
          ++partial.counts[static_cast<std::size_t>(bucket) &
                           (partial.counts.size() - 1)];
          ++partial.total;
        }
        return partial;
      },
      [](EnsembleCounts acc, EnsembleCounts part) {
        for (std::size_t i = 0; i < acc.counts.size(); ++i) {
          acc.counts[i] += part.counts[i];
        }
        acc.total += part.total;
        return acc;
      });

  if (!key.empty()) {
    CachedCounts record;
    record.counts = fresh.counts;
    record.total = fresh.total;
    store_.store(key, record);
  }
  return fresh;
}

std::vector<surge::HurricaneRealization> EnsembleRunner::generate(
    const surge::RealizationEngine& engine, std::size_t count) {
  obs::Span span("ensemble.generate");
  obs::ScopedTimer timer(ensemble_metrics().generate_us);
  std::vector<surge::HurricaneRealization> out(count);
  // Generation chunks are larger than analysis chunks: one realization is
  // the expensive unit (storm + surge solve), so 1-4 per task suffices.
  const std::size_t chunk =
      std::max<std::size_t>(1, options_.chunk / 8);
  pool_.parallel_for_ranges(count, chunk,
                            [&](std::size_t begin, std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                out[i] = engine.run(
                                    static_cast<std::uint64_t>(i));
                              }
                            });
  return out;
}

GeneratedBatch EnsembleRunner::generate_guarded(
    const surge::RealizationEngine& engine, std::size_t count) {
  obs::Span span("ensemble.generate");
  obs::ScopedTimer timer(ensemble_metrics().generate_us);
  GeneratedBatch batch;
  batch.attempted = count;
  const std::uint64_t seed = engine.config().base_seed;

  // Same chunking as generate(): one realization is the expensive unit.
  const std::size_t chunk = std::max<std::size_t>(1, options_.chunk / 8);
  TaskOptions task_options;
  task_options.timeout = options_.task_timeout;
  task_options.max_retries = options_.max_retries;

  std::vector<surge::HurricaneRealization> slots(count);
  IsolatedRunResult run = pool_.for_each_isolated(
      count, chunk,
      [&](std::size_t i, unsigned attempt, const CancellationToken& token) {
        const auto index = static_cast<std::uint64_t>(i);
        if (fault_.throw_rule.fires(index, attempt)) {
          throw util::Error(util::ErrorCode::kFaultInjected, "fault-injection",
                            "injected realization failure", index, seed);
        }
        if (fault_.delay_rule.fires(index, attempt)) {
          cooperative_delay(fault_.delay, token);
        }
        surge::HurricaneRealization r = engine.run(index);
        if (fault_.nan_rule.fires(index, attempt)) {
          // Poison the surge output, then run the SAME guard production
          // data passes through — the injection proves the guard trips.
          r.max_shoreline_wse_m = std::numeric_limits<double>::quiet_NaN();
          surge::validate_realization(r, seed);
        }
        token.poll("ensemble-generate");
        slots[i] = std::move(r);
      },
      task_options);

  fold_guard_result(run);
  batch.ledger.retries = run.retries;
  std::vector<bool> quarantined(count, false);
  batch.ledger.failures.reserve(run.failures.size());
  for (const TaskFailure& f : run.failures) {
    quarantined[f.index] = true;
    batch.ledger.failures.push_back(
        make_failure_record(f, static_cast<std::uint64_t>(f.index), seed));
  }
  batch.realizations.reserve(count - run.failures.size());
  for (std::size_t i = 0; i < count; ++i) {
    if (!quarantined[i]) batch.realizations.push_back(std::move(slots[i]));
  }
  return batch;
}

EnsembleReport EnsembleRunner::count_outcomes_guarded(
    const std::vector<surge::HurricaneRealization>& realizations,
    const OutcomeFn& outcome, const std::string& key) {
  return count_outcomes_guarded(
      [&realizations]() {
        return BatchView{&realizations, nullptr, realizations.size()};
      },
      outcome, key);
}

EnsembleReport EnsembleRunner::count_outcomes_guarded(
    const BatchFn& batch_fn, const OutcomeFn& outcome,
    const std::string& key) {
  const bool use_cache = options_.cache && !key.empty();
  if (use_cache) {
    if (const auto cached = store_.lookup(key)) {
      EnsembleReport hit;
      hit.counts.counts = cached->counts;
      hit.counts.total = cached->total;
      hit.counts.from_cache = true;
      // Only fully clean runs are ever stored, so a hit means every
      // realization completed.
      hit.attempted = hit.completed = cached->total;
      return hit;
    }
  }
  const BatchView view = batch_fn();
  return count_guarded_fresh(*view.realizations,
                             view.ledger ? *view.ledger : FailureLedger{},
                             view.attempted, outcome,
                             use_cache ? key : std::string());
}

EnsembleReport EnsembleRunner::count_guarded_fresh(
    const std::vector<surge::HurricaneRealization>& realizations,
    FailureLedger generation, std::size_t attempted, const OutcomeFn& outcome,
    const std::string& key) {
  obs::Span span("ensemble.count");
  obs::ScopedTimer timer(ensemble_metrics().count_us);
  // Per-index bucket slots instead of map_reduce partials: a throwing
  // classifier must quarantine ONE slot, and the serial ascending fold
  // below keeps the histogram bit-identical at any jobs value.
  std::vector<std::int8_t> buckets(realizations.size(), 0);
  TaskOptions task_options;
  task_options.timeout = options_.task_timeout;
  task_options.max_retries = options_.max_retries;
  IsolatedRunResult run = pool_.for_each_isolated(
      realizations.size(), options_.chunk,
      [&](std::size_t i, unsigned /*attempt*/, const CancellationToken& token) {
        token.poll("ensemble-count");
        buckets[i] = static_cast<std::int8_t>(outcome(realizations[i]));
      },
      task_options);
  fold_guard_result(run);

  EnsembleReport report;
  report.attempted = attempted;
  report.retries = generation.retries + run.retries;
  report.failures = std::move(generation.failures);

  std::vector<bool> failed(realizations.size(), false);
  for (const TaskFailure& f : run.failures) {
    failed[f.index] = true;
    report.failures.push_back(
        make_failure_record(f, realizations[f.index].index, 0));
  }
  std::sort(report.failures.begin(), report.failures.end(),
            [](const FailureRecord& a, const FailureRecord& b) {
              return a.realization < b.realization;
            });

  for (std::size_t i = 0; i < realizations.size(); ++i) {
    if (failed[i]) continue;
    ++report.counts.counts[static_cast<std::size_t>(buckets[i]) &
                           (report.counts.counts.size() - 1)];
    ++report.counts.total;
  }
  report.completed = report.attempted - report.failures.size();

  // Cache only a fully clean run: a stored record asserts "this key's full
  // distribution", and a partial one would poison every warm rerun.
  if (!key.empty() && report.failures.empty()) {
    CachedCounts record;
    record.counts = report.counts.counts;
    record.total = report.counts.total;
    store_.store(key, record);
  }
  return report;
}

ResumableReport EnsembleRunner::run_resumable(
    const surge::RealizationEngine& engine, const SweepSpec& spec,
    const MultiOutcomeFn& outcome, const CheckpointOptions& ckpt,
    CancellationToken* interrupt) {
  ResumableReport report;
  const std::size_t nseries = spec.series.size();
  report.series.assign(nseries, EnsembleReport{});
  if (nseries == 0) return report;

  SweepProgress progress;
  progress.series.assign(nseries, SeriesCounts{});

  // The journal is optional and soft: an empty dir means a plain sweep,
  // and any durable-write failure downgrades to one mid-flight.
  std::optional<SweepJournal> journal;
  bool journal_on = false;
  if (!ckpt.dir.empty()) {
    journal.emplace(ckpt, spec);
    if (ckpt.resume) report.resume = journal->load(progress);
    const bool cold = report.resume.status != ResumeStatus::kResumed;
    journal_on = journal->begin(progress, cold);
  }
  report.restored = progress.completed();

  const std::uint64_t seed = engine.config().base_seed;
  const std::uint64_t interval =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(ckpt.interval));
  // Same chunking as generate_guarded: one realization is the expensive
  // unit (storm + surge solve).
  const std::size_t chunk = std::max<std::size_t>(1, options_.chunk / 8);
  TaskOptions task_options;
  task_options.timeout = options_.task_timeout;
  task_options.max_retries = options_.max_retries;

  // Walk the MISSING set in ascending slices of `interval` realizations.
  // Each slice is generated + classified in parallel, folded in ascending
  // index order (bit-identity at any --jobs), then journaled as one
  // record. Interruption is honored at slice boundaries only: the previous
  // slice's record is already fsync'd, so there is nothing left to flush.
  for (const auto& [gap_begin, gap_end] : progress.missing(spec.count)) {
    for (std::uint64_t b = gap_begin; b < gap_end && !report.interrupted;
         b += interval) {
      if (interrupt != nullptr && interrupt->cancelled()) {
        report.interrupted = true;
        break;
      }
      const std::uint64_t e = std::min<std::uint64_t>(b + interval, gap_end);
      const std::size_t n = static_cast<std::size_t>(e - b);

      obs::Span slice_span("ensemble.slice");
      obs::ScopedTimer slice_timer(ensemble_metrics().slice_us);
      std::vector<std::int8_t> buckets(n * nseries, 0);
      IsolatedRunResult run = pool_.for_each_isolated(
          n, chunk,
          [&](std::size_t k, unsigned attempt,
              const CancellationToken& token) {
            const std::uint64_t index = b + k;
            // Identical injection surface to generate_guarded: the
            // resumable path must quarantine the SAME indices CT_FAULT
            // quarantines in a plain guarded run.
            if (fault_.throw_rule.fires(index, attempt)) {
              throw util::Error(util::ErrorCode::kFaultInjected,
                                "fault-injection",
                                "injected realization failure", index, seed);
            }
            if (fault_.delay_rule.fires(index, attempt)) {
              cooperative_delay(fault_.delay, token);
            }
            surge::HurricaneRealization r = engine.run(index);
            if (fault_.nan_rule.fires(index, attempt)) {
              r.max_shoreline_wse_m =
                  std::numeric_limits<double>::quiet_NaN();
              surge::validate_realization(r, seed);
            }
            token.poll("ensemble-resumable");
            // One generation, K classifications: a quarantined index is
            // quarantined in every series.
            for (std::size_t s = 0; s < nseries; ++s) {
              buckets[k * nseries + s] =
                  static_cast<std::int8_t>(outcome(s, r));
            }
          },
          task_options);
      fold_guard_result(run);

      std::vector<bool> failed(n, false);
      std::vector<FailureRecord> slice_failures;
      slice_failures.reserve(run.failures.size());
      for (const TaskFailure& f : run.failures) {
        failed[f.index] = true;
        slice_failures.push_back(make_failure_record(
            f, b + static_cast<std::uint64_t>(f.index), seed));
      }
      std::sort(slice_failures.begin(), slice_failures.end(),
                [](const FailureRecord& x, const FailureRecord& y) {
                  return x.realization < y.realization;
                });

      std::vector<SeriesCounts> delta(nseries, SeriesCounts{});
      for (std::size_t k = 0; k < n; ++k) {
        if (failed[k]) continue;
        for (std::size_t s = 0; s < nseries; ++s) {
          ++delta[s][static_cast<std::size_t>(buckets[k * nseries + s]) &
                     (delta[s].size() - 1)];
        }
      }

      progress.merge_range(b, e);
      for (std::size_t s = 0; s < nseries; ++s) {
        for (std::size_t c = 0; c < delta[s].size(); ++c) {
          progress.series[s][c] += delta[s][c];
        }
      }
      progress.failures.insert(progress.failures.end(),
                               slice_failures.begin(), slice_failures.end());
      progress.retries += run.retries;
      report.executed += n;

      if (journal_on) {
        journal_on = journal->append(b, e, delta, slice_failures,
                                     run.retries, progress);
      }

      if (ckpt.on_progress) {
        SweepProgressEvent event;
        event.done = progress.completed();
        event.total = spec.count;
        event.quarantined = progress.failures.size();
        event.retries = progress.retries;
        ckpt.on_progress(event);
      }
    }
    if (report.interrupted) break;
  }

  if (journal) {
    if (!report.interrupted && journal_on) {
      journal->finish();
    } else {
      // Leave the files for the next --resume.
      journal->close();
    }
    report.checkpoints = journal->writes();
  }

  // Restored failures live inside `done` ranges, which interleave with the
  // gaps this run filled — re-sort so every series ledger is ascending.
  std::sort(progress.failures.begin(), progress.failures.end(),
            [](const FailureRecord& x, const FailureRecord& y) {
              return x.realization < y.realization;
            });
  const std::uint64_t attempted = progress.completed();
  for (std::size_t s = 0; s < nseries; ++s) {
    EnsembleReport& r = report.series[s];
    r.counts.counts = progress.series[s];
    r.counts.total = 0;
    for (const std::uint64_t c : progress.series[s]) r.counts.total += c;
    r.failures = progress.failures;
    r.retries = progress.retries;
    r.attempted = static_cast<std::size_t>(attempted);
    r.completed = static_cast<std::size_t>(attempted) - progress.failures.size();
  }
  return report;
}

std::string EnsembleRunner::job_key(const scada::Configuration& config,
                                    threat::ThreatScenario scenario,
                                    std::string_view attacker_tag,
                                    std::string_view realization_set_digest) {
  util::Digest d;
  d.str("ct-job").i64(ResultStore::kFormatVersion);
  digest_configuration(d, config);
  d.i64(static_cast<int>(scenario));
  d.str(attacker_tag);
  d.str(realization_set_digest);
  return d.hex();
}

std::string EnsembleRunner::digest_realizations(
    const std::vector<surge::HurricaneRealization>& realizations) {
  util::Digest d;
  d.str("ct-realization-set").u64(realizations.size());
  for (const surge::HurricaneRealization& r : realizations) {
    digest_realization(d, r);
  }
  return d.hex();
}

std::string EnsembleRunner::digest_engine_batch(
    const surge::RealizationEngine& engine, std::size_t count) {
  util::Digest d;
  d.str("ct-engine-batch").u64(count);
  digest_realization_config(d, engine.config());
  // The config alone does not identify the inputs: two engines with equal
  // configs but different terrains (or different mesh-derived precompute)
  // must never share cached results.
  terrain::digest_terrain(engine.terrain(), d);
  engine.bindings().digest_into(d);
  d.u64(engine.assets().size());
  for (const surge::ExposedAsset& a : engine.assets()) {
    d.str(a.id)
        .f64(a.location.lat_deg)
        .f64(a.location.lon_deg)
        .f64(a.ground_elevation_m)
        .i64(static_cast<int>(a.exposure_class));
  }
  // Defense in depth against a RealizationConfig field missing above: the
  // first realization's full content responds to most knobs.
  if (count > 0) digest_realization(d, engine.run(0));
  return d.hex();
}

}  // namespace ct::runtime
