#include "runtime/ensemble_runner.h"

#include <algorithm>

#include "terrain/terrain.h"
#include "util/digest.h"

namespace ct::runtime {

namespace {

ResultStoreOptions store_options(const EnsembleOptions& o) {
  ResultStoreOptions s;
  s.memory_entries = o.memory_entries;
  s.disk = o.cache && o.disk_cache;
  s.disk_dir = o.cache_dir;
  return s;
}

void digest_impact(util::Digest& d, const surge::AssetImpact& impact) {
  d.str(impact.asset_id)
      .boolean(impact.failed)
      .f64(impact.inundation_depth_m)
      .boolean(impact.wind_failed);
}

void digest_realization(util::Digest& d,
                        const surge::HurricaneRealization& r) {
  d.u64(r.index).f64(r.peak_wind_ms).f64(r.max_shoreline_wse_m);
  d.u64(r.impacts.size());
  for (const surge::AssetImpact& impact : r.impacts) digest_impact(d, impact);
}

void digest_configuration(util::Digest& d, const scada::Configuration& c) {
  d.str(c.name)
      .i64(static_cast<int>(c.style))
      .i64(c.intrusion_tolerance_f)
      .i64(c.proactive_recovery_k)
      .boolean(c.active_multisite)
      .i64(c.min_active_sites);
  d.u64(c.sites.size());
  for (const scada::ControlSite& s : c.sites) {
    d.str(s.asset_id)
        .i64(static_cast<int>(s.role))
        .i64(s.replicas)
        .boolean(s.hot);
  }
}

// Every knob of the realization pipeline. If you add a field to any of
// these structs, add it here too — a missed field would let the disk cache
// return results for the OLD semantics. The probe realization mixed into
// digest_engine_batch() is defense in depth, not a substitute.
void digest_realization_config(util::Digest& d,
                               const surge::RealizationConfig& c) {
  d.f64(c.mesh.shore_spacing_m)
      .f64(c.mesh.cross_shore_spacing_m)
      .f64(c.mesh.offshore_extent_m)
      .f64(c.mesh.inland_extent_m);
  d.f64(c.surge.dt_s)
      .f64(c.surge.wind_setup_scale_m)
      .f64(c.surge.wind_setup_exponent)
      .f64(c.surge.wave_setup_per_ms)
      .f64(c.surge.min_depth_m)
      .f64(c.surge.max_considered_distance_m)
      .f64(c.surge.wind_options.surface_wind_factor)
      .f64(c.surge.wind_options.inflow_angle_deg)
      .f64(c.surge.wind_options.translation_fraction);
  d.f64(c.inundation.decay_length_m).f64(c.inundation.failure_threshold_m);
  const storm::TrackEnsembleConfig& e = c.ensemble;
  d.f64(e.base_aim.lat_deg)
      .f64(e.base_aim.lon_deg)
      .f64(e.base_heading_deg)
      .f64(e.approach_distance_m)
      .f64(e.departure_distance_m)
      .f64(e.forward_speed_ms)
      .f64(e.forward_speed_jitter_ms)
      .f64(e.cross_track_sigma_m)
      .f64(e.heading_sigma_deg)
      .f64(e.pressure_deficit_pa)
      .f64(e.pressure_deficit_sigma_pa)
      .f64(e.rmax_m)
      .f64(e.rmax_sigma_m)
      .f64(e.rmax_min_m)
      .f64(e.rmax_max_m)
      .f64(e.holland_b)
      .f64(e.holland_b_sigma)
      .f64(e.fix_interval_s)
      .f64(e.ambient_pressure_pa);
  d.boolean(c.harbor.enabled)
      .f64(c.harbor.ray_length_m)
      .f64(c.harbor.ray_step_m)
      .f64(c.harbor.ray_clearance_m)
      .f64(c.harbor.amplification);
  d.boolean(c.fragility.enabled)
      .f64(c.fragility.substation.median_wind_ms)
      .f64(c.fragility.substation.beta)
      .f64(c.fragility.power_plant.median_wind_ms)
      .f64(c.fragility.power_plant.beta)
      .f64(c.fragility.scan_dt_s);
  d.f64(c.smoothing_band_m)
      .i64(c.smoothing_passes)
      .i64(c.alongshore_window)
      .f64(c.sea_level_offset_m)
      .u64(c.base_seed);
}

}  // namespace

EnsembleRunner::EnsembleRunner(EnsembleOptions options)
    : options_(options), pool_(options.jobs),
      store_(store_options(options_)) {
  if (options_.chunk == 0) options_.chunk = 1;
}

EnsembleCounts EnsembleRunner::count_outcomes(const RealizationsFn& realizations,
                                              const OutcomeFn& outcome,
                                              const std::string& key) {
  const bool use_cache = options_.cache && !key.empty();
  if (use_cache) {
    if (const auto cached = store_.lookup(key)) {
      EnsembleCounts hit;
      hit.counts = cached->counts;
      hit.total = cached->total;
      hit.from_cache = true;
      return hit;
    }
  }
  return count_fresh(realizations(), outcome, use_cache ? key : std::string());
}

EnsembleCounts EnsembleRunner::count_outcomes(
    const std::vector<surge::HurricaneRealization>& realizations,
    const OutcomeFn& outcome, const std::string& key) {
  const bool use_cache = options_.cache && !key.empty();
  if (use_cache) {
    if (const auto cached = store_.lookup(key)) {
      EnsembleCounts hit;
      hit.counts = cached->counts;
      hit.total = cached->total;
      hit.from_cache = true;
      return hit;
    }
  }
  return count_fresh(realizations, outcome, use_cache ? key : std::string());
}

EnsembleCounts EnsembleRunner::count_fresh(
    const std::vector<surge::HurricaneRealization>& realizations,
    const OutcomeFn& outcome, const std::string& key) {
  EnsembleCounts fresh = pool_.map_reduce(
      realizations.size(), options_.chunk, EnsembleCounts{},
      [&](std::size_t begin, std::size_t end) {
        EnsembleCounts partial;
        for (std::size_t i = begin; i < end; ++i) {
          const int bucket = outcome(realizations[i]);
          ++partial.counts[static_cast<std::size_t>(bucket) &
                           (partial.counts.size() - 1)];
          ++partial.total;
        }
        return partial;
      },
      [](EnsembleCounts acc, EnsembleCounts part) {
        for (std::size_t i = 0; i < acc.counts.size(); ++i) {
          acc.counts[i] += part.counts[i];
        }
        acc.total += part.total;
        return acc;
      });

  if (!key.empty()) {
    CachedCounts record;
    record.counts = fresh.counts;
    record.total = fresh.total;
    store_.store(key, record);
  }
  return fresh;
}

std::vector<surge::HurricaneRealization> EnsembleRunner::generate(
    const surge::RealizationEngine& engine, std::size_t count) {
  std::vector<surge::HurricaneRealization> out(count);
  // Generation chunks are larger than analysis chunks: one realization is
  // the expensive unit (storm + surge solve), so 1-4 per task suffices.
  const std::size_t chunk =
      std::max<std::size_t>(1, options_.chunk / 8);
  pool_.parallel_for_ranges(count, chunk,
                            [&](std::size_t begin, std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                out[i] = engine.run(
                                    static_cast<std::uint64_t>(i));
                              }
                            });
  return out;
}

std::string EnsembleRunner::job_key(const scada::Configuration& config,
                                    threat::ThreatScenario scenario,
                                    std::string_view attacker_tag,
                                    std::string_view realization_set_digest) {
  util::Digest d;
  d.str("ct-job").i64(ResultStore::kFormatVersion);
  digest_configuration(d, config);
  d.i64(static_cast<int>(scenario));
  d.str(attacker_tag);
  d.str(realization_set_digest);
  return d.hex();
}

std::string EnsembleRunner::digest_realizations(
    const std::vector<surge::HurricaneRealization>& realizations) {
  util::Digest d;
  d.str("ct-realization-set").u64(realizations.size());
  for (const surge::HurricaneRealization& r : realizations) {
    digest_realization(d, r);
  }
  return d.hex();
}

std::string EnsembleRunner::digest_engine_batch(
    const surge::RealizationEngine& engine, std::size_t count) {
  util::Digest d;
  d.str("ct-engine-batch").u64(count);
  digest_realization_config(d, engine.config());
  // The config alone does not identify the inputs: two engines with equal
  // configs but different terrains (or different mesh-derived precompute)
  // must never share cached results.
  terrain::digest_terrain(engine.terrain(), d);
  engine.bindings().digest_into(d);
  d.u64(engine.assets().size());
  for (const surge::ExposedAsset& a : engine.assets()) {
    d.str(a.id)
        .f64(a.location.lat_deg)
        .f64(a.location.lon_deg)
        .f64(a.ground_elevation_m)
        .i64(static_cast<int>(a.exposure_class));
  }
  // Defense in depth against a RealizationConfig field missing above: the
  // first realization's full content responds to most knobs.
  if (count > 0) digest_realization(d, engine.run(0));
  return d.hex();
}

}  // namespace ct::runtime
