#include "runtime/task_pool.h"

#include <algorithm>
#include <iterator>

#include "obs/metrics.h"
#include "util/error.h"

namespace ct::runtime {

namespace {
/// Sentinel "self" for threads without an own deque (submitters): steal only.
constexpr std::size_t kNoOwnDeque = static_cast<std::size_t>(-1);

/// Scheduling telemetry: task/steal/backpressure counts plus the peak
/// instantaneous queue depth observed at batch submission.
struct PoolMetrics {
  obs::Counter tasks{"pool.tasks"};
  obs::Counter steals{"pool.steals"};
  obs::Counter inline_runs{"pool.inline_runs"};
  obs::Gauge queue_depth_peak{"pool.queue_depth_peak"};
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}
}  // namespace

CancellationToken::CancellationToken(std::chrono::milliseconds timeout) {
  if (timeout.count() > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() + timeout;
  }
}

bool CancellationToken::cancelled() const noexcept {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

void CancellationToken::poll(std::string_view origin) const {
  if (cancelled_.load(std::memory_order_acquire)) {
    throw util::Error(util::ErrorCode::kCancelled, origin,
                      "cancellation requested");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    throw util::Error(util::ErrorCode::kTimeout, origin,
                      "cooperative watchdog deadline expired");
  }
}

TaskPool::TaskPool(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1) return;  // inline pool: no workers, no queues
  deques_.resize(threads);
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool TaskPool::try_pop(std::size_t self, Task& out) {
  if (self != kNoOwnDeque && !deques_[self].empty()) {
    out = deques_[self].back();  // own work LIFO: the freshest, warmest chunk
    deques_[self].pop_back();
    return true;
  }
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    if (i == self || deques_[i].empty()) continue;
    out = deques_[i].front();  // steal FIFO: the oldest, coarsest chunk
    deques_[i].pop_front();
    pool_metrics().steals.inc();
    return true;
  }
  return false;
}

void TaskPool::run_task(Task& task) noexcept {
  pool_metrics().tasks.inc();
  std::exception_ptr error;
  try {
    (*task.batch->fn)(task.begin, task.end);
  } catch (...) {
    error = std::current_exception();
  }
  bool done = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !task.batch->error) task.batch->error = error;
    done = --task.batch->remaining == 0;
  }
  if (done) done_cv_.notify_all();
}

void TaskPool::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    Task task;
    if (try_pop(self, task)) {
      lock.unlock();
      run_task(task);
      lock.lock();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

void TaskPool::parallel_for_ranges(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t chunks = (n + chunk - 1) / chunk;

  if (workers_.empty() || chunks == 1) {
    // The serial path IS the parallel path at chunk granularity: same
    // boundaries, same order, exceptions propagate directly.
    for (std::size_t c = 0; c < chunks; ++c) {
      fn(c * chunk, std::min(n, (c + 1) * chunk));
    }
    return;
  }

  Batch batch;
  batch.fn = &fn;
  batch.remaining = chunks;

  std::unique_lock<std::mutex> lock(mutex_);
  for (std::size_t c = 0; c < chunks; ++c) {
    Task task{&batch, c * chunk, std::min(n, (c + 1) * chunk)};
    if (deques_[next_victim_].size() >= kDequeCapacity) {
      // Bounded queues: instead of growing, apply backpressure by doing
      // the work ourselves right now.
      pool_metrics().inline_runs.inc();
      lock.unlock();
      run_task(task);
      lock.lock();
      continue;
    }
    deques_[next_victim_].push_back(task);
    next_victim_ = (next_victim_ + 1) % deques_.size();
  }
  if (obs::enabled()) {
    std::size_t depth = 0;
    for (const auto& d : deques_) depth += d.size();
    pool_metrics().queue_depth_peak.max(depth);
  }
  lock.unlock();
  work_cv_.notify_all();

  // Help until our batch drains: makes nested calls deadlock-free and the
  // submitter a productive participant rather than a blocked thread.
  lock.lock();
  while (batch.remaining > 0) {
    Task task;
    if (try_pop(kNoOwnDeque, task)) {
      lock.unlock();
      run_task(task);
      lock.lock();
    } else {
      done_cv_.wait(lock);
    }
  }
  const std::exception_ptr error = batch.error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void TaskPool::parallel_for_each(std::size_t n, std::size_t chunk,
                                 const std::function<void(std::size_t)>& fn) {
  parallel_for_ranges(n, chunk, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

IsolatedRunResult TaskPool::for_each_isolated(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, unsigned, const CancellationToken&)>&
        fn,
    const TaskOptions& options) {
  IsolatedRunResult result;
  std::mutex ledger_mutex;  // guards result between concurrent chunks

  parallel_for_ranges(n, chunk, [&](std::size_t begin, std::size_t end) {
    // Chunk-local ledger: one lock per chunk, not per failure.
    std::vector<TaskFailure> failures;
    std::uint64_t retries = 0;
    for (std::size_t i = begin; i < end; ++i) {
      for (unsigned attempt = 1;; ++attempt) {
        // Fresh token per attempt: the watchdog deadline restarts, so a
        // retry is judged on its own time budget.
        const CancellationToken token(options.timeout);
        try {
          fn(i, attempt, token);
          retries += attempt - 1;
          break;
        } catch (...) {
          if (attempt <= options.max_retries) continue;
          failures.push_back(TaskFailure{i, attempt, std::current_exception()});
          retries += attempt - 1;
          break;
        }
      }
    }
    if (!failures.empty() || retries != 0) {
      std::lock_guard<std::mutex> lock(ledger_mutex);
      result.retries += retries;
      result.failures.insert(result.failures.end(),
                             std::make_move_iterator(failures.begin()),
                             std::make_move_iterator(failures.end()));
    }
  });

  // Chunks complete in scheduling order; normalize so the ledger is a pure
  // function of fn's behavior, not of the thread count.
  std::sort(result.failures.begin(), result.failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
  return result;
}

}  // namespace ct::runtime
