#include "core/chaos.h"

#include <algorithm>
#include <utility>

#include "core/evaluator.h"
#include "threat/attacker.h"
#include "util/log.h"
#include "util/rng.h"

namespace ct::core {

sim::DesOptions chaos_des_options() {
  sim::DesOptions options;
  options.horizon_s = 600.0;
  options.attack_time_s = 120.0;
  options.settle_window_s = 150.0;
  options.orange_gap_s = 70.0;
  options.request_interval_s = 2.0;
  options.pb.activation_delay_s = 120.0;
  options.pb.controller_outage_threshold_s = 15.0;
  options.pb.controller_check_interval_s = 3.0;
  options.bft.activation_delay_s = 120.0;
  options.bft.view_timeout_s = 8.0;
  options.bft.recovery_period_s = 60.0;
  options.bft.recovery_duration_s = 10.0;
  options.liveness_gap_s = 65.0;
  return options;
}

ChaosRunner::ChaosRunner(ChaosOptions options) : options_(std::move(options)) {}

namespace {

threat::SystemState clean_attacked_state(const scada::Configuration& config,
                                         threat::ThreatScenario scenario) {
  threat::SystemState base;
  base.site_status.assign(config.sites.size(), threat::SiteStatus::kUp);
  base.intrusions.assign(config.sites.size(), 0);
  return threat::GreedyWorstCaseAttacker{}.attack(
      config, base, threat::capability_for(scenario));
}

/// Per-worker simulator/network arena: a sweep runs hundreds of plans
/// back-to-back, and reusing the engine's slabs and pools across them is
/// where the warmup cost amortizes. thread_local because plans run on the
/// ensemble pool's workers; each run still starts from reset() state.
sim::DesArena& plan_arena() {
  thread_local sim::DesArena arena;
  return arena;
}

}  // namespace

bool ChaosRunner::fails(const scada::Configuration& config,
                        const threat::SystemState& attacked,
                        threat::OperationalState expected,
                        const sim::FaultPlan& plan) const {
  const sim::ScadaDes des(config, options_.des);
  const sim::DesOutcome outcome = des.run(attacked, plan, plan_arena());
  return outcome.observed != expected || !outcome.invariant_violations.empty();
}

sim::FaultPlan ChaosRunner::shrink(const scada::Configuration& config,
                                   const threat::SystemState& attacked,
                                   threat::OperationalState expected,
                                   const sim::FaultPlan& plan) const {
  sim::FaultPlan minimal = plan;
  // Greedy event removal to a fixed point: drop any event whose removal
  // keeps the failure, then try zeroing the message impairments.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < minimal.events.size(); ++i) {
      sim::FaultPlan candidate = minimal;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (fails(config, attacked, expected, candidate)) {
        minimal = std::move(candidate);
        changed = true;
        break;  // restart: indices shifted
      }
    }
  }
  {
    sim::FaultPlan candidate = minimal;
    candidate.duplicate_probability = 0.0;
    if (fails(config, attacked, expected, candidate)) minimal = candidate;
  }
  {
    sim::FaultPlan candidate = minimal;
    candidate.reorder_probability = 0.0;
    candidate.reorder_window_s = 0.0;
    if (fails(config, attacked, expected, candidate)) minimal = candidate;
  }
  {
    sim::FaultPlan candidate = minimal;
    candidate.transfer_loss_probability = 0.0;
    if (fails(config, attacked, expected, candidate)) minimal = candidate;
  }
  return minimal;
}

ChaosReport ChaosRunner::sweep(const scada::Configuration& config) const {
  return sweep_impl(config, nullptr);
}

ChaosReport ChaosRunner::sweep(const scada::Configuration& config,
                               runtime::EnsembleRunner& runtime) const {
  return sweep_impl(config, &runtime.pool());
}

ChaosReport ChaosRunner::sweep_impl(const scada::Configuration& config,
                                    runtime::TaskPool* pool) const {
  ChaosReport report;
  report.config_name = config.name;
  const sim::ScadaDes des(config, options_.des);

  std::vector<int> nodes_per_site;
  for (const scada::ControlSite& site : config.sites) {
    nodes_per_site.push_back(site.replicas);
  }
  // Faults must settle before the availability window starts, or benign
  // hiccups would legitimately change the color.
  const double window_to = std::max(
      options_.shape.window_from_s + 1.0,
      options_.des.horizon_s - options_.des.settle_window_s - 60.0);
  sim::BenignPlanShape shape = options_.shape;
  shape.window_to_s = window_to;
  sim::RestartPlanShape restart_shape = options_.restart_shape;
  restart_shape.window_to_s =
      std::max(restart_shape.window_from_s + 1.0, window_to);

  // Each plan is a pure function of (base_seed, plan index) and every DES
  // run builds its state locally, so plans are the unit of parallelism;
  // folding per-plan results in plan order keeps the report identical to
  // the serial sweep.
  struct PlanResult {
    int runs = 0;
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    int rejoins = 0;
    std::vector<ChaosFinding> findings;
  };
  const std::size_t plans = static_cast<std::size_t>(
      std::max(0, options_.plans));
  std::vector<PlanResult> per_plan(plans);

  const util::Rng base_rng(options_.base_seed, "chaos");
  const auto run_plan = [&](std::size_t p) {
    PlanResult& slot = per_plan[p];
    util::Rng plan_rng =
        base_rng.child("plan", static_cast<std::uint64_t>(p));
    const sim::FaultPlan plan =
        options_.plan_style == ChaosOptions::PlanStyle::kRestartHeavy
            ? sim::random_restart_plan(restart_shape, nodes_per_site, plan_rng)
            : sim::random_benign_plan(shape, nodes_per_site, plan_rng);
    for (const threat::ThreatScenario scenario : options_.scenarios) {
      const threat::SystemState attacked =
          clean_attacked_state(config, scenario);
      const threat::OperationalState expected = evaluate(config, attacked);
      const sim::DesOutcome outcome = des.run(attacked, plan, plan_arena());
      ++slot.runs;
      slot.drops += outcome.drops.total();
      slot.duplicates += outcome.duplicates;
      slot.rejoins += outcome.rejoins;
      if (outcome.observed == expected &&
          outcome.invariant_violations.empty()) {
        continue;
      }
      CT_LOG(kWarn, "chaos")
          << config.name << " seed " << p << " scenario "
          << threat::scenario_name(scenario) << ": expected "
          << threat::state_name(expected) << ", observed "
          << threat::state_name(outcome.observed) << ", "
          << outcome.invariant_violations.size()
          << " invariant violation(s) — shrinking";
      ChaosFinding finding;
      finding.config_name = config.name;
      finding.plan_seed = static_cast<std::uint64_t>(p);
      finding.scenario = scenario;
      finding.expected = expected;
      finding.observed = outcome.observed;
      finding.violations = outcome.invariant_violations;
      finding.minimal_plan = shrink(config, attacked, expected, plan);
      finding.replay_schedule = finding.minimal_plan.to_schedule();
      slot.findings.push_back(std::move(finding));
    }
  };

  // Per-plan containment: one throwing plan (a DES bug, an injected fault)
  // must cost that plan, not the sweep. No retries — the DES is a pure
  // function of the plan, so a second attempt cannot heal anything.
  if (pool != nullptr) {
    const runtime::IsolatedRunResult isolated = pool->for_each_isolated(
        plans, 1,
        [&](std::size_t p, unsigned /*attempt*/,
            const runtime::CancellationToken& /*token*/) { run_plan(p); });
    for (const runtime::TaskFailure& f : isolated.failures) {
      report.plan_failures.push_back(runtime::make_failure_record(
          f, static_cast<std::uint64_t>(f.index), options_.base_seed));
    }
  } else {
    for (std::size_t p = 0; p < plans; ++p) {
      try {
        run_plan(p);
      } catch (...) {
        runtime::TaskFailure f{p, 1, std::current_exception()};
        report.plan_failures.push_back(runtime::make_failure_record(
            f, static_cast<std::uint64_t>(p), options_.base_seed));
      }
    }
  }

  for (PlanResult& slot : per_plan) {
    ++report.plans_run;
    report.runs += slot.runs;
    report.total_drops += slot.drops;
    report.total_duplicates += slot.duplicates;
    report.total_rejoins += slot.rejoins;
    for (ChaosFinding& finding : slot.findings) {
      report.findings.push_back(std::move(finding));
    }
  }
  return report;
}

std::vector<ChaosReport> ChaosRunner::sweep_all(
    const std::vector<scada::Configuration>& configs) const {
  std::vector<ChaosReport> reports;
  reports.reserve(configs.size());
  for (const scada::Configuration& config : configs) {
    reports.push_back(sweep(config));
  }
  return reports;
}

std::vector<ChaosReport> ChaosRunner::sweep_all(
    const std::vector<scada::Configuration>& configs,
    runtime::EnsembleRunner& runtime) const {
  std::vector<ChaosReport> reports;
  reports.reserve(configs.size());
  for (const scada::Configuration& config : configs) {
    reports.push_back(sweep(config, runtime));
  }
  return reports;
}

ChaosFinding ChaosRunner::compromise_probe(
    const scada::Configuration& config) const {
  threat::SystemState clean;
  clean.site_status.assign(config.sites.size(), threat::SiteStatus::kUp);
  clean.intrusions.assign(config.sites.size(), 0);
  const threat::OperationalState expected = evaluate(config, clean);

  // One more intrusion than the architecture tolerates, spread across the
  // hot sites' lowest node indices (the worst case the paper considers),
  // plus a decoy crash the shrinker should eliminate.
  sim::FaultPlan plan;
  int remaining = config.safety_threshold();
  for (std::size_t s = 0; s < config.sites.size() && remaining > 0; ++s) {
    if (!config.sites[s].hot) continue;
    const int here = std::min(remaining, config.sites[s].replicas);
    for (int node = 0; node < here; ++node) {
      sim::FaultEvent e;
      e.kind = sim::FaultKind::kCompromise;
      e.at = options_.des.attack_time_s;
      e.node = {static_cast<int>(s), node};
      plan.events.push_back(e);
    }
    remaining -= here;
  }
  sim::FaultEvent decoy;
  decoy.kind = sim::FaultKind::kCrash;
  decoy.at = options_.des.attack_time_s / 2.0;
  decoy.duration = 5.0;
  decoy.node = {0, config.sites[0].replicas - 1};
  plan.events.push_back(decoy);

  const sim::ScadaDes des(config, options_.des);
  const sim::DesOutcome outcome = des.run(clean, plan, plan_arena());

  ChaosFinding finding;
  finding.config_name = config.name;
  finding.scenario = threat::ThreatScenario::kHurricane;
  finding.expected = expected;
  finding.observed = outcome.observed;
  finding.violations = outcome.invariant_violations;
  finding.minimal_plan = shrink(config, clean, expected, plan);
  finding.replay_schedule = finding.minimal_plan.to_schedule();
  return finding;
}

}  // namespace ct::core
