#include "core/report.h"

#include <array>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/csv.h"
#include "util/json_writer.h"
#include "util/strings.h"

namespace ct::core {

namespace {

using threat::OperationalState;

/// The paper's published probabilities. The hurricane-only flood
/// probability of the Honolulu control center is 9.5% in the paper's
/// ADCIRC ensemble; every profile below is built from that number exactly
/// as the paper's Figures 6-11 report.
const std::vector<PaperProfile>& profiles_fig6() {
  static const std::vector<PaperProfile> v = {
      {"2", 0.905, 0.0, 0.095, 0.0},    {"2-2", 0.905, 0.0, 0.095, 0.0},
      {"6", 0.905, 0.0, 0.095, 0.0},    {"6-6", 0.905, 0.0, 0.095, 0.0},
      {"6+6+6", 0.905, 0.0, 0.095, 0.0}};
  return v;
}

const std::vector<PaperProfile>& profiles_fig7() {
  static const std::vector<PaperProfile> v = {
      {"2", 0.0, 0.0, 0.095, 0.905},    {"2-2", 0.0, 0.0, 0.095, 0.905},
      {"6", 0.905, 0.0, 0.095, 0.0},    {"6-6", 0.905, 0.0, 0.095, 0.0},
      {"6+6+6", 0.905, 0.0, 0.095, 0.0}};
  return v;
}

const std::vector<PaperProfile>& profiles_fig8() {
  static const std::vector<PaperProfile> v = {
      {"2", 0.0, 0.0, 1.0, 0.0},        {"2-2", 0.0, 0.905, 0.095, 0.0},
      {"6", 0.0, 0.0, 1.0, 0.0},        {"6-6", 0.0, 0.905, 0.095, 0.0},
      {"6+6+6", 0.905, 0.0, 0.095, 0.0}};
  return v;
}

const std::vector<PaperProfile>& profiles_fig9() {
  static const std::vector<PaperProfile> v = {
      {"2", 0.0, 0.0, 0.095, 0.905},    {"2-2", 0.0, 0.0, 0.095, 0.905},
      {"6", 0.0, 0.0, 1.0, 0.0},        {"6-6", 0.0, 0.905, 0.095, 0.0},
      {"6+6+6", 0.905, 0.0, 0.095, 0.0}};
  return v;
}

// Figures 10-11 use Kahe as the second control center. Kahe is never
// flooded in the paper's realizations, so the 9.5% red mass of the
// primary-backup configurations converts to orange and "6+6+6" becomes
// fully green.
const std::vector<PaperProfile>& profiles_fig10() {
  static const std::vector<PaperProfile> v = {
      {"2", 0.905, 0.0, 0.095, 0.0},    {"2-2", 0.905, 0.095, 0.0, 0.0},
      {"6", 0.905, 0.0, 0.095, 0.0},    {"6-6", 0.905, 0.095, 0.0, 0.0},
      {"6+6+6", 1.0, 0.0, 0.0, 0.0}};
  return v;
}

const std::vector<PaperProfile>& profiles_fig11() {
  static const std::vector<PaperProfile> v = {
      {"2", 0.0, 0.0, 0.095, 0.905},
      // With an always-dry backup there is always a functional server to
      // compromise: "2-2" is gray in every realization.
      {"2-2", 0.0, 0.0, 0.0, 1.0},
      {"6", 0.905, 0.0, 0.095, 0.0},
      {"6-6", 0.905, 0.095, 0.0, 0.0},
      {"6+6+6", 1.0, 0.0, 0.0, 0.0}};
  return v;
}

std::string pct(double p) { return util::format_percent(p, 1); }

}  // namespace

const std::vector<PaperProfile>& paper_expected(std::string_view figure_id) {
  if (figure_id == "fig6") return profiles_fig6();
  if (figure_id == "fig7") return profiles_fig7();
  if (figure_id == "fig8") return profiles_fig8();
  if (figure_id == "fig9") return profiles_fig9();
  if (figure_id == "fig10") return profiles_fig10();
  if (figure_id == "fig11") return profiles_fig11();
  throw std::invalid_argument("paper_expected: unknown figure id: " +
                              std::string(figure_id));
}

std::vector<std::string> paper_figure_ids() {
  return {"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"};
}

util::TextTable profile_table(const std::vector<ScenarioResult>& results) {
  util::TextTable table;
  table.set_columns({"config", "green", "orange", "red", "gray"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  for (const ScenarioResult& r : results) {
    table.add_row({r.config_name,
                   pct(r.outcomes.probability(OperationalState::kGreen)),
                   pct(r.outcomes.probability(OperationalState::kOrange)),
                   pct(r.outcomes.probability(OperationalState::kRed)),
                   pct(r.outcomes.probability(OperationalState::kGray))});
  }
  return table;
}

namespace {
const PaperProfile* find_profile(const std::vector<PaperProfile>& expected,
                                 const std::string& config) {
  for (const PaperProfile& p : expected) {
    if (p.config == config) return &p;
  }
  return nullptr;
}
}  // namespace

util::TextTable comparison_table(const std::vector<ScenarioResult>& results,
                                 const std::vector<PaperProfile>& expected) {
  util::TextTable table;
  table.set_columns({"config", "state", "measured", "paper", "delta"},
                    {util::Align::kLeft, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  bool first_config = true;
  for (const ScenarioResult& r : results) {
    const PaperProfile* p = find_profile(expected, r.config_name);
    if (p == nullptr) continue;
    const std::array<std::pair<OperationalState, double>, 4> rows = {
        {{OperationalState::kGreen, p->green},
         {OperationalState::kOrange, p->orange},
         {OperationalState::kRed, p->red},
         {OperationalState::kGray, p->gray}}};
    bool first = true;
    for (const auto& [state, paper_value] : rows) {
      const double measured = r.outcomes.probability(state);
      if (first && !first_config) table.add_separator();
      table.add_row({first ? r.config_name : "", std::string(state_name(state)),
                     pct(measured), pct(paper_value),
                     util::format_fixed((measured - paper_value) * 100.0, 1) +
                         " pp"});
      first = false;
    }
    first_config = false;
  }
  return table;
}

double max_abs_delta(const std::vector<ScenarioResult>& results,
                     const std::vector<PaperProfile>& expected) {
  double worst = 0.0;
  for (const ScenarioResult& r : results) {
    const PaperProfile* p = find_profile(expected, r.config_name);
    if (p == nullptr) continue;
    worst = std::max(
        worst,
        std::abs(r.outcomes.probability(OperationalState::kGreen) - p->green));
    worst = std::max(worst,
                     std::abs(r.outcomes.probability(OperationalState::kOrange) -
                              p->orange));
    worst = std::max(
        worst,
        std::abs(r.outcomes.probability(OperationalState::kRed) - p->red));
    worst = std::max(
        worst,
        std::abs(r.outcomes.probability(OperationalState::kGray) - p->gray));
  }
  return worst;
}

void write_profiles_csv(std::ostream& out, std::string_view figure_id,
                        const std::vector<ScenarioResult>& results) {
  util::CsvWriter csv(out);
  csv.header({"figure", "config", "scenario", "state", "probability"});
  for (const ScenarioResult& r : results) {
    for (const OperationalState s :
         {OperationalState::kGreen, OperationalState::kOrange,
          OperationalState::kRed, OperationalState::kGray}) {
      csv.field(figure_id)
          .field(r.config_name)
          .field(threat::scenario_name(r.scenario))
          .field(threat::state_name(s))
          .field(r.outcomes.probability(s));
      csv.end_row();
    }
  }
}

void write_profiles_json(std::ostream& out, std::string_view figure_id,
                         const std::vector<ScenarioResult>& results,
                         bool pretty) {
  const std::vector<PaperProfile>* expected = nullptr;
  try {
    expected = &paper_expected(figure_id);
  } catch (const std::invalid_argument&) {
    expected = nullptr;  // custom figure id: no paper reference
  }

  util::JsonWriter json(out, pretty);
  json.begin_object();
  json.kv("figure", figure_id);
  if (!results.empty()) {
    json.kv("scenario", threat::scenario_name(results.front().scenario));
    json.kv("realizations", results.front().outcomes.total());
  }
  json.key("configs").begin_array();
  for (const ScenarioResult& r : results) {
    json.begin_object();
    json.kv("name", r.config_name);
    json.key("measured").begin_object();
    for (const OperationalState s :
         {OperationalState::kGreen, OperationalState::kOrange,
          OperationalState::kRed, OperationalState::kGray}) {
      json.kv(threat::state_name(s), r.outcomes.probability(s));
    }
    json.end_object();
    if (expected != nullptr) {
      if (const PaperProfile* p = find_profile(*expected, r.config_name)) {
        json.key("paper").begin_object();
        json.kv("green", p->green).kv("orange", p->orange);
        json.kv("red", p->red).kv("gray", p->gray);
        json.end_object();
      }
    }
    json.end_object();
  }
  json.end_array();
  if (expected != nullptr) {
    json.kv("max_abs_delta", max_abs_delta(results, *expected));
  }
  json.end_object();
  out << '\n';
}

util::TextTable failure_summary_table(
    const std::vector<ScenarioResult>& results) {
  util::TextTable table;
  table.set_columns(
      {"config", "realization", "seed", "attempts", "code", "origin",
       "message"},
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kLeft, util::Align::kLeft,
       util::Align::kLeft});
  for (const ScenarioResult& r : results) {
    for (const runtime::FailureRecord& f : r.failures) {
      table.add_row({r.config_name, std::to_string(f.realization),
                     std::to_string(f.seed), std::to_string(f.attempts),
                     std::string(util::error_code_name(f.code)), f.origin,
                     f.message});
    }
  }
  return table;
}

int analysis_exit_code(const std::vector<ScenarioResult>& results,
                       bool strict) noexcept {
  bool degraded = false;
  for (const ScenarioResult& r : results) {
    if (r.attempted > 0 && r.completed == 0) return 4;  // nothing survived
    degraded = degraded || r.degraded();
  }
  if (degraded && strict) return 3;
  return 0;
}

int sweep_exit_code(const ResumableAnalysis& analysis, bool strict) noexcept {
  if (analysis.interrupted) return 5;
  return analysis_exit_code(analysis.results, strict);
}

}  // namespace ct::core
