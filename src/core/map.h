// ASCII rendering of the study region: terrain, the SCADA asset topology
// (the paper's Fig. 4), and optionally the flood outcome of one hurricane
// realization. Terminal-native "GIS view" used by the topology_map example
// and handy when defining custom regions.
#pragma once

#include <optional>
#include <string>

#include "scada/asset.h"
#include "surge/realization.h"
#include "terrain/terrain.h"

namespace ct::core {

struct MapOptions {
  int width = 78;    ///< Characters across.
  int height = 36;   ///< Lines down.
  bool legend = true;
  /// Extra margin around the coastline bounding box (m).
  double margin_m = 3000.0;
};

/// Renders the region. Cell glyphs: ocean '~', coastal plain '.', hills
/// '+', mountains '^'. Assets draw as letters (C control center, D data
/// center, P power plant, S substation); when `realization` is given,
/// failed assets render as 'X'. Asset glyphs win over terrain.
std::string render_region_map(
    const terrain::Terrain& terrain, const scada::ScadaTopology& topology,
    const surge::HurricaneRealization* realization = nullptr,
    const MapOptions& options = {});

}  // namespace ct::core
