#include "core/siting.h"

#include <algorithm>
#include <stdexcept>

namespace ct::core {

namespace {

/// Visits every k-combination of indices [0, n).
void for_each_combination(std::size_t n, int k,
                          const std::function<void(const std::vector<std::size_t>&)>& visit) {
  if (k < 0) throw std::invalid_argument("for_each_combination: k < 0");
  std::vector<std::size_t> combo(static_cast<std::size_t>(k));
  const std::function<void(std::size_t, int)> recurse = [&](std::size_t start,
                                                            int depth) {
    if (depth == k) {
      visit(combo);
      return;
    }
    for (std::size_t i = start; i < n; ++i) {
      combo[static_cast<std::size_t>(depth)] = i;
      recurse(i + 1, depth + 1);
    }
  };
  recurse(0, 0);
}

}  // namespace

std::vector<SitingScore> SitingOptimizer::rank(
    const ConfigBuilder& builder, const std::vector<std::string>& candidates,
    int slots, threat::ThreatScenario scenario) {
  if (!builder) throw std::invalid_argument("SitingOptimizer: null builder");
  if (slots < 1 || static_cast<std::size_t>(slots) > candidates.size()) {
    throw std::invalid_argument("SitingOptimizer: bad slot count");
  }

  std::vector<SitingScore> scores;
  for_each_combination(
      candidates.size(), slots, [&](const std::vector<std::size_t>& combo) {
        std::vector<std::string> chosen;
        chosen.reserve(combo.size());
        for (const std::size_t i : combo) chosen.push_back(candidates[i]);

        SitingScore score;
        score.chosen = chosen;
        score.config = builder(chosen);
        const ScenarioResult result = runner_.run(score.config, scenario);
        using threat::OperationalState;
        score.green_probability =
            result.outcomes.probability(OperationalState::kGreen);
        score.orange_probability =
            result.outcomes.probability(OperationalState::kOrange);
        score.red_probability =
            result.outcomes.probability(OperationalState::kRed);
        score.gray_probability =
            result.outcomes.probability(OperationalState::kGray);
        score.expected_badness = result.outcomes.expected_badness();
        scores.push_back(std::move(score));
      });

  std::sort(scores.begin(), scores.end(),
            [](const SitingScore& a, const SitingScore& b) {
              if (a.expected_badness != b.expected_badness) {
                return a.expected_badness < b.expected_badness;
              }
              return a.green_probability > b.green_probability;
            });
  return scores;
}

std::vector<SitingScore> SitingOptimizer::rank_backup_sites(
    const std::string& primary, const std::vector<std::string>& candidates,
    threat::ThreatScenario scenario) {
  std::vector<std::string> pool;
  for (const std::string& c : candidates) {
    if (c != primary) pool.push_back(c);
  }
  return rank(
      [&primary](const std::vector<std::string>& chosen) {
        return scada::make_config_6_6(primary, chosen.at(0));
      },
      pool, 1, scenario);
}

std::vector<SitingScore> SitingOptimizer::rank_site_pairs(
    const std::string& primary, const std::vector<std::string>& candidates,
    threat::ThreatScenario scenario) {
  std::vector<std::string> pool;
  for (const std::string& c : candidates) {
    if (c != primary) pool.push_back(c);
  }
  return rank(
      [&primary](const std::vector<std::string>& chosen) {
        return scada::make_config_6_6_6(primary, chosen.at(0), chosen.at(1));
      },
      pool, 2, scenario);
}

}  // namespace ct::core
