#include "core/restoration.h"

#include <algorithm>
#include <stdexcept>

#include "core/evaluator.h"
#include "threat/attacker.h"
#include "util/stats.h"

namespace ct::core {

namespace {

using threat::OperationalState;
using threat::SiteStatus;
using threat::SystemState;

/// Computes incident costs given concrete per-site restore times (hours).
IncidentCosts costs_with_restore_times(const scada::Configuration& config,
                                       const SystemState& state,
                                       const std::vector<double>& restore_at,
                                       const RestorationModel& model,
                                       double detection_hours) {
  IncidentCosts costs;
  const OperationalState now = evaluate(config, state);

  if (now == OperationalState::kGray) {
    // Incorrect operation until the compromise is detected, then a cleanup
    // outage while the affected masters are rebuilt.
    costs.incorrect_hours = detection_hours;
    costs.downtime_hours = model.compromise_cleanup_hours;
    return costs;
  }
  if (now == OperationalState::kGreen) return costs;
  if (now == OperationalState::kOrange) {
    costs.downtime_hours = model.activation_minutes / 60.0;
    return costs;
  }

  // Red: replay site restorations in time order until the evaluator stops
  // reporting red. Restored sites come back kUp (their intrusions were
  // never effective while the site was down; the compromised-site case is
  // the gray branch above).
  std::vector<std::size_t> order(restore_at.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return restore_at[a] < restore_at[b];
  });

  SystemState future = state;
  for (const std::size_t site : order) {
    if (future.site_status[site] == SiteStatus::kUp) continue;
    future.site_status[site] = SiteStatus::kUp;
    const OperationalState then = evaluate(config, future);
    if (then != OperationalState::kRed) {
      double downtime = restore_at[site];
      if (then == OperationalState::kOrange) {
        // The restored path still needs the cold backup brought online.
        downtime += model.activation_minutes / 60.0;
      }
      costs.downtime_hours = downtime;
      return costs;
    }
  }
  // No restoration path (should not happen: every site eventually
  // restores); treat as the slowest restore.
  costs.downtime_hours =
      restore_at.empty() ? 0.0
                         : *std::max_element(restore_at.begin(),
                                             restore_at.end());
  return costs;
}

std::vector<double> mean_restore_times(const SystemState& state,
                                       const RestorationModel& model) {
  std::vector<double> out(state.site_status.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    switch (state.site_status[i]) {
      case SiteStatus::kUp: out[i] = 0.0; break;
      case SiteStatus::kFlooded: out[i] = model.flood_repair_hours; break;
      case SiteStatus::kIsolated: out[i] = model.isolation_duration_hours; break;
    }
  }
  return out;
}

}  // namespace

IncidentCosts expected_incident_costs(const scada::Configuration& config,
                                      const SystemState& state,
                                      const RestorationModel& model) {
  return costs_with_restore_times(config, state,
                                  mean_restore_times(state, model), model,
                                  model.compromise_detection_hours);
}

IncidentCosts sample_incident_costs(const scada::Configuration& config,
                                    const SystemState& state,
                                    const RestorationModel& model,
                                    util::Rng& rng) {
  std::vector<double> restore(state.site_status.size(), 0.0);
  for (std::size_t i = 0; i < restore.size(); ++i) {
    switch (state.site_status[i]) {
      case SiteStatus::kUp: restore[i] = 0.0; break;
      case SiteStatus::kFlooded:
        restore[i] = rng.exponential(model.flood_repair_hours);
        break;
      case SiteStatus::kIsolated:
        restore[i] = rng.exponential(model.isolation_duration_hours);
        break;
    }
  }
  const double detection = rng.exponential(model.compromise_detection_hours);
  return costs_with_restore_times(config, state, restore, model, detection);
}

namespace {

/// Costs of one realization: the deterministic expectation plus the
/// stochastic downtime draws. Pure in (config, scenario, model, seed,
/// realization index) — the unit of parallelism.
struct RealizationCosts {
  IncidentCosts expected;
  std::vector<double> sampled_downtimes;
};

RealizationCosts realization_costs(
    const scada::Configuration& config,
    const threat::GreedyWorstCaseAttacker& attacker,
    const threat::AttackerCapability& capability,
    const surge::HurricaneRealization& realization, std::size_t index,
    const RestorationModel& model, std::size_t samples_per_realization,
    const util::Rng& base) {
  const SystemState post_disaster = threat::post_disaster_state(
      config, [&](std::string_view asset_id) {
        return realization.asset_failed(std::string(asset_id));
      });
  const SystemState attacked =
      attacker.attack(config, post_disaster, capability);

  RealizationCosts costs;
  costs.expected = expected_incident_costs(config, attacked, model);
  if (samples_per_realization > 0) {
    util::Rng rng = base.child("realization", index);
    costs.sampled_downtimes.reserve(samples_per_realization);
    for (std::size_t s = 0; s < samples_per_realization; ++s) {
      costs.sampled_downtimes.push_back(
          sample_incident_costs(config, attacked, model, rng).downtime_hours);
    }
  } else {
    costs.sampled_downtimes.push_back(costs.expected.downtime_hours);
  }
  return costs;
}

/// Aggregates per-realization costs in realization order (the fold is the
/// same whether the costs were computed serially or on the pool).
RestorationResult fold_costs(const scada::Configuration& config,
                             threat::ThreatScenario scenario,
                             const std::vector<RealizationCosts>& per_realization) {
  RestorationResult result;
  result.config_name = config.name;
  result.scenario = scenario;

  util::RunningStats downtime;
  util::RunningStats incorrect;
  std::vector<double> sampled_downtimes;
  std::size_t with_downtime = 0;
  for (const RealizationCosts& costs : per_realization) {
    downtime.add(costs.expected.downtime_hours);
    incorrect.add(costs.expected.incorrect_hours);
    if (costs.expected.downtime_hours > 0.0) ++with_downtime;
    sampled_downtimes.insert(sampled_downtimes.end(),
                             costs.sampled_downtimes.begin(),
                             costs.sampled_downtimes.end());
  }

  result.expected_downtime_hours = downtime.mean();
  result.expected_incorrect_hours = incorrect.mean();
  result.p95_downtime_hours =
      sampled_downtimes.empty()
          ? 0.0
          : util::exact_quantile(sampled_downtimes, 0.95);
  result.p_any_downtime =
      per_realization.empty()
          ? 0.0
          : static_cast<double>(with_downtime) /
                static_cast<double>(per_realization.size());
  return result;
}

}  // namespace

RestorationResult analyze_restoration(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations,
    const RestorationModel& model, std::size_t samples_per_realization,
    std::uint64_t seed) {
  const threat::GreedyWorstCaseAttacker attacker;
  const threat::AttackerCapability capability =
      threat::capability_for(scenario);
  const util::Rng base(seed, "restoration");

  std::vector<RealizationCosts> per_realization(realizations.size());
  for (std::size_t r = 0; r < realizations.size(); ++r) {
    per_realization[r] =
        realization_costs(config, attacker, capability, realizations[r], r,
                          model, samples_per_realization, base);
  }
  return fold_costs(config, scenario, per_realization);
}

RestorationResult analyze_restoration(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations,
    const RestorationModel& model, runtime::EnsembleRunner& runtime,
    std::size_t samples_per_realization, std::uint64_t seed) {
  const threat::GreedyWorstCaseAttacker attacker;
  const threat::AttackerCapability capability =
      threat::capability_for(scenario);
  const util::Rng base(seed, "restoration");

  std::vector<RealizationCosts> per_realization(realizations.size());
  runtime.pool().parallel_for_each(
      realizations.size(), runtime.options().chunk, [&](std::size_t r) {
        per_realization[r] =
            realization_costs(config, attacker, capability, realizations[r],
                              r, model, samples_per_realization, base);
      });
  return fold_costs(config, scenario, per_realization);
}

}  // namespace ct::core
