// Restoration analysis: converts the paper's color-coded operational
// states into time costs. The paper defines orange as "downtime until the
// cold-backup control center is activated", red as "not operational until
// some system components are repaired, or an attack ends", and gray as
// incorrect operation — this module quantifies each.
//
// Mechanics: every non-functional site carries a restore time (flooded ->
// repair; isolated -> attack ends). Downtime is the earliest instant at
// which, with the returned sites, the Table-I evaluator stops reporting
// red — computed by replaying the evaluator over the sorted restore
// times. Gray contributes "incorrect-operation hours" (until the
// compromise is detected) plus a cleanup outage.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "runtime/ensemble_runner.h"
#include "scada/configuration.h"
#include "surge/realization.h"
#include "threat/scenario.h"
#include "threat/system_state.h"
#include "util/rng.h"

namespace ct::core {

/// Mean time parameters (hours unless noted).
struct RestorationModel {
  /// Cold-backup activation (the orange state), minutes.
  double activation_minutes = 10.0;
  /// Repairing/reoccupying a flooded control site after the hurricane.
  double flood_repair_hours = 96.0;
  /// Duration a site-isolation (resource-intensive DoS) can be sustained.
  double isolation_duration_hours = 18.0;
  /// Time to detect a compromised SCADA master (gray incorrect period).
  double compromise_detection_hours = 24.0;
  /// Outage while rebuilding compromised servers after detection.
  double compromise_cleanup_hours = 6.0;
};

/// Time costs of one incident (one realization + attack on one config).
struct IncidentCosts {
  double downtime_hours = 0.0;   ///< Service unavailable.
  double incorrect_hours = 0.0;  ///< Operating on corrupted control (gray).
};

/// Deterministic expected costs for a final system state, using the model
/// means as point values.
IncidentCosts expected_incident_costs(const scada::Configuration& config,
                                      const threat::SystemState& state,
                                      const RestorationModel& model);

/// Stochastic variant: restore times drawn from exponential distributions
/// around the model means (activation time is deterministic).
IncidentCosts sample_incident_costs(const scada::Configuration& config,
                                    const threat::SystemState& state,
                                    const RestorationModel& model,
                                    util::Rng& rng);

/// Aggregated restoration profile of one configuration under one scenario.
struct RestorationResult {
  std::string config_name;
  threat::ThreatScenario scenario{};
  double expected_downtime_hours = 0.0;
  double expected_incorrect_hours = 0.0;
  /// 95th-percentile sampled downtime across realizations x repair draws.
  double p95_downtime_hours = 0.0;
  /// Fraction of realizations with any downtime at all.
  double p_any_downtime = 0.0;
};

/// Runs the compound-threat pipeline per realization and aggregates
/// restoration costs. `samples_per_realization` controls the stochastic
/// percentile estimate (0 disables sampling; p95 falls back to the
/// deterministic value distribution).
RestorationResult analyze_restoration(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations,
    const RestorationModel& model, std::size_t samples_per_realization = 8,
    std::uint64_t seed = 7);

/// Runner-routed variant: per-realization incident costs are computed on
/// the runtime's work-stealing pool and folded in realization order, so the
/// result is bit-identical to the serial overload at any --jobs value (the
/// per-realization RNG is already derived from (seed, realization index)).
RestorationResult analyze_restoration(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations,
    const RestorationModel& model, runtime::EnsembleRunner& runtime,
    std::size_t samples_per_realization = 8, std::uint64_t seed = 7);

}  // namespace ct::core
