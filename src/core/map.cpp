#include "core/map.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ct::core {

namespace {

char terrain_glyph(double elevation_m) {
  if (elevation_m <= 0.0) return '~';
  if (elevation_m < 150.0) return '.';
  if (elevation_m < 600.0) return '+';
  return '^';
}

char asset_glyph(scada::AssetType type) {
  switch (type) {
    case scada::AssetType::kControlCenter: return 'C';
    case scada::AssetType::kDataCenter: return 'D';
    case scada::AssetType::kPowerPlant: return 'P';
    case scada::AssetType::kSubstation: return 'S';
  }
  return '?';
}

}  // namespace

std::string render_region_map(const terrain::Terrain& terrain,
                              const scada::ScadaTopology& topology,
                              const surge::HurricaneRealization* realization,
                              const MapOptions& options) {
  const geo::BBox box = terrain.coastline().bbox().inflated(options.margin_m);
  const int width = std::max(10, options.width);
  const int height = std::max(6, options.height);

  const auto cell_center = [&](int col, int row) {
    // Row 0 is the top (north).
    const double fx = (static_cast<double>(col) + 0.5) /
                      static_cast<double>(width);
    const double fy = (static_cast<double>(row) + 0.5) /
                      static_cast<double>(height);
    return geo::Vec2{box.lo.x + fx * box.width(),
                     box.hi.y - fy * box.height()};
  };

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (int row = 0; row < height; ++row) {
    for (int col = 0; col < width; ++col) {
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          terrain_glyph(terrain.elevation(cell_center(col, row)));
    }
  }

  // Overlay assets.
  std::string legend;
  for (const scada::Asset& asset : topology.assets()) {
    const geo::Vec2 p = terrain.projection().to_enu(asset.location);
    if (!box.contains(p)) continue;
    const int col = std::clamp(
        static_cast<int>((p.x - box.lo.x) / box.width() *
                         static_cast<double>(width)),
        0, width - 1);
    const int row = std::clamp(
        static_cast<int>((box.hi.y - p.y) / box.height() *
                         static_cast<double>(height)),
        0, height - 1);
    const bool failed =
        realization != nullptr && realization->asset_failed(asset.id);
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        failed ? 'X' : asset_glyph(asset.type);
    if (options.legend &&
        asset.type != scada::AssetType::kSubstation) {
      legend += "  ";
      legend += failed ? 'X' : asset_glyph(asset.type);
      legend += " " + asset.id + (failed ? "  [FLOODED]" : "") + "\n";
    }
  }

  std::string out = terrain.name() + "\n";
  for (const std::string& line : grid) out += line + "\n";
  if (options.legend) {
    out += "\n~ ocean   . plain   + hills   ^ mountains   S substation\n";
    out += legend;
  }
  return out;
}

}  // namespace ct::core
