#include "core/pipeline.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/evaluator.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/digest.h"
#include "util/log.h"
#include "util/strings.h"

namespace ct::core {

namespace {

bool parse_u64(std::string_view s, std::uint64_t& out) {
  s = util::trim(s);
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, out);
  return ec == std::errc{} && ptr == end && !s.empty();
}

bool parse_double(std::string_view s, double& out) {
  s = util::trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is not universally available; strtod on a
  // bounded copy keeps this portable.
  std::string copy(s);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

/// EnsembleReport -> ScenarioResult (histogram + quarantine accounting).
ScenarioResult result_from_report(const scada::Configuration& config,
                                  threat::ThreatScenario scenario,
                                  runtime::EnsembleReport report) {
  ScenarioResult result;
  result.config_name = config.name;
  result.scenario = scenario;
  for (std::size_t i = 0; i < report.counts.counts.size(); ++i) {
    result.outcomes.add(static_cast<threat::OperationalState>(i),
                        static_cast<std::size_t>(report.counts.counts[i]));
  }
  result.from_cache = report.counts.from_cache;
  result.failures = std::move(report.failures);
  result.retries = report.retries;
  result.attempted = report.attempted;
  result.completed = report.completed;
  return result;
}

}  // namespace

util::Interval ScenarioResult::mass_bound(threat::OperationalState s,
                                          double confidence) const noexcept {
  // Rebuild the runtime report so both layers share ONE bound formula. A
  // result that never went through the guarded path (serial analyze) has
  // attempted == 0; treat it as a clean full run.
  runtime::EnsembleReport report;
  for (std::size_t i = 0; i < report.counts.counts.size(); ++i) {
    report.counts.counts[i] = static_cast<std::uint64_t>(
        outcomes.count(static_cast<threat::OperationalState>(i)));
  }
  report.counts.total = outcomes.total();
  report.attempted = attempted == 0 ? outcomes.total() : attempted;
  report.completed = attempted == 0 ? outcomes.total() : completed;
  return report.mass_bound(static_cast<std::size_t>(s), confidence);
}

void OutcomeDistribution::add(threat::OperationalState s) noexcept {
  ++counts_[static_cast<std::size_t>(s)];
  ++total_;
}

void OutcomeDistribution::add(threat::OperationalState s,
                              std::size_t n) noexcept {
  counts_[static_cast<std::size_t>(s)] += n;
  total_ += n;
}

std::size_t OutcomeDistribution::count(threat::OperationalState s) const noexcept {
  return counts_[static_cast<std::size_t>(s)];
}

double OutcomeDistribution::probability(threat::OperationalState s) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(s)) / static_cast<double>(total_);
}

double OutcomeDistribution::expected_badness() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    sum += static_cast<double>(i) * static_cast<double>(counts_[i]);
  }
  return sum / static_cast<double>(total_);
}

threat::OperationalState AnalysisPipeline::outcome_for(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const surge::HurricaneRealization& realization) const {
  // Stage 1 (Fig. 5): apply the natural-disaster impact.
  const threat::SystemState post_disaster = threat::post_disaster_state(
      config, [&realization](std::string_view asset_id) {
        return realization.asset_failed(std::string(asset_id));
      });

  // Stage 2: apply the worst-case cyberattack for the scenario.
  const threat::AttackerCapability capability =
      threat::capability_for(scenario);
  threat::SystemState final_state = post_disaster;
  if (model_ == AttackerModel::kGreedy) {
    final_state = threat::GreedyWorstCaseAttacker{}.attack(
        config, post_disaster, capability);
  } else {
    threat::ExhaustiveAttacker exhaustive(
        [&config](const threat::SystemState& s) { return evaluate(config, s); });
    final_state = exhaustive.attack(config, post_disaster, capability);
  }

  // Stage 3: evaluate the final system state (Table I).
  return evaluate(config, final_state);
}

ScenarioResult AnalysisPipeline::analyze(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations) const {
  obs::Span span("pipeline.analyze");
  ScenarioResult result;
  result.config_name = config.name;
  result.scenario = scenario;
  for (const surge::HurricaneRealization& r : realizations) {
    result.outcomes.add(outcome_for(config, scenario, r));
  }
  return result;
}

std::string_view AnalysisPipeline::attacker_tag() const noexcept {
  return model_ == AttackerModel::kGreedy ? "greedy" : "exhaustive";
}

ScenarioResult AnalysisPipeline::analyze_lazy(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const runtime::EnsembleRunner::RealizationsFn& realizations,
    runtime::EnsembleRunner& runtime,
    std::string_view realization_set_digest) const {
  // A caller-materialized set has no generation ledger: every realization
  // in it already exists, so attempted == size and the batch is clean.
  return analyze_lazy(
      config, scenario,
      [&realizations]() {
        const std::vector<surge::HurricaneRealization>& r = realizations();
        return runtime::BatchView{&r, nullptr, r.size()};
      },
      runtime, realization_set_digest);
}

ScenarioResult AnalysisPipeline::analyze_lazy(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const runtime::EnsembleRunner::BatchFn& batch,
    runtime::EnsembleRunner& runtime,
    std::string_view realization_set_digest) const {
  obs::Span span("pipeline.analyze");
  const std::string key =
      realization_set_digest.empty()
          ? std::string()  // unidentified set: skip the cache, stay correct
          : runtime::EnsembleRunner::job_key(config, scenario, attacker_tag(),
                                             realization_set_digest);
  runtime::EnsembleReport report = runtime.count_outcomes_guarded(
      batch,
      [&](const surge::HurricaneRealization& r) {
        return static_cast<int>(outcome_for(config, scenario, r));
      },
      key);
  return result_from_report(config, scenario, std::move(report));
}

ScenarioResult AnalysisPipeline::analyze(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations,
    runtime::EnsembleRunner& runtime,
    std::string_view realization_set_digest) const {
  const std::string digest =
      realization_set_digest.empty()
          ? runtime::EnsembleRunner::digest_realizations(realizations)
          : std::string(realization_set_digest);
  return analyze_lazy(
      config, scenario,
      [&realizations]() -> const std::vector<surge::HurricaneRealization>& {
        return realizations;
      },
      runtime, digest);
}

ResumableAnalysis AnalysisPipeline::analyze_resumable(
    const std::vector<SweepCell>& cells,
    const surge::RealizationEngine& engine, std::size_t count,
    runtime::EnsembleRunner& runtime, const runtime::CheckpointOptions& ckpt,
    runtime::CancellationToken* interrupt) const {
  obs::Span span("pipeline.analyze_resumable");
  ResumableAnalysis out;
  out.results.resize(cells.size());

  // Pass 1 — cache: a cell whose full distribution is already stored needs
  // no realizations at all. Only the remaining LIVE cells join the sweep.
  const std::string batch_digest =
      runtime::EnsembleRunner::digest_engine_batch(engine, count);
  const bool use_cache = runtime.options().cache;
  std::vector<std::size_t> live;      // cell index per live series
  std::vector<std::string> live_keys; // job key per live series
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    const std::string key = runtime::EnsembleRunner::job_key(
        *cell.config, cell.scenario, attacker_tag(), batch_digest);
    if (use_cache) {
      if (const auto cached = runtime.store().lookup(key)) {
        runtime::EnsembleReport hit;
        hit.counts.counts = cached->counts;
        hit.counts.total = cached->total;
        hit.counts.from_cache = true;
        hit.attempted = hit.completed =
            static_cast<std::size_t>(cached->total);
        out.results[i] =
            result_from_report(*cell.config, cell.scenario, std::move(hit));
        ++out.cached_cells;
        continue;
      }
    }
    live.push_back(i);
    live_keys.push_back(key);
  }
  if (live.empty()) return out;

  // Pass 2 — one fused sweep over the live cells. The journal is keyed by
  // the engine-batch digest AND the live-series keys, so a checkpoint
  // taken under different knobs, a different attacker, or a different
  // set of outstanding cells can never resume.
  runtime::SweepSpec spec;
  {
    util::Digest d;
    d.str("ct-sweep").str(batch_digest).str(attacker_tag());
    spec.digest = d.hex();
  }
  spec.count = count;
  spec.series = live_keys;

  runtime::ResumableReport report = runtime.run_resumable(
      engine, spec,
      [&](std::size_t series, const surge::HurricaneRealization& r) {
        const SweepCell& cell = cells[live[series]];
        return static_cast<int>(outcome_for(*cell.config, cell.scenario, r));
      },
      ckpt, interrupt);

  out.resume = report.resume;
  out.interrupted = report.interrupted;
  out.restored = report.restored;
  out.executed = report.executed;
  out.checkpoints = report.checkpoints;

  for (std::size_t s = 0; s < live.size(); ++s) {
    const SweepCell& cell = cells[live[s]];
    // Cache only a COMPLETE clean distribution: a stored record asserts
    // "this key's full result" (same contract as the guarded paths), so
    // interrupted or degraded series stay out.
    if (use_cache && !report.interrupted &&
        report.series[s].failures.empty() &&
        report.series[s].attempted == count) {
      runtime::CachedCounts record;
      record.counts = report.series[s].counts.counts;
      record.total = report.series[s].counts.total;
      runtime.store().store(live_keys[s], record);
    }
    out.results[live[s]] = result_from_report(*cell.config, cell.scenario,
                                              std::move(report.series[s]));
  }
  return out;
}

std::vector<ScenarioResult> AnalysisPipeline::analyze_all(
    const std::vector<scada::Configuration>& configs,
    threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations,
    runtime::EnsembleRunner& runtime,
    std::string_view realization_set_digest) const {
  const std::string digest =
      realization_set_digest.empty()
          ? runtime::EnsembleRunner::digest_realizations(realizations)
          : std::string(realization_set_digest);
  std::vector<ScenarioResult> out;
  out.reserve(configs.size());
  for (const scada::Configuration& c : configs) {
    out.push_back(analyze(c, scenario, realizations, runtime, digest));
  }
  return out;
}

ScenarioResult AnalysisPipeline::analyze_csv(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    std::istream& in, std::string_view source_name) const {
  const LoadedRealizations loaded = load_realizations_csv(in, source_name);
  ScenarioResult result = analyze(config, scenario, loaded.realizations);
  result.skipped_realizations = loaded.skipped_rows;
  return result;
}

LoadedRealizations load_realizations_csv(std::istream& in,
                                         std::string_view source_name) {
  LoadedRealizations out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    std::vector<std::string> fields;
    std::string why;
    try {
      fields = util::parse_csv_line(trimmed);
    } catch (const std::invalid_argument& e) {
      why = e.what();
    }
    if (why.empty() && !fields.empty() && fields[0] == "realization") {
      continue;  // header row
    }
    surge::HurricaneRealization r;
    if (why.empty() && fields.size() != 4) {
      why = "expected 4 fields, got " + std::to_string(fields.size());
    }
    if (why.empty() && !parse_u64(fields[0], r.index)) {
      why = "bad realization index '" + fields[0] + "'";
    }
    if (why.empty() && !parse_double(fields[2], r.peak_wind_ms)) {
      why = "bad peak_wind_ms '" + fields[2] + "'";
    }
    if (why.empty() && !parse_double(fields[3], r.max_shoreline_wse_m)) {
      why = "bad max_wse_m '" + fields[3] + "'";
    }
    // A NaN/Inf that slips in here would survive every downstream guard
    // (the engine validates only what IT computes), so the boundary where
    // the value enters the process is where it must be rejected.
    if (why.empty() && !std::isfinite(r.peak_wind_ms)) {
      why = "non-finite peak_wind_ms '" + fields[2] + "'";
    }
    if (why.empty() && !std::isfinite(r.max_shoreline_wse_m)) {
      why = "non-finite max_wse_m '" + fields[3] + "'";
    }
    if (!why.empty()) {
      ++out.skipped_rows;
      out.errors.emplace_back(util::ErrorCode::kParse, "realizations-csv",
                              std::string(source_name) + ":" +
                                  std::to_string(line_no) + ": " + why);
      CT_LOG(kWarn, "pipeline") << "skipping malformed realization row: "
                                << out.errors.back().message();
      continue;
    }
    for (const std::string& asset : util::split(fields[1], ';')) {
      const std::string_view id = util::trim(asset);
      if (id.empty()) continue;
      surge::AssetImpact impact;
      impact.asset_id = std::string(id);
      impact.failed = true;
      r.impacts.push_back(std::move(impact));
    }
    out.realizations.push_back(std::move(r));
  }
  return out;
}

void write_realizations_csv(
    std::ostream& out,
    const std::vector<surge::HurricaneRealization>& realizations) {
  util::CsvWriter writer(out);
  writer.header({"realization", "flooded_assets", "peak_wind_ms", "max_wse_m"});
  for (const surge::HurricaneRealization& r : realizations) {
    std::vector<std::string> flooded;
    for (const surge::AssetImpact& impact : r.impacts) {
      if (impact.failed) flooded.push_back(impact.asset_id);
    }
    writer.field(static_cast<std::size_t>(r.index))
        .field(util::join(flooded, ";"))
        .field(r.peak_wind_ms)
        .field(r.max_shoreline_wse_m);
    writer.end_row();
  }
}

std::vector<ScenarioResult> AnalysisPipeline::analyze_all(
    const std::vector<scada::Configuration>& configs,
    threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations) const {
  std::vector<ScenarioResult> out;
  out.reserve(configs.size());
  for (const scada::Configuration& c : configs) {
    out.push_back(analyze(c, scenario, realizations));
  }
  return out;
}

}  // namespace ct::core
