#include "core/pipeline.h"

#include "core/evaluator.h"

namespace ct::core {

void OutcomeDistribution::add(threat::OperationalState s) noexcept {
  ++counts_[static_cast<std::size_t>(s)];
  ++total_;
}

std::size_t OutcomeDistribution::count(threat::OperationalState s) const noexcept {
  return counts_[static_cast<std::size_t>(s)];
}

double OutcomeDistribution::probability(threat::OperationalState s) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(s)) / static_cast<double>(total_);
}

double OutcomeDistribution::expected_badness() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    sum += static_cast<double>(i) * static_cast<double>(counts_[i]);
  }
  return sum / static_cast<double>(total_);
}

threat::OperationalState AnalysisPipeline::outcome_for(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const surge::HurricaneRealization& realization) const {
  // Stage 1 (Fig. 5): apply the natural-disaster impact.
  const threat::SystemState post_disaster = threat::post_disaster_state(
      config, [&realization](std::string_view asset_id) {
        return realization.asset_failed(std::string(asset_id));
      });

  // Stage 2: apply the worst-case cyberattack for the scenario.
  const threat::AttackerCapability capability =
      threat::capability_for(scenario);
  threat::SystemState final_state = post_disaster;
  if (model_ == AttackerModel::kGreedy) {
    final_state = threat::GreedyWorstCaseAttacker{}.attack(
        config, post_disaster, capability);
  } else {
    threat::ExhaustiveAttacker exhaustive(
        [&config](const threat::SystemState& s) { return evaluate(config, s); });
    final_state = exhaustive.attack(config, post_disaster, capability);
  }

  // Stage 3: evaluate the final system state (Table I).
  return evaluate(config, final_state);
}

ScenarioResult AnalysisPipeline::analyze(
    const scada::Configuration& config, threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations) const {
  ScenarioResult result;
  result.config_name = config.name;
  result.scenario = scenario;
  for (const surge::HurricaneRealization& r : realizations) {
    result.outcomes.add(outcome_for(config, scenario, r));
  }
  return result;
}

std::vector<ScenarioResult> AnalysisPipeline::analyze_all(
    const std::vector<scada::Configuration>& configs,
    threat::ThreatScenario scenario,
    const std::vector<surge::HurricaneRealization>& realizations) const {
  std::vector<ScenarioResult> out;
  out.reserve(configs.size());
  for (const scada::Configuration& c : configs) {
    out.push_back(analyze(c, scenario, realizations));
  }
  return out;
}

}  // namespace ct::core
