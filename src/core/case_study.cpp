#include "core/case_study.h"

#include "scada/oahu.h"
#include "terrain/oahu.h"

namespace ct::core {

CaseStudyRunner::CaseStudyRunner(scada::ScadaTopology topology,
                                 std::shared_ptr<const terrain::Terrain> terrain,
                                 CaseStudyOptions options,
                                 runtime::EnsembleRunner* shared_runtime)
    : topology_(std::move(topology)), options_(options),
      engine_(std::move(terrain), topology_.exposed_assets(),
              options_.realization),
      pipeline_(options_.attacker),
      owned_runtime_(shared_runtime == nullptr
                         ? std::make_unique<runtime::EnsembleRunner>(
                               options_.runtime)
                         : nullptr),
      runtime_(shared_runtime == nullptr ? owned_runtime_.get()
                                         : shared_runtime) {}

const runtime::GeneratedBatch& CaseStudyRunner::generated() {
  if (!cached_) {
    batch_ = runtime_->generate_guarded(engine_, options_.realizations);
    cached_ = true;
  }
  return batch_;
}

const std::vector<surge::HurricaneRealization>& CaseStudyRunner::realizations() {
  return generated().realizations;
}

const runtime::FailureLedger& CaseStudyRunner::generation_failures() {
  return batch_.ledger;
}

const std::string& CaseStudyRunner::batch_digest() {
  if (batch_digest_.empty()) {
    batch_digest_ = runtime::EnsembleRunner::digest_engine_batch(
        engine_, options_.realizations);
  }
  return batch_digest_;
}

ScenarioResult CaseStudyRunner::run(const scada::Configuration& config,
                                    threat::ThreatScenario scenario) {
  // Lazy: a result-cache hit (same topology, configuration, scenario,
  // ensemble, attacker — possibly from a previous process via the disk
  // layer) never generates the realization batch at all. On a miss the
  // guarded batch's quarantine ledger flows into the ScenarioResult.
  return pipeline_.analyze_lazy(
      config, scenario, [this]() { return generated().view(); }, *runtime_,
      batch_digest());
}

std::vector<ScenarioResult> CaseStudyRunner::run_configs(
    const std::vector<scada::Configuration>& configs,
    threat::ThreatScenario scenario) {
  std::vector<ScenarioResult> out;
  out.reserve(configs.size());
  for (const scada::Configuration& config : configs) {
    out.push_back(run(config, scenario));
  }
  return out;
}

ResumableAnalysis CaseStudyRunner::run_all_resumable(
    const std::vector<scada::Configuration>& configs,
    const std::vector<threat::ThreatScenario>& scenarios,
    const runtime::CheckpointOptions& ckpt,
    runtime::CancellationToken* interrupt) {
  std::vector<SweepCell> cells;
  cells.reserve(configs.size() * scenarios.size());
  for (const threat::ThreatScenario scenario : scenarios) {
    for (const scada::Configuration& config : configs) {
      cells.push_back(SweepCell{&config, scenario});
    }
  }
  return pipeline_.analyze_resumable(cells, engine_, options_.realizations,
                                     *runtime_, ckpt, interrupt);
}

double CaseStudyRunner::asset_flood_probability(std::string_view asset_id) {
  const auto& batch = realizations();
  if (batch.empty()) return 0.0;
  std::size_t failures = 0;
  const std::string id(asset_id);
  for (const surge::HurricaneRealization& r : batch) {
    if (r.asset_failed(id)) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(batch.size());
}

double CaseStudyRunner::conditional_flood_probability(std::string_view a,
                                                      std::string_view b) {
  const auto& batch = realizations();
  const std::string id_a(a);
  const std::string id_b(b);
  std::size_t b_failures = 0;
  std::size_t joint = 0;
  for (const surge::HurricaneRealization& r : batch) {
    if (r.asset_failed(id_b)) {
      ++b_failures;
      if (r.asset_failed(id_a)) ++joint;
    }
  }
  if (b_failures == 0) return 0.0;
  return static_cast<double>(joint) / static_cast<double>(b_failures);
}

CaseStudyRunner make_oahu_case_study(CaseStudyOptions options) {
  return CaseStudyRunner(scada::oahu_topology(), terrain::make_oahu_terrain(),
                         options);
}

}  // namespace ct::core
