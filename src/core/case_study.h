// Case-study runner: binds a terrain, a SCADA topology, and the hurricane
// realization engine together and caches the (expensive) realization batch
// so many configurations/scenarios/sitings can be analyzed against the
// same natural-disaster input — exactly how the paper's §VI evaluation is
// structured.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "runtime/ensemble_runner.h"
#include "scada/asset.h"
#include "surge/realization.h"
#include "terrain/terrain.h"

namespace ct::core {

/// Knobs of a case study.
struct CaseStudyOptions {
  /// Number of hurricane realizations (paper: 1000).
  std::size_t realizations = 1000;
  /// Natural-disaster pipeline parameters.
  surge::RealizationConfig realization{};
  /// Attacker model for the cyberattack stage.
  AttackerModel attacker = AttackerModel::kGreedy;
  /// Execution runtime: --jobs, chunking, result cache (in-memory by
  /// default; enable disk_cache to share results across processes).
  runtime::EnsembleOptions runtime{};
};

class CaseStudyRunner {
 public:
  /// With `shared_runtime == nullptr` (every pre-service caller) the
  /// runner owns a private EnsembleRunner built from options.runtime.
  /// A non-null `shared_runtime` is BORROWED: several case studies — the
  /// ct_service request sessions — then multiplex onto one work-stealing
  /// pool and one content-addressed result cache, which is what keeps the
  /// cache warm across requests. The borrowed runner must outlive this
  /// object, and options.runtime is ignored in that mode (execution knobs
  /// belong to the runner's owner).
  CaseStudyRunner(scada::ScadaTopology topology,
                  std::shared_ptr<const terrain::Terrain> terrain,
                  CaseStudyOptions options = {},
                  runtime::EnsembleRunner* shared_runtime = nullptr);

  /// The cached realization batch (computed on first use). Contains the
  /// SURVIVORS when generation quarantined realizations — see
  /// generation_failures() for the ledger.
  const std::vector<surge::HurricaneRealization>& realizations();

  /// Quarantine ledger of the generation stage (empty until the batch has
  /// been generated, and on every clean run).
  const runtime::FailureLedger& generation_failures();

  /// Analyzes one configuration under one scenario.
  ScenarioResult run(const scada::Configuration& config,
                     threat::ThreatScenario scenario);

  /// Analyzes several configurations under one scenario.
  std::vector<ScenarioResult> run_configs(
      const std::vector<scada::Configuration>& configs,
      threat::ThreatScenario scenario);

  /// Crash-consistent (configurations x scenarios) sweep matrix: every
  /// realization is generated once and classified into every live cell,
  /// with completed slices journaled under `ckpt` so a killed or
  /// interrupted run resumes from where it stopped (bit-identical to an
  /// uninterrupted run). Results come back in row-major order (config
  /// varies fastest within a scenario). See AnalysisPipeline::
  /// analyze_resumable and runtime/checkpoint.h.
  ResumableAnalysis run_all_resumable(
      const std::vector<scada::Configuration>& configs,
      const std::vector<threat::ThreatScenario>& scenarios,
      const runtime::CheckpointOptions& ckpt,
      runtime::CancellationToken* interrupt = nullptr);

  /// Empirical probability that the asset flooded across realizations.
  double asset_flood_probability(std::string_view asset_id);

  /// P(asset `a` flooded | asset `b` flooded); 0 when `b` never floods.
  double conditional_flood_probability(std::string_view a, std::string_view b);

  const scada::ScadaTopology& topology() const noexcept { return topology_; }
  const surge::RealizationEngine& engine() const noexcept { return engine_; }
  const CaseStudyOptions& options() const noexcept { return options_; }
  /// The shared execution runtime (pool + result cache) every analysis of
  /// this case study routes through.
  runtime::EnsembleRunner& runtime() noexcept { return *runtime_; }
  /// True when the runtime is borrowed from an external owner (service
  /// mode) rather than owned by this runner.
  bool shares_runtime() const noexcept { return owned_runtime_ == nullptr; }

 private:
  /// Content address of the (engine, realization count) ensemble; computed
  /// once, lets warm runs hit the result cache without regenerating.
  /// Safe even under quarantine: a degraded run is never stored, so the
  /// full-ensemble address can only ever resolve to full-ensemble results.
  const std::string& batch_digest();
  /// The guarded batch (generated on first use).
  const runtime::GeneratedBatch& generated();

  scada::ScadaTopology topology_;
  CaseStudyOptions options_;
  surge::RealizationEngine engine_;
  AnalysisPipeline pipeline_;
  /// Null when borrowing; runtime_ then points at the external runner.
  std::unique_ptr<runtime::EnsembleRunner> owned_runtime_;
  runtime::EnsembleRunner* runtime_;
  std::string batch_digest_;
  runtime::GeneratedBatch batch_;
  bool cached_ = false;
};

/// Builds the paper's Oahu case study: synthetic Oahu terrain + the Fig. 4
/// topology.
CaseStudyRunner make_oahu_case_study(CaseStudyOptions options = {});

}  // namespace ct::core
