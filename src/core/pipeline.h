// The analysis pipeline of the paper's Fig. 5:
//
//   geospatial SCADA topology + hurricane realizations
//     -> post-natural-disaster system states
//     -> worst-case cyberattack
//     -> operational-state classification (Table I)
//     -> outcome probabilities.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/ensemble_runner.h"
#include "scada/configuration.h"
#include "surge/realization.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "threat/system_state.h"

namespace ct::core {

/// Empirical distribution over the four operational states.
class OutcomeDistribution {
 public:
  void add(threat::OperationalState s) noexcept;
  /// Bulk insert: `n` outcomes in state `s` (cache hydration, chunk merge).
  void add(threat::OperationalState s, std::size_t n) noexcept;

  std::size_t count(threat::OperationalState s) const noexcept;
  std::size_t total() const noexcept { return total_; }
  /// Fraction of outcomes in state `s` (0 when empty).
  double probability(threat::OperationalState s) const noexcept;
  /// Expected badness (0=green .. 3=gray) under this distribution.
  double expected_badness() const noexcept;

 private:
  std::array<std::size_t, 4> counts_{};
  std::size_t total_ = 0;
};

/// Result of analyzing one configuration under one threat scenario.
struct ScenarioResult {
  std::string config_name;
  threat::ThreatScenario scenario{};
  /// PARTIAL distribution when degraded(): only completed realizations.
  OutcomeDistribution outcomes;
  /// Realization rows that were malformed and skipped (only non-zero when
  /// the realizations came from an external CSV; see analyze_csv).
  std::size_t skipped_realizations = 0;
  /// True when the outcomes were served by the runtime's result cache
  /// instead of being recomputed (runner-routed analyze paths only).
  bool from_cache = false;

  // Fault-isolation accounting (runner-routed analyze paths; serial
  // analyze() is batch-fatal and always reports a clean run).
  /// Quarantined realizations, ascending by realization index.
  std::vector<runtime::FailureRecord> failures;
  /// Extra attempts spent on retries (healed and exhausted).
  std::uint64_t retries = 0;
  /// Realizations requested / completed (equal on a clean run).
  std::size_t attempted = 0;
  std::size_t completed = 0;

  bool degraded() const noexcept { return !failures.empty(); }
  /// Conservative bounds on the true probability of state `s` had every
  /// quarantined realization completed (Clopper-Pearson widened by the
  /// quarantined mass; see EnsembleReport::mass_bound).
  util::Interval mass_bound(threat::OperationalState s,
                            double confidence = 0.95) const noexcept;
};

/// Realizations parsed from a CSV stream, plus the malformed rows that
/// were skipped instead of aborting the sweep.
struct LoadedRealizations {
  std::vector<surge::HurricaneRealization> realizations;
  std::size_t skipped_rows = 0;
  /// One typed record per skipped row: code kParse, message carrying
  /// "<source>:<line>: <why>" so the operator can fix the exact row.
  std::vector<util::Error> errors;
};

/// Parses the realization interchange CSV
///
///   realization,flooded_assets,peak_wind_ms,max_wse_m
///   17,sub-honolulu;cc-waiau,43.1,1.82
///
/// (`flooded_assets` is ';'-separated, possibly empty). A malformed row —
/// wrong field count, unparsable or non-finite number — is skipped,
/// counted, recorded as a ct::Error (with `source_name` and the 1-based
/// line number), and logged as a warning; the rest of the sweep proceeds.
LoadedRealizations load_realizations_csv(
    std::istream& in, std::string_view source_name = "realizations.csv");

/// Writes the same interchange format (round-trips through
/// load_realizations_csv for the fields the analysis consumes).
void write_realizations_csv(
    std::ostream& out,
    const std::vector<surge::HurricaneRealization>& realizations);

/// One cell of a resumable sweep matrix: a (configuration, scenario)
/// pair analyzed over the same realization ensemble. The configuration is
/// borrowed; it must outlive the analyze_resumable call.
struct SweepCell {
  const scada::Configuration* config = nullptr;
  threat::ThreatScenario scenario{};
};

/// Output of analyze_resumable: per-cell results plus how the checkpoint
/// layer behaved.
struct ResumableAnalysis {
  std::vector<ScenarioResult> results;  ///< one per cell, in cell order
  runtime::ResumeInfo resume;
  bool interrupted = false;     ///< cancelled mid-sweep; progress saved
  std::uint64_t restored = 0;   ///< realization indices replayed from disk
  std::uint64_t executed = 0;   ///< realization indices computed this run
  std::uint64_t checkpoints = 0;  ///< durable checkpoint writes this run
  std::size_t cached_cells = 0;   ///< cells served whole from the cache

  bool complete() const noexcept { return !interrupted; }
};

/// Which attacker model drives the cyberattack stage.
enum class AttackerModel {
  kGreedy,      ///< The paper's 3-rule worst-case algorithm (default).
  kExhaustive,  ///< Brute-force worst case (validation / novel configs).
};

/// Stateless analysis engine. Thread-compatible: all methods are const.
class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(AttackerModel model = AttackerModel::kGreedy)
      : model_(model) {}

  /// Classifies one (configuration, scenario, realization) triple: derives
  /// the post-disaster state, applies the worst-case attack, evaluates the
  /// final state.
  threat::OperationalState outcome_for(
      const scada::Configuration& config, threat::ThreatScenario scenario,
      const surge::HurricaneRealization& realization) const;

  /// Aggregates outcome probabilities over a realization set.
  ScenarioResult analyze(
      const scada::Configuration& config, threat::ThreatScenario scenario,
      const std::vector<surge::HurricaneRealization>& realizations) const;

  /// Runner-routed variant: shards the realization range across the
  /// runtime's work-stealing pool (bit-identical to the serial analyze at
  /// any --jobs value) and serves/records the result in its
  /// content-addressed cache. `realization_set_digest` identifies the
  /// realization set (EnsembleRunner::digest_* helpers); pass "" to derive
  /// it from the content.
  ScenarioResult analyze(
      const scada::Configuration& config, threat::ThreatScenario scenario,
      const std::vector<surge::HurricaneRealization>& realizations,
      runtime::EnsembleRunner& runtime,
      std::string_view realization_set_digest = {}) const;

  /// Lazy runner-routed variant: `realizations` is only invoked on a cache
  /// miss, so a warm rerun never materializes the ensemble at all.
  ScenarioResult analyze_lazy(
      const scada::Configuration& config, threat::ThreatScenario scenario,
      const runtime::EnsembleRunner::RealizationsFn& realizations,
      runtime::EnsembleRunner& runtime,
      std::string_view realization_set_digest) const;

  /// Guarded lazy variant: the batch producer (typically wrapping
  /// EnsembleRunner::generate_guarded) reports generation failures via its
  /// ledger, which merge with counting failures into the result's
  /// quarantine accounting.
  ScenarioResult analyze_lazy(
      const scada::Configuration& config, threat::ThreatScenario scenario,
      const runtime::EnsembleRunner::BatchFn& batch,
      runtime::EnsembleRunner& runtime,
      std::string_view realization_set_digest) const;

  /// Like analyze(), but over realizations streamed from the interchange
  /// CSV. Malformed rows degrade gracefully: they are skipped and surfaced
  /// in ScenarioResult::skipped_realizations rather than aborting the run.
  /// `source_name` labels the stream in per-row error records.
  ScenarioResult analyze_csv(const scada::Configuration& config,
                             threat::ThreatScenario scenario, std::istream& in,
                             std::string_view source_name =
                                 "realizations.csv") const;

  /// Crash-consistent sweep matrix: analyzes every (configuration,
  /// scenario) cell over realizations [0, count) from `engine`, generating
  /// each realization ONCE and classifying it into every live cell (a
  /// cell already in the result cache is served from it and never touches
  /// the sweep). With ckpt.resume, prior journal/snapshot state is
  /// validated and replayed so only missing realizations run; the merged
  /// results are bit-identical at any --jobs value to an uninterrupted
  /// run. `interrupt` stops the sweep at the next checkpoint boundary
  /// after a final flush (SIGINT/SIGTERM path): the returned analysis then
  /// has interrupted=true and partial distributions, and the on-disk state
  /// feeds the next --resume. See runtime/checkpoint.h for the journal.
  ResumableAnalysis analyze_resumable(
      const std::vector<SweepCell>& cells,
      const surge::RealizationEngine& engine, std::size_t count,
      runtime::EnsembleRunner& runtime,
      const runtime::CheckpointOptions& ckpt,
      runtime::CancellationToken* interrupt = nullptr) const;

  /// Convenience: all configurations x one scenario.
  std::vector<ScenarioResult> analyze_all(
      const std::vector<scada::Configuration>& configs,
      threat::ThreatScenario scenario,
      const std::vector<surge::HurricaneRealization>& realizations) const;

  /// Runner-routed analyze_all.
  std::vector<ScenarioResult> analyze_all(
      const std::vector<scada::Configuration>& configs,
      threat::ThreatScenario scenario,
      const std::vector<surge::HurricaneRealization>& realizations,
      runtime::EnsembleRunner& runtime,
      std::string_view realization_set_digest = {}) const;

  AttackerModel attacker_model() const noexcept { return model_; }
  /// Cache-key tag naming the attack algorithm of this pipeline.
  std::string_view attacker_tag() const noexcept;

 private:
  AttackerModel model_;
};

}  // namespace ct::core
