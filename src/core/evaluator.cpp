#include "core/evaluator.h"

#include <stdexcept>

namespace ct::core {

using threat::OperationalState;
using threat::SiteStatus;
using threat::SystemState;

OperationalState evaluate(const scada::Configuration& config,
                          const SystemState& state) {
  if (state.site_status.size() != config.sites.size() ||
      state.intrusions.size() != config.sites.size()) {
    throw std::invalid_argument("evaluate: state/config size mismatch");
  }
  const int threshold = config.safety_threshold();

  // Rule 1: gray (safety violation).
  if (config.active_multisite) {
    int group_intrusions = 0;
    for (std::size_t i = 0; i < config.sites.size(); ++i) {
      if (state.site_functional(i) && config.sites[i].hot) {
        group_intrusions += state.intrusions[i];
      }
    }
    if (group_intrusions >= threshold) return OperationalState::kGray;
  } else {
    for (std::size_t i = 0; i < config.sites.size(); ++i) {
      if (state.site_functional(i) && state.intrusions[i] >= threshold) {
        return OperationalState::kGray;
      }
    }
  }

  // Rule 2: active multisite availability.
  if (config.active_multisite) {
    int functional_hot = 0;
    for (std::size_t i = 0; i < config.sites.size(); ++i) {
      if (state.site_functional(i) && config.sites[i].hot) ++functional_hot;
    }
    return functional_hot >= config.min_active_sites
               ? OperationalState::kGreen
               : OperationalState::kRed;
  }

  // Rule 3: one site operates at a time, in priority order.
  for (const std::size_t i : threat::site_priority_order(config)) {
    if (state.site_functional(i)) {
      return config.sites[i].hot ? OperationalState::kGreen
                                 : OperationalState::kOrange;
    }
  }
  return OperationalState::kRed;
}

namespace {

bool site_down(const SystemState& state, std::size_t i) {
  return state.site_status[i] != SiteStatus::kUp;
}

/// Table I rows for "2" and "6" (single control center, differing only in
/// the gray threshold).
OperationalState single_site_row(const SystemState& state, int gray_at) {
  if (!site_down(state, 0) && state.intrusions[0] >= gray_at) {
    return OperationalState::kGray;
  }
  if (site_down(state, 0)) return OperationalState::kRed;
  return OperationalState::kGreen;
}

/// Table I rows for "2-2" and "6-6" (primary + cold backup).
OperationalState primary_backup_row(const SystemState& state, int gray_at) {
  // "gray if there is an intrusion of a functional server"
  for (std::size_t i = 0; i < 2; ++i) {
    if (!site_down(state, i) && state.intrusions[i] >= gray_at) {
      return OperationalState::kGray;
    }
  }
  const bool primary_down = site_down(state, 0);
  const bool backup_down = site_down(state, 1);
  if (!primary_down) return OperationalState::kGreen;
  if (!backup_down) return OperationalState::kOrange;
  return OperationalState::kRed;
}

}  // namespace

OperationalState evaluate_table1(const scada::Configuration& config,
                                 const SystemState& state) {
  if (state.site_status.size() != config.sites.size() ||
      state.intrusions.size() != config.sites.size()) {
    throw std::invalid_argument("evaluate_table1: state/config size mismatch");
  }
  if (config.name == "2") return single_site_row(state, 1);
  if (config.name == "6") return single_site_row(state, 2);
  if (config.name == "2-2") return primary_backup_row(state, 1);
  if (config.name == "6-6") return primary_backup_row(state, 2);
  if (config.name == "6+6+6") {
    // "gray if server intrusions >= 2" (among operating replicas),
    // "green if at least 2 sites up and intrusions <= 1",
    // "red if less than 2 sites up and intrusions <= 1".
    if (state.effective_intrusions() >= 2) return OperationalState::kGray;
    if (state.functional_site_count() >= 2) return OperationalState::kGreen;
    return OperationalState::kRed;
  }
  throw std::invalid_argument("evaluate_table1: unknown configuration: " +
                              config.name);
}

}  // namespace ct::core
