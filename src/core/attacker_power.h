// Analysis under probabilistic attacker power (extends the paper's
// worst-case-only evaluation; §VII names this as open future work).
//
// Rather than sampling attacker dice per realization, the analysis
// computes the EXACT mixture: for every hurricane realization the final
// operational state is evaluated for every realizable capability (i
// intrusions, s isolations), weighted by its binomial probability. The
// result is deterministic and noise-free in the attacker dimension; Monte
// Carlo noise remains only in the hurricane ensemble.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "scada/configuration.h"
#include "surge/realization.h"
#include "threat/probabilistic_attacker.h"

namespace ct::core {

/// A real-weighted distribution over the four operational states.
class OutcomeMixture {
 public:
  void add(threat::OperationalState s, double weight) noexcept;

  double mass(threat::OperationalState s) const noexcept;
  double total() const noexcept { return total_; }
  /// Normalized probability (0 when empty).
  double probability(threat::OperationalState s) const noexcept;
  double expected_badness() const noexcept;

 private:
  std::array<double, 4> mass_{};
  double total_ = 0.0;
};

/// Result of analyzing one configuration under one attacker-power model.
struct PowerScenarioResult {
  std::string config_name;
  threat::AttackerPower power;
  OutcomeMixture outcomes;
};

/// Exact-mixture analysis of `config` under `power` across the realization
/// set (hurricane stage identical to the worst-case pipeline).
PowerScenarioResult analyze_with_power(
    const scada::Configuration& config, const threat::AttackerPower& power,
    const std::vector<surge::HurricaneRealization>& realizations);

/// All configurations at once.
std::vector<PowerScenarioResult> analyze_all_with_power(
    const std::vector<scada::Configuration>& configs,
    const threat::AttackerPower& power,
    const std::vector<surge::HurricaneRealization>& realizations);

}  // namespace ct::core
