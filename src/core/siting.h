// Siting optimizer: answers the paper's §VII open question — "How should
// we choose additional control site locations to maximize availability
// when increasing redundancy for compound threat scenarios?" — by
// exhaustively scoring candidate site assignments against the realization
// set.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/case_study.h"
#include "core/pipeline.h"

namespace ct::core {

/// Score of one candidate site assignment under one scenario.
struct SitingScore {
  /// Site ids filling the open slots, in the order the builder consumed
  /// them.
  std::vector<std::string> chosen;
  scada::Configuration config;
  double green_probability = 0.0;
  double orange_probability = 0.0;
  double red_probability = 0.0;
  double gray_probability = 0.0;
  /// Expected badness (0 green .. 3 gray); the ranking key (lower wins).
  double expected_badness = 0.0;
};

/// Builds a configuration from a choice of site ids (e.g. chosen = {backup}
/// for "6-6", or {second control center, data center} for "6+6+6").
using ConfigBuilder =
    std::function<scada::Configuration(const std::vector<std::string>&)>;

class SitingOptimizer {
 public:
  /// The optimizer reuses the runner's cached realizations; the runner must
  /// outlive the optimizer. Every candidate is scored through the runner's
  /// ensemble runtime, so scoring is sharded across the work-stealing pool
  /// and repeated candidates (across scenarios or rank calls) are served
  /// from the content-addressed result cache instead of being re-swept.
  explicit SitingOptimizer(CaseStudyRunner& runner) : runner_(runner) {}

  /// Scores every `slots`-combination of `candidates` (no repetition,
  /// order-insensitive) and returns results sorted best-first (lowest
  /// expected badness; green probability breaks ties).
  std::vector<SitingScore> rank(const ConfigBuilder& builder,
                                const std::vector<std::string>& candidates,
                                int slots, threat::ThreatScenario scenario);

  /// Convenience: ranks backup-site choices for a "6-6" architecture with
  /// the given fixed primary.
  std::vector<SitingScore> rank_backup_sites(
      const std::string& primary, const std::vector<std::string>& candidates,
      threat::ThreatScenario scenario);

  /// Convenience: ranks (second control center, data center) pairs for a
  /// "6+6+6" architecture with the given fixed primary.
  std::vector<SitingScore> rank_site_pairs(
      const std::string& primary, const std::vector<std::string>& candidates,
      threat::ThreatScenario scenario);

 private:
  CaseStudyRunner& runner_;
};

}  // namespace ct::core
