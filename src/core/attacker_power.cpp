#include "core/attacker_power.h"

#include "core/evaluator.h"
#include "threat/attacker.h"

namespace ct::core {

void OutcomeMixture::add(threat::OperationalState s, double weight) noexcept {
  mass_[static_cast<std::size_t>(s)] += weight;
  total_ += weight;
}

double OutcomeMixture::mass(threat::OperationalState s) const noexcept {
  return mass_[static_cast<std::size_t>(s)];
}

double OutcomeMixture::probability(threat::OperationalState s) const noexcept {
  return total_ > 0.0 ? mass(s) / total_ : 0.0;
}

double OutcomeMixture::expected_badness() const noexcept {
  if (total_ <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    sum += static_cast<double>(i) * mass_[i];
  }
  return sum / total_;
}

PowerScenarioResult analyze_with_power(
    const scada::Configuration& config, const threat::AttackerPower& power,
    const std::vector<surge::HurricaneRealization>& realizations) {
  threat::validate(power);
  PowerScenarioResult result;
  result.config_name = config.name;
  result.power = power;

  const threat::GreedyWorstCaseAttacker greedy;
  for (const surge::HurricaneRealization& realization : realizations) {
    const threat::SystemState post_disaster = threat::post_disaster_state(
        config, [&realization](std::string_view asset_id) {
          return realization.asset_failed(std::string(asset_id));
        });
    for (int i = 0; i <= power.intrusion_attempts; ++i) {
      for (int s = 0; s <= power.isolation_attempts; ++s) {
        const double weight = threat::capability_probability(power, i, s);
        if (weight <= 0.0) continue;
        const threat::SystemState attacked =
            greedy.attack(config, post_disaster, {i, s});
        result.outcomes.add(evaluate(config, attacked), weight);
      }
    }
  }
  return result;
}

std::vector<PowerScenarioResult> analyze_all_with_power(
    const std::vector<scada::Configuration>& configs,
    const threat::AttackerPower& power,
    const std::vector<surge::HurricaneRealization>& realizations) {
  std::vector<PowerScenarioResult> out;
  out.reserve(configs.size());
  for (const scada::Configuration& config : configs) {
    out.push_back(analyze_with_power(config, power, realizations));
  }
  return out;
}

}  // namespace ct::core
