// Report rendering: turns ScenarioResults into the tables the bench
// binaries print (one per paper figure), and embeds the paper's published
// operational profiles so every bench can show measured-vs-paper deltas.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "util/table.h"

namespace ct::core {

/// One configuration's operational profile as published in the paper
/// (probabilities as fractions).
struct PaperProfile {
  std::string config;
  double green = 0.0;
  double orange = 0.0;
  double red = 0.0;
  double gray = 0.0;
};

/// The paper's published profiles for a figure id: "fig6" .. "fig11".
/// Throws std::invalid_argument for unknown ids.
const std::vector<PaperProfile>& paper_expected(std::string_view figure_id);

/// Valid figure ids, in paper order.
std::vector<std::string> paper_figure_ids();

/// Renders config x {green, orange, red, gray} probabilities.
util::TextTable profile_table(const std::vector<ScenarioResult>& results);

/// Renders measured vs paper side by side with absolute deltas.
util::TextTable comparison_table(const std::vector<ScenarioResult>& results,
                                 const std::vector<PaperProfile>& expected);

/// Worst absolute probability delta between measured results and the
/// paper's expectation (used by benches to print a single fidelity score).
double max_abs_delta(const std::vector<ScenarioResult>& results,
                     const std::vector<PaperProfile>& expected);

/// Machine-readable CSV: figure, config, state, probability.
void write_profiles_csv(std::ostream& out, std::string_view figure_id,
                        const std::vector<ScenarioResult>& results);

/// Machine-readable JSON: one object per figure with per-config profiles,
/// paper expectations (when the figure id is known), and deltas. Suitable
/// for dashboards / notebooks.
void write_profiles_json(std::ostream& out, std::string_view figure_id,
                         const std::vector<ScenarioResult>& results,
                         bool pretty = false);

/// Renders the quarantine ledger of degraded results: one row per failed
/// realization (config, realization index, seed, attempts, error code,
/// origin, message). Zero rows when every result completed cleanly.
util::TextTable failure_summary_table(
    const std::vector<ScenarioResult>& results);

/// Exit-code policy of analysis commands (ctctl and any script driving
/// it):
///   0 — success (every result clean; best-effort runs with quarantined
///       realizations but usable partial data also return 0);
///   3 — degraded under --strict: at least one realization quarantined;
///   4 — no data: realizations were attempted but NONE completed, so even
///       best-effort has nothing to report;
///   5 — interrupted but resumable: the sweep was cancelled (SIGINT/
///       SIGTERM) after a final checkpoint flush; rerun with --resume to
///       continue from the saved state.
/// (1 is runtime error, 2 is usage — assigned by the CLI itself.)
int analysis_exit_code(const std::vector<ScenarioResult>& results,
                       bool strict) noexcept;

/// Exit code of a checkpointed sweep: 5 when it was interrupted (the
/// partial results are NOT scored against strict/no-data policy — the
/// sweep is simply unfinished), otherwise analysis_exit_code.
int sweep_exit_code(const ResumableAnalysis& analysis, bool strict) noexcept;

}  // namespace ct::core
