// ChaosRunner: sweeps seeded benign fault plans over a SCADA configuration
// and checks two properties against each run of the protocol-level DES:
//
//   * the observed Table-I color equals the analytic evaluator's color —
//     benign faults (crash/restart, flapping, duplication, reordering,
//     clock skew) must not change the paper's classification;
//   * the InvariantMonitor reports no safety or liveness violation.
//
// Any failing plan is greedily shrunk to a minimal reproducer — a plan
// from which no single event (and no message impairment) can be removed
// without the failure disappearing — and recorded with its replayable
// schedule. The same machinery probes detection: an injected f+1
// compromise plan must be caught as a safety violation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/ensemble_runner.h"
#include "scada/configuration.h"
#include "sim/fault_injector.h"
#include "sim/scada_des.h"
#include "threat/scenario.h"

namespace ct::core {

/// Timeline tuned for chaos sweeps: the reduced schedule the protocol
/// tests use (every phase — detection, cold activation, settle — still
/// fits), with the liveness invariant armed.
sim::DesOptions chaos_des_options();

struct ChaosOptions {
  /// What the seeded plans stress: kBenign mixes mild crash/flap/skew
  /// windows; kRestartHeavy generates back-to-back crash/restart and
  /// site-bounce windows plus recovery-plane message loss, exercising the
  /// checkpoint / state-transfer / rejoin machinery.
  enum class PlanStyle { kBenign, kRestartHeavy };

  /// Seeded benign plans per configuration.
  int plans = 50;
  std::uint64_t base_seed = 20220627;
  /// Scenarios swept per plan (clean flood mask, worst-case attacker).
  std::vector<threat::ThreatScenario> scenarios{
      threat::ThreatScenario::kHurricane,
      threat::ThreatScenario::kHurricaneIntrusion,
      threat::ThreatScenario::kHurricaneIsolation,
      threat::ThreatScenario::kHurricaneIntrusionIsolation};
  sim::DesOptions des = chaos_des_options();
  PlanStyle plan_style = PlanStyle::kBenign;
  sim::BenignPlanShape shape{};
  sim::RestartPlanShape restart_shape{};
};

/// One confirmed failure: a (plan, scenario) pair whose run misclassified
/// or violated an invariant, with the plan already shrunk.
struct ChaosFinding {
  std::string config_name;
  std::uint64_t plan_seed = 0;
  threat::ThreatScenario scenario{};
  threat::OperationalState expected{};
  threat::OperationalState observed{};
  std::vector<std::string> violations;
  sim::FaultPlan minimal_plan;
  /// Replayable schedule of the minimal plan (FaultPlan::parse_schedule
  /// round-trips it).
  std::string replay_schedule;
};

struct ChaosReport {
  std::string config_name;
  int plans_run = 0;
  int runs = 0;
  std::uint64_t total_drops = 0;
  std::uint64_t total_duplicates = 0;
  /// Successful rejoin catch-ups summed over all runs (restart-heavy
  /// sweeps assert this is non-zero: the machinery actually exercised).
  int total_rejoins = 0;
  std::vector<ChaosFinding> findings;
  /// Plans whose DES run THREW (as opposed to misclassifying): each is
  /// contained as one failed plan — the other plans still sweep — and
  /// recorded here (realization = plan index, seed = options.base_seed).
  std::vector<runtime::FailureRecord> plan_failures;

  bool ok() const noexcept {
    return findings.empty() && plan_failures.empty();
  }
};

class ChaosRunner {
 public:
  explicit ChaosRunner(ChaosOptions options = {});

  /// Sweeps `options.plans` seeded benign plans x `options.scenarios`
  /// over one configuration; any failure is shrunk and reported.
  ChaosReport sweep(const scada::Configuration& config) const;

  /// Runner-routed sweep: plans are simulated (and failing ones shrunk) on
  /// the runtime's work-stealing pool, one plan per task, and the report is
  /// folded in plan order — identical to the serial sweep at any --jobs
  /// value (each plan's RNG is a child of (base_seed, plan index)).
  ChaosReport sweep(const scada::Configuration& config,
                    runtime::EnsembleRunner& runtime) const;

  /// All configurations, one report each.
  std::vector<ChaosReport> sweep_all(
      const std::vector<scada::Configuration>& configs) const;

  /// Runner-routed sweep_all (per-plan parallelism within each config).
  std::vector<ChaosReport> sweep_all(
      const std::vector<scada::Configuration>& configs,
      runtime::EnsembleRunner& runtime) const;

  /// Detection probe: injects an f+1-replica compromise plan (strictly
  /// more intrusions than the architecture tolerates) into an otherwise
  /// clean run and returns the finding — callers assert that the safety
  /// violation IS detected and that the plan shrinks to exactly f+1
  /// compromise events.
  ChaosFinding compromise_probe(const scada::Configuration& config) const;

  /// Greedily shrinks `plan` to a minimal plan that still fails (color
  /// mismatch vs `expected` or any invariant violation) for the given
  /// attacked state. Public so reports/benches can re-shrink by hand.
  sim::FaultPlan shrink(const scada::Configuration& config,
                        const threat::SystemState& attacked,
                        threat::OperationalState expected,
                        const sim::FaultPlan& plan) const;

  const ChaosOptions& options() const noexcept { return options_; }

 private:
  bool fails(const scada::Configuration& config,
             const threat::SystemState& attacked,
             threat::OperationalState expected,
             const sim::FaultPlan& plan) const;

  ChaosReport sweep_impl(const scada::Configuration& config,
                         runtime::TaskPool* pool) const;

  ChaosOptions options_;
};

}  // namespace ct::core
