// Operational-state evaluation (the paper's Table I): classifies a final
// system state into green / orange / red / gray. Two implementations:
//
//  * evaluate() — a generic rule engine driven entirely by the
//    Configuration descriptor (works for novel architectures);
//  * evaluate_table1() — the paper's Table I transcribed row by row for
//    the five named configurations.
//
// A property test asserts the two agree on every reachable state of the
// five paper configurations.
#pragma once

#include "scada/configuration.h"
#include "threat/system_state.h"

namespace ct::core {

/// Generic evaluator.
///
/// Rules, in order:
///  1. GRAY — safety is violated when one replication group contains more
///     than f compromised replicas: for active-multisite architectures the
///     group spans all functional hot sites; otherwise any functional site
///     whose intrusion count exceeds f.
///  2. Active multisite: GREEN while at least `min_active_sites` hot sites
///     are functional, RED otherwise.
///  3. Single-operating-site architectures: the first functional site in
///     priority order operates — GREEN if that site is hot (no takeover
///     delay), ORANGE if it is a cold backup (activation downtime); RED
///     when no site is functional.
threat::OperationalState evaluate(const scada::Configuration& config,
                                  const threat::SystemState& state);

/// Paper Table I, transcribed per configuration name ("2", "2-2", "6",
/// "6-6", "6+6+6"). Throws std::invalid_argument for other names.
threat::OperationalState evaluate_table1(const scada::Configuration& config,
                                         const threat::SystemState& state);

}  // namespace ct::core
