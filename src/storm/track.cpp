#include "storm/track.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ct::storm {

StormTrack::StormTrack(std::vector<TrackPoint> points)
    : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("StormTrack: need at least 2 fixes");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].time_s <= points_[i - 1].time_s) {
      throw std::invalid_argument("StormTrack: fixes must increase in time");
    }
  }
}

double StormTrack::start_time() const {
  if (points_.empty()) throw std::logic_error("StormTrack: empty");
  return points_.front().time_s;
}

double StormTrack::end_time() const {
  if (points_.empty()) throw std::logic_error("StormTrack: empty");
  return points_.back().time_s;
}

namespace {
VortexParams lerp_vortex(const VortexParams& a, const VortexParams& b,
                         double t) {
  VortexParams out;
  const auto mix = [t](double x, double y) { return x + (y - x) * t; };
  out.central_pressure_pa = mix(a.central_pressure_pa, b.central_pressure_pa);
  out.ambient_pressure_pa = mix(a.ambient_pressure_pa, b.ambient_pressure_pa);
  out.rmax_m = mix(a.rmax_m, b.rmax_m);
  out.holland_b = mix(a.holland_b, b.holland_b);
  out.latitude_deg = mix(a.latitude_deg, b.latitude_deg);
  return out;
}
}  // namespace

StormState StormTrack::state_at(double t, const geo::EnuProjection& proj) const {
  if (points_.empty()) throw std::logic_error("StormTrack: empty");
  const double clamped = std::clamp(t, start_time(), end_time());

  // Find the segment containing `clamped`.
  std::size_t hi = 1;
  while (hi + 1 < points_.size() && points_[hi].time_s < clamped) ++hi;
  const TrackPoint& a = points_[hi - 1];
  const TrackPoint& b = points_[hi];
  const double span = b.time_s - a.time_s;
  const double frac = span > 0.0 ? (clamped - a.time_s) / span : 0.0;

  StormState out;
  out.time_s = clamped;
  out.center = {a.center.lat_deg + (b.center.lat_deg - a.center.lat_deg) * frac,
                a.center.lon_deg + (b.center.lon_deg - a.center.lon_deg) * frac};
  out.vortex = lerp_vortex(a.vortex, b.vortex, frac);
  out.vortex.latitude_deg = out.center.lat_deg;

  // Segment translation velocity (constant along each segment).
  const geo::Vec2 pa = proj.to_enu(a.center);
  const geo::Vec2 pb = proj.to_enu(b.center);
  out.translation_ms = span > 0.0 ? (pb - pa) / span : geo::Vec2{};
  return out;
}

double StormTrack::time_of_closest_approach(geo::GeoPoint target,
                                            const geo::EnuProjection& proj,
                                            double dt_s) const {
  if (dt_s <= 0.0) throw std::invalid_argument("dt_s must be positive");
  const geo::Vec2 tgt = proj.to_enu(target);
  double best_t = start_time();
  double best_d = std::numeric_limits<double>::infinity();
  for (double t = start_time(); t <= end_time(); t += dt_s) {
    const StormState s = state_at(t, proj);
    const double d = geo::distance(proj.to_enu(s.center), tgt);
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  }
  return best_t;
}

double StormTrack::peak_surface_wind_ms(double surface_factor) const {
  double peak = 0.0;
  for (const TrackPoint& p : points_) {
    const double v =
        holland_gradient_wind(p.vortex, p.vortex.rmax_m) * surface_factor;
    peak = std::max(peak, v);
  }
  return peak;
}

Category StormTrack::peak_category(double surface_factor) const {
  return category_for_wind(peak_surface_wind_ms(surface_factor));
}

}  // namespace ct::storm
