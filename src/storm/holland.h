// Holland (1980) parametric hurricane wind and pressure model, the standard
// analytic vortex used to drive surge models (ADCIRC itself is typically
// forced with exactly this family of wind fields).
#pragma once

#include "geo/vec2.h"

namespace ct::storm {

/// Instantaneous storm parameters (one snapshot along a track).
struct VortexParams {
  double central_pressure_pa = 97000.0;  ///< Minimum sea-level pressure.
  double ambient_pressure_pa = 101000.0; ///< Environmental pressure.
  double rmax_m = 40000.0;               ///< Radius of maximum winds.
  double holland_b = 1.3;                ///< Holland shape parameter (1..2.5).
  double latitude_deg = 21.0;            ///< For the Coriolis parameter.
};

/// Wind sampled at a point: speed plus direction as a unit vector in the
/// local ENU frame (x east, y north).
struct WindSample {
  geo::Vec2 velocity_ms;  ///< 10-m wind vector.
  double speed_ms = 0.0;
  double pressure_pa = 0.0;  ///< Sea-level pressure at the point.
};

/// Coriolis parameter f = 2 Omega sin(lat), 1/s.
double coriolis_parameter(double latitude_deg) noexcept;

/// Holland gradient wind speed at distance r from the center (m/s).
/// V(r) = sqrt( (B dp / rho) (Rmax/r)^B exp(-(Rmax/r)^B) + (r f / 2)^2 )
///        - r f / 2
double holland_gradient_wind(const VortexParams& p, double r_m) noexcept;

/// Holland surface pressure profile at distance r (Pa):
/// p(r) = pc + dp * exp(-(Rmax/r)^B)
double holland_pressure(const VortexParams& p, double r_m) noexcept;

/// Options of the surface wind field model.
struct WindFieldOptions {
  double surface_wind_factor = 0.9;   ///< gradient -> 10m reduction
  double inflow_angle_deg = 20.0;     ///< cross-isobar inflow
  double translation_fraction = 0.5;  ///< asymmetry weight
};

/// Full surface wind field model: gradient wind rotated counter-clockwise
/// (northern hemisphere), reduced to 10-m level, turned inward by the
/// boundary-layer inflow angle, plus forward-motion asymmetry (a fraction
/// of the translation velocity added, strongest right of track).
class HollandWindField {
 public:
  using Options = WindFieldOptions;

  explicit HollandWindField(Options opts = {}) noexcept : opts_(opts) {}

  /// Wind and pressure at `point` for a storm centered at `center` moving
  /// with `translation_ms` (ENU meters; all three in the same frame).
  WindSample sample(const VortexParams& params, geo::Vec2 center,
                    geo::Vec2 translation_ms, geo::Vec2 point) const noexcept;

  const Options& options() const noexcept { return opts_; }

 private:
  Options opts_;
};

/// Per-time-step evaluator: freezes one (params, center, translation)
/// snapshot and hoists everything constant across sample points out of the
/// per-node loop (pressure deficit, Coriolis magnitude, inflow-angle
/// sin/cos, the eyewall wind used for the asymmetry weight). Sampling is
/// arithmetically identical to HollandWindField::sample — the per-node
/// operation sequence on varying inputs is unchanged, so results are
/// bit-equal — but costs one pow/exp and no trig per node instead of
/// several of each.
class StormStepKernel {
 public:
  StormStepKernel(const WindFieldOptions& opts, const VortexParams& params,
                  geo::Vec2 center, geo::Vec2 translation_ms) noexcept;

  /// Wind and pressure at `point`; bit-equal to
  /// HollandWindField{opts}.sample(params, center, translation_ms, point).
  WindSample sample(geo::Vec2 point) const noexcept;

  /// Eyewall gradient wind V(Rmax) for this snapshot (m/s).
  double vmax_ms() const noexcept { return vmax_; }

 private:
  geo::Vec2 center_;
  geo::Vec2 translation_ms_;
  double central_pressure_pa_;
  double rmax_m_;
  double holland_b_;
  double dp_;            // max(0, ambient - central)
  double bdp_;           // B * dp / rho_air
  double f_;             // |Coriolis parameter|
  double cos_a_, sin_a_; // inflow angle
  double vmax_;          // V(Rmax)
  double surface_factor_;
  double translation_fraction_;
};

}  // namespace ct::storm
