// Holland (1980) parametric hurricane wind and pressure model, the standard
// analytic vortex used to drive surge models (ADCIRC itself is typically
// forced with exactly this family of wind fields).
#pragma once

#include "geo/vec2.h"

namespace ct::storm {

/// Instantaneous storm parameters (one snapshot along a track).
struct VortexParams {
  double central_pressure_pa = 97000.0;  ///< Minimum sea-level pressure.
  double ambient_pressure_pa = 101000.0; ///< Environmental pressure.
  double rmax_m = 40000.0;               ///< Radius of maximum winds.
  double holland_b = 1.3;                ///< Holland shape parameter (1..2.5).
  double latitude_deg = 21.0;            ///< For the Coriolis parameter.
};

/// Wind sampled at a point: speed plus direction as a unit vector in the
/// local ENU frame (x east, y north).
struct WindSample {
  geo::Vec2 velocity_ms;  ///< 10-m wind vector.
  double speed_ms = 0.0;
  double pressure_pa = 0.0;  ///< Sea-level pressure at the point.
};

/// Coriolis parameter f = 2 Omega sin(lat), 1/s.
double coriolis_parameter(double latitude_deg) noexcept;

/// Holland gradient wind speed at distance r from the center (m/s).
/// V(r) = sqrt( (B dp / rho) (Rmax/r)^B exp(-(Rmax/r)^B) + (r f / 2)^2 )
///        - r f / 2
double holland_gradient_wind(const VortexParams& p, double r_m) noexcept;

/// Holland surface pressure profile at distance r (Pa):
/// p(r) = pc + dp * exp(-(Rmax/r)^B)
double holland_pressure(const VortexParams& p, double r_m) noexcept;

/// Options of the surface wind field model.
struct WindFieldOptions {
  double surface_wind_factor = 0.9;   ///< gradient -> 10m reduction
  double inflow_angle_deg = 20.0;     ///< cross-isobar inflow
  double translation_fraction = 0.5;  ///< asymmetry weight
};

/// Full surface wind field model: gradient wind rotated counter-clockwise
/// (northern hemisphere), reduced to 10-m level, turned inward by the
/// boundary-layer inflow angle, plus forward-motion asymmetry (a fraction
/// of the translation velocity added, strongest right of track).
class HollandWindField {
 public:
  using Options = WindFieldOptions;

  explicit HollandWindField(Options opts = {}) noexcept : opts_(opts) {}

  /// Wind and pressure at `point` for a storm centered at `center` moving
  /// with `translation_ms` (ENU meters; all three in the same frame).
  WindSample sample(const VortexParams& params, geo::Vec2 center,
                    geo::Vec2 translation_ms, geo::Vec2 point) const noexcept;

  const Options& options() const noexcept { return opts_; }

 private:
  Options opts_;
};

}  // namespace ct::storm
