#include "storm/generator.h"

#include <cmath>
#include <stdexcept>

namespace ct::storm {

StormTrack TrackGenerator::build_track(geo::GeoPoint aim, double heading_deg,
                                       double forward_speed_ms, double dp_pa,
                                       double rmax_m,
                                       double holland_b) const {
  if (forward_speed_ms <= 0.0) {
    throw std::invalid_argument("TrackGenerator: non-positive forward speed");
  }
  const double back_bearing = std::fmod(heading_deg + 180.0, 360.0);
  const geo::GeoPoint start =
      geo::destination(aim, back_bearing, config_.approach_distance_m);
  const double total_m =
      config_.approach_distance_m + config_.departure_distance_m;
  const double total_s = total_m / forward_speed_ms;

  std::vector<TrackPoint> fixes;
  for (double t = 0.0;; t += config_.fix_interval_s) {
    const bool last = t >= total_s;
    const double tt = last ? total_s : t;
    TrackPoint fix;
    fix.time_s = tt;
    fix.center = geo::destination(start, heading_deg, forward_speed_ms * tt);
    fix.vortex.ambient_pressure_pa = config_.ambient_pressure_pa;
    fix.vortex.central_pressure_pa = config_.ambient_pressure_pa - dp_pa;
    fix.vortex.rmax_m = rmax_m;
    fix.vortex.holland_b = holland_b;
    fix.vortex.latitude_deg = fix.center.lat_deg;
    fixes.push_back(fix);
    if (last) break;
  }
  return StormTrack(std::move(fixes));
}

StormTrack TrackGenerator::base_track() const {
  return build_track(config_.base_aim, config_.base_heading_deg,
                     config_.forward_speed_ms, config_.pressure_deficit_pa,
                     config_.rmax_m, config_.holland_b);
}

StormTrack TrackGenerator::generate(std::uint64_t base_seed,
                                    std::uint64_t index) const {
  util::Rng rng = util::Rng(base_seed, "storm-track").child("realization", index);

  // Cross-track displacement of the aim point, perpendicular to the base
  // heading (positive = right of track).
  const double cross = rng.normal(0.0, config_.cross_track_sigma_m);
  const double perp_bearing = std::fmod(config_.base_heading_deg + 90.0, 360.0);
  const geo::GeoPoint aim =
      geo::destination(config_.base_aim, perp_bearing, cross);

  const double heading =
      config_.base_heading_deg + rng.normal(0.0, config_.heading_sigma_deg);
  const double speed =
      config_.forward_speed_ms + rng.uniform(-config_.forward_speed_jitter_ms,
                                             config_.forward_speed_jitter_ms);
  // Intensity truncated to stay within the CAT-2 planning envelope.
  const double dp = rng.truncated_normal(
      config_.pressure_deficit_pa, config_.pressure_deficit_sigma_pa,
      config_.pressure_deficit_pa - 2.5 * config_.pressure_deficit_sigma_pa,
      config_.pressure_deficit_pa + 2.5 * config_.pressure_deficit_sigma_pa);
  const double rmax =
      rng.truncated_normal(config_.rmax_m, config_.rmax_sigma_m,
                           config_.rmax_min_m, config_.rmax_max_m);
  const double b = rng.truncated_normal(config_.holland_b,
                                        config_.holland_b_sigma, 1.0, 2.2);

  return build_track(aim, heading, speed, dp, rmax, b);
}

}  // namespace ct::storm
