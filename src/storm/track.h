// Storm tracks: a time series of storm center positions and vortex
// parameters, with linear interpolation between fixes (the same
// representation best-track / forecast advisories use).
#pragma once

#include <vector>

#include "geo/geopoint.h"
#include "storm/holland.h"
#include "storm/saffir_simpson.h"

namespace ct::storm {

/// One track fix.
struct TrackPoint {
  double time_s = 0.0;
  geo::GeoPoint center;
  VortexParams vortex;
};

/// Interpolated instantaneous storm state.
struct StormState {
  double time_s = 0.0;
  geo::GeoPoint center;
  VortexParams vortex;
  /// Translation (forward-motion) velocity in the ENU frame of `proj`,
  /// estimated by finite differences along the track (m/s).
  geo::Vec2 translation_ms;
};

/// Piecewise-linear storm track. Fixes must be strictly increasing in time.
class StormTrack {
 public:
  StormTrack() = default;
  explicit StormTrack(std::vector<TrackPoint> points);

  const std::vector<TrackPoint>& points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }
  double start_time() const;
  double end_time() const;
  double duration() const { return end_time() - start_time(); }

  /// Interpolated state at time t (clamped to the track's time span).
  /// `proj` supplies the frame for the translation velocity.
  StormState state_at(double t, const geo::EnuProjection& proj) const;

  /// Closest approach of the track to `target`, sampled every `dt_s`.
  /// Returns the time of minimum distance.
  double time_of_closest_approach(geo::GeoPoint target,
                                  const geo::EnuProjection& proj,
                                  double dt_s = 600.0) const;

  /// Peak 1-minute wind along the track (max over fixes of the Holland
  /// gradient wind at Rmax, reduced to surface).
  double peak_surface_wind_ms(double surface_factor = 0.9) const;

  /// Category implied by the peak surface wind.
  Category peak_category(double surface_factor = 0.9) const;

 private:
  std::vector<TrackPoint> points_;
};

}  // namespace ct::storm
