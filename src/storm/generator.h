// Storm-track generator: produces an ensemble of Category-2 tracks around a
// base planning track (the paper used "a realistic hurricane path used by
// emergency planners in Hawaii" and 1000 realizations of the resulting
// surge). Each realization perturbs landfall position, heading, forward
// speed, intensity, and storm size.
#pragma once

#include "geo/geopoint.h"
#include "storm/track.h"
#include "util/rng.h"

namespace ct::storm {

/// Ensemble configuration. Defaults produce a CAT-2 storm approaching Oahu
/// from the south-southeast and passing along the island's leeward side —
/// the planning scenario geometry (cf. Hurricane Kole tabletop exercises).
struct TrackEnsembleConfig {
  /// Point of closest approach of the *base* track.
  geo::GeoPoint base_aim{21.23, -158.06};
  /// Base track heading, degrees clockwise from north.
  double base_heading_deg = 327.0;
  /// Distance before/after the aim point covered by the track (m).
  double approach_distance_m = 400000.0;
  double departure_distance_m = 300000.0;
  /// Base forward speed (m/s) and its uniform jitter half-width.
  double forward_speed_ms = 6.0;
  double forward_speed_jitter_ms = 1.5;
  /// Cross-track standard deviation of the aim point (m).
  double cross_track_sigma_m = 45000.0;
  /// Heading jitter standard deviation (degrees).
  double heading_sigma_deg = 4.0;
  /// Central pressure deficit: base and jitter sigma (Pa). 4000 Pa ~ CAT 2.
  double pressure_deficit_pa = 4200.0;
  double pressure_deficit_sigma_pa = 500.0;
  /// Radius of maximum winds: base and truncation bounds (m).
  double rmax_m = 45000.0;
  double rmax_sigma_m = 5000.0;
  double rmax_min_m = 32000.0;
  double rmax_max_m = 60000.0;
  /// Holland B: base and jitter.
  double holland_b = 1.35;
  double holland_b_sigma = 0.1;
  /// Spacing between generated track fixes (s).
  double fix_interval_s = 3600.0;
  /// Ambient pressure (Pa).
  double ambient_pressure_pa = 101000.0;
};

/// Deterministic ensemble: realization `i` under seed `s` is always the
/// same storm, independent of how many other realizations are drawn.
class TrackGenerator {
 public:
  explicit TrackGenerator(TrackEnsembleConfig config) : config_(config) {}

  /// Generates realization `index` of the ensemble seeded by `base_seed`.
  StormTrack generate(std::uint64_t base_seed, std::uint64_t index) const;

  /// The unperturbed planning track.
  StormTrack base_track() const;

  const TrackEnsembleConfig& config() const noexcept { return config_; }

 private:
  StormTrack build_track(geo::GeoPoint aim, double heading_deg,
                         double forward_speed_ms, double dp_pa, double rmax_m,
                         double holland_b) const;

  TrackEnsembleConfig config_;
};

}  // namespace ct::storm
