#include "storm/holland.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ct::storm {

namespace {
constexpr double kAirDensity = 1.15;       // kg/m^3
constexpr double kEarthOmega = 7.2921e-5;  // rad/s
}  // namespace

double coriolis_parameter(double latitude_deg) noexcept {
  return 2.0 * kEarthOmega *
         std::sin(latitude_deg * std::numbers::pi / 180.0);
}

double holland_gradient_wind(const VortexParams& p, double r_m) noexcept {
  if (r_m <= 1.0) return 0.0;  // calm eye center
  const double dp = std::max(0.0, p.ambient_pressure_pa - p.central_pressure_pa);
  const double ratio = std::pow(p.rmax_m / r_m, p.holland_b);
  const double cyclostrophic =
      (p.holland_b * dp / kAirDensity) * ratio * std::exp(-ratio);
  const double f = std::abs(coriolis_parameter(p.latitude_deg));
  const double rf2 = r_m * f / 2.0;
  return std::sqrt(cyclostrophic + rf2 * rf2) - rf2;
}

double holland_pressure(const VortexParams& p, double r_m) noexcept {
  const double dp = std::max(0.0, p.ambient_pressure_pa - p.central_pressure_pa);
  if (r_m <= 1.0) return p.central_pressure_pa;
  const double ratio = std::pow(p.rmax_m / r_m, p.holland_b);
  return p.central_pressure_pa + dp * std::exp(-ratio);
}

WindSample HollandWindField::sample(const VortexParams& params,
                                    geo::Vec2 center, geo::Vec2 translation_ms,
                                    geo::Vec2 point) const noexcept {
  const geo::Vec2 radial = point - center;
  const double r = radial.norm();
  WindSample out;
  out.pressure_pa = holland_pressure(params, r);
  if (r <= 1.0) {
    out.velocity_ms = {};
    out.speed_ms = 0.0;
    return out;
  }

  const double gradient = holland_gradient_wind(params, r);
  const double surface = gradient * opts_.surface_wind_factor;

  // Tangential direction: counter-clockwise rotation (northern hemisphere)
  // is +90 degrees from the outward radial.
  const geo::Vec2 radial_hat = radial / r;
  const geo::Vec2 tangential_hat = radial_hat.perp();

  // Rotate the tangential wind inward (toward the center) by the inflow
  // angle: v = cos(a) * tangential - sin(a) * radial.
  const double a = opts_.inflow_angle_deg * std::numbers::pi / 180.0;
  geo::Vec2 v = tangential_hat * (surface * std::cos(a)) -
                radial_hat * (surface * std::sin(a));

  // Forward-motion asymmetry, scaled by the local relative intensity so the
  // correction vanishes far from the storm.
  const double vmax = holland_gradient_wind(params, params.rmax_m);
  const double weight = vmax > 0.0 ? std::clamp(gradient / vmax, 0.0, 1.0) : 0.0;
  v += translation_ms * (opts_.translation_fraction * weight);

  out.velocity_ms = v;
  out.speed_ms = v.norm();
  return out;
}

}  // namespace ct::storm
