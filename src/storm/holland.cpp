#include "storm/holland.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ct::storm {

namespace {
constexpr double kAirDensity = 1.15;       // kg/m^3
constexpr double kEarthOmega = 7.2921e-5;  // rad/s
}  // namespace

double coriolis_parameter(double latitude_deg) noexcept {
  return 2.0 * kEarthOmega *
         std::sin(latitude_deg * std::numbers::pi / 180.0);
}

double holland_gradient_wind(const VortexParams& p, double r_m) noexcept {
  if (r_m <= 1.0) return 0.0;  // calm eye center
  const double dp = std::max(0.0, p.ambient_pressure_pa - p.central_pressure_pa);
  const double ratio = std::pow(p.rmax_m / r_m, p.holland_b);
  const double cyclostrophic =
      (p.holland_b * dp / kAirDensity) * ratio * std::exp(-ratio);
  const double f = std::abs(coriolis_parameter(p.latitude_deg));
  const double rf2 = r_m * f / 2.0;
  return std::sqrt(cyclostrophic + rf2 * rf2) - rf2;
}

double holland_pressure(const VortexParams& p, double r_m) noexcept {
  const double dp = std::max(0.0, p.ambient_pressure_pa - p.central_pressure_pa);
  if (r_m <= 1.0) return p.central_pressure_pa;
  const double ratio = std::pow(p.rmax_m / r_m, p.holland_b);
  return p.central_pressure_pa + dp * std::exp(-ratio);
}

WindSample HollandWindField::sample(const VortexParams& params,
                                    geo::Vec2 center, geo::Vec2 translation_ms,
                                    geo::Vec2 point) const noexcept {
  const geo::Vec2 radial = point - center;
  const double r = radial.norm();
  WindSample out;
  out.pressure_pa = holland_pressure(params, r);
  if (r <= 1.0) {
    out.velocity_ms = {};
    out.speed_ms = 0.0;
    return out;
  }

  const double gradient = holland_gradient_wind(params, r);
  const double surface = gradient * opts_.surface_wind_factor;

  // Tangential direction: counter-clockwise rotation (northern hemisphere)
  // is +90 degrees from the outward radial.
  const geo::Vec2 radial_hat = radial / r;
  const geo::Vec2 tangential_hat = radial_hat.perp();

  // Rotate the tangential wind inward (toward the center) by the inflow
  // angle: v = cos(a) * tangential - sin(a) * radial.
  const double a = opts_.inflow_angle_deg * std::numbers::pi / 180.0;
  geo::Vec2 v = tangential_hat * (surface * std::cos(a)) -
                radial_hat * (surface * std::sin(a));

  // Forward-motion asymmetry, scaled by the local relative intensity so the
  // correction vanishes far from the storm.
  const double vmax = holland_gradient_wind(params, params.rmax_m);
  const double weight = vmax > 0.0 ? std::clamp(gradient / vmax, 0.0, 1.0) : 0.0;
  v += translation_ms * (opts_.translation_fraction * weight);

  out.velocity_ms = v;
  out.speed_ms = v.norm();
  return out;
}

StormStepKernel::StormStepKernel(const WindFieldOptions& opts,
                                 const VortexParams& params, geo::Vec2 center,
                                 geo::Vec2 translation_ms) noexcept
    : center_(center),
      translation_ms_(translation_ms),
      central_pressure_pa_(params.central_pressure_pa),
      rmax_m_(params.rmax_m),
      holland_b_(params.holland_b),
      dp_(std::max(0.0, params.ambient_pressure_pa - params.central_pressure_pa)),
      bdp_(params.holland_b * dp_ / kAirDensity),
      f_(std::abs(coriolis_parameter(params.latitude_deg))),
      cos_a_(std::cos(opts.inflow_angle_deg * std::numbers::pi / 180.0)),
      sin_a_(std::sin(opts.inflow_angle_deg * std::numbers::pi / 180.0)),
      vmax_(holland_gradient_wind(params, params.rmax_m)),
      surface_factor_(opts.surface_wind_factor),
      translation_fraction_(opts.translation_fraction) {}

WindSample StormStepKernel::sample(geo::Vec2 point) const noexcept {
  const geo::Vec2 radial = point - center_;
  const double r = radial.norm();
  WindSample out;
  if (r <= 1.0) {
    // Calm eye: holland_pressure returns the central pressure and the
    // legacy sampler zeroes the wind.
    out.pressure_pa = central_pressure_pa_;
    out.velocity_ms = {};
    out.speed_ms = 0.0;
    return out;
  }

  // ratio and exp(-ratio) feed both the pressure profile and the gradient
  // wind; the legacy path evaluates them once per formula with identical
  // arguments, so sharing the results is bit-preserving.
  const double ratio = std::pow(rmax_m_ / r, holland_b_);
  const double decay = std::exp(-ratio);
  out.pressure_pa = central_pressure_pa_ + dp_ * decay;

  const double cyclostrophic = bdp_ * ratio * decay;
  const double rf2 = r * f_ / 2.0;
  const double gradient = std::sqrt(cyclostrophic + rf2 * rf2) - rf2;
  const double surface = gradient * surface_factor_;

  const geo::Vec2 radial_hat = radial / r;
  const geo::Vec2 tangential_hat = radial_hat.perp();
  geo::Vec2 v = tangential_hat * (surface * cos_a_) -
                radial_hat * (surface * sin_a_);

  const double weight =
      vmax_ > 0.0 ? std::clamp(gradient / vmax_, 0.0, 1.0) : 0.0;
  v += translation_ms_ * (translation_fraction_ * weight);

  out.velocity_ms = v;
  out.speed_ms = v.norm();
  return out;
}

}  // namespace ct::storm
