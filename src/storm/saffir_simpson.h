// Saffir-Simpson hurricane wind scale and the standard wind/pressure
// relationships used to parameterize synthetic storms.
#pragma once

#include <string_view>

namespace ct::storm {

/// Saffir-Simpson categories (kTropicalStorm below Cat 1 for completeness).
enum class Category {
  kTropicalStorm = 0,
  kCat1 = 1,
  kCat2 = 2,
  kCat3 = 3,
  kCat4 = 4,
  kCat5 = 5,
};

/// Lower bound of 1-minute sustained wind (m/s) for a category.
double category_min_wind_ms(Category c) noexcept;

/// Upper bound of 1-minute sustained wind (m/s); Cat 5 returns a large
/// sentinel (no upper bound).
double category_max_wind_ms(Category c) noexcept;

/// Category for a 1-minute sustained wind speed.
Category category_for_wind(double wind_ms) noexcept;

/// Typical central pressure (Pa) for a storm of the given maximum wind,
/// via the Atkinson-Holliday style wind-pressure relationship
/// v = 3.4 (p_env_hpa - p_c_hpa)^0.644 inverted.
double central_pressure_for_wind(double wind_ms,
                                 double ambient_pa = 101000.0) noexcept;

/// Maximum wind implied by a central pressure (inverse of the above).
double wind_for_central_pressure(double pc_pa,
                                 double ambient_pa = 101000.0) noexcept;

std::string_view category_name(Category c) noexcept;

}  // namespace ct::storm
