#include "storm/saffir_simpson.h"

#include <algorithm>
#include <cmath>

namespace ct::storm {

double category_min_wind_ms(Category c) noexcept {
  switch (c) {
    case Category::kTropicalStorm: return 18.0;
    case Category::kCat1: return 33.0;
    case Category::kCat2: return 43.0;
    case Category::kCat3: return 50.0;
    case Category::kCat4: return 58.0;
    case Category::kCat5: return 70.0;
  }
  return 0.0;
}

double category_max_wind_ms(Category c) noexcept {
  switch (c) {
    case Category::kTropicalStorm: return 33.0;
    case Category::kCat1: return 43.0;
    case Category::kCat2: return 50.0;
    case Category::kCat3: return 58.0;
    case Category::kCat4: return 70.0;
    case Category::kCat5: return 120.0;  // sentinel upper bound
  }
  return 0.0;
}

Category category_for_wind(double wind_ms) noexcept {
  if (wind_ms >= 70.0) return Category::kCat5;
  if (wind_ms >= 58.0) return Category::kCat4;
  if (wind_ms >= 50.0) return Category::kCat3;
  if (wind_ms >= 43.0) return Category::kCat2;
  if (wind_ms >= 33.0) return Category::kCat1;
  return Category::kTropicalStorm;
}

double central_pressure_for_wind(double wind_ms, double ambient_pa) noexcept {
  // Atkinson-Holliday: v[m/s] = 3.4 * dp[hPa]^0.644  =>  dp = (v/3.4)^(1/0.644)
  const double dp_hpa = std::pow(std::max(0.0, wind_ms) / 3.4, 1.0 / 0.644);
  return ambient_pa - dp_hpa * 100.0;
}

double wind_for_central_pressure(double pc_pa, double ambient_pa) noexcept {
  const double dp_hpa = std::max(0.0, (ambient_pa - pc_pa) / 100.0);
  return 3.4 * std::pow(dp_hpa, 0.644);
}

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kTropicalStorm: return "TS";
    case Category::kCat1: return "Cat1";
    case Category::kCat2: return "Cat2";
    case Category::kCat3: return "Cat3";
    case Category::kCat4: return "Cat4";
    case Category::kCat5: return "Cat5";
  }
  return "?";
}

}  // namespace ct::storm
