#include "threat/system_state.h"

#include <stdexcept>

namespace ct::threat {

std::string_view site_status_name(SiteStatus s) noexcept {
  switch (s) {
    case SiteStatus::kUp: return "up";
    case SiteStatus::kFlooded: return "flooded";
    case SiteStatus::kIsolated: return "isolated";
  }
  return "?";
}

std::string_view state_name(OperationalState s) noexcept {
  switch (s) {
    case OperationalState::kGreen: return "green";
    case OperationalState::kOrange: return "orange";
    case OperationalState::kRed: return "red";
    case OperationalState::kGray: return "gray";
  }
  return "?";
}

int badness(OperationalState s) noexcept { return static_cast<int>(s); }

int SystemState::functional_site_count() const noexcept {
  int count = 0;
  for (const SiteStatus s : site_status) {
    if (s == SiteStatus::kUp) ++count;
  }
  return count;
}

int SystemState::effective_intrusions() const noexcept {
  int count = 0;
  for (std::size_t i = 0; i < site_status.size(); ++i) {
    if (site_status[i] == SiteStatus::kUp && i < intrusions.size()) {
      count += intrusions[i];
    }
  }
  return count;
}

int SystemState::total_intrusions() const noexcept {
  int count = 0;
  for (const int n : intrusions) count += n;
  return count;
}

std::vector<std::size_t> site_priority_order(
    const scada::Configuration& config) {
  std::vector<std::size_t> order;
  order.reserve(config.sites.size());
  for (const scada::SiteRole role :
       {scada::SiteRole::kPrimary, scada::SiteRole::kBackup,
        scada::SiteRole::kDataCenter}) {
    for (const std::size_t i : config.sites_with_role(role)) {
      order.push_back(i);
    }
  }
  return order;
}

SystemState post_disaster_state(
    const scada::Configuration& config,
    const std::function<bool(std::string_view asset_id)>& asset_flooded) {
  if (!asset_flooded) {
    throw std::invalid_argument("post_disaster_state: null flood predicate");
  }
  SystemState state;
  state.site_status.reserve(config.sites.size());
  state.intrusions.assign(config.sites.size(), 0);
  for (const scada::ControlSite& site : config.sites) {
    state.site_status.push_back(asset_flooded(site.asset_id)
                                    ? SiteStatus::kFlooded
                                    : SiteStatus::kUp);
  }
  return state;
}

}  // namespace ct::threat
