// The four compound-threat scenarios of the paper (§III-B) and the
// attacker-capability model behind them.
#pragma once

#include <array>
#include <string_view>

namespace ct::threat {

/// What the cyberattacker is able to do after observing the disaster.
struct AttackerCapability {
  int intrusions = 0;  ///< SCADA masters the attacker can compromise.
  int isolations = 0;  ///< Control sites the attacker can cut off.

  bool operator==(const AttackerCapability&) const = default;
};

/// The paper's threat scenarios: a baseline hurricane plus three compound
/// variants.
enum class ThreatScenario {
  kHurricane,                     ///< Natural disaster only.
  kHurricaneIntrusion,            ///< + one server intrusion.
  kHurricaneIsolation,            ///< + one site isolation.
  kHurricaneIntrusionIsolation,   ///< + one intrusion and one isolation.
};

/// All four scenarios in the paper's order (Figs. 6-9).
constexpr std::array<ThreatScenario, 4> all_scenarios() {
  return {ThreatScenario::kHurricane, ThreatScenario::kHurricaneIntrusion,
          ThreatScenario::kHurricaneIsolation,
          ThreatScenario::kHurricaneIntrusionIsolation};
}

/// Attacker capability implied by a scenario.
AttackerCapability capability_for(ThreatScenario s) noexcept;

std::string_view scenario_name(ThreatScenario s) noexcept;

}  // namespace ct::threat
