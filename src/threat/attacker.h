// Worst-case cyberattacker models (paper §V-B). The attacker observes the
// post-disaster state and targets its intrusions/isolations to cause the
// maximum damage. Two implementations:
//
//  * GreedyWorstCaseAttacker — the paper's efficient 3-rule algorithm.
//  * ExhaustiveAttacker — "analyze the results of attacking every possible
//    combination of targets and choose the worst outcome" (the naive
//    approach the paper describes); used to validate the greedy rules.
#pragma once

#include <functional>

#include "scada/configuration.h"
#include "threat/scenario.h"
#include "threat/system_state.h"

namespace ct::threat {

/// Ranks final system states; must order states by damage (the framework
/// supplies the Table-I evaluator). Used by the exhaustive attacker.
using StateRanker = std::function<OperationalState(const SystemState&)>;

/// The paper's worst-case attack algorithm:
///  1. If the attacker can compromise enough servers to violate safety
///     (f + 1 intrusions among functional replicas of one replication
///     group), it does so.
///  2. Otherwise it isolates sites: first the functioning primary control
///     center, then the backup control center, then data centers.
///  3. Any remaining intrusion budget is spent on servers in functioning
///     sites (reducing the number of operational servers).
class GreedyWorstCaseAttacker {
 public:
  /// Applies the worst-case attack with `capability` to the post-disaster
  /// state; returns the final state.
  SystemState attack(const scada::Configuration& config, SystemState state,
                     AttackerCapability capability) const;
};

/// Brute-force worst case: enumerates every combination of site isolations
/// (up to the budget) and intrusion placements, ranks each final state with
/// the supplied evaluator, and returns a state achieving maximum badness.
/// Exponential in the budgets, fine at the paper's scale; exists to verify
/// the greedy attacker's optimality property claimed in §V-B.
class ExhaustiveAttacker {
 public:
  explicit ExhaustiveAttacker(StateRanker ranker);

  SystemState attack(const scada::Configuration& config, SystemState state,
                     AttackerCapability capability) const;

  /// Number of candidate attacks examined by the last `attack` call
  /// (exposed for the A1 ablation bench).
  std::size_t last_candidates() const noexcept { return last_candidates_; }

 private:
  StateRanker ranker_;
  mutable std::size_t last_candidates_ = 0;
};

}  // namespace ct::threat
