#include "threat/scenario.h"

namespace ct::threat {

AttackerCapability capability_for(ThreatScenario s) noexcept {
  switch (s) {
    case ThreatScenario::kHurricane: return {0, 0};
    case ThreatScenario::kHurricaneIntrusion: return {1, 0};
    case ThreatScenario::kHurricaneIsolation: return {0, 1};
    case ThreatScenario::kHurricaneIntrusionIsolation: return {1, 1};
  }
  return {0, 0};
}

std::string_view scenario_name(ThreatScenario s) noexcept {
  switch (s) {
    case ThreatScenario::kHurricane: return "Hurricane";
    case ThreatScenario::kHurricaneIntrusion:
      return "Hurricane + Server Intrusion";
    case ThreatScenario::kHurricaneIsolation:
      return "Hurricane + Site Isolation";
    case ThreatScenario::kHurricaneIntrusionIsolation:
      return "Hurricane + Server Intrusion + Site Isolation";
  }
  return "?";
}

}  // namespace ct::threat
